"""Dependency-free ASCII charts for experiment output.

The paper's figures are line/bar plots; the benchmarks emit their numeric
series, and these helpers render them as terminal charts so trends
(crossovers, saturation, divergence) are visible without matplotlib.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKS = "*o+x#@%&"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str | None = None,
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title or ""
    peak = max(max(values), 0.0)
    label_width = max(len(str(lab)) for lab in labels)
    lines = [title] if title else []
    for lab, val in zip(labels, values):
        filled = 0 if peak == 0 else int(round(width * max(val, 0.0) / peak))
        lines.append(f"{str(lab).rjust(label_width)} |{'#' * filled} {val:g}")
    return "\n".join(lines)


def line_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series gets a marker from ``*o+x#@%&``; x positions interpolate the
    given ``x_values`` onto the grid, y is min-max scaled across all series.
    """
    if height < 2 or width < 2:
        raise ValueError("width and height must be at least 2")
    names = list(series)
    if not names or not x_values:
        return title or ""
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch with x_values")
    all_y = [v for name in names for v in series[name]]
    y_lo, y_hi = min(all_y), max(all_y)
    y_span = (y_hi - y_lo) or 1.0
    x_lo, x_hi = min(x_values), max(x_values)
    x_span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, name in enumerate(names):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in zip(x_values, series[name]):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_lo) / y_span * (height - 1)))
            grid[row][col] = mark
    axis_width = max(len(f"{y_hi:g}"), len(f"{y_lo:g}"))
    lines = [title] if title else []
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:g}".rjust(axis_width)
        elif i == height - 1:
            label = f"{y_lo:g}".rjust(axis_width)
        else:
            label = " " * axis_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * axis_width + " +" + "-" * width)
    lines.append(
        " " * axis_width + f"  {x_lo:g}" + f"{x_hi:g}".rjust(width - len(f"{x_lo:g}"))
    )
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(names)
    )
    lines.append(legend)
    return "\n".join(lines)
