"""The asyncio front end: connections, the dispatcher, signal shutdown.

One :class:`QueryServer` owns a stdlib ``asyncio.start_server`` listener
and a **single dispatcher task** that drains a shared request queue.
The drain loop *is* the coalescing window: the dispatcher takes whatever
has accumulated (optionally sleeping ``batch_window`` seconds after the
first request), hands the whole drain to
:meth:`~repro.serve.batcher.CoalescingBatcher.execute` in a worker
thread, and resolves each request's future with its response.  While a
round is in flight new requests pile up in the queue, so concurrent
clients coalesce naturally even with ``batch_window=0``.

Connections are pipelined: each line spawns a responder task, responses
go out in completion order (matched by ``id``) under a per-connection
write lock.  Protocol failures answer with a structured error line and
keep the connection open.

Shutdown (``aclose`` — what the CLI's SIGTERM/SIGINT handlers trigger)
closes the listener, cancels the dispatcher, fails queued requests, and
closes the hub, which routes every ``dm-mp`` pool through
:func:`repro.utils.workers.stop_worker_pool` and unlinks its shared
memory — a killed server never leaks shm segments (the crash tests
assert this for SIGTERM and, via the resource tracker, SIGKILL).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.serve.batcher import CoalescingBatcher, EngineHub, ServeStats
from repro.serve.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    decode_line,
    encode,
    error_response,
    parse_request,
)


class QueryServer:
    """Serve one :class:`~repro.serve.batcher.EngineHub` over TCP.

    Parameters
    ----------
    hub:
        The warm engines (the server owns it after ``start``: ``aclose``
        closes it).
    host / port:
        Bind address; port 0 picks a free port (``start`` returns the
        bound address).
    batch_window:
        Extra seconds the dispatcher waits after the first request of a
        batch before draining.  0 (default) still coalesces whatever is
        queued — including everything that arrived while the previous
        round was in flight.
    """

    def __init__(
        self,
        hub: EngineHub,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window: float = 0.0,
        stats: ServeStats | None = None,
    ) -> None:
        self.hub = hub
        self.batcher = CoalescingBatcher(hub, stats)
        self.host = host
        self.port = int(port)
        self.batch_window = float(batch_window)
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._queue: asyncio.Queue[tuple[Request, asyncio.Future]] = (
            asyncio.Queue()
        )
        self._closed = False

    @property
    def stats(self) -> ServeStats:
        return self.batcher.stats

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind, launch the dispatcher, warm the pools; returns the
        bound ``(host, port)``."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.hub.warm)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=MAX_LINE_BYTES + 2,
        )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatcher"
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def aclose(self) -> None:
        """Stop accepting, fail queued work, release the hub (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        while not self._queue.empty():
            request, future = self._queue.get_nowait()
            if not future.done():
                future.set_result(
                    error_response(
                        request.id, ERROR_INTERNAL, "server shutting down"
                    )
                )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.hub.close)

    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            batch = [first]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            requests = [request for request, _ in batch]
            try:
                responses = await loop.run_in_executor(
                    None, self.batcher.execute, requests
                )
            except Exception as exc:  # noqa: BLE001 - keep serving
                for request, future in batch:
                    if not future.done():
                        future.set_result(
                            error_response(
                                request.id,
                                ERROR_INTERNAL,
                                f"{type(exc).__name__}: {exc}",
                            )
                        )
                continue
            for (_, future), response in zip(batch, responses):
                if not future.done():
                    future.set_result(response)

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        lock = asyncio.Lock()
        responders: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Line longer than the stream limit: the framing is
                    # unrecoverable, answer once and drop the connection.
                    await self._write(
                        writer,
                        lock,
                        error_response(
                            None,
                            ERROR_BAD_REQUEST,
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                request_id: Any = None
                try:
                    payload = decode_line(line)
                    request_id = payload.get("id")
                    request = parse_request(payload)
                except ProtocolError as exc:
                    self.stats.errors += 1
                    await self._write(
                        writer,
                        lock,
                        error_response(request_id, exc.code, exc.message),
                    )
                    continue
                future: asyncio.Future = (
                    asyncio.get_running_loop().create_future()
                )
                await self._queue.put((request, future))
                task = asyncio.create_task(
                    self._respond(writer, lock, future)
                )
                responders.add(task)
                task.add_done_callback(responders.discard)
        finally:
            if responders:
                await asyncio.gather(*responders, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        future: asyncio.Future,
    ) -> None:
        response = await future
        await self._write(writer, lock, response)

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter, lock: asyncio.Lock, response: dict
    ) -> None:
        async with lock:
            try:
                writer.write(encode(response))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away; nothing to tell it


def run_server(
    hub: EngineHub,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    batch_window: float = 0.0,
    on_ready: Callable[[str, int], None] | None = None,
) -> ServeStats:
    """Blocking entry point: serve until SIGTERM/SIGINT, then clean up.

    The signal handlers set an event rather than raising, so shutdown
    always runs :meth:`QueryServer.aclose` — worker pools are stopped via
    ``stop_worker_pool`` and shm segments unlinked even when the process
    is terminated externally.  Returns the final serving counters.
    """
    import signal

    stats = ServeStats()

    async def main() -> None:
        server = QueryServer(
            hub, host=host, port=port, batch_window=batch_window, stats=stats
        )
        bound_host, bound_port = await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-posix
                pass
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        try:
            await stop.wait()
        finally:
            await server.aclose()

    asyncio.run(main())
    return stats
