"""repro — a full reproduction of "Voting-based Opinion Maximization" (ICDE 2023).

Select k seed users for a target campaigner, competing with other campaigns
under Friedkin-Johnsen / DeGroot opinion diffusion, so as to maximize a
voting-based score (cumulative, plurality, p-approval, positional-p-approval,
Copeland) at a finite time horizon.

Quickstart
----------
>>> import numpy as np
>>> from repro import (CampaignState, FJVoteProblem, PluralityScore,
...                    graph_from_edges, greedy_dm)
>>> g = graph_from_edges(4, [0, 1, 2], [2, 2, 3],
...                      weight=np.array([1.0, 1.0, 1.0]))
>>> state = CampaignState(
...     graphs=(g, g),
...     initial_opinions=np.array([[0.4, 0.8, 0.4, 0.6], [0.3, 0.7, 0.7, 0.9]]),
...     stubbornness=np.full((2, 4), 0.5),
... )
>>> problem = FJVoteProblem(state, target=0, horizon=1, score=PluralityScore())
>>> greedy_dm(problem, k=1).seeds  # doctest: +SKIP
array([2])
"""

from repro.core.engine import (
    BatchedDMEngine,
    DMEngine,
    EngineStats,
    ObjectiveEngine,
    SelectionSession,
    WalkEngine,
    make_engine,
    parse_engine_spec,
)
from repro.core.engine_mp import MultiprocessDMEngine
from repro.core.greedy import GreedyResult, greedy_dm, greedy_engine, greedy_select
from repro.core.problem import FJVoteProblem
from repro.core.random_walk import TruncatedWalks, random_walk_select
from repro.core.sandwich import SandwichResult, sandwich_select
from repro.core.sketch import SketchSelectResult, sketch_select
from repro.core.winmin import WinMinResult, min_seeds_to_win
from repro.graph.build import column_stochastic, graph_from_edges
from repro.graph.digraph import InfluenceGraph
from repro.opinion.degroot import degroot_evolve
from repro.opinion.fj import fj_evolve, horizon_opinions
from repro.opinion.state import CampaignState
from repro.voting.rules import condorcet_winner, score_all_candidates, winner
from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    PApprovalScore,
    PluralityScore,
    PositionalPApprovalScore,
    VotingScore,
    make_score,
)

__version__ = "1.0.0"

__all__ = [
    "BatchedDMEngine",
    "CampaignState",
    "CopelandScore",
    "CumulativeScore",
    "DMEngine",
    "EngineStats",
    "FJVoteProblem",
    "GreedyResult",
    "InfluenceGraph",
    "MultiprocessDMEngine",
    "ObjectiveEngine",
    "SelectionSession",
    "WalkEngine",
    "PApprovalScore",
    "PluralityScore",
    "PositionalPApprovalScore",
    "SandwichResult",
    "SketchSelectResult",
    "TruncatedWalks",
    "VotingScore",
    "WinMinResult",
    "column_stochastic",
    "condorcet_winner",
    "degroot_evolve",
    "fj_evolve",
    "graph_from_edges",
    "greedy_dm",
    "greedy_engine",
    "greedy_select",
    "horizon_opinions",
    "make_engine",
    "make_score",
    "parse_engine_spec",
    "min_seeds_to_win",
    "random_walk_select",
    "sandwich_select",
    "score_all_candidates",
    "sketch_select",
    "winner",
]
