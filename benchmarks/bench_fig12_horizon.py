"""Fig. 12: cumulative score and seed-finding time vs the horizon t.

Expected shape (paper, Yelp): the score saturates around t≈20 (motivating
the default), RW/RS saturate slightly earlier than DM, and DM's runtime
grows linearly in t while RW/RS grow sub-linearly (walks often terminate
early at stubborn nodes).
"""


from benchmarks.conftest import run_once
from repro.eval.experiments import horizon_experiment
from repro.eval.reporting import format_series

TS = [0, 2, 5, 10, 20, 30]
K = 10
KW = {"rw": {"lambda_cap": 32}, "rs": {"theta": 4000}}


def test_fig12_horizon(benchmark, yelp_ds, save_result):
    out = run_once(
        benchmark,
        lambda: horizon_experiment(
            yelp_ds, TS, K, methods=("dm", "rw", "rs"), rng=31, method_kwargs=KW
        ),
    )
    save_result(
        "fig12_horizon",
        "score:\n"
        + format_series("t", TS, out["score"])
        + "\n\nselect time (s):\n"
        + format_series("t", TS, out["time"]),
    )
    # Score saturation: the last two horizons differ much less than the
    # first two for the exact method.
    dm = out["score"]["dm"]
    assert abs(dm[-1] - dm[-2]) <= abs(dm[1] - dm[0]) + 1e-9
    # DM's time grows with t.
    assert out["time"]["dm"][-1] > out["time"]["dm"][1]
