"""The seven project-invariant checkers behind ``repro lint``.

Each checker machine-checks one hand-maintained invariant that the
parity/crash suites depend on (see the module docstrings below and the
README "Static analysis" section).  All analysis is syntactic — nothing
under :mod:`repro` is imported — so the checkers run in milliseconds and
cannot trip worker-pool or shared-memory side effects.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import Checker, Finding, Module, Project

__all__ = [
    "ALL_CHECKERS",
    "DeterminismChecker",
    "EngineProtocolChecker",
    "FaultPointChecker",
    "MpOpParityChecker",
    "PickleBudgetChecker",
    "ResourceLifecycleChecker",
    "WireFormatChecker",
    "default_checkers",
]


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _const_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _func_defs(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
# 1. determinism
# ----------------------------------------------------------------------
class DeterminismChecker(Checker):
    """No unseeded or global-state RNG: randomness flows from parameters.

    Byte-identical selections across dm / dm-mp / rw-store only hold when
    every random draw derives from an explicit seed, ``Generator`` or
    ``SeedSequence`` handed down by the caller.  Flags: zero-argument
    ``np.random.default_rng()`` (fresh OS entropy), the legacy global
    ``np.random.*`` API, any stdlib ``random`` usage, time/urandom-derived
    seeds, and zero-argument ``ensure_rng()`` (the entropy fallthrough).
    """

    name = "determinism"
    description = "RNG must flow from an explicit seed/Generator parameter"

    _CONSTRUCTORS = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )
    _ENTROPY_SOURCES = (
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Finding]:
        numpy_aliases = {"numpy"}
        random_aliases: set[str] = set()
        seeded_names: set[str] = set()  # default_rng imported directly
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    random_aliases.update(a.asname or a.name for a in node.names)
                elif node.module in ("numpy.random", "numpy"):
                    for alias in node.names:
                        if alias.name in self._CONSTRUCTORS:
                            seeded_names.add(alias.asname or alias.name)
                        elif alias.name == "random":
                            numpy_aliases.add(
                                f"__npr__{alias.asname or alias.name}"
                            )

        np_random_prefixes = {f"{alias}.random" for alias in numpy_aliases}
        np_random_prefixes.update(
            alias[len("__npr__") :]
            for alias in numpy_aliases
            if alias.startswith("__npr__")
        )

        for call in ast.walk(module.tree):
            if not isinstance(call, ast.Call):
                continue
            name = _dotted(call.func)
            if name is None:
                continue
            prefix, _, attr = name.rpartition(".")
            if prefix in np_random_prefixes:
                if attr in self._CONSTRUCTORS:
                    yield from self._check_constructor(module, call, name)
                else:
                    yield self.finding(
                        module,
                        call,
                        f"legacy global-state RNG call {name}(); draw from an "
                        "explicit np.random.Generator instead",
                    )
            elif attr in self._CONSTRUCTORS and (
                name in seeded_names or prefix in np_random_prefixes
            ):
                yield from self._check_constructor(module, call, name)
            elif name in seeded_names:
                yield from self._check_constructor(module, call, name)
            elif name.split(".", 1)[0] in random_aliases and (
                "." in name or name in random_aliases
            ):
                yield self.finding(
                    module,
                    call,
                    f"stdlib random usage {name}(); all randomness must come "
                    "from seeded numpy Generators",
                )
            elif attr == "ensure_rng" or name == "ensure_rng":
                if not call.args or _is_none(call.args[0]):
                    yield self.finding(
                        module,
                        call,
                        "ensure_rng() without an explicit seed falls through "
                        "to fresh entropy; thread the caller's rng in",
                    )

        # seeding an RNG from wall-clock/OS entropy defeats replayability
        # even though the constructor *looks* seeded.
        for call in ast.walk(module.tree):
            if not isinstance(call, ast.Call):
                continue
            name = _dotted(call.func) or ""
            if name.rpartition(".")[2] not in self._CONSTRUCTORS:
                continue
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call):
                        sub_name = _dotted(sub.func) or ""
                        if any(
                            sub_name == src or sub_name.endswith("." + src)
                            for src in self._ENTROPY_SOURCES
                        ):
                            yield self.finding(
                                module,
                                call,
                                f"RNG seeded from {sub_name}(); time/OS-derived "
                                "seeds are not replayable",
                            )

    def _check_constructor(
        self, module: Module, call: ast.Call, name: str
    ) -> Iterator[Finding]:
        if name.rpartition(".")[2] != "default_rng":
            return
        if not call.args or _is_none(call.args[0]):
            yield self.finding(
                module,
                call,
                "unseeded default_rng(); pass a seed, Generator or "
                "SeedSequence so the stream is replayable",
            )


# ----------------------------------------------------------------------
# 2. engine-protocol
# ----------------------------------------------------------------------
class _ClassInfo:
    __slots__ = ("module", "node", "bases", "methods")

    def __init__(self, module: Module, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.bases = [
            base
            for base in ((_dotted(b) or "").rpartition(".")[2] for b in node.bases)
            if base
        ]
        self.methods: dict[str, ast.FunctionDef] = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }


def _class_table(project: Project) -> dict[str, _ClassInfo]:
    table: dict[str, _ClassInfo] = {}
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name not in table:
                table[node.name] = _ClassInfo(module, node)
    return table


def _ancestry(name: str, table: dict[str, _ClassInfo]) -> list[str]:
    """Linearized project-visible ancestor chain (name first), cycle-safe."""
    seen: list[str] = []
    queue = [name]
    while queue:
        current = queue.pop(0)
        if current in seen or current not in table:
            continue
        seen.append(current)
        queue.extend(table[current].bases)
    return seen


def _is_abstract(func: ast.FunctionDef) -> bool:
    return any(
        (_dotted(dec) or "").rpartition(".")[2] == "abstractmethod"
        for dec in func.decorator_list
    )


def _positional_params(func: ast.FunctionDef) -> list[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _positional_defaults(func: ast.FunctionDef) -> int:
    """How many trailing positional parameters carry defaults."""
    return len(func.args.defaults)


def _signature_conflicts(
    base: ast.FunctionDef, override: ast.FunctionDef
) -> list[str]:
    """Why ``override`` is not call-compatible with ``base`` (empty = fine)."""
    if override.args.vararg is not None and override.args.kwarg is not None:
        return []
    problems: list[str] = []
    base_pos = _positional_params(base)
    over_pos = _positional_params(override)
    base_defaults = _positional_defaults(base)
    over_defaults = _positional_defaults(override)
    for i, name in enumerate(base_pos):
        if i >= len(over_pos):
            if override.args.vararg is None:
                problems.append(f"drops positional parameter '{name}'")
            continue
        if over_pos[i] != name:
            problems.append(
                f"renames positional parameter '{name}' to '{over_pos[i]}'"
            )
            continue
        base_has_default = i >= len(base_pos) - base_defaults
        over_has_default = i >= len(over_pos) - over_defaults
        if base_has_default and not over_has_default:
            problems.append(f"drops the default of parameter '{name}'")
    for i, name in enumerate(over_pos[len(base_pos) :], start=len(base_pos)):
        if i < len(over_pos) - over_defaults:
            problems.append(f"adds required positional parameter '{name}'")
    over_kwonly = {
        a.arg: d
        for a, d in zip(override.args.kwonlyargs, override.args.kw_defaults)
    }
    base_kwonly = {
        a.arg: d for a, d in zip(base.args.kwonlyargs, base.args.kw_defaults)
    }
    for name, default in base_kwonly.items():
        if name in over_kwonly:
            if default is not None and over_kwonly[name] is None:
                problems.append(f"drops the default of keyword '{name}'")
        elif name not in over_pos and override.args.kwarg is None:
            problems.append(f"drops keyword parameter '{name}'")
    if base.args.kwarg is None and override.args.kwarg is None:
        for name, default in over_kwonly.items():
            if name not in base_kwonly and name not in base_pos and default is None:
                problems.append(f"adds required keyword parameter '{name}'")
    return problems


class EngineProtocolChecker(Checker):
    """Every engine backend implements the full ``ObjectiveEngine`` surface.

    A new backend (the ROADMAP's ``dm-gpu``, a TCP-sharded engine) must
    not silently miss a seam: every class registered in
    ``_ENGINE_FACTORIES`` has to provide the abstract methods, and every
    override of an ``ObjectiveEngine`` / ``SelectionSession`` method must
    stay call-compatible with the base signature — the greedy driver,
    win-min and the serving coalescer call through the base protocol.
    """

    name = "engine-protocol"
    description = "engine/session subclasses must match the protocol surface"

    ROOTS = ("ObjectiveEngine", "SelectionSession")

    def run(self, project: Project) -> Iterator[Finding]:
        table = _class_table(project)
        for root_name in self.ROOTS:
            root = table.get(root_name)
            if root is None:
                continue
            protocol = {
                name: func
                for name, func in root.methods.items()
                if not (name.startswith("__") and name.endswith("__"))
            }
            abstract = {n for n, f in root.methods.items() if _is_abstract(f)}
            for cls_name, info in table.items():
                chain = _ancestry(cls_name, table)
                if cls_name == root_name or root_name not in chain:
                    continue
                for name, func in info.methods.items():
                    base_func = protocol.get(name)
                    if base_func is None or _is_abstract(func):
                        continue
                    for problem in _signature_conflicts(base_func, func):
                        yield self.finding(
                            info.module,
                            func,
                            f"{cls_name}.{name} {problem} relative to "
                            f"{root_name}.{name}; protocol callers use the "
                            "base signature",
                        )
        yield from self._check_registry(project, table)

    def _check_registry(
        self, project: Project, table: dict[str, _ClassInfo]
    ) -> Iterator[Finding]:
        factories: dict[str, tuple[Module, ast.AST]] = {}
        registry_module: Module | None = None
        for module in project.modules:
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "_ENGINE_FACTORIES"
                        for t in node.targets
                    )
                    and isinstance(node.value, ast.Dict)
                ):
                    registry_module = module
                    for key, value in zip(node.value.keys, node.value.values):
                        spec = _const_str(key) if key is not None else None
                        factory = _dotted(value)
                        if spec and factory:
                            factories[spec] = (module, value)
        if registry_module is None:
            return
        abstract_required: set[str] = set()
        root = table.get("ObjectiveEngine")
        if root is not None:
            abstract_required = {
                n for n, f in root.methods.items() if _is_abstract(f)
            }
        for spec, (module, value_node) in sorted(factories.items()):
            factory_name = (_dotted(value_node) or "").rpartition(".")[2]
            cls_name = self._resolve_factory(registry_module, factory_name, table)
            if cls_name is None:
                yield self.finding(
                    module,
                    value_node,
                    f"engine spec '{spec}': cannot resolve factory "
                    f"'{factory_name}' to a class; keep factories returning "
                    "a direct class constructor call",
                )
                continue
            chain = _ancestry(cls_name, table)
            if "ObjectiveEngine" not in chain:
                yield self.finding(
                    module,
                    value_node,
                    f"engine spec '{spec}' maps to {cls_name}, which does not "
                    "subclass ObjectiveEngine",
                )
                continue
            defined = {
                name
                for ancestor in chain
                for name, func in table[ancestor].methods.items()
                if not _is_abstract(func)
            }
            for required in sorted(abstract_required - defined):
                yield self.finding(
                    module,
                    value_node,
                    f"engine spec '{spec}' maps to {cls_name}, which never "
                    f"implements abstract '{required}'",
                )

    @staticmethod
    def _resolve_factory(
        module: Module, factory_name: str, table: dict[str, _ClassInfo]
    ) -> str | None:
        """Class a factory function returns (follows one local indirection)."""
        if factory_name in table:
            return factory_name
        funcs = {f.name: f for f in _func_defs(module.tree)}
        seen: set[str] = set()
        name: str | None = factory_name
        while name in funcs and name not in seen:
            seen.add(name)
            target: str | None = None
            for node in ast.walk(funcs[name]):
                if isinstance(node, ast.Return) and isinstance(
                    node.value, ast.Call
                ):
                    called = (_dotted(node.value.func) or "").rpartition(".")[2]
                    if called in table:
                        return called
                    target = called or target
            name = target
        return None


# ----------------------------------------------------------------------
# 3. mp-op-parity
# ----------------------------------------------------------------------
class MpOpParityChecker(Checker):
    """Worker-loop op dispatch exactly covers the ops the parent sends.

    The dm-mp and walk-store pools frame their own messages: the first
    tuple element is the op string.  An op the parent sends but the
    worker loop never matches dead-locks or hits the fallback raise at
    run time; a dispatch branch for an op nobody sends is dead code that
    rots.  Both directions are checked per module, syntactically.
    """

    name = "mp-op-parity"
    description = "parent-sent op strings == worker-loop dispatch branches"

    _OP_RE = re.compile(r"^[a-z][a-z0-9_]*$")
    _SEND_FUNCS = frozenset({"_run", "append", "dumps", "send", "send_bytes"})

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            workers = [
                func
                for func in _func_defs(module.tree)
                if "worker" in func.name and self._has_recv_loop(func)
            ]
            if not workers:
                continue
            worker_nodes = {id(n) for w in workers for n in ast.walk(w)}
            handled = self._handled_ops(workers)
            sent = self._sent_ops(module, worker_nodes)
            for op, node in sorted(sent.items()):
                if op not in handled:
                    yield self.finding(
                        module,
                        node,
                        f"op '{op}' is sent to the worker pool but no worker "
                        "loop dispatch branch handles it",
                    )
            for op, node in sorted(handled.items()):
                if op not in sent:
                    yield self.finding(
                        module,
                        node,
                        f"worker loop handles op '{op}' but nothing in this "
                        "module ever sends it",
                    )

    @staticmethod
    def _has_recv_loop(func: ast.FunctionDef) -> bool:
        return any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("recv", "recv_bytes")
            for node in ast.walk(func)
        )

    def _handled_ops(
        self, workers: list[ast.FunctionDef]
    ) -> dict[str, ast.AST]:
        handled: dict[str, ast.AST] = {}
        for worker in workers:
            for node in ast.walk(worker):
                if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
                    continue
                if not isinstance(node.ops[0], (ast.Eq, ast.NotEq, ast.In)):
                    continue
                left_ok = (
                    isinstance(node.left, ast.Name) and node.left.id == "op"
                ) or isinstance(node.left, ast.Subscript)
                if not left_ok:
                    continue
                comparator = node.comparators[0]
                values = (
                    list(comparator.elts)
                    if isinstance(comparator, (ast.Tuple, ast.List, ast.Set))
                    else [comparator]
                )
                for value in values:
                    op = _const_str(value)
                    if op is not None and self._OP_RE.match(op):
                        handled.setdefault(op, node)
        return handled

    def _sent_ops(
        self, module: Module, worker_nodes: set[int]
    ) -> dict[str, ast.AST]:
        sent: dict[str, ast.AST] = {}
        op_routers: dict[str, int] = {}  # local funcs with a parameter 'op'
        for func in _func_defs(module.tree):
            params = [a.arg for a in func.args.posonlyargs + func.args.args]
            if "op" in params:
                index = params.index("op")
                if params and params[0] in ("self", "cls"):
                    index -= 1
                op_routers[func.name] = index
        for node in ast.walk(module.tree):
            if id(node) in worker_nodes or not isinstance(node, ast.Call):
                continue
            # Terminal attribute name, resolvable even through subscripted
            # chains like ``workers[i].conn.send(...)``.
            if isinstance(node.func, ast.Attribute):
                func_name = node.func.attr
            elif isinstance(node.func, ast.Name):
                func_name = node.func.id
            else:
                continue
            if func_name in self._SEND_FUNCS:
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Tuple) and sub.elts:
                            op = _const_str(sub.elts[0])
                            if op is not None and self._OP_RE.match(op):
                                sent.setdefault(op, sub)
            if func_name in op_routers:
                index = op_routers[func_name]
                value = _keyword(node, "op")
                if value is None and 0 <= index < len(node.args):
                    value = node.args[index]
                if value is not None:
                    op = _const_str(value)
                    if op is not None and self._OP_RE.match(op):
                        sent.setdefault(op, node)
        return sent


# ----------------------------------------------------------------------
# 4. resource-lifecycle
# ----------------------------------------------------------------------
class ResourceLifecycleChecker(Checker):
    """Shared-memory and worker-pool allocations are paired with teardown.

    Every ``SharedMemory(create=True)`` segment, ``ShmArena`` and worker
    ``Process`` must have a release path in its owning scope: a
    ``weakref.finalize`` guard, a ``finally`` that closes/unlinks, a
    ``with`` block, or routing through ``stop_worker_pool`` — otherwise a
    crash (or just an exception on the happy path) leaks segments the
    zero-leak SIGKILL suite guards against.
    """

    name = "resource-lifecycle"
    description = "shm/worker allocations need finalize/finally/with teardown"

    _CLEANUP_ATTRS = frozenset(
        {"close", "unlink", "terminate", "kill", "stop", "shutdown", "aclose"}
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            parents = _parent_map(module.tree)
            for node in ast.walk(module.tree):
                kind = self._allocation(node)
                if kind is None:
                    continue
                scope = self._guard_scope(node, parents)
                if not self._guarded(scope, node, parents):
                    yield self.finding(
                        module,
                        node,
                        f"{kind} allocated without a paired teardown "
                        "(weakref.finalize, finally-close/unlink, with-block "
                        "or stop_worker_pool) in the owning scope",
                    )

    @staticmethod
    def _allocation(node: ast.AST) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        name = (_dotted(node.func) or "").rpartition(".")[2]
        if name == "SharedMemory":
            create = _keyword(node, "create")
            if isinstance(create, ast.Constant) and create.value is True:
                return "SharedMemory segment"
            return None
        if name == "ShmArena":
            return "ShmArena"
        if name == "Process":
            return "worker Process"
        return None

    @staticmethod
    def _guard_scope(node: ast.AST, parents: dict[int, ast.AST]) -> ast.AST:
        """Innermost class (for methods) or function owning the allocation."""
        best: ast.AST | None = None
        current: ast.AST | None = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                best = current
            if isinstance(current, ast.ClassDef):
                return current
            current = parents.get(id(current))
        return best if best is not None else node

    def _guarded(
        self, scope: ast.AST, alloc: ast.AST, parents: dict[int, ast.AST]
    ) -> bool:
        current = parents.get(id(alloc))
        while current is not None and current is not parents.get(id(scope)):
            if isinstance(current, ast.With):
                return True
            current = parents.get(id(current))
        for node in ast.walk(scope):
            if isinstance(node, ast.Attribute) and node.attr == "finalize":
                return True
            if isinstance(node, ast.Name) and node.id == "stop_worker_pool":
                return True
            if isinstance(node, ast.Attribute) and node.attr == "stop_worker_pool":
                return True
            if isinstance(node, ast.Try) and node.finalbody:
                for sub in node.finalbody:
                    for call in ast.walk(sub):
                        if (
                            isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr in self._CLEANUP_ATTRS
                        ):
                            return True
        return False


def _parent_map(tree: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


# ----------------------------------------------------------------------
# 5. pickle-budget
# ----------------------------------------------------------------------
class PickleBudgetChecker(Checker):
    """``__getstate__`` must disposition every cache-like attribute.

    The dm-mp pool ships problems by pickle; ``__getstate__`` keeps the
    byte budget bounded by dropping per-session caches.  A new
    ``_cached_*`` / trajectory attribute that ``__getstate__`` neither
    drops nor declares shareable silently reinstates the serialization
    tax (and can ship stale warm state into workers).
    """

    name = "pickle-budget"
    description = "__getstate__ must drop or declare every cache attribute"

    _CACHE_PATTERNS = tuple(
        re.compile(p)
        for p in (r"^_cached", r"^_memo", r"trajector", r"_cache$", r"_caches$")
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and "__getstate__" in {
                    f.name
                    for f in node.body
                    if isinstance(f, (ast.FunctionDef, ast.AsyncFunctionDef))
                }:
                    yield from self._check_class(module, node)

    def _check_class(
        self, module: Module, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        getstate = next(
            f
            for f in cls.body
            if isinstance(f, (ast.FunctionDef, ast.AsyncFunctionDef))
            and f.name == "__getstate__"
        )
        handled: set[str] = {
            value
            for node in ast.walk(getstate)
            if (value := _const_str(node)) is not None
        }
        # class-level registries of string names (e.g. _SHAREABLE_CACHES)
        # count as explicit dispositions too.
        for item in cls.body:
            if isinstance(item, ast.Assign) and isinstance(
                item.value, (ast.Tuple, ast.List, ast.Set)
            ):
                for element in item.value.elts:
                    value = _const_str(element)
                    if value is not None:
                        handled.add(value)
        for attr, node in sorted(self._cache_attrs(cls).items()):
            if attr not in handled:
                yield self.finding(
                    module,
                    node,
                    f"{cls.name}.{attr} looks like a cache but "
                    "__getstate__ neither drops nor declares it; new cache "
                    "attributes must not leak into worker ships",
                )

    def _cache_attrs(self, cls: ast.ClassDef) -> dict[str, ast.AST]:
        attrs: dict[str, ast.AST] = {}
        for node in ast.walk(cls):
            target: ast.expr | None = None
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Attribute):
                        target = t
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Attribute):
                    target = node.target
            if (
                target is not None
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and any(p.search(target.attr) for p in self._CACHE_PATTERNS)
            ):
                attrs.setdefault(target.attr, node)
        return attrs


# ----------------------------------------------------------------------
# 6. wire-format
# ----------------------------------------------------------------------
class WireFormatChecker(Checker):
    """Serving-layer JSON must be byte-deterministic.

    Response bytes are part of the serving contract (the coalescing
    tests assert byte-identical coalesced-vs-serial responses), so every
    ``json.dumps`` on the wire path must pass ``sort_keys=True`` and the
    compact ``separators=(",", ":")`` — otherwise dict insertion order
    and whitespace leak into the bytes.
    """

    name = "wire-format"
    description = "serve-layer json.dumps needs sort_keys + compact separators"

    _PATH_MARKERS = ("/serve/", "/analysis/")

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            posix = "/" + module.path.replace("\\", "/")
            if not any(marker in posix for marker in self._PATH_MARKERS):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _dotted(node.func) or ""
                if name.rpartition(".")[2] not in ("dumps", "dump"):
                    continue
                if not (name.startswith("json.") or ".json." in name):
                    continue
                yield from self._check_call(module, node)

    def _check_call(self, module: Module, call: ast.Call) -> Iterator[Finding]:
        sort_keys = _keyword(call, "sort_keys")
        if not (
            isinstance(sort_keys, ast.Constant) and sort_keys.value is True
        ):
            yield self.finding(
                module,
                call,
                "json.dumps on the wire path without sort_keys=True; "
                "response bytes must not depend on dict insertion order",
            )
        separators = _keyword(call, "separators")
        compact = (
            isinstance(separators, ast.Tuple)
            and len(separators.elts) == 2
            and _const_str(separators.elts[0]) == ","
            and _const_str(separators.elts[1]) == ":"
        )
        if not compact:
            yield self.finding(
                module,
                call,
                'json.dumps on the wire path without separators=(",", ":"); '
                "whitespace must not leak into response bytes",
            )


class FaultPointChecker(Checker):
    """Fault-injection call sites and the registry must stay in sync.

    The chaos tests replay :class:`~repro.core.faults.FaultPlan`\\ s
    whose specs reference fault ids by name; a ``maybe_fail`` call site
    whose id (or context keys) drifted from :data:`FAULT_IDS` would make
    those plans silently never fire.  Both directions are checked: every
    call site must use a registered id with registered context keys, and
    every registered id must have a call site — an orphaned registration
    means a fault a plan can arm but nothing can trigger.
    """

    name = "fault-point"
    description = "maybe_fail call sites must match the FAULT_IDS registry"

    def run(self, project: Project) -> Iterator[Finding]:
        registry_module, registry, anchors = self._find_registry(project)
        if registry_module is None:
            return
        called: set[str] = set()
        for module in project.modules:
            if module is registry_module:
                # The seam's own plumbing (FaultPlan.maybe_fail and the
                # module-level forwarder) passes ids dynamically.
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _dotted(node.func) or ""
                if name.rpartition(".")[2] != "maybe_fail":
                    continue
                fault_id = (
                    _const_str(node.args[0]) if node.args else None
                )
                if fault_id is None:
                    yield self.finding(
                        module,
                        node,
                        "maybe_fail needs a string-literal fault id as its "
                        "first argument so the fault-point checker can "
                        "cross-reference the FAULT_IDS registry",
                    )
                    continue
                if fault_id not in registry:
                    yield self.finding(
                        module,
                        node,
                        f"fault id {fault_id!r} is not registered in "
                        "FAULT_IDS; register it (with its context keys) "
                        "next to the other fault points",
                    )
                    continue
                called.add(fault_id)
                allowed = set(registry[fault_id])
                for kw in node.keywords:
                    if kw.arg is not None and kw.arg not in allowed:
                        yield self.finding(
                            module,
                            node,
                            f"fault point {fault_id!r} passes context key "
                            f"{kw.arg!r} not registered in FAULT_IDS "
                            f"(registered: {sorted(allowed)}); plans "
                            "constraining it could never match",
                        )
        for fault_id in registry:
            if fault_id not in called:
                yield self.finding(
                    registry_module,
                    anchors[fault_id],
                    f"registered fault id {fault_id!r} has no maybe_fail "
                    "call site; instrument the fault point or drop the "
                    "registration",
                )

    @staticmethod
    def _find_registry(
        project: Project,
    ) -> tuple[Module | None, dict[str, tuple[str, ...]], dict[str, ast.AST]]:
        """Locate the ``FAULT_IDS`` dict literal and parse its schema."""
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                if not any(
                    isinstance(t, ast.Name) and t.id == "FAULT_IDS"
                    for t in targets
                ):
                    continue
                if not isinstance(value, ast.Dict):
                    continue
                registry: dict[str, tuple[str, ...]] = {}
                anchors: dict[str, ast.AST] = {}
                for key, val in zip(value.keys, value.values):
                    fault_id = None if key is None else _const_str(key)
                    if fault_id is None:
                        continue
                    keys = tuple(
                        k
                        for k in (
                            _const_str(e) for e in getattr(val, "elts", ())
                        )
                        if k is not None
                    )
                    registry[fault_id] = keys
                    anchors[fault_id] = key
                return module, registry, anchors
        return None, {}, {}


def default_checkers() -> list[Checker]:
    """Fresh instances of every built-in checker, in report order."""
    return [cls() for cls in ALL_CHECKERS]


#: The registered checker classes (the ``repro lint --list`` order).
ALL_CHECKERS: tuple[type[Checker], ...] = (
    DeterminismChecker,
    EngineProtocolChecker,
    FaultPointChecker,
    MpOpParityChecker,
    PickleBudgetChecker,
    ResourceLifecycleChecker,
    WireFormatChecker,
)
