#!/usr/bin/env python3
"""The serving layer end to end: concurrent queries, a delta, counters.

Starts the asyncio query server in-process on a tiny Yelp-like network,
fires a burst of concurrent requests from several pipelined connections —
marginal gains sharing a committed prefix, win/value probes, a top-k —
applies one graph delta mid-stream, and prints what the server did with
the burst: how many engine rounds the coalescing batcher actually ran,
how much evolution work the candidate-union sharing saved, and the
graph versions stamped on responses before and after the delta.

The equivalent over real processes is:

    python -m repro serve --dataset yelp --users 200 --engine dm-batched &
    # wait for "serving on 127.0.0.1:PORT"
    python -m repro serve-load --port PORT --requests 64

Run:  PYTHONPATH=src python examples/serving_client.py
"""

import asyncio

from repro.datasets.yelp import yelp_like
from repro.serve import EngineHub, QueryServer, ServeClient
from repro.voting.scores import CumulativeScore


async def main() -> None:
    dataset = yelp_like(n=200, rng=11, horizon=8)
    problem = dataset.problem(CumulativeScore())
    hub = EngineHub(problem, ["dm-batched", "dm-mp:2:shm"], rng=11)
    server = QueryServer(hub)
    host, port = await server.start()
    print(f"serving {dataset.name} (n={problem.n}) on {host}:{port}\n")

    clients = [await ServeClient.connect(host, port) for _ in range(4)]
    try:
        # --- a concurrent burst sharing the committed prefix [3] -------
        burst = [
            clients[i % 4].request(
                "marginal_gain", seeds=[3], candidates=[10 + 2 * i, 11 + 2 * i]
            )
            for i in range(8)
        ] + [
            clients[i % 4].request("prefix_win_probability", seeds=[3, 50 + i])
            for i in range(4)
        ] + [clients[0].request("top_k_seeds", k=3)]
        responses = await asyncio.gather(*burst)
        for label, response in zip(("gain", "win", "topk"), responses[:1] + responses[8:9] + responses[12:]):
            print(f"{label}: {response['result']}")

        # --- one delta: responses on either side carry distinct versions
        before = await clients[0].request(
            "marginal_gain", seeds=[3], candidates=[10]
        )
        delta = await clients[1].request(
            "apply_delta", edges_added=[[0, 10, 0.4], [5, 10, 0.2]]
        )
        after = await clients[2].request(
            "marginal_gain", seeds=[3], candidates=[10]
        )
        print(
            f"\ndelta: graph_version {before['graph_version']} -> "
            f"{after['graph_version']} "
            f"(report: {delta['result']['edges_added']} edges added); "
            f"gain of node 10 moved "
            f"{before['result']['gains'][0]:.4f} -> "
            f"{after['result']['gains'][0]:.4f}"
        )

        # --- what the batcher actually did with all that ---------------
        stats = (await clients[0].request("stats"))["result"]
        serve = stats["serve"]
        print(
            f"\ncoalescing counters: {serve['requests_total']} requests in "
            f"{serve['engine_rounds']} engine rounds "
            f"({serve['rounds_coalesced']} rounds answered "
            f"{serve['requests_coalesced']} coalesced requests; "
            f"{serve['evolution_sets_saved']} evolved sets saved)"
        )
        pool = stats["engines"]["dm-mp:2:shm"]["pool"]
        print(
            f"warm dm-mp pool: {pool['workers']} workers over "
            f"{pool['transport']}, {pool['rounds']} rounds, "
            f"{len(pool['shm_segments'])} shm segments mapped"
        )
    finally:
        for client in clients:
            await client.close()
        await server.aclose()
    print("\nserver closed; worker pools stopped, shm segments unlinked")


if __name__ == "__main__":
    asyncio.run(main())
