"""Reverse-reachable (RR) sets for IC and LT [Borgs et al. 2014; Tang et al.].

An RR set for a uniformly random root ``v`` contains the nodes that would
have activated ``v`` in a random realization of the diffusion; a seed set's
expected spread equals ``n`` times the probability of intersecting a random
RR set.  These are the tree-structured sketches the paper contrasts with its
simpler walk sketches (§VI-A).
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.utils.rng import ensure_rng


def rr_set_ic(
    graph: InfluenceGraph, root: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """RR set under IC: randomized reverse BFS sampling each in-edge once."""
    rng = ensure_rng(rng)
    visited = {int(root)}
    frontier = [int(root)]
    while frontier:
        next_frontier: list[int] = []
        for v in frontier:
            sources, weights = graph.in_neighbors(v)
            hits = rng.random(sources.size) < weights
            for u in sources[hits]:
                u = int(u)
                if u not in visited:
                    visited.add(u)
                    next_frontier.append(u)
        frontier = next_frontier
    return np.fromiter(visited, dtype=np.int64, count=len(visited))


def rr_set_lt(
    graph: InfluenceGraph, root: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """RR set under LT: a reverse chain picking one in-neighbor per step.

    With incoming weights summing to 1, each step picks exactly one
    in-neighbor with probability equal to its edge weight; the chain stops
    on a revisit or a self-loop (a normalization artifact standing in for
    "no live in-edge").
    """
    rng = ensure_rng(rng)
    visited = {int(root)}
    v = int(root)
    for _ in range(graph.n):
        sources, weights = graph.in_neighbors(v)
        if sources.size == 0:
            break
        u = int(rng.choice(sources, p=weights))
        if u == v or u in visited:
            break
        visited.add(u)
        v = u
    return np.fromiter(visited, dtype=np.int64, count=len(visited))
