"""Tests for convergence diagnostics (oblivious nodes, Fig. 18 statistic)."""

import numpy as np
import pytest

from repro.graph.build import graph_from_edges
from repro.opinion.convergence import (
    fraction_changing,
    oblivious_nodes,
    time_to_convergence,
)


def test_oblivious_nodes_cycle_without_stubborn():
    # 0 <-> 1 cycle, no stubbornness anywhere: both oblivious.
    g = graph_from_edges(2, [0, 1], [1, 0])
    assert oblivious_nodes(g, np.zeros(2)).tolist() == [0, 1]


def test_oblivious_nodes_reached_by_stubborn():
    # stubborn 0 -> 1 -> 2: nothing oblivious.
    g = graph_from_edges(3, [0, 1], [1, 2])
    d = np.array([0.5, 0.0, 0.0])
    assert oblivious_nodes(g, d).size == 0


def test_oblivious_nodes_unreachable_component():
    # Component {2, 3} is a cycle with no stubborn node; {0, 1} has one.
    g = graph_from_edges(4, [0, 2, 3], [1, 3, 2])
    d = np.array([0.5, 0.0, 0.0, 0.0])
    assert oblivious_nodes(g, d).tolist() == [2, 3]


def test_oblivious_nodes_shape_check():
    g = graph_from_edges(2, [0], [1])
    with pytest.raises(ValueError):
        oblivious_nodes(g, np.zeros(3))


def test_fraction_changing_decreases_toward_convergence():
    g = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    b0 = np.array([0.4, 0.8, 0.2, 0.9])
    d = np.full(4, 0.5)
    fractions = fraction_changing(b0, d, g, horizon=25, tolerance_pct=1.0)
    assert fractions.shape == (25,)
    assert fractions[0] >= fractions[-1]
    assert fractions[-1] == 0.0  # converged well before t=25


def test_fraction_changing_tolerance_monotone():
    g = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    b0 = np.array([0.4, 0.8, 0.2, 0.9])
    d = np.full(4, 0.5)
    strict = fraction_changing(b0, d, g, 10, tolerance_pct=0.0)
    loose = fraction_changing(b0, d, g, 10, tolerance_pct=10.0)
    assert np.all(strict >= loose)


def test_fraction_changing_rejects_negative_tolerance():
    g = graph_from_edges(2, [0], [1])
    with pytest.raises(ValueError):
        fraction_changing(np.zeros(2), np.zeros(2), g, 5, -1.0)


def test_time_to_convergence():
    g = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    b0 = np.array([0.4, 0.8, 0.2, 0.9])
    d = np.full(4, 0.5)
    t = time_to_convergence(b0, d, g, tol=1e-8)
    assert t is not None and 1 <= t <= 100


def test_time_to_convergence_none_for_oscillation():
    g = graph_from_edges(2, [0, 1], [1, 0])
    b0 = np.array([0.0, 1.0])
    assert time_to_convergence(b0, np.zeros(2), g, max_t=30) is None
