"""Tests for the FJVoteProblem objective and caching."""

import numpy as np
import pytest

from repro.core.problem import FJVoteProblem
from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    PluralityScore,
)
from tests.conftest import random_instance


def test_objective_matches_score_on_full_matrix(random_state):
    for score in (CumulativeScore(), PluralityScore(), CopelandScore()):
        problem = FJVoteProblem(random_state, 1, 4, score)
        seeds = np.array([0, 5])
        direct = score.evaluate(problem.full_opinions(seeds), 1)
        assert problem.objective(seeds) == pytest.approx(direct)


def test_competitors_independent_of_seeds(random_state):
    problem = FJVoteProblem(random_state, 0, 3, PluralityScore())
    before = problem.competitor_opinions().copy()
    problem.objective(np.array([1, 2, 3]))
    np.testing.assert_array_equal(problem.competitor_opinions(), before)


def test_full_opinions_row_order(random_state):
    problem = FJVoteProblem(random_state, 1, 2, CumulativeScore())
    full = problem.full_opinions(())
    from repro.opinion.fj import fj_evolve

    for q in range(random_state.r):
        expected = fj_evolve(
            random_state.initial_opinions[q],
            random_state.stubbornness[q],
            random_state.graph(q),
            2,
        )
        np.testing.assert_allclose(full[q], expected)


def test_with_score_shares_caches(random_state):
    base = FJVoteProblem(random_state, 0, 5, CumulativeScore())
    base.others_by_user()
    clone = base.with_score(PluralityScore())
    assert clone._others_by_user is base._others_by_user
    assert isinstance(clone.score, PluralityScore)
    assert clone.horizon == base.horizon


def test_target_wins(random_state):
    problem = FJVoteProblem(random_state, 0, 3, CumulativeScore())
    all_seeds = np.arange(random_state.n)
    # Seeding everyone gives the maximum possible cumulative score n.
    assert problem.objective(all_seeds) == pytest.approx(random_state.n)
    assert problem.target_wins(all_seeds)


def test_invalid_target():
    state = random_instance(n=6, r=2, seed=1)
    with pytest.raises(ValueError):
        FJVoteProblem(state, 5, 3, CumulativeScore())


def test_horizon_zero_uses_initial_opinions(random_state):
    problem = FJVoteProblem(random_state, 0, 0, CumulativeScore())
    assert problem.objective(()) == pytest.approx(
        random_state.initial_opinions[0].sum()
    )


def test_seeded_objective_monotone_in_seed_count(random_state):
    problem = FJVoteProblem(random_state, 0, 4, CumulativeScore())
    values = [problem.objective(np.arange(k)) for k in range(5)]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


# ----------------------------------------------------------------------
# Pickle budget and shared-array views (the dm-mp data plane's inputs)
# ----------------------------------------------------------------------
def test_getstate_drops_seeded_trajectories_within_byte_budget(random_state):
    """Regression: ``__getstate__`` must keep dropping session/trajectory
    caches.  A problem that evaluated many seeded trajectories has to
    pickle to (essentially) the same bytes as one that evaluated none —
    the budget is the warmed baseline plus loose change, nowhere near the
    dense ``(horizon+1, n)`` arrays the seeded cache holds — and the
    unpickled copy must rebuild those trajectories lazily with identical
    values."""
    import pickle

    problem = FJVoteProblem(random_state, 0, 6, CumulativeScore())
    problem.others_by_user()  # warm the shareable caches (these do ship)
    problem.target_trajectory()
    budget = len(pickle.dumps(problem)) + 512
    seeded = [(1,), (2, 3), (4,), (1, 5), (6,), (0, 7), (8,), (2, 9)]
    for seeds in seeded:
        problem.target_trajectory(seeds)
    assert problem._seeded_trajectories  # the cache is genuinely populated
    payload = pickle.dumps(problem)
    assert len(payload) <= budget, (
        f"pickled problem grew to {len(payload)} bytes (budget {budget}): "
        "a session cache is leaking into __getstate__"
    )
    clone = pickle.loads(payload)
    assert clone._seeded_trajectories == {}
    for seeds in seeded:
        np.testing.assert_array_equal(
            clone.target_trajectory(seeds), problem.target_trajectory(seeds)
        )


def test_share_arrays_round_trip_is_zero_copy(random_state):
    """share_arrays/from_shared_arrays must rebuild an equivalent problem
    whose heavy state *views* the supplied arrays (the shm contract)."""
    problem = FJVoteProblem(
        random_state,
        0,
        4,
        PluralityScore(),
        competitor_seeds={1: np.array([2, 3])},
    )
    problem.others_by_user()
    problem.target_trajectory()
    skeleton, arrays = problem.share_arrays()
    clone = FJVoteProblem.from_shared_arrays(skeleton, arrays)
    for seeds in ((), (1, 2), (4,)):
        assert clone.objective(np.asarray(seeds, dtype=np.int64)) == problem.objective(
            np.asarray(seeds, dtype=np.int64)
        )
    assert np.shares_memory(clone.state.initial_opinions, arrays["initial_opinions"])
    assert np.shares_memory(clone.state.graph(0).csc.data, arrays["g0.csc.data"])
    assert clone._base_trajectory is arrays["cache_base_trajectory"]
    assert clone.state.candidates == problem.state.candidates
    assert clone.competitor_seeds.keys() == problem.competitor_seeds.keys()


def test_share_arrays_dedupes_shared_graphs():
    """Candidates sharing one influence matrix must ship it once."""
    state = random_instance(n=8, r=3, seed=3)
    shared_graph_state = type(state)(
        graphs=(state.graphs[0],) * 3,
        initial_opinions=state.initial_opinions,
        stubbornness=state.stubbornness,
        candidates=state.candidates,
    )
    problem = FJVoteProblem(shared_graph_state, 0, 3, CumulativeScore())
    skeleton, arrays = problem.share_arrays()
    assert skeleton["graph_of_candidate"] == [0, 0, 0]
    assert not any(key.startswith("g1.") for key in arrays)
    clone = FJVoteProblem.from_shared_arrays(skeleton, arrays)
    assert clone.state.graph(0) is clone.state.graph(2)
    assert clone.objective(np.array([1])) == problem.objective(np.array([1]))
