"""Table VI: minimum seed set sizes for the target to win (plurality).

Expected shape (paper, Twitter Mask / Social Distancing): DM <= RW <= RS —
the more approximate the method, the more seeds it needs — and Mask needs
fewer seeds than Social Distancing.
"""


from benchmarks.conftest import run_once
from repro.eval.experiments import min_seeds_experiment
from repro.eval.reporting import format_table

KW = {"rw": {"lambda_cap": 32}, "rs": {"theta": 6000}}


def test_table6_min_seeds(benchmark, mask_ds, distancing_ds, save_result):
    def run():
        out = {}
        for ds in (mask_ds, distancing_ds):
            out[ds.name] = min_seeds_experiment(
                ds, methods=("dm", "rw", "rs"), k_max=300, rng=3, method_kwargs=KW
            )
        return out

    out = run_once(benchmark, run)
    rows = [
        [name, vals["dm"], vals["rw"], vals["rs"]] for name, vals in out.items()
    ]
    save_result(
        "table6_min_seeds", format_table(["Dataset", "DM", "RW", "RS"], rows)
    )
    for vals in out.values():
        assert all(v >= 0 for v in vals.values()), "every method should find a win"
        # Approximate methods cannot beat exact greedy by much; allow slack
        # for stochastic selection but check the broad ordering.
        assert vals["dm"] <= vals["rw"] + 5
        assert vals["dm"] <= vals["rs"] + 5
