"""Property-based tests (hypothesis) for walk truncation invariants.

After *any* sequence of seed additions, a :class:`TruncatedWalks` collection
must satisfy:

* ``end_pos[i]`` points at the first occurrence of the earliest-seeded node
  in walk ``i`` (or the original end if no seed occurs);
* ``values[i]`` equals the (seeded) initial opinion of the end node;
* truncation pointers never move backwards;
* the estimated score of a :class:`WalkGreedyOptimizer` equals the direct
  formula over its group estimates.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.random_walk import TruncatedWalks, WalkGreedyOptimizer
from repro.voting.scores import CumulativeScore, PluralityScore
from repro.core.problem import FJVoteProblem
from tests.conftest import random_instance


def _make_walks(seed: int, n: int = 8, lam: int = 4, t: int = 4) -> TruncatedWalks:
    state = random_instance(n=n, r=2, seed=seed)
    starts = np.repeat(np.arange(n, dtype=np.int64), lam)
    return TruncatedWalks.generate(
        state.graph(0),
        state.stubbornness[0],
        state.initial_opinions[0],
        t,
        starts,
        rng=seed,
    )


def _check_invariants(walks: TruncatedWalks) -> None:
    seeds = set(walks.seeds)
    for i in range(walks.num_walks):
        row = walks.walks[i]
        end = int(walks.end_pos[i])
        length = int(walks.lengths[i])
        assert 0 <= end <= length
        # Expected truncation point: first position holding any seed.
        expected = length
        for pos in range(length + 1):
            if int(row[pos]) in seeds:
                expected = pos
                break
        assert end == expected
        end_node = int(row[end])
        expected_value = 1.0 if end_node in seeds else walks._b0[end_node]
        assert walks.values[i] == expected_value


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2000),
    additions=st.lists(st.integers(0, 7), min_size=0, max_size=6),
)
def test_property_truncation_invariants_after_any_seed_sequence(seed, additions):
    walks = _make_walks(seed)
    prev_end = walks.end_pos.copy()
    for node in additions:
        walks.add_seed(int(node))
        assert np.all(walks.end_pos <= prev_end), "truncation moved backwards"
        prev_end = walks.end_pos.copy()
    _check_invariants(walks)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000))
def test_property_estimated_score_consistent(seed):
    state = random_instance(n=8, r=2, seed=seed)
    problem = FJVoteProblem(state, 0, 3, PluralityScore())
    starts = np.repeat(np.arange(8, dtype=np.int64), 3)
    walks = TruncatedWalks.generate(
        state.graph(0), state.stubbornness[0], state.initial_opinions[0],
        3, starts, rng=seed,
    )
    optimizer = WalkGreedyOptimizer(
        walks, PluralityScore(), problem.others_by_user(), grouping="start"
    )
    b_hat = optimizer.group_estimates()
    others = problem.others_by_user()[optimizer.group_user]
    direct = float(
        np.dot(
            optimizer.group_weight,
            PluralityScore().contributions(b_hat, others),
        )
    )
    assert optimizer.estimated_score() == direct


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000), theta=st.integers(5, 40))
def test_property_sketch_weights_scale_with_n_over_theta(seed, theta):
    state = random_instance(n=9, r=2, seed=seed)
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, 9, size=theta)
    walks = TruncatedWalks.generate(
        state.graph(0), state.stubbornness[0], state.initial_opinions[0],
        2, starts, rng=seed,
    )
    optimizer = WalkGreedyOptimizer(walks, CumulativeScore(), None, grouping="walk")
    # Estimated cumulative score = (n/θ) Σ values (Eq. 35).
    expected = 9.0 / theta * walks.values.sum()
    assert abs(optimizer.estimated_score() - expected) < 1e-9
