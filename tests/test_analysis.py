"""reprolint: each checker fires on its positive fixture, stays quiet on
the negative one, and the live tree is clean (the CI gate's contract)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    DeterminismChecker,
    EngineProtocolChecker,
    FaultPointChecker,
    MpOpParityChecker,
    PickleBudgetChecker,
    Project,
    ResourceLifecycleChecker,
    WireFormatChecker,
    apply_baseline,
    default_checkers,
    format_json,
    format_text,
    load_baseline,
    run_checkers,
    write_baseline,
)
from repro.cli import main


def check(checker, sources: dict[str, str]):
    """Run one checker over in-memory sources, suppressions applied."""
    findings = run_checkers(Project.from_sources(sources), [checker])
    return [f for f in findings if f.checker == checker.name]


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
DET_POSITIVE = """
import random
import time
import numpy as np
from repro.utils.rng import ensure_rng

a = np.random.default_rng()
b = np.random.rand(3)
c = random.random()
d = np.random.default_rng(time.time_ns())
e = ensure_rng()
f = ensure_rng(None)
"""

DET_NEGATIVE = """
import numpy as np
from repro.utils.rng import ensure_rng


def sample(seed, rng=None):
    gen = np.random.default_rng(seed)
    seq = np.random.SeedSequence(7)
    child = np.random.Generator(np.random.PCG64(1))
    threaded = ensure_rng(rng)
    return gen, seq, child, threaded
"""


def test_determinism_positive_fixture_fires():
    findings = check(DeterminismChecker(), {"mod.py": DET_POSITIVE})
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 6
    assert "unseeded default_rng" in messages
    assert "legacy global-state RNG call np.random.rand" in messages
    assert "stdlib random usage random.random" in messages
    assert "seeded from time.time_ns" in messages
    assert messages.count("ensure_rng() without an explicit seed") == 2


def test_determinism_negative_fixture_quiet():
    assert check(DeterminismChecker(), {"mod.py": DET_NEGATIVE}) == []


def test_determinism_suppression_needs_justification():
    src = (
        "import numpy as np\n"
        "a = np.random.default_rng()  "
        "# reprolint: disable=determinism -- fixture entropy\n"
        "b = np.random.default_rng()  # reprolint: disable=determinism\n"
    )
    findings = run_checkers(
        Project.from_sources({"mod.py": src}), [DeterminismChecker()]
    )
    # both suppressions silence the checker; the bare one is itself flagged
    assert [f.checker for f in findings] == ["suppression"]
    assert findings[0].line == 3


# ----------------------------------------------------------------------
# engine-protocol
# ----------------------------------------------------------------------
PROTO_POSITIVE = """
from abc import ABC, abstractmethod


class SelectionSession:
    def commit(self, seed, *, gain=None):
        return 0.0


class ObjectiveEngine(ABC):
    @abstractmethod
    def evaluate(self, seed_sets):
        ...

    def apply_delta(self, report, *, sessions="auto"):
        ...


def _make_good(problem, rng):
    return GoodEngine(problem)


def _make_bad(problem, rng):
    return IncompleteEngine(problem)


_ENGINE_FACTORIES = {"good": _make_good, "bad": _make_bad}


class GoodEngine(ObjectiveEngine):
    def evaluate(self, seed_sets):
        return []


class IncompleteEngine(ObjectiveEngine):
    def apply_delta(self, report, *, sessions="auto"):
        ...


class RenamingEngine(ObjectiveEngine):
    def evaluate(self, seeds):
        return []


class DroppingSession(SelectionSession):
    def commit(self, seed, *, gain):
        return 0.0
"""

PROTO_NEGATIVE = """
from abc import ABC, abstractmethod


class ObjectiveEngine(ABC):
    @abstractmethod
    def evaluate(self, seed_sets):
        ...

    def open_session(self, base=()):
        ...


def _make_good(problem, rng):
    return GoodEngine(problem)


_ENGINE_FACTORIES = {"good": _make_good}


class GoodEngine(ObjectiveEngine):
    def evaluate(self, seed_sets):
        return []

    def open_session(self, base=(), extra=None, **kwargs):
        ...
"""


def test_engine_protocol_positive_fixture_fires():
    findings = check(EngineProtocolChecker(), {"engine.py": PROTO_POSITIVE})
    messages = "\n".join(f.message for f in findings)
    assert "IncompleteEngine, which never implements abstract 'evaluate'" in messages
    assert "renames positional parameter 'seed_sets' to 'seeds'" in messages
    assert "drops the default of keyword 'gain'" in messages
    assert len(findings) == 3


def test_engine_protocol_negative_fixture_quiet():
    assert check(EngineProtocolChecker(), {"engine.py": PROTO_NEGATIVE}) == []


def test_engine_protocol_crosses_modules():
    base = (
        "from abc import ABC, abstractmethod\n"
        "class ObjectiveEngine(ABC):\n"
        "    @abstractmethod\n"
        "    def evaluate(self, seed_sets): ...\n"
    )
    sub = (
        "from base import ObjectiveEngine\n"
        "class RemoteEngine(ObjectiveEngine):\n"
        "    def evaluate(self, sets): ...\n"
    )
    findings = check(
        EngineProtocolChecker(), {"base.py": base, "sub.py": sub}
    )
    assert len(findings) == 1
    assert findings[0].path == "sub.py"
    assert "renames positional parameter" in findings[0].message


# ----------------------------------------------------------------------
# mp-op-parity
# ----------------------------------------------------------------------
MP_POSITIVE = """
import pickle


def _worker_main(conn):
    while True:
        message = conn.recv()
        op = message[0]
        if op == "stop":
            break
        elif op == "eval":
            conn.send(("ok", 1))
        elif op == "orphan":
            conn.send(("ok", 2))


class Pool:
    def _run(self, messages):
        return messages

    def go(self):
        self._run([("eval", 1)] * 2)
        self._run([("mystery", 2)])
        return pickle.dumps(("stop",))
"""

MP_NEGATIVE = MP_POSITIVE.replace('elif op == "orphan":', 'elif op == "eval2":').replace(
    '[("mystery", 2)]', '[("eval2", 2)]'
)


def test_mp_op_parity_positive_fixture_fires():
    findings = check(MpOpParityChecker(), {"pool.py": MP_POSITIVE})
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert "op 'mystery' is sent" in messages[0]
    assert "handles op 'orphan' but nothing" in messages[1]


def test_mp_op_parity_negative_fixture_quiet():
    assert check(MpOpParityChecker(), {"pool.py": MP_NEGATIVE}) == []


def test_mp_op_parity_ignores_modules_without_worker_loop():
    src = "def go(run):\n    run([('mystery', 1)])\n"
    assert check(MpOpParityChecker(), {"mod.py": src}) == []


# ----------------------------------------------------------------------
# resource-lifecycle
# ----------------------------------------------------------------------
LIFE_POSITIVE = """
from multiprocessing import shared_memory


def leak(nbytes):
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    return segment.name
"""

LIFE_NEGATIVE = """
import weakref
from multiprocessing import shared_memory

from repro.utils.workers import stop_worker_pool


def scoped(nbytes):
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        return segment.name
    finally:
        segment.close()
        segment.unlink()


def attach_only(name):
    return shared_memory.SharedMemory(name=name)


class Arena:
    def __init__(self):
        self._segments = {}
        self._finalizer = weakref.finalize(self, dict.clear, self._segments)

    def create(self, nbytes):
        return shared_memory.SharedMemory(create=True, size=nbytes)


class PoolOwner:
    def start(self, ctx):
        self._proc = ctx.Process(target=print)
        self._proc.start()

    def close(self):
        stop_worker_pool([self._proc], lambda conn: None)
"""


def test_lifecycle_positive_fixture_fires():
    findings = check(ResourceLifecycleChecker(), {"mod.py": LIFE_POSITIVE})
    assert len(findings) == 1
    assert "SharedMemory segment allocated without a paired teardown" in (
        findings[0].message
    )


def test_lifecycle_negative_fixture_quiet():
    assert check(ResourceLifecycleChecker(), {"mod.py": LIFE_NEGATIVE}) == []


def test_lifecycle_unguarded_process_fires():
    src = (
        "import multiprocessing as mp\n"
        "def spawn():\n"
        "    proc = mp.Process(target=print)\n"
        "    proc.start()\n"
    )
    findings = check(ResourceLifecycleChecker(), {"mod.py": src})
    assert len(findings) == 1
    assert "worker Process" in findings[0].message


# ----------------------------------------------------------------------
# pickle-budget
# ----------------------------------------------------------------------
PICKLE_POSITIVE = """
class Ship:
    def __init__(self):
        self._cached_rows = None
        self._seeded_trajectories = {}
        self._plain = 1

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_seeded_trajectories"] = {}
        return state
"""

PICKLE_NEGATIVE = """
class Ship:
    _SHAREABLE_CACHES = ("_cached_rows",)

    def __init__(self):
        self._cached_rows = None
        self._seeded_trajectories = {}
        self._plain = 1

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_seeded_trajectories"] = {}
        return state


class NoGetstate:
    def __init__(self):
        self._cached_free = None
"""


def test_pickle_budget_positive_fixture_fires():
    findings = check(PickleBudgetChecker(), {"mod.py": PICKLE_POSITIVE})
    assert len(findings) == 1
    assert "Ship._cached_rows looks like a cache" in findings[0].message


def test_pickle_budget_negative_fixture_quiet():
    assert check(PickleBudgetChecker(), {"mod.py": PICKLE_NEGATIVE}) == []


# ----------------------------------------------------------------------
# wire-format
# ----------------------------------------------------------------------
WIRE_POSITIVE = """
import json


def encode(payload):
    return json.dumps(payload, sort_keys=True) + "\\n"
"""

WIRE_NEGATIVE = """
import json


def encode(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\\n"
"""


def test_wire_format_positive_fixture_fires():
    findings = check(
        WireFormatChecker(), {"src/repro/serve/protocol.py": WIRE_POSITIVE}
    )
    assert len(findings) == 1
    assert "separators" in findings[0].message
    both = check(
        WireFormatChecker(),
        {"src/repro/serve/p.py": "import json\nx = json.dumps({})\n"},
    )
    assert len(both) == 2


def test_wire_format_negative_fixture_quiet():
    assert check(
        WireFormatChecker(), {"src/repro/serve/protocol.py": WIRE_NEGATIVE}
    ) == []


def test_wire_format_scoped_to_serve_paths():
    assert check(
        WireFormatChecker(), {"src/repro/core/walk_store.py": WIRE_POSITIVE}
    ) == []


# ----------------------------------------------------------------------
# fault-point
# ----------------------------------------------------------------------
FAULT_REGISTRY = """
FAULT_IDS = {
    "mp-kill-worker": ("worker", "round"),
    "store-corrupt-block": ("candidate", "kind", "block"),
    "never-instrumented": ("round",),
}
"""

FAULT_POSITIVE = """
from repro.core import faults


def run(self):
    faults.maybe_fail("mp-kill-worker", worker=1, round=2)
    faults.maybe_fail("made-up-fault", worker=1)
    faults.maybe_fail("store-corrupt-block", candidate=0, shard=3)
    faults.maybe_fail(self.fault_id)
"""

FAULT_NEGATIVE = """
from repro.core import faults


def run(self):
    faults.maybe_fail("mp-kill-worker", worker=1, round=2)
    faults.maybe_fail("store-corrupt-block", candidate=0, kind="uniform")
    faults.maybe_fail("never-instrumented", round=1)
"""


def test_fault_point_positive_fixture_fires():
    findings = check(
        FaultPointChecker(),
        {
            "src/repro/core/faults.py": FAULT_REGISTRY,
            "src/repro/core/engine_mp.py": FAULT_POSITIVE,
        },
    )
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 4
    assert "'made-up-fault' is not registered" in messages
    assert "'shard' not registered" in messages
    assert "string-literal fault id" in messages
    assert "'never-instrumented' has no maybe_fail call site" in messages


def test_fault_point_negative_fixture_quiet():
    assert (
        check(
            FaultPointChecker(),
            {
                "src/repro/core/faults.py": FAULT_REGISTRY,
                "src/repro/core/engine_mp.py": FAULT_NEGATIVE,
            },
        )
        == []
    )


def test_fault_point_quiet_without_registry():
    # A project without the seam (fixture trees) has nothing to check.
    assert check(FaultPointChecker(), {"mod.py": FAULT_POSITIVE}) == []


# ----------------------------------------------------------------------
# framework: ordering, reporters, baseline
# ----------------------------------------------------------------------
def test_findings_sorted_and_json_deterministic():
    sources = {
        "b.py": "import numpy as np\nx = np.random.default_rng()\n",
        "a.py": "import numpy as np\nx = np.random.rand()\n",
    }
    checkers = [DeterminismChecker()]
    first = run_checkers(Project.from_sources(sources), checkers)
    second = run_checkers(Project.from_sources(sources), checkers)
    assert [f.path for f in first] == ["a.py", "b.py"]
    assert format_json(first, checkers) == format_json(second, checkers)
    payload = json.loads(format_json(first, checkers))
    assert [f["path"] for f in payload["findings"]] == ["a.py", "b.py"]
    assert payload["counts"] == {"determinism": 2}
    assert "2 finding(s)" in format_text(first)


def test_baseline_roundtrip(tmp_path):
    sources = {"mod.py": "import numpy as np\nx = np.random.default_rng()\n"}
    findings = run_checkers(
        Project.from_sources(sources), [DeterminismChecker()]
    )
    baseline = tmp_path / "baseline.json"
    assert write_baseline(findings, baseline) == 1
    fresh, baselined = apply_baseline(findings, load_baseline(baseline))
    assert fresh == [] and baselined == 1
    # a second, new occurrence of the same key is NOT silenced (multiset)
    doubled = findings + [
        type(findings[0])(
            findings[0].path, 99, 0, findings[0].checker, findings[0].message
        )
    ]
    fresh, baselined = apply_baseline(doubled, load_baseline(baseline))
    assert len(fresh) == 1 and baselined == 1


def test_baseline_rejects_foreign_files(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("[1, 2, 3]\n")
    with pytest.raises(ValueError, match="not a reprolint baseline"):
        load_baseline(bogus)


def test_parse_errors_are_reported(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    project = Project.from_paths([tmp_path])
    findings = run_checkers(project, default_checkers())
    assert len(findings) == 1
    assert findings[0].checker == "parse"


# ----------------------------------------------------------------------
# CLI and the live tree
# ----------------------------------------------------------------------
def fixture_dir(tmp_path: Path) -> Path:
    root = tmp_path / "fixture"
    root.mkdir()
    (root / "dirty.py").write_text(
        "import numpy as np\nx = np.random.default_rng()\n"
    )
    return root


def test_cli_lint_exit_codes_and_baseline(tmp_path, capsys):
    root = fixture_dir(tmp_path)
    assert main(["lint", str(root)]) == 1
    out = capsys.readouterr().out
    assert "unseeded default_rng" in out and "determinism=1" in out

    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(root), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main(["lint", str(root), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined finding(s)" in out
    assert main(["lint", str(root), "--baseline", str(tmp_path / "no.json")]) == 2


def test_cli_lint_json_format(tmp_path, capsys):
    root = fixture_dir(tmp_path)
    assert main(["lint", str(root), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"determinism": 1}
    assert len(payload["checkers"]) == 7


def test_cli_lint_list(capsys):
    assert main(["lint", "--list"]) == 0
    out = capsys.readouterr().out
    assert "determinism" in out and "wire-format" in out


def test_live_tree_is_clean():
    """The repo's own source passes every checker — the CI gate's invariant."""
    package_root = Path(repro.__file__).parent
    project = Project.from_paths([package_root])
    assert len(project.modules) > 50
    findings = run_checkers(project, default_checkers())
    assert findings == [], "\n".join(f.render() for f in findings)


def test_live_tree_checkers_have_coverage():
    """All seven checkers inspect real seams of the live tree (not vacuous)."""
    package_root = Path(repro.__file__).parent
    project = Project.from_paths([package_root])
    # the registry and worker loops the structural checkers key off exist
    sources = {m.path: m.source for m in project.modules}
    engine = next(s for p, s in sources.items() if p.endswith("core/engine.py"))
    assert "_ENGINE_FACTORIES" in engine
    engine_mp = next(
        s for p, s in sources.items() if p.endswith("core/engine_mp.py")
    )
    assert "_worker_main" in engine_mp
