"""Tests for the multi-host TCP transport (repro.core.engine_net).

The central contracts: ``dm-mp:tcp=...`` selections are byte-identical to
the in-process batched engine at every host count, a host lost mid-round
degrades gracefully (its chunks re-shard to survivors, counted in
``EngineStats``, results still byte-identical), and the structured
:class:`EngineSpec` API round-trips the whole spec grammar.
"""

from __future__ import annotations

import re
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import (
    ENGINE_NAMES,
    EngineSpec,
    make_engine,
    parse_engine_spec,
    spec_is_exact_dm,
)
from repro.core.engine_net import FramedSocket, HostPool, run_net_worker
from repro.eval.harness import select_seeds
from tests.test_core_engine import make_problem


# ----------------------------------------------------------------------
# Thread-hosted net workers (2 sockets pretending to be 2 hosts)
# ----------------------------------------------------------------------
def start_worker(workers=1, connections=1, store_dir=None, store_seed=0):
    """One net worker on a free loopback port; returns ``host:port``."""
    ready = threading.Event()
    address: list[str] = []

    def on_ready(host, port):
        address.append(f"{host}:{port}")
        ready.set()

    thread = threading.Thread(
        target=run_net_worker,
        kwargs=dict(
            port=0,
            workers=workers,
            connections=connections,
            store_dir=None if store_dir is None else str(store_dir),
            store_seed=store_seed,
            on_ready=on_ready,
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10), "net worker never became ready"
    return address[0], thread


@pytest.fixture
def two_hosts():
    """Two single-connection loopback workers; yields their addresses."""
    a, ta = start_worker()
    b, tb = start_worker()
    yield [a, b]
    ta.join(10)
    tb.join(10)
    assert not ta.is_alive() and not tb.is_alive()


def _tcp_engine(problem, hosts, **kwargs):
    kwargs.setdefault("min_fanout", 1)  # fan every round out, even tiny ones
    return make_engine(f"dm-mp:tcp={','.join(hosts)}", problem, **kwargs)


# ----------------------------------------------------------------------
# Byte-identical evaluation and sessions at hosts 1 and 2
# ----------------------------------------------------------------------
@pytest.mark.parametrize("host_count", [1, 2])
def test_tcp_evaluate_matches_batched_at_one_and_two_hosts(host_count):
    problem = make_problem(3, "cumulative", 12)
    sets = [np.array([i, (i + 3) % 13]) for i in range(13)]
    with make_engine("dm-batched", problem) as ref:
        expected = ref.evaluate(sets)
    started = [start_worker() for _ in range(host_count)]
    hosts = [addr for addr, _ in started]
    with _tcp_engine(problem, hosts) as engine:
        got = engine.evaluate(sets)
        assert np.array_equal(expected, got)
        assert engine.stats.ipc_bytes > 0
        assert engine.stats.hosts_lost == 0
        stats = engine.pool_stats()
        assert stats["transport"] == "tcp"
        assert stats["hosts_connected"] == hosts
    for _, thread in started:
        thread.join(10)
        assert not thread.is_alive()


def test_tcp_two_host_parity_and_rows(two_hosts):
    problem = make_problem(5, "plurality", 10)
    sets = [np.array([i]) for i in range(13)]
    with make_engine("dm-batched", problem) as ref:
        expected = ref.evaluate(sets)
        rows = ref.target_opinion_rows(sets)
    with _tcp_engine(problem, two_hosts) as engine:
        assert np.array_equal(expected, engine.evaluate(sets))
        assert np.array_equal(rows, engine.target_opinion_rows(sets))
        assert engine.workers == 2
        # ipc accounting counts payload bytes only, both directions
        assert engine.stats.ipc_bytes > 0


def test_tcp_session_commits_match_batched(two_hosts):
    problem = make_problem(7, "cumulative", 8)
    cands = np.arange(13)
    with make_engine("dm-batched", problem) as ref, _tcp_engine(
        problem, two_hosts
    ) as engine:
        s_ref = ref.open_session()
        s_net = engine.open_session()
        for _ in range(3):
            g_ref = s_ref.marginal_gains(cands)
            g_net = s_net.marginal_gains(cands)
            assert np.array_equal(g_ref, g_net)
            assert np.array_equal(
                s_ref.coalesced_gains(cands[:6]), s_net.coalesced_gains(cands[:6])
            )
            seed = int(np.argmax(g_ref))
            assert s_ref.commit(seed) == s_net.commit(seed)


def test_tcp_selection_matches_dm(two_hosts):
    problem = make_problem(11, "cumulative", 10)
    expected = select_seeds("dm", problem, 4, rng=np.random.default_rng(0))
    got = select_seeds(
        "dm",
        problem,
        4,
        rng=np.random.default_rng(0),
        engine=EngineSpec(name="dm-mp", transport="tcp", hosts=tuple(two_hosts)),
    )
    assert list(map(int, expected)) == list(map(int, got))


def test_tcp_nested_host_pool_matches():
    """A net worker hosting its own dm-mp pool re-fans chunks identically."""
    addr, thread = start_worker(workers=2)
    problem = make_problem(2, "cumulative", 9)
    sets = [np.array([i, (i + 1) % 13]) for i in range(13)]
    with make_engine("dm-batched", problem) as ref:
        expected = ref.evaluate(sets)
    with _tcp_engine(problem, [addr]) as engine:
        assert np.array_equal(expected, engine.evaluate(sets))
    thread.join(15)
    assert not thread.is_alive()


# ----------------------------------------------------------------------
# Graceful degradation: lost hosts re-shard to survivors
# ----------------------------------------------------------------------
def test_lost_host_reshards_chunks_to_survivors(two_hosts):
    problem = make_problem(3, "cumulative", 12)
    sets = [np.array([i, (i + 3) % 13]) for i in range(13)]
    with make_engine("dm-batched", problem) as ref:
        expected = ref.evaluate(sets)
    engine = _tcp_engine(problem, two_hosts)
    try:
        assert np.array_equal(expected, engine.evaluate(sets))
        # Kill host 0's socket out from under the pool: the next round's
        # send fails, the chunk re-dispatches to the survivor, and the
        # concatenated result is still byte-identical.
        engine._handles[0].conn.close()
        assert np.array_equal(expected, engine.evaluate(sets))
        assert engine.stats.hosts_lost == 1
        assert engine.stats.chunks_resharded >= 1
        assert engine.workers == 1
        stats = engine.pool_stats()
        assert stats["hosts_lost"] == 1
        assert stats["hosts_connected"] == [two_hosts[1]]
        # Later rounds shard across the survivor only, still exact.
        assert np.array_equal(expected, engine.evaluate(sets))
    finally:
        engine.close()


def test_lost_host_during_session_still_matches(two_hosts):
    problem = make_problem(9, "plurality", 8)
    cands = np.arange(13)
    with make_engine("dm-batched", problem) as ref, _tcp_engine(
        problem, two_hosts
    ) as engine:
        s_ref = ref.open_session()
        s_net = engine.open_session()
        g_ref = s_ref.marginal_gains(cands)
        assert np.array_equal(g_ref, s_net.marginal_gains(cands))
        seed = int(np.argmax(g_ref))
        s_ref.commit(seed)
        s_net.commit(seed)
        engine._handles[1].conn.close()
        # Mid-session loss: the survivor rebuilds the committed
        # trajectory from the (base, seeds) pair the fan-out carries.
        assert np.array_equal(
            s_ref.marginal_gains(cands), s_net.marginal_gains(cands)
        )
        assert engine.stats.hosts_lost == 1


def test_losing_every_host_raises():
    addr, thread = start_worker()
    problem = make_problem(1, "cumulative", 6)
    sets = [np.array([i]) for i in range(13)]
    engine = _tcp_engine(problem, [addr])
    engine.evaluate(sets)
    engine._handles[0].conn.close()
    with pytest.raises(RuntimeError, match="host"):
        engine.evaluate(sets)
    engine.close()
    thread.join(10)


def test_connect_timeout_names_the_host():
    # Bind (but never listen on) a port to guarantee refused connections.
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    port = blocker.getsockname()[1]
    blocker.close()
    problem = make_problem(0, "cumulative", 4)
    engine = HostPool(
        problem, hosts=[f"127.0.0.1:{port}"], connect_timeout=0.3, min_fanout=1
    )
    with pytest.raises(RuntimeError, match=f"127.0.0.1:{port}"):
        engine.evaluate([np.array([i]) for i in range(13)])


def test_store_identity_mismatch_rejects_handshake(tmp_path):
    from repro.core.walk_store import store_for_problem

    original = make_problem(4, "cumulative", 6)
    store = store_for_problem(original, seed=0, store_dir=tmp_path)
    store.close()
    addr, thread = start_worker(store_dir=tmp_path, store_seed=0)
    other = make_problem(4, "cumulative", 7)  # different horizon identity
    engine = _tcp_engine(other, [addr])
    with pytest.raises(RuntimeError, match="identity"):
        engine.evaluate([np.array([i]) for i in range(13)])
    thread.join(10)


def test_host_pool_validates_hosts():
    problem = make_problem(0, "cumulative", 4)
    with pytest.raises(ValueError, match="at least one host"):
        HostPool(problem, hosts=[])
    with pytest.raises(ValueError, match="host"):
        HostPool(problem, hosts=["no-port-here"])
    with pytest.raises(ValueError, match="at least one worker"):
        run_net_worker(workers=0)


# ----------------------------------------------------------------------
# FramedSocket framing
# ----------------------------------------------------------------------
def test_framed_socket_round_trips_messages():
    a, b = socket.socketpair()
    left, right = FramedSocket(a), FramedSocket(b)
    payloads = [b"x", b"", b"y" * 100_000]
    for payload in payloads:
        left.send_bytes(payload)
    for payload in payloads:
        assert right.recv_bytes() == payload
    assert not right.poll(0.0)
    left.send_bytes(b"z")
    assert right.poll(1.0)
    left.close()
    with pytest.raises(EOFError):
        right.recv_bytes()  # drains "z" header+payload... then EOF
        right.recv_bytes()
    right.close()


# ----------------------------------------------------------------------
# EngineSpec: structured parse / canonical / build
# ----------------------------------------------------------------------
def test_engine_spec_parses_the_full_grammar():
    spec = EngineSpec.parse("dm-mp:tcp=alpha:7001,beta:7002")
    assert spec.name == "dm-mp"
    assert spec.transport == "tcp"
    assert spec.hosts == ("alpha:7001", "beta:7002")
    assert spec.workers is None
    assert spec.kwargs() == {
        "transport": "tcp",
        "hosts": ("alpha:7001", "beta:7002"),
    }
    assert EngineSpec.parse("dm-mp:3:shm").kwargs() == {
        "workers": 3,
        "transport": "shm",
    }
    # mmap paths keep their colons verbatim, to the end of the spec
    spec = EngineSpec.parse("rw-store:4:mmap=/tmp/a:b/c")
    assert spec.shards == 4 and spec.store_dir == "/tmp/a:b/c"


def test_engine_spec_canonical_drops_default_spellings():
    assert EngineSpec.parse("dm-mp:2:pipe").canonical() == "dm-mp:2"
    assert EngineSpec.parse("dm-mp:pipe").canonical() == "dm-mp"
    assert str(EngineSpec.parse("dm-mp:2:shm")) == "dm-mp:2:shm"
    assert (
        EngineSpec.parse("dm-mp:tcp=a:1,b:2").canonical() == "dm-mp:tcp=a:1,b:2"
    )


@pytest.mark.parametrize(
    "bad",
    [
        "dm-mp:tcp=",
        "dm-mp:2:tcp=a:1",
        "dm-mp:tcp=no-port",
        "dm-mp:tcp=:7001",
        "dm-mp:tcp=a:0",
        "dm-mp:tcp=a:99999",
        "dm-mp:pipe:2",
        "rw-store:tcp=a:1",
        "dm:pipe",
    ],
)
def test_engine_spec_rejects_malformed_tcp_forms(bad):
    with pytest.raises(ValueError) as excinfo:
        EngineSpec.parse(bad)
    # The single registry error names every engine, like the CLI tests pin.
    for name in ENGINE_NAMES:
        assert name in str(excinfo.value)
    with pytest.raises(ValueError):
        parse_engine_spec(bad)


def test_engine_spec_constructor_validates_fields():
    with pytest.raises(ValueError):
        EngineSpec(name="warp-drive")
    with pytest.raises(ValueError):
        EngineSpec(name="dm", workers=2)
    with pytest.raises(ValueError):
        EngineSpec(name="dm-mp", transport="tcp")  # tcp without hosts
    with pytest.raises(ValueError):
        EngineSpec(name="dm-mp", hosts=("a:1",))  # hosts without tcp
    with pytest.raises(ValueError):
        EngineSpec(name="dm-mp", transport="tcp", hosts=("a:1",), workers=2)
    with pytest.raises(ValueError):
        EngineSpec(name="rw-store", transport="shm")
    # pipe normalizes to the default spelling
    assert EngineSpec(name="dm-mp", transport="pipe").transport is None


def test_engine_spec_with_store_dir():
    spec = EngineSpec.parse("rw-store:2")
    assert spec.with_store_dir("/tmp/walks").store_dir == "/tmp/walks"
    assert spec.with_store_dir(None) is spec
    pinned = EngineSpec.parse("rw-store:2:mmap=/tmp/walks")
    assert pinned.with_store_dir("/tmp/walks") is pinned
    with pytest.raises(ValueError, match="conflicts"):
        pinned.with_store_dir("/tmp/other")
    # Non-store engines pass through untouched.
    dm = EngineSpec.parse("dm-mp:2")
    assert dm.with_store_dir("/tmp/walks") is dm


def test_engine_spec_parse_passthrough_and_exactness():
    spec = EngineSpec.parse("dm-mp:2")
    assert EngineSpec.parse(spec) is spec
    assert parse_engine_spec(spec) == ("dm-mp", {"workers": 2})
    assert spec_is_exact_dm(spec)
    assert spec_is_exact_dm("dm-mp:tcp=a:1")
    assert not spec_is_exact_dm(EngineSpec.parse("rw"))


def test_make_engine_accepts_engine_spec_instances():
    problem = make_problem(0, "cumulative", 4)
    spec = EngineSpec.parse("dm-batched")
    with make_engine(spec, problem) as engine:
        assert type(engine).__name__ == "BatchedDMEngine"


_HOST_CHARS = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters=".-"
    ),
    min_size=1,
    max_size=8,
)


@st.composite
def canonical_specs(draw):
    """Canonical spellings across the full grammar, including host lists
    and colon-bearing mmap paths."""
    name = draw(st.sampled_from(ENGINE_NAMES))
    parts = [name]
    if name == "dm-mp":
        form = draw(st.sampled_from(["plain", "workers", "shm", "tcp"]))
        if form in ("workers", "shm"):
            if draw(st.booleans()) or form == "workers":
                parts.append(str(draw(st.integers(1, 64))))
            if form == "shm":
                parts.append("shm")
        elif form == "tcp":
            hosts = draw(
                st.lists(
                    st.tuples(_HOST_CHARS, st.integers(1, 65535)),
                    min_size=1,
                    max_size=4,
                )
            )
            parts.append(
                "tcp=" + ",".join(f"{h}:{p}" for h, p in hosts)
            )
    elif name == "rw-store":
        if draw(st.booleans()):
            parts.append(str(draw(st.integers(1, 64))))
        if draw(st.booleans()):
            path = draw(
                st.text(
                    alphabet=st.characters(
                        whitelist_categories=("Ll", "Nd"),
                        whitelist_characters="/:._-",
                    ),
                    min_size=1,
                    max_size=20,
                )
            )
            parts.append(f"mmap={path}")
    return ":".join(parts)


@settings(max_examples=200, deadline=None)
@given(spec=canonical_specs())
def test_engine_spec_canonical_round_trips(spec):
    parsed = EngineSpec.parse(spec)
    assert parsed.canonical() == spec
    # canonical() is a fixed point, and parse is total on its own output
    assert EngineSpec.parse(parsed.canonical()).canonical() == spec
    # the legacy tuple front-end agrees with the structured form
    name, kwargs = parse_engine_spec(spec)
    assert name == parsed.name
    assert kwargs == parsed.kwargs()


# ----------------------------------------------------------------------
# EngineHub: canonical keying dedups equivalent spellings
# ----------------------------------------------------------------------
def test_engine_hub_dedups_equivalent_spec_spellings():
    from repro.serve.batcher import EngineHub

    problem = make_problem(6, "cumulative", 6)
    hub = EngineHub(problem, ["dm-mp:2", "dm-mp:2:pipe", "dm-batched"])
    try:
        # Regression: literal-string keying warmed two dm-mp:2 pools.
        assert hub.specs == ("dm-mp:2", "dm-batched")
        key, engine = hub.resolve("dm-mp:2:pipe")
        assert key == "dm-mp:2"
        assert engine is hub.resolve("dm-mp:2")[1]
        assert hub.resolve(EngineSpec.parse("dm-mp:2"))[1] is engine
        assert hub.default_spec == "dm-mp:2"
    finally:
        hub.close()


def test_engine_hub_warms_a_net_engine(two_hosts):
    from repro.serve.batcher import EngineHub

    problem = make_problem(8, "cumulative", 6)
    spec = f"dm-mp:tcp={','.join(two_hosts)}"
    hub = EngineHub(problem, [spec, "dm-batched"])
    try:
        hub.warm()  # pings the hosts, starting the pool
        key, engine = hub.resolve(spec)
        assert key == spec
        assert engine.pool_stats()["hosts_connected"] == list(two_hosts)
        described = hub.describe()["engines"][spec]["pool"]
        assert described["transport"] == "tcp"
    finally:
        hub.close()


# ----------------------------------------------------------------------
# 2 processes pretending to be 2 hosts: the CLI integration path
# ----------------------------------------------------------------------
def _spawn_cli_worker(extra=()):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "net-worker",
            "--port",
            "0",
            "--connections",
            "1",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    deadline = time.time() + 120
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.match(r"net-worker listening on (\S+?):(\d+)", line)
        if match:
            return proc, f"{match.group(1)}:{match.group(2)}"
    proc.kill()
    pytest.fail("net worker never printed its readiness line")


def _cli_select(engine_spec):
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "select",
            "--dataset",
            "yelp",
            "--users",
            "60",
            "--horizon",
            "4",
            "--method",
            "dm",
            "--score",
            "cumulative",
            "-k",
            "4",
            "--seed",
            "1",
            "--engine",
            engine_spec,
        ],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    seeds = [
        line for line in result.stdout.splitlines() if line.startswith("seeds:")
    ]
    assert seeds, result.stdout
    return seeds[0]


def test_cli_two_worker_processes_match_dm_selection():
    workers = [_spawn_cli_worker() for _ in range(2)]
    procs = [w[0] for w in workers]
    hosts = ",".join(w[1] for w in workers)
    try:
        expected = _cli_select("dm")
        got = _cli_select(f"dm-mp:tcp={hosts}")
        assert expected == got
        for proc in procs:
            assert proc.wait(timeout=60) == 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()


def test_cli_selection_survives_a_killed_worker_process():
    workers = [_spawn_cli_worker() for _ in range(2)]
    procs = [w[0] for w in workers]
    hosts = [w[1] for w in workers]
    try:
        problem = make_problem(13, "cumulative", 8)
        sets = [np.array([i, (i + 2) % 13]) for i in range(13)]
        with make_engine("dm-batched", problem) as ref:
            expected = ref.evaluate(sets)
        with _tcp_engine(problem, hosts) as engine:
            assert np.array_equal(expected, engine.evaluate(sets))
            procs[0].kill()
            procs[0].wait(timeout=30)
            # The dead process delivers EOF mid-round: its chunk
            # re-shards to the survivor, bitwise the same scores.
            assert np.array_equal(expected, engine.evaluate(sets))
            assert engine.stats.hosts_lost == 1
            assert engine.stats.chunks_resharded >= 1
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
