"""Shared benchmark fixtures: session-cached datasets and result recording.

Each benchmark regenerates one table/figure of the paper at laptop scale and
writes the paper-shaped rows/series to ``benchmarks/results/<name>.txt`` (and
stdout) so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.datasets.dblp import dblp_like
from repro.datasets.twitter import (
    twitter_mask,
    twitter_social_distancing,
    twitter_us_election,
)
from repro.datasets.yelp import yelp_like

RESULTS_DIR = Path(__file__).parent / "results"

#: Scaled-down defaults: the paper's graphs have 64K-3.2M nodes and k up to
#: 2000; we keep the same relative sweeps at n in the hundreds-to-thousands.
BENCH_SEED = 2023


@pytest.fixture(scope="session")
def yelp_ds():
    return yelp_like(n=600, r=6, rng=BENCH_SEED, horizon=10)


@pytest.fixture(scope="session")
def election_ds():
    return twitter_us_election(n=600, rng=BENCH_SEED, horizon=10)


@pytest.fixture(scope="session")
def mask_ds():
    return twitter_mask(n=600, rng=BENCH_SEED, horizon=10)


@pytest.fixture(scope="session")
def distancing_ds():
    return twitter_social_distancing(n=800, rng=BENCH_SEED, horizon=10)


@pytest.fixture(scope="session")
def sparse_distancing_ds():
    """Extra-sparse variant matching Table III's retweet-graph density
    (~1.3-1.9 edges/node), used by the sandwich-ratio experiment where
    small reachable sets keep UB tight."""
    from repro.datasets.twitter import _twitter_base
    import numpy as np

    return _twitter_base(
        "twitter-social-distancing-sparse",
        ("For Social Distancing", "Against Social Distancing"),
        np.array([0.42, 0.60]),
        800,
        10.0,
        2.5,
        20,
        BENCH_SEED,
        min_degree=1,
        exponent=2.6,
    )


@pytest.fixture(scope="session")
def dblp_ds():
    return dblp_like(n=1200, rng=BENCH_SEED, horizon=10)


#: Shared CI-smoke switch: tiny sizes, and counter JSON lands in the
#: ``.tiny`` files the perf-trajectory gate compares against
#: ``benchmarks/baselines/``.
BENCH_TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")


@pytest.fixture(scope="session")
def save_result():
    """Write a named result block to benchmarks/results/ and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}")

    return write


@pytest.fixture(scope="session")
def save_bench_json():
    """Write deterministic counter metrics to ``BENCH_<name>[.tiny].json``.

    Metrics must be timer-free work counters (walk steps, column-steps,
    speedup ratios derived from them) so the same commit always produces
    the same file; ``scripts/check_bench_regression.py`` fails CI when a
    metric regresses more than 10% against the committed baseline in
    ``benchmarks/baselines/``.  Each metric is
    ``{"value": number, "higher_is_better": bool}``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, metrics: dict) -> None:
        suffix = ".tiny" if BENCH_TINY else ""
        payload = {"name": name, "tiny": BENCH_TINY, "metrics": metrics}
        path = RESULTS_DIR / f"BENCH_{name}{suffix}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\n===== BENCH_{name}{suffix}.json =====\n{path.read_text()}")

    return write


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
