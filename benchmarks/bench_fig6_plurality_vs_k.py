"""Fig. 6: plurality score and seed-selection time vs k, all methods.

Expected shape (paper): the proposed methods (DM/RW/RS) dominate all
baselines, the gap is larger than for the cumulative score, scores grow
concavely in k, RW/RS run orders of magnitude faster than DM, and the best
baseline (typically DC) reaches only a fraction of RW's gain.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.experiments import effectiveness_experiment
from repro.eval.reporting import format_series
from repro.voting.scores import PluralityScore

KS = [5, 10, 20, 40]
METHODS = ["dm", "rw", "rs", "gedt", "ic", "lt", "pr", "rwr", "dc", "random"]
KW = {
    "rw": {"lambda_cap": 32},
    "rs": {"theta": 4000},
    "ic": {"theta_cap": 30000},
    "lt": {"theta_cap": 30000},
}


def _gain(result, method: str, baseline: float) -> float:
    return result.scores[method][-1] - baseline


@pytest.mark.parametrize("ds_name", ["yelp", "election"])
def test_fig6_plurality(benchmark, ds_name, yelp_ds, election_ds, save_result):
    ds = {"yelp": yelp_ds, "election": election_ds}[ds_name]
    result = run_once(
        benchmark,
        lambda: effectiveness_experiment(
            ds, PluralityScore(), KS, METHODS, rng=11, method_kwargs=KW
        ),
    )
    baseline = ds.problem(PluralityScore()).objective(())
    save_result(
        f"fig6_plurality_{ds_name}",
        f"no-seed score: {baseline:.0f}\n"
        + format_series("k", KS, result.scores)
        + "\n\nselect time (s):\n"
        + format_series("k", KS, result.times),
    )
    # Shape assertions: our methods beat every baseline at the largest k.
    ours = min(_gain(result, m, baseline) for m in ("dm", "rw", "rs"))
    for b in ("pr", "rwr", "random"):
        assert ours >= _gain(result, b, baseline) - 1e-9, f"{b} beat our methods"
    # DM is the slowest of ours; RW/RS are much faster.
    assert result.times["rs"][-1] < result.times["dm"][-1]
    assert result.times["rw"][-1] < result.times["dm"][-1]
    # Monotone in k for greedy methods.
    assert all(
        b >= a - 1e-9
        for a, b in zip(result.scores["dm"], result.scores["dm"][1:])
    )
