#!/usr/bin/env python3
"""Quickstart: voting-based opinion maximization on a small network.

Builds a 12-user, 2-candidate campaign by hand, runs the exact greedy
seed selector (Algorithm 1) for three voting scores, and shows how the
election outcome changes at the time horizon.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CampaignState,
    CopelandScore,
    CumulativeScore,
    FJVoteProblem,
    PluralityScore,
    graph_from_edges,
    greedy_dm,
    score_all_candidates,
    winner,
)


def main() -> None:
    rng = np.random.default_rng(7)
    n = 12
    # A small "office" network: two tight groups bridged by users 5 and 6.
    edges = [
        (0, 1), (1, 2), (2, 0), (3, 4), (4, 0), (1, 3),        # group A
        (7, 8), (8, 9), (9, 7), (10, 11), (11, 7), (8, 10),    # group B
        (5, 6), (6, 5), (2, 5), (5, 9), (8, 6), (6, 4),        # the bridge
    ]
    src, dst = zip(*edges)
    graph = graph_from_edges(n, list(src), list(dst))

    # Candidate A is popular in group A, candidate B in group B.
    b_a = np.concatenate([rng.uniform(0.6, 0.9, 5), [0.5, 0.5], rng.uniform(0.1, 0.4, 5)])
    b_b = 1.0 - b_a + rng.normal(0, 0.05, n)
    initial = np.clip(np.vstack([b_a, b_b]), 0, 1)
    stubbornness = rng.uniform(0.2, 0.8, size=(2, n))

    state = CampaignState(
        graphs=(graph, graph),
        initial_opinions=initial,
        stubbornness=stubbornness,
        candidates=("Alice", "Bob"),
    )

    horizon, k = 4, 2
    print(f"n={n} users, horizon t={horizon}, budget k={k}, target: Alice\n")
    for score in (CumulativeScore(), PluralityScore(), CopelandScore()):
        problem = FJVoteProblem(state, target=0, horizon=horizon, score=score)
        before = problem.objective(())
        result = greedy_dm(problem, k)
        final = problem.full_opinions(result.seeds)
        all_scores = score_all_candidates(final, score)
        winner_name = state.candidates[winner(final, score)]
        print(
            f"{score.name:>12}: seeds={result.seeds.tolist()}  "
            f"score {before:.2f} -> {result.objective:.2f}  "
            f"(Alice {all_scores[0]:.2f} vs Bob {all_scores[1]:.2f}; "
            f"winner: {winner_name})"
        )


if __name__ == "__main__":
    main()
