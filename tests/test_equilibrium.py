"""Tests for the exact FJ equilibrium and the GED-EQ baseline."""

import numpy as np
import pytest

from repro.baselines.gedt import ged_equilibrium_select, gedt_select
from repro.core.problem import FJVoteProblem
from repro.graph.build import graph_from_edges
from repro.opinion.fj import fj_equilibrium, fj_equilibrium_exact, fj_step
from repro.voting.scores import CumulativeScore
from tests.conftest import random_instance


def _anchored_instance(n=12, seed=0):
    """Every node somewhat stubborn: the equilibrium is unique."""
    state = random_instance(n=n, r=2, seed=seed)
    d = np.clip(state.stubbornness[0], 0.05, 1.0)
    return state.graph(0), state.initial_opinions[0], d


def test_exact_equilibrium_is_a_fixed_point():
    g, b0, d = _anchored_instance()
    eq = fj_equilibrium_exact(b0, d, g)
    np.testing.assert_allclose(fj_step(eq, b0, d, g), eq, atol=1e-9)


def test_exact_matches_iterative():
    g, b0, d = _anchored_instance(seed=3)
    exact = fj_equilibrium_exact(b0, d, g)
    iterative, _ = fj_equilibrium(b0, d, g, tol=1e-12)
    np.testing.assert_allclose(exact, iterative, atol=1e-8)


def test_exact_equilibrium_in_unit_interval():
    g, b0, d = _anchored_instance(seed=5)
    eq = fj_equilibrium_exact(b0, d, g)
    assert eq.min() >= 0 and eq.max() <= 1


def test_fully_stubborn_equilibrium_is_initial():
    g, b0, _ = _anchored_instance(seed=7)
    np.testing.assert_allclose(
        fj_equilibrium_exact(b0, np.ones(g.n), g), b0, atol=1e-12
    )


def test_singular_system_raises():
    # A 2-cycle with no stubbornness anywhere: no anchored equilibrium.
    g = graph_from_edges(2, [0, 1], [1, 0])
    with pytest.raises(ValueError, match="singular|oblivious"):
        fj_equilibrium_exact(np.array([0.0, 1.0]), np.zeros(2), g)


def test_ged_equilibrium_select_runs_and_improves():
    state = random_instance(n=10, r=2, seed=9)
    # Anchor everyone slightly so equilibria exist for all seed sets.
    d = np.clip(np.asarray(state.stubbornness), 0.05, 1.0)
    from repro.opinion.state import CampaignState

    anchored = CampaignState(
        graphs=state.graphs,
        initial_opinions=state.initial_opinions,
        stubbornness=d,
    )
    problem = FJVoteProblem(anchored, 0, 5, CumulativeScore())
    eq_seeds = ged_equilibrium_select(problem, 2)
    assert eq_seeds.size == 2
    assert problem.objective(eq_seeds) >= problem.objective(()) - 1e-9


def test_equilibrium_vs_finite_horizon_seeds_can_differ():
    """Appendix B: equilibrium-optimal and horizon-optimal seeds diverge.

    On a heterogeneous instance the two objectives generally pick different
    nodes for short horizons; we assert only that both selectors return
    valid distinct-node sets and record whether they differ (they usually
    do for t=1).
    """
    state = random_instance(n=14, r=2, seed=11)
    d = np.clip(np.asarray(state.stubbornness), 0.05, 1.0)
    from repro.opinion.state import CampaignState

    anchored = CampaignState(
        graphs=state.graphs,
        initial_opinions=state.initial_opinions,
        stubbornness=d,
    )
    problem = FJVoteProblem(anchored, 0, 1, CumulativeScore())
    horizon_seeds = set(gedt_select(problem, 3).tolist())
    eq_seeds = set(ged_equilibrium_select(problem, 3).tolist())
    assert len(horizon_seeds) == 3 and len(eq_seeds) == 3
