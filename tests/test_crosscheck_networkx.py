"""Cross-validation against networkx (test-only dependency).

The library implements every graph algorithm from scratch; these tests use
networkx as an independent oracle for PageRank, t-hop reachability, DeGroot
dynamics (via dense matrix powers through nx adjacency), and generator
sanity (degree distributions, connectivity of preferential attachment).
"""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.baselines.centrality import influence_pagerank
from repro.core.reachability import ReachabilityIndex
from repro.graph.build import graph_from_edges
from repro.graph.generators import preferential_attachment_edges
from repro.opinion.degroot import degroot_evolve


def _random_graph(n=25, density=0.2, seed=0):
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    src, dst = np.where(mask)
    weights = rng.uniform(0.2, 1.0, size=src.size)
    return graph_from_edges(n, src, dst, weights)


def _to_networkx(graph):
    g = networkx.DiGraph()
    g.add_nodes_from(range(graph.n))
    src, dst, w = graph.edges()
    for u, v, weight in zip(src, dst, w):
        g.add_edge(int(u), int(v), weight=float(weight))
    return g


def test_pagerank_matches_networkx_on_reverse_graph():
    graph = _random_graph(seed=1)
    ours = influence_pagerank(graph, damping=0.85, tol=1e-12)
    # Our influence-PageRank walks edges backwards with the column-stochastic
    # weights: that is PageRank on the reversed graph whose out-edges are the
    # original in-edges (already normalized per node).
    nx_graph = _to_networkx(graph).reverse()
    nx_scores = networkx.pagerank(nx_graph, alpha=0.85, weight="weight", tol=1e-12)
    theirs = np.array([nx_scores[v] for v in range(graph.n)])
    np.testing.assert_allclose(ours, theirs, atol=1e-8)


def test_reachability_matches_networkx_ego_graph():
    graph = _random_graph(n=20, density=0.12, seed=2)
    nx_graph = _to_networkx(graph)
    index = ReachabilityIndex(graph, t=3)
    for node in range(0, 20, 4):
        expected = set(
            networkx.ego_graph(nx_graph, node, radius=3, undirected=False).nodes
        )
        assert set(index.reach(node).tolist()) == expected


def test_degroot_matches_networkx_adjacency_power():
    graph = _random_graph(n=15, seed=3)
    nx_graph = _to_networkx(graph)
    dense = networkx.to_numpy_array(nx_graph, nodelist=range(15), weight="weight")
    rng = np.random.default_rng(4)
    b0 = rng.random(15)
    expected = b0 @ np.linalg.matrix_power(dense, 6)
    np.testing.assert_allclose(degroot_evolve(b0, graph, 6), expected, atol=1e-10)


def test_preferential_attachment_connected_like_networkx_ba():
    src, dst = preferential_attachment_edges(200, 3, rng=5)
    g = networkx.DiGraph()
    g.add_nodes_from(range(200))
    g.add_edges_from(zip(src.tolist(), dst.tolist()))
    # Emitted bidirectionally -> weak connectivity mirrors undirected BA.
    assert networkx.is_weakly_connected(g)
    # Heavy tail comparable to networkx's own BA generator.
    ours = sorted((d for _, d in g.degree()), reverse=True)
    reference = networkx.barabasi_albert_graph(200, 3, seed=5)
    theirs = sorted((2 * d for _, d in reference.degree()), reverse=True)
    assert ours[0] >= 0.3 * theirs[0]


def test_condorcet_matches_networkx_tournament():
    """Condorcet winner = source node of the pairwise-victory tournament."""
    from repro.voting.rules import condorcet_winner, pairwise_tally

    rng = np.random.default_rng(6)
    opinions = rng.random((5, 31))
    tournament = networkx.DiGraph()
    tournament.add_nodes_from(range(5))
    for a in range(5):
        for b in range(a + 1, 5):
            wins, losses = pairwise_tally(opinions, a, b)
            if wins > losses:
                tournament.add_edge(a, b)
            elif losses > wins:
                tournament.add_edge(b, a)
    ours = condorcet_winner(opinions)
    sources = [v for v in tournament.nodes if tournament.out_degree(v) == 4]
    expected = sources[0] if sources else None
    assert ours == expected
