"""Directed-graph substrate: sparse influence graphs, samplers, generators."""

from repro.graph.alias import AliasSampler
from repro.graph.build import column_stochastic, graph_from_edges, induced_subgraph
from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import (
    erdos_renyi_edges,
    planted_partition_edges,
    power_law_edges,
    preferential_attachment_edges,
    ring_lattice_edges,
    watts_strogatz_edges,
)

__all__ = [
    "AliasSampler",
    "InfluenceGraph",
    "column_stochastic",
    "erdos_renyi_edges",
    "graph_from_edges",
    "induced_subgraph",
    "planted_partition_edges",
    "power_law_edges",
    "preferential_attachment_edges",
    "ring_lattice_edges",
    "watts_strogatz_edges",
]
