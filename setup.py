"""Setuptools shim.

The execution environment has no ``wheel`` package and no network, so
PEP 517 editable installs (which build a wheel) fail.  ``python setup.py
develop`` (or ``pip install -e .`` on machines with ``wheel``) installs the
package; configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
