"""Tests for PageRank / RWR / Degree seed selectors."""

import numpy as np
import pytest

from repro.baselines.centrality import (
    degree_select,
    influence_pagerank,
    pagerank_select,
    rwr_select,
)
from repro.baselines.gedt import gedt_select
from repro.core.greedy import greedy_dm
from repro.core.problem import FJVoteProblem
from repro.graph.build import graph_from_edges
from repro.voting.scores import CumulativeScore, PluralityScore


def test_pagerank_sums_to_one():
    g = graph_from_edges(10, np.arange(9), np.arange(1, 10))
    pi = influence_pagerank(g)
    assert pi.sum() == pytest.approx(1.0)
    assert np.all(pi >= 0)


def test_pagerank_ranks_star_hub_first():
    g = graph_from_edges(8, [0] * 7, list(range(1, 8)))
    pi = influence_pagerank(g)
    assert int(np.argmax(pi)) == 0


def test_pagerank_validation():
    g = graph_from_edges(3, [0], [1])
    with pytest.raises(ValueError):
        influence_pagerank(g, damping=1.5)
    with pytest.raises(ValueError):
        influence_pagerank(g, personalization=np.array([1.0, -1.0, 0.0]))
    with pytest.raises(ValueError):
        influence_pagerank(g, personalization=np.ones(5))


def test_personalization_shifts_mass():
    g = graph_from_edges(6, [0, 1, 2, 3, 4], [1, 2, 3, 4, 5])
    p = np.zeros(6)
    p[5] = 1.0
    pi = influence_pagerank(g, personalization=p)
    uniform = influence_pagerank(g)
    assert pi[5] > uniform[5]


def test_selectors_return_k_distinct(random_state):
    problem = FJVoteProblem(random_state, 0, 3, PluralityScore())
    for select in (pagerank_select, rwr_select, degree_select):
        seeds = select(problem, 4)
        assert seeds.size == 4
        assert len(set(seeds.tolist())) == 4


def test_degree_select_prefers_hub():
    g = graph_from_edges(8, [0] * 7, list(range(1, 8)))
    state_args = dict(
        initial_opinions=np.full((2, 8), 0.5), stubbornness=np.zeros((2, 8))
    )
    from repro.opinion.state import CampaignState

    problem = FJVoteProblem(
        CampaignState(graphs=(g, g), **state_args), 0, 2, CumulativeScore()
    )
    assert degree_select(problem, 1).tolist() == [0]


def test_gedt_matches_dm_greedy_on_cumulative(random_state):
    plurality = FJVoteProblem(random_state, 0, 3, PluralityScore())
    cumulative = FJVoteProblem(random_state, 0, 3, CumulativeScore())
    np.testing.assert_array_equal(
        gedt_select(plurality, 3), greedy_dm(cumulative, 3).seeds
    )
