"""Online serving layer: a request-coalescing query service over warm engines.

The paper frames opinion maximization as interactive decision support —
"which k seeds win target c under rule R?" — and this package answers it
without the cold-start tax of the batch CLI: one process loads the graph
(and, optionally, a memory-mapped :class:`~repro.core.walk_store.WalkStore`
directory) once, keeps engine pools and per-campaign
:class:`~repro.core.engine.SelectionSession`\\ s hot, and serves queries
over a newline-delimited JSON protocol on a plain TCP socket (stdlib
``asyncio.start_server`` — no new runtime dependencies).

Layout
------
:mod:`repro.serve.protocol`
    The wire format: request/response framing, op names, structured
    error codes.
:mod:`repro.serve.batcher`
    :class:`~repro.serve.batcher.EngineHub` (warm engines, session and
    top-k caches, delta application) and
    :class:`~repro.serve.batcher.CoalescingBatcher` (merges compatible
    queries into one engine round).
:mod:`repro.serve.server`
    The asyncio front end: connection handling, the single dispatcher
    task whose drain loop *is* the micro-batch window, signal-routed
    shutdown through :func:`repro.utils.workers.stop_worker_pool`.
:mod:`repro.serve.client`
    An asyncio client, a synchronous one-shot helper, and the
    load-generator used by ``repro serve-load`` and the benchmarks.

Coalescing semantics
--------------------
Requests that arrive within the batch window — or while a previous round
is in flight — and target the same (graph version, committed prefix)
state are answered by **one** engine round: marginal-gain requests
sharing a prefix evolve the union of their candidates as a single
(n, C) block, win/value probes for distinct seed sets share one
:meth:`~repro.core.engine.ObjectiveEngine.query_sets` call, and duplicate
top-k requests run greedy once.  Responses are *batch-stable*: byte
identical whether a request was coalesced or served alone, at every
worker count and transport (the engines evolve batch-stable rows and
score each through the canonical width-1 reduction).  Deltas are
serialized through the same queue, acting as barriers — every response
carries the ``graph_version``/``opinion_version`` it was computed
against.
"""

from repro.serve.batcher import CoalescingBatcher, EngineHub, ServeStats
from repro.serve.client import LoadReport, ServeClient, request_once, run_load
from repro.serve.protocol import ProtocolError
from repro.serve.server import QueryServer, run_server

__all__ = [
    "CoalescingBatcher",
    "EngineHub",
    "LoadReport",
    "ProtocolError",
    "QueryServer",
    "ServeClient",
    "ServeStats",
    "request_once",
    "run_load",
    "run_server",
]
