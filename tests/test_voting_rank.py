"""Tests for the preference rank β (Eq. 4 semantics, ties count against)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.voting.rank import rank_against, ranks


def test_ranks_basic():
    opinions = np.array(
        [
            [0.9, 0.1, 0.5],
            [0.5, 0.5, 0.5],
            [0.1, 0.9, 0.5],
        ]
    )
    np.testing.assert_array_equal(ranks(opinions, 0), [1, 3, 3])
    np.testing.assert_array_equal(ranks(opinions, 2), [3, 1, 3])


def test_ranks_tie_counts_against_target():
    opinions = np.array([[0.5, 0.7], [0.5, 0.7]])
    # Equal opinions: both candidates get rank 2 (β counts >=).
    np.testing.assert_array_equal(ranks(opinions, 0), [2, 2])
    np.testing.assert_array_equal(ranks(opinions, 1), [2, 2])


def test_ranks_single_candidate():
    opinions = np.array([[0.3, 0.9]])
    np.testing.assert_array_equal(ranks(opinions, 0), [1, 1])


def test_ranks_validation():
    opinions = np.array([[0.3, 0.9]])
    with pytest.raises(ValueError):
        ranks(opinions, 5)
    with pytest.raises(ValueError):
        ranks(np.zeros(3), 0)


def test_rank_against_matches_ranks():
    rng = np.random.default_rng(1)
    opinions = rng.random((4, 30))
    q = 2
    others = np.delete(opinions, q, axis=0).T
    np.testing.assert_array_equal(
        rank_against(opinions[q], others), ranks(opinions, q)
    )


def test_rank_against_shape_validation():
    with pytest.raises(ValueError):
        rank_against(np.zeros(3), np.zeros((2, 2)))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 5000), r=st.integers(1, 6), n=st.integers(1, 20))
def test_property_rank_bounds(seed, r, n):
    """1 <= β <= r for every user and candidate."""
    rng = np.random.default_rng(seed)
    opinions = rng.random((r, n))
    for q in range(r):
        beta = ranks(opinions, q)
        assert beta.min() >= 1
        assert beta.max() <= r
