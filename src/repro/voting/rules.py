"""Winner determination and election diagnostics.

Implements the winner rule of §II-B (candidate with the maximum score), the
Condorcet winner, and the per-user / per-pair margins γ and μ used by the
random-walk and sketch accuracy analyses (§V-C, §VI-D).
"""

from __future__ import annotations

import numpy as np

from repro.voting.scores import VotingScore


def score_all_candidates(opinions: np.ndarray, score: VotingScore) -> np.ndarray:
    """Score of every candidate under ``score``."""
    return score.evaluate_all(np.asarray(opinions, dtype=np.float64))


def winner(opinions: np.ndarray, score: VotingScore) -> int:
    """Index of the winning candidate (ties broken toward the lowest index)."""
    return int(np.argmax(score_all_candidates(opinions, score)))


def is_strict_winner(opinions: np.ndarray, score: VotingScore, q: int) -> bool:
    """Whether candidate ``q`` strictly beats every other candidate's score.

    This is the winning criterion of Problem 2 (FJ-Vote-Win):
    ``F(B, c_q) > max_{x≠q} F(B, c_x)``.
    """
    values = score_all_candidates(opinions, score)
    others = np.delete(values, q)
    return bool(others.size == 0 or values[q] > others.max())


def pairwise_tally(opinions: np.ndarray, q: int, x: int) -> tuple[int, int]:
    """``(wins, losses)`` of candidate ``q`` against ``x`` across users."""
    opinions = np.asarray(opinions, dtype=np.float64)
    wins = int(np.sum(opinions[q] > opinions[x]))
    losses = int(np.sum(opinions[q] < opinions[x]))
    return wins, losses


def condorcet_winner(opinions: np.ndarray) -> int | None:
    """The candidate winning all one-on-one competitions, or ``None``.

    A Condorcet winner has the maximum possible Copeland score ``r - 1``
    (§II-B); it need not exist.
    """
    opinions = np.asarray(opinions, dtype=np.float64)
    r = opinions.shape[0]
    for q in range(r):
        if all(
            pairwise_tally(opinions, q, x)[0] > pairwise_tally(opinions, q, x)[1]
            for x in range(r)
            if x != q
        ):
            return q
    return None


def gamma_values(opinions: np.ndarray, q: int) -> np.ndarray:
    """Per-user margin ``γ_v = min_{x≠q} |b_xv − b_qv|`` (Theorem 11).

    The number of reverse walks needed to rank the target correctly for user
    ``v`` scales as ``1/γ_v²``.
    """
    opinions = np.asarray(opinions, dtype=np.float64)
    others = np.delete(opinions, q, axis=0)
    if others.shape[0] == 0:
        return np.full(opinions.shape[1], np.inf)
    return np.min(np.abs(others - opinions[q][None, :]), axis=0)


def copeland_margin(opinions: np.ndarray, q: int) -> float:
    """Pairwise margin ``μ = min_x |wins_x − losses_x| / n`` (§VI-D)."""
    opinions = np.asarray(opinions, dtype=np.float64)
    r, n = opinions.shape
    if r < 2:
        return float("inf")
    margins = []
    for x in range(r):
        if x == q:
            continue
        wins, losses = pairwise_tally(opinions, q, x)
        margins.append(abs(wins - losses) / n)
    return float(min(margins))
