"""Wire protocol of the serving layer: newline-delimited JSON.

One request per line, one response line per request, over a plain TCP
stream.  Requests are JSON objects::

    {"id": 7, "op": "marginal_gain", "seeds": [3], "candidates": [1, 2]}

``id`` is echoed verbatim in the response so clients may pipeline
requests on one connection; responses arrive in completion order.
Responses are JSON objects with deterministic encoding (sorted keys,
compact separators, shortest round-trip floats), so a response's bytes
are a pure function of its content — the coalescing tests assert
byte-identity on these lines::

    {"graph_version": 0, "id": 7, "ok": true, "opinion_version": 0,
     "result": {...}}

Failures keep the connection open and answer with a structured error
instead (``ok`` false)::

    {"error": {"code": "bad-engine-spec", "message": "unknown engine ..."},
     "id": 7, "ok": false, ...}

Ops
---
``ping``
    Liveness probe; result echoes an optional ``payload``.
``stats``
    Serving counters, per-engine pool accounting (including live shm
    segment names) and problem versions.
``top_k_seeds``
    Greedy selection: ``k`` (required), optional ``candidates``,
    ``lazy``, ``engine``.
``marginal_gain``
    Gains of extending the committed prefix ``seeds`` by each of
    ``candidates``; optional ``engine``.
``prefix_win_probability``
    Problem-2 winner check (and objective value) of ``seeds``; the
    "probability" is 1.0/0.0 for the exact engines, honestly named for
    estimator backends.  Optional ``engine``.
``apply_delta``
    Graph/opinion churn, mirroring the CLI's delta-journal step format:
    ``edges_added`` as ``[u, v, weight]`` rows, ``edges_removed`` as
    ``[u, v]`` rows, ``opinions_changed`` as ``[candidate, node, value]``
    rows, optional default ``candidate``.  Serialized through the query
    queue — a barrier; later responses carry the bumped versions.

Error codes
-----------
``bad-request``
    Malformed JSON line, missing/ill-typed parameter, out-of-range node.
``unknown-op``
    ``op`` is not one of :data:`OPS`.
``bad-engine-spec``
    ``engine`` failed :func:`repro.core.engine.parse_engine_spec`; the
    registry's message is carried verbatim.
``engine-not-loaded``
    A well-formed spec this server was not started with.
``overloaded``
    The server shed the request: the dispatch queue was at its
    ``queue_cap`` (or the server is draining for shutdown).  Shedding
    happens at admission — a shed request costs no engine work — and is
    counted in ``ServeStats.requests_shed``.  Clients should back off
    and retry.
``deadline-exceeded``
    The request's deadline (its own ``deadline_ms``, or the server's
    default request timeout) expired while it sat in the dispatch queue;
    it was dropped before reaching an engine.
``internal``
    Unexpected server-side failure (the exception text is included).

Any request may carry ``deadline_ms`` (a positive number): the time the
client is willing to wait for its response, measured from admission.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

ENCODING = "utf-8"

#: Hard cap on one request line; longer lines fail fast as bad-request
#: instead of buffering without bound.
MAX_LINE_BYTES = 8 * 1024 * 1024

OPS = (
    "ping",
    "stats",
    "top_k_seeds",
    "marginal_gain",
    "prefix_win_probability",
    "apply_delta",
)

ERROR_BAD_REQUEST = "bad-request"
ERROR_UNKNOWN_OP = "unknown-op"
ERROR_BAD_ENGINE_SPEC = "bad-engine-spec"
ERROR_ENGINE_NOT_LOADED = "engine-not-loaded"
ERROR_OVERLOADED = "overloaded"
ERROR_DEADLINE_EXCEEDED = "deadline-exceeded"
ERROR_INTERNAL = "internal"


class ProtocolError(Exception):
    """A request failure with a structured (code, message) payload."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass
class Request:
    """One parsed request: the echoed id, the op, and its parameters.

    ``deadline_ms`` is the envelope-level patience budget (see the
    module docstring); ``None`` defers to the server's default.
    """

    id: Any
    op: str
    params: dict
    deadline_ms: float | None = None


def encode(payload: dict) -> bytes:
    """One deterministic response/request line, newline-terminated.

    Sorted keys + compact separators + shortest-round-trip floats make
    the bytes a pure function of the content, which is what lets the
    coalescing tests assert byte-identity of coalesced vs serial
    responses.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode(ENCODING)


def decode_line(line: bytes) -> dict:
    """Parse one request line into a JSON object (or raise bad-request)."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            ERROR_BAD_REQUEST,
            f"request line exceeds {MAX_LINE_BYTES} bytes",
        )
    try:
        payload = json.loads(line.decode(ENCODING))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            ERROR_BAD_REQUEST, f"request is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            ERROR_BAD_REQUEST,
            f"request must be a JSON object, got {type(payload).__name__}",
        )
    return payload


def parse_request(payload: dict) -> Request:
    """Validate the envelope (op known, id JSON-scalar) of one request."""
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError(ERROR_BAD_REQUEST, "request needs a string 'op'")
    if op not in OPS:
        raise ProtocolError(
            ERROR_UNKNOWN_OP, f"unknown op {op!r}; expected one of {OPS}"
        )
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (str, int, float)):
        raise ProtocolError(
            ERROR_BAD_REQUEST, "request 'id' must be a JSON scalar"
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or not deadline_ms > 0
        ):
            raise ProtocolError(
                ERROR_BAD_REQUEST, "'deadline_ms' must be a positive number"
            )
        deadline_ms = float(deadline_ms)
    params = {
        k: v for k, v in payload.items() if k not in ("op", "id", "deadline_ms")
    }
    return Request(
        id=request_id, op=op, params=params, deadline_ms=deadline_ms
    )


def ok_response(
    request_id: Any,
    result: Any,
    *,
    graph_version: int,
    opinion_version: int,
) -> dict:
    return {
        "id": request_id,
        "ok": True,
        "result": result,
        "graph_version": int(graph_version),
        "opinion_version": int(opinion_version),
    }


def error_response(
    request_id: Any,
    code: str,
    message: str,
    *,
    graph_version: int | None = None,
    opinion_version: int | None = None,
) -> dict:
    payload: dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if graph_version is not None:
        payload["graph_version"] = int(graph_version)
    if opinion_version is not None:
        payload["opinion_version"] = int(opinion_version)
    return payload
