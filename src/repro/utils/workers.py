"""Shared teardown for persistent worker pools (dm-mp, walk store).

One escalation ladder, used by every engine that owns a pipe-per-worker
pool: send a guarded stop, then ``join -> terminate -> kill`` with bounded
timeouts so a worker that died mid-round (or wedged) can never hang the
caller, and close the parent pipe ends last.  Keeping it here means a fix
to the timeouts or the exception classes applies to every pool at once.
"""

from __future__ import annotations

from typing import Callable

#: Per-stage join timeout (seconds); worst case a close takes three of
#: these per worker before giving up on an unkillable process.
_JOIN_TIMEOUT = 5


def stop_worker_pool(handles, send_stop: Callable[[object], None]) -> None:
    """Stop every worker in ``handles``; never raises, never hangs.

    ``handles`` are objects with a ``conn`` attribute and, for local
    pools, a ``process``; ``send_stop(conn)`` delivers the pool's stop
    message (failures on a dead pipe are swallowed — the join ladder
    below reaps the process either way).  Handles without a ``process``
    — the TCP :class:`~repro.core.engine_net.HostPool`'s remote hosts,
    which no local pid can reap — skip the join ladder: the stop frame
    (or the socket close) returns the remote worker to its accept loop.

    Idempotent: calling it again with the same handles — or with a
    worker that was SIGKILLed, already joined, or whose ``Process`` /
    pipe was already ``close()``d — is a no-op for that handle, never an
    error.  Supervised pools rely on this: a crash can race the engine's
    own teardown against an outer ``close()``.
    """
    for handle in handles:
        try:
            send_stop(handle.conn)
        except (BrokenPipeError, ConnectionError, OSError, ValueError):
            pass
    for handle in handles:
        process = getattr(handle, "process", None)
        if process is not None:
            try:
                process.join(timeout=_JOIN_TIMEOUT)
                if process.is_alive():  # pragma: no cover - wedged worker
                    process.terminate()
                    process.join(timeout=_JOIN_TIMEOUT)
                if process.is_alive():  # pragma: no cover - wedged worker
                    process.kill()
                    process.join(timeout=_JOIN_TIMEOUT)
            except ValueError:
                pass  # Process already close()d: nothing left to reap.
        try:
            handle.conn.close()
        except (OSError, ValueError):
            pass
