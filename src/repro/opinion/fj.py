"""The Friedkin-Johnsen (FJ) opinion diffusion model (paper Eq. 2).

For one candidate with row-vector opinions ``b`` and stubbornness diagonal
``d``::

    b(t+1) = (b(t) @ W) * (1 - d) + b(0) * d

Since ``W`` is column-stochastic and opinions start in [0, 1], all iterates
stay in [0, 1].  The DeGroot model is the special case ``d = 0``.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.opinion.state import CampaignState
from repro.utils.validation import check_time_horizon


def fj_step(
    b: np.ndarray, b0: np.ndarray, d: np.ndarray, graph: InfluenceGraph
) -> np.ndarray:
    """One FJ update: ``(b @ W)(1-d) + b0 d``."""
    return (b @ graph.csr) * (1.0 - d) + b0 * d


def fj_evolve(
    b0: np.ndarray,
    d: np.ndarray,
    graph: InfluenceGraph,
    t: int,
    *,
    b_init: np.ndarray | None = None,
) -> np.ndarray:
    """Opinions at time horizon ``t`` starting from ``b_init`` (default ``b0``).

    Cost is ``O(t * m)`` via sparse matrix-vector products — the "direct
    matrix multiplication" (DM) computation of §III-C.
    """
    t = check_time_horizon(t)
    b = np.array(b0 if b_init is None else b_init, dtype=np.float64)
    b0 = np.asarray(b0, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    for _ in range(t):
        b = fj_step(b, b0, d, graph)
    return b


def fj_trajectory(
    b0: np.ndarray, d: np.ndarray, graph: InfluenceGraph, t: int
) -> Iterator[np.ndarray]:
    """Yield opinions ``b(0), b(1), ..., b(t)`` (t+1 arrays)."""
    t = check_time_horizon(t)
    b = np.array(b0, dtype=np.float64)
    yield b.copy()
    for _ in range(t):
        b = fj_step(b, b0, d, graph)
        yield b.copy()


def apply_seeds(
    b0: np.ndarray, d: np.ndarray, seeds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return copies of ``(b0, d)`` with seed nodes set to opinion 1, stubbornness 1."""
    seeds = np.asarray(seeds, dtype=np.int64)
    b0 = np.array(b0, dtype=np.float64)
    d = np.array(d, dtype=np.float64)
    b0[seeds] = 1.0
    d[seeds] = 1.0
    return b0, d


def horizon_opinions(
    state: CampaignState,
    t: int,
    *,
    target: int | None = None,
    seeds: np.ndarray | None = None,
) -> np.ndarray:
    """Opinion matrix ``B(t)`` for all candidates, optionally seeding the target.

    Campaigns diffuse concurrently and independently (§II-B): each row of the
    result is the FJ evolution of that candidate's row.  When ``target`` and
    ``seeds`` are given, the target row uses the seeded ``(b0, d)``.
    """
    rows = []
    for q in range(state.r):
        if target is not None and seeds is not None and q == target:
            b0_q, d_q = state.seeded(q, seeds)
        else:
            b0_q, d_q = state.initial_opinions[q], state.stubbornness[q]
        rows.append(fj_evolve(b0_q, d_q, state.graph(q), t))
    return np.vstack(rows)


def fj_equilibrium_exact(
    b0: np.ndarray, d: np.ndarray, graph: InfluenceGraph
) -> np.ndarray:
    """Closed-form FJ equilibrium via a sparse linear solve.

    The fixed point of Eq. 2 satisfies ``(I - (I-D) Wᵀ) bᵀ = D b0ᵀ``.  This
    is the objective substrate of Gionis et al.'s equilibrium-based opinion
    maximization (Appendix A), used by the GED-EQ baseline to contrast
    equilibrium seeds with finite-horizon seeds.  Requires at least one
    (partially) stubborn node reaching every node, otherwise the system is
    singular (oblivious nodes have no anchored equilibrium) and a
    ``ValueError`` is raised.
    """
    import warnings

    from scipy.sparse import eye, diags
    from scipy.sparse.linalg import MatrixRankWarning, spsolve

    b0 = np.asarray(b0, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    n = graph.n
    system = eye(n, format="csr") - diags(1.0 - d) @ graph.csr.T.tocsr()
    with np.errstate(all="ignore"), warnings.catch_warnings():
        # Singularity is detected below via non-finite entries and reported
        # as a ValueError; scipy's warning would be redundant noise.
        warnings.simplefilter("ignore", MatrixRankWarning)
        solution = spsolve(system.tocsc(), d * b0)
    if not np.all(np.isfinite(solution)):
        raise ValueError(
            "FJ equilibrium system is singular: some nodes are oblivious "
            "(non-stubborn and unreachable from any stubborn node)"
        )
    return np.clip(solution, 0.0, 1.0)


def fj_equilibrium(
    b0: np.ndarray,
    d: np.ndarray,
    graph: InfluenceGraph,
    *,
    tol: float = 1e-10,
    max_iter: int = 10_000,
) -> tuple[np.ndarray, int]:
    """Iterate FJ to (approximate) convergence.

    Returns ``(opinions, iterations)``.  Raises ``RuntimeError`` if the
    diffusion has not converged within ``max_iter`` steps (e.g. an oblivious
    cycle with period > 1; see §II-A on convergence conditions).
    """
    b = np.array(b0, dtype=np.float64)
    for it in range(1, max_iter + 1):
        nxt = fj_step(b, b0, d, graph)
        if np.max(np.abs(nxt - b)) < tol:
            return nxt, it
        b = nxt
    raise RuntimeError(f"FJ diffusion did not converge within {max_iter} iterations")
