"""Evaluation metrics shared across experiments."""

from __future__ import annotations

import numpy as np


def seed_overlap(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of seeds shared by two equal-budget seed sets (Fig. 9).

    ``|A ∩ B| / max(|A|, |B|)`` — with equal budgets this is the paper's
    "overlap of the seed set".
    """
    a_set = set(int(v) for v in np.asarray(a).ravel())
    b_set = set(int(v) for v in np.asarray(b).ravel())
    denom = max(len(a_set), len(b_set))
    if denom == 0:
        return 1.0
    return len(a_set & b_set) / denom


def relative_score(value: float, reference: float) -> float:
    """``value / reference`` guarded against a zero reference."""
    if reference == 0:
        return 1.0 if value == 0 else float("inf")
    return value / reference
