"""Tests for CampaignState validation and seeding semantics."""

import numpy as np
import pytest

from repro.graph.build import graph_from_edges
from repro.opinion.state import CampaignState


def _graph(n=4):
    return graph_from_edges(n, [0, 1, 2], [2, 2, 3])


def test_defaults_and_properties():
    g = _graph()
    state = CampaignState(
        graphs=(g, g),
        initial_opinions=np.full((2, 4), 0.5),
        stubbornness=np.zeros((2, 4)),
    )
    assert state.r == 2
    assert state.n == 4
    assert state.candidates == ("c1", "c2")
    assert state.graph(1) is g


def test_candidate_index():
    g = _graph()
    state = CampaignState(
        graphs=(g, g),
        initial_opinions=np.full((2, 4), 0.5),
        stubbornness=np.zeros((2, 4)),
        candidates=("left", "right"),
    )
    assert state.candidate_index("right") == 1
    with pytest.raises(KeyError):
        state.candidate_index("center")


def test_seeded_sets_opinion_and_stubbornness_to_one():
    g = _graph()
    state = CampaignState(
        graphs=(g, g),
        initial_opinions=np.full((2, 4), 0.3),
        stubbornness=np.full((2, 4), 0.2),
    )
    b0, d = state.seeded(0, np.array([1, 3]))
    np.testing.assert_allclose(b0, [0.3, 1.0, 0.3, 1.0])
    np.testing.assert_allclose(d, [0.2, 1.0, 0.2, 1.0])
    # Original arrays untouched.
    assert state.initial_opinions[0, 1] == 0.3
    assert state.stubbornness[0, 3] == 0.2


def test_seeded_rejects_out_of_range():
    g = _graph()
    state = CampaignState(
        graphs=(g, g),
        initial_opinions=np.full((2, 4), 0.3),
        stubbornness=np.zeros((2, 4)),
    )
    with pytest.raises(ValueError):
        state.seeded(0, np.array([10]))


def test_shape_validation():
    g = _graph()
    with pytest.raises(ValueError, match="initial_opinions"):
        CampaignState((g, g), np.zeros((3, 4)), np.zeros((2, 4)))
    with pytest.raises(ValueError, match="stubbornness"):
        CampaignState((g, g), np.zeros((2, 4)), np.zeros((2, 5)))
    with pytest.raises(ValueError, match="candidate names"):
        CampaignState((g, g), np.zeros((2, 4)), np.zeros((2, 4)), candidates=("a",))
    with pytest.raises(ValueError, match="at least one"):
        CampaignState((), np.zeros((0, 4)), np.zeros((0, 4)))


def test_range_validation():
    g = _graph()
    with pytest.raises(ValueError):
        CampaignState((g, g), np.full((2, 4), 1.5), np.zeros((2, 4)))
    with pytest.raises(ValueError):
        CampaignState((g, g), np.zeros((2, 4)), np.full((2, 4), -0.1))


def test_mismatched_graph_sizes():
    g4 = _graph(4)
    g5 = graph_from_edges(5, [0], [1])
    with pytest.raises(ValueError, match="same node count"):
        CampaignState((g4, g5), np.zeros((2, 4)), np.zeros((2, 4)))


def test_matrices_are_immutable():
    g = _graph()
    state = CampaignState(
        graphs=(g, g),
        initial_opinions=np.full((2, 4), 0.5),
        stubbornness=np.zeros((2, 4)),
    )
    with pytest.raises(ValueError):
        state.initial_opinions[0, 0] = 0.9
