"""Session benchmark: warm-started greedy rounds vs stateless restarts.

Exhaustive greedy (plurality score, ``K`` rounds) run twice through
:class:`BatchedDMEngine` on a paper-density sparse retweet graph (Table
III: ~1.3-1.9 edges/node): once as PR-1-style *stateless* rounds — every
round replays the full committed set's delta from the unseeded base — and
once through a :class:`~repro.core.engine.SelectionSession`, whose commits
fold the chosen seed into the committed trajectory so each round evolves
only single-candidate deltas.  Both paths must select byte-identical
seeds; the win is measured with the deterministic
:class:`~repro.core.engine.EngineStats` evolution counters (dense
column-step equivalents), so the assertion is immune to timer noise:
strictly less work everywhere, and >= 2x less at n >= 2000.  Wall times
are reported alongside for the results archive.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_session_warmstart.py``;
set ``REPRO_BENCH_TINY=1`` for the CI smoke variant (one tiny size, work
monotonicity only).
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, BENCH_TINY, run_once
from repro.core.engine import BatchedDMEngine
from repro.core.greedy import greedy_engine
from repro.datasets.twitter import _twitter_base
from repro.eval.reporting import format_series
from repro.utils.timing import Timer
from repro.voting.scores import PluralityScore

TINY = BENCH_TINY
SIZES = [200] if TINY else [500, 2000]
#: Rounds: the warm-start saving accrues from round 2 on, once the
#: committed set is big enough that replaying it densifies early.
K = 4 if TINY else 24
HORIZON = 20
#: Acceptance floor of the evolution-work ratio at the sizes where
#: warm-starting must pay off.
MIN_WORK_REDUCTION_AT_SCALE = 2.0


def _sparse_problem(n: int):
    dataset = _twitter_base(
        "twitter-social-distancing-sparse",
        ("For Social Distancing", "Against Social Distancing"),
        np.array([0.42, 0.60]),
        n,
        10.0,
        2.5,
        HORIZON,
        BENCH_SEED,
        min_degree=1,
        exponent=2.6,
    )
    problem = dataset.problem(PluralityScore())
    problem.others_by_user()  # shared inputs, warmed outside the timers
    problem.target_trajectory()
    return problem


def _stateless_greedy(engine: BatchedDMEngine, k: int):
    """PR-1-style rounds: every round replays the base from scratch."""
    selected: list[int] = []
    gains_trace: list[float] = []
    current = engine.evaluate_one(())
    remaining = np.arange(engine.problem.n)
    for _ in range(k):
        gains = engine.marginal_gains(
            tuple(selected), remaining, base_objective=current
        )
        idx = int(np.argmax(gains))
        selected.append(int(remaining[idx]))
        gains_trace.append(float(gains[idx]))
        current += gains_trace[-1]
        remaining = np.delete(remaining, idx)
    return selected, gains_trace


def _one_size(n: int) -> dict[str, float]:
    problem = _sparse_problem(n)
    cold_engine = BatchedDMEngine(problem)
    with Timer() as cold_timer:
        cold_seeds, cold_gains = _stateless_greedy(cold_engine, K)
    warm_engine = BatchedDMEngine(problem)
    with Timer() as warm_timer:
        warm = greedy_engine(warm_engine, K, lazy=False)
    assert warm.seeds.tolist() == cold_seeds, f"selection diverged at n={n}"
    np.testing.assert_allclose(warm.gains, cold_gains, atol=1e-10, rtol=0)
    cold_work = cold_engine.stats.evolution_work(n)
    warm_work = warm_engine.stats.evolution_work(n)
    return {
        "cold_s": cold_timer.elapsed,
        "warm_s": warm_timer.elapsed,
        "cold_work": cold_work,
        "warm_work": warm_work,
        "work_ratio": cold_work / max(warm_work, 1e-12),
    }


def test_session_warmstart_less_evolution_work(
    benchmark, save_result, save_bench_json
):
    rounds = run_once(benchmark, lambda: [_one_size(n) for n in SIZES])
    series = {
        "stateless (s)": [r["cold_s"] for r in rounds],
        "session (s)": [r["warm_s"] for r in rounds],
        "stateless work (col-steps)": [r["cold_work"] for r in rounds],
        "session work (col-steps)": [r["warm_work"] for r in rounds],
        "work reduction (x)": [r["work_ratio"] for r in rounds],
    }
    if not TINY:  # don't let the CI smoke run clobber the full-size archive
        save_result(
            "session_warmstart",
            "exhaustive greedy, plurality, sparse retweet graph, k=%d, t=%d:\n%s"
            % (K, HORIZON, format_series("n", SIZES, series)),
        )
    # Perf-trajectory record: deterministic counters at the largest size.
    last = rounds[-1]
    save_bench_json(
        "session_warmstart",
        {
            "work_reduction_x": {
                "value": last["work_ratio"],
                "higher_is_better": True,
            },
            "session_work_col_steps": {
                "value": last["warm_work"],
                "higher_is_better": False,
            },
        },
    )
    for n, r in zip(SIZES, rounds):
        assert r["warm_work"] < r["cold_work"], (
            f"warm-start did not reduce evolution work at n={n}"
        )
        if not TINY and n >= 2000:
            assert r["work_ratio"] >= MIN_WORK_REDUCTION_AT_SCALE, (
                f"warm-start work reduction only {r['work_ratio']:.2f}x at n={n}"
            )
