"""Fig. 10: #users ranking the target at each position, per p-approval variant.

Expected shape (paper, Yelp): seeds for p=1 (plurality) maximize
first-position counts; larger p shifts mass into positions <= p, and the
distribution's head grows with seeding relative to no seeds.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval.experiments import rank_distribution_experiment
from repro.eval.reporting import format_series
from repro.voting.rank import ranks
from repro.voting.scores import PluralityScore

K = 20


def test_fig10_rank_distribution(benchmark, yelp_ds, save_result):
    out = run_once(
        benchmark,
        lambda: rank_distribution_experiment(
            yelp_ds, K, [1, 2, 3], method="dm", rng=23
        ),
    )
    problem = yelp_ds.problem(PluralityScore())
    beta0 = ranks(problem.full_opinions(()), problem.target)
    no_seed = np.bincount(beta0, minlength=yelp_ds.r + 1)[1:].astype(float)
    series = {"no seeds": list(no_seed), **{k: v for k, v in out.items() if k != "position"}}
    save_result(
        "fig10_rank_positions", format_series("position", out["position"], series)
    )
    for key in ("p=1", "p=2", "p=3"):
        assert sum(out[key]) == yelp_ds.n
    # Seeding for p=1 puts more users at position 1 than no seeding.
    assert out["p=1"][0] >= no_seed[0]
    # p=1 concentrates strictly on position 1 at least as much as p=3 does.
    assert out["p=1"][0] >= out["p=3"][0] - K
