"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_methods_lists_all(capsys):
    assert main(["methods"]) == 0
    out = capsys.readouterr().out.split()
    assert "dm" in out and "rs" in out and "random" in out


def test_datasets_lists_all(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out.split()
    assert "yelp" in out and "twitter-mask" in out


def test_select_runs_small(capsys):
    code = main(
        [
            "select",
            "--dataset", "yelp",
            "--users", "120",
            "--horizon", "3",
            "--method", "dc",
            "-k", "3",
            "--seed", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "seeds:" in out
    assert "->" in out


@pytest.mark.parametrize("engine", ["dm", "dm-batched", "dm-mp", "dm-mp:2", "rw", "sketch"])
def test_select_engine_choices(capsys, engine):
    code = main(
        [
            "select",
            "--dataset", "yelp",
            "--users", "100",
            "--horizon", "3",
            "--method", "dm",
            "--engine", engine,
            "-k", "2",
            "--seed", "1",
        ]
    )
    assert code == 0
    assert "seeds:" in capsys.readouterr().out


def test_select_engine_dm_variants_agree(capsys):
    """Exact engines must print identical seeds and scores."""
    outs = []
    for engine in ("dm", "dm-batched", "dm-mp:2"):
        assert main(
            [
                "select",
                "--dataset", "twitter-mask",
                "--users", "120",
                "--horizon", "4",
                "--method", "dm",
                "--engine", engine,
                "-k", "3",
                "--seed", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        outs.append(
            (out.splitlines()[-1], out.splitlines()[-2].split("(")[0])
        )  # seeds line + score line sans timing
    assert outs[0] == outs[1] == outs[2]


def test_unknown_engine_rejected(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["select", "--method", "dm", "--engine", "warp-drive"]
        )


@pytest.mark.parametrize("bad", ["dm-mp:", "dm-mp:0", "dm-mp:-2", "dm-mp:two"])
def test_malformed_worker_spec_surfaces_registry_error(capsys, bad):
    """Malformed dm-mp:<workers> specs exit with the engine registry's
    ValueError message (names every spec and the dm-mp:<workers> form)."""
    with pytest.raises(SystemExit):
        build_parser().parse_args(["select", "--method", "dm", "--engine", bad])
    err = capsys.readouterr().err
    assert "unknown engine" in err
    assert "dm-mp:<workers>" in err
    from repro.core.engine import ENGINE_NAMES

    for name in ENGINE_NAMES:
        assert name in err


def test_select_p_approval(capsys):
    code = main(
        [
            "select",
            "--dataset", "twitter-mask",
            "--users", "100",
            "--horizon", "2",
            "--method", "pr",
            "--score", "p-approval",
            "--p", "2",
            "-k", "2",
        ]
    )
    assert code == 0


def test_winmin_small(capsys):
    code = main(
        [
            "winmin",
            "--dataset", "twitter-mask",
            "--users", "150",
            "--horizon", "3",
            "--method", "dm",
            "--kmax", "80",
        ]
    )
    out = capsys.readouterr().out
    assert ("k* =" in out) or ("cannot win" in out)
    assert code in (0, 1)


def test_case_study_small(capsys):
    code = main(
        ["case-study", "--users", "150", "--horizon", "3", "-k", "5",
         "--method", "dc"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "votes for target" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_module_entry_point():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "methods"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "rs" in proc.stdout.split()


def test_engine_help_renders_from_registry():
    """--engine help text derives from ENGINE_NAMES/ENGINE_HELP, not a
    hand-copied list: every registered spec must appear with its blurb."""
    from repro.core.engine import ENGINE_HELP, ENGINE_NAMES

    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, __import__("argparse")._SubParsersAction)
    )
    for command in ("select", "winmin", "case-study"):
        help_text = " ".join(sub.choices[command].format_help().split())
        for name in ENGINE_NAMES:
            assert f"{name}: {ENGINE_HELP[name]}" in help_text


def test_select_store_dir_warm_rerun_regenerates_nothing(capsys, tmp_path):
    """--store-dir: a rerun with the same seed re-opens the on-disk pools
    and regenerates zero blocks (the CI warm-store smoke's contract)."""
    argv = [
        "select",
        "--dataset", "yelp",
        "--users", "100",
        "--horizon", "3",
        "--method", "rw",
        "--score", "cumulative",
        "-k", "2",
        "--seed", "1",
        "--store-dir", str(tmp_path / "pools"),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "store: blocks generated=" in cold
    # The cold run generated something (precise prefix: the line now ends
    # with delta counters that are legitimately "...=0").
    assert "store: blocks generated=0 " not in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "store: blocks generated=0 " in warm
    assert "loaded=0 " not in warm  # served from the memory-mapped shards
    # Identical pools -> identical selections across the two invocations.
    seeds = [
        line for line in (cold + warm).splitlines() if line.startswith("seeds:")
    ]
    assert seeds[0] == seeds[1]


def test_select_store_dir_rewrites_rw_store_engine_spec(capsys, tmp_path):
    """--store-dir on an rw-store engine persists its private store."""
    argv = [
        "select",
        "--dataset", "yelp",
        "--users", "100",
        "--horizon", "3",
        "--method", "dm",
        "--engine", "rw-store:2",
        "-k", "2",
        "--seed", "1",
        "--store-dir", str(tmp_path / "engine-pools"),
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert (tmp_path / "engine-pools" / "manifest.json").exists()
    # Warm rerun succeeds against the persisted store (same identity).
    assert main(argv) == 0
    assert "seeds:" in capsys.readouterr().out


@pytest.mark.parametrize(
    "engine", ["dm-mp:2:shm", "rw-store:2"]
)
def test_select_data_plane_engine_specs_run(capsys, engine):
    code = main(
        [
            "select",
            "--dataset", "yelp",
            "--users", "100",
            "--horizon", "3",
            "--method", "dm",
            "--engine", engine,
            "-k", "2",
            "--seed", "1",
        ]
    )
    assert code == 0
    assert "seeds:" in capsys.readouterr().out


def test_malformed_data_plane_specs_rejected():
    parser = build_parser()
    for bad in ("dm-mp:shm:2", "rw-store:mmap=", "dm-mp:mmap=/x"):
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["select", "--engine", bad, "--method", "dm", "-k", "1"]
            )
