"""Tests for t-hop reachability and greedy max coverage."""

import numpy as np
import pytest

from repro.core.reachability import ReachabilityIndex, coverage_greedy
from repro.graph.build import graph_from_edges


def _path_graph(n=6):
    # 0 -> 1 -> 2 -> ... -> n-1
    return graph_from_edges(n, list(range(n - 1)), list(range(1, n)))


def test_reach_on_path():
    idx = ReachabilityIndex(_path_graph(), t=2)
    assert idx.reach(0).tolist() == [0, 1, 2]
    assert idx.reach(4).tolist() == [4, 5]
    assert idx.reach(5).tolist() == [5]


def test_reach_zero_hops_is_self():
    idx = ReachabilityIndex(_path_graph(), t=0)
    assert idx.reach(3).tolist() == [3]


def test_reach_set_union():
    idx = ReachabilityIndex(_path_graph(), t=1)
    np.testing.assert_array_equal(idx.reach_set([0, 3]), [0, 1, 3, 4])
    assert idx.reach_set([]).size == 0


def test_reach_caching():
    idx = ReachabilityIndex(_path_graph(), t=2)
    first = idx.reach(0)
    assert idx.reach(0) is first


def test_negative_t_rejected():
    with pytest.raises(ValueError):
        ReachabilityIndex(_path_graph(), t=-1)


def test_coverage_greedy_optimal_on_disjoint_stars():
    # Two stars: 0 -> {1,2,3}, 4 -> {5,6}; singleton 7.
    g = graph_from_edges(8, [0, 0, 0, 4, 4], [1, 2, 3, 5, 6])
    idx = ReachabilityIndex(g, t=1)
    seeds, value = coverage_greedy(idx, np.empty(0, dtype=np.int64), 2)
    assert seeds.tolist() == [0, 4]
    assert value == pytest.approx(7.0)


def test_coverage_greedy_respects_base_and_weight():
    g = graph_from_edges(8, [0, 0, 0, 4, 4], [1, 2, 3, 5, 6])
    idx = ReachabilityIndex(g, t=1)
    base = np.array([1, 2, 3])  # star 0 mostly pre-covered
    seeds, value = coverage_greedy(idx, base, 1, weight=0.5)
    assert seeds.tolist() == [4]
    assert value == pytest.approx(0.5 * 6)  # {1,2,3} ∪ {4,5,6}


def test_coverage_greedy_candidate_restriction():
    g = graph_from_edges(8, [0, 0, 0, 4, 4], [1, 2, 3, 5, 6])
    idx = ReachabilityIndex(g, t=1)
    seeds, _ = coverage_greedy(
        idx, np.empty(0, dtype=np.int64), 1, candidates=[4, 7]
    )
    assert seeds.tolist() == [4]
