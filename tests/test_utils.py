"""Tests for shared utilities."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_opinions,
    check_probability,
    check_seed_budget,
    check_stubbornness,
    check_time_horizon,
)


def test_ensure_rng_accepts_all_forms():
    g = np.random.default_rng(0)
    assert ensure_rng(g) is g
    assert isinstance(ensure_rng(7), np.random.Generator)
    assert isinstance(ensure_rng(None), np.random.Generator)
    with pytest.raises(TypeError):
        ensure_rng("seed")


def test_ensure_rng_reproducible():
    a = ensure_rng(5).random(3)
    b = ensure_rng(5).random(3)
    np.testing.assert_array_equal(a, b)


def test_spawn_rngs_independent_and_reproducible():
    children = spawn_rngs(3, 4)
    assert len(children) == 4
    again = spawn_rngs(3, 4)
    for c1, c2 in zip(children, again):
        np.testing.assert_array_equal(c1.random(2), c2.random(2))
    draws = [c.random() for c in children]
    assert len(set(draws)) == 4
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_check_probability():
    assert check_probability(0.5, "p") == 0.5
    assert check_probability(0.0, "p") == 0.0
    with pytest.raises(ValueError):
        check_probability(-0.1, "p")
    with pytest.raises(ValueError):
        check_probability(1.1, "p")
    with pytest.raises(ValueError):
        check_probability(0.0, "p", inclusive_low=False)


def test_check_opinions_clips_float_noise():
    out = check_opinions(np.array([0.0, 1.0 + 1e-14]))
    assert out.max() <= 1.0
    with pytest.raises(ValueError):
        check_opinions(np.array([1.5]))
    with pytest.raises(ValueError):
        check_opinions(np.array([np.nan]))


def test_check_stubbornness_shape():
    with pytest.raises(ValueError):
        check_stubbornness(np.zeros(3), 4)


def test_check_seed_budget():
    assert check_seed_budget(3, 10) == 3
    with pytest.raises(ValueError):
        check_seed_budget(-1, 10)
    with pytest.raises(ValueError):
        check_seed_budget(11, 10)


def test_check_time_horizon():
    assert check_time_horizon(5) == 5
    with pytest.raises(ValueError):
        check_time_horizon(-1)


def test_timer_measures():
    with Timer() as t:
        sum(range(10_000))
    assert t.elapsed >= 0.0
