"""Fig. 16: RW plurality score and time vs ρ (Twitter Social Distancing).

Expected shape: the score rises sharply at small ρ and flattens from
ρ ≈ 0.9 (the paper's default), while the walk count — and hence runtime —
keeps increasing with ρ.
"""


from benchmarks.conftest import run_once
from repro.eval.experiments import rho_experiment
from repro.eval.reporting import format_series

RHOS = [0.75, 0.8, 0.85, 0.9, 0.95]
K = 10


def test_fig16_rho(benchmark, distancing_ds, save_result):
    out = run_once(
        benchmark,
        lambda: rho_experiment(
            distancing_ds, RHOS, K, rng=47, lambda_cap=None, gamma_floor=0.15
        ),
    )
    save_result(
        "fig16_rho",
        format_series(
            "rho",
            RHOS,
            {"score": out["score"], "time": out["time"], "walks": out["walks"]},
        ),
    )
    # Walk counts are non-decreasing in ρ (Theorem 11's ln(2/(1-ρ)) factor).
    assert all(a <= b for a, b in zip(out["walks"], out["walks"][1:]))
    # Score at the default ρ=0.9 is within noise of the maximum.
    best = max(out["score"])
    assert out["score"][3] >= 0.9 * best
