"""Tests for RR-set generation."""

import numpy as np

from repro.baselines.rrset import rr_set_ic, rr_set_lt
from repro.graph.build import graph_from_edges


def _path_graph(n=5):
    return graph_from_edges(n, list(range(n - 1)), list(range(1, n)))


def test_rr_ic_contains_root():
    g = _path_graph()
    for root in range(5):
        rr = rr_set_ic(g, root, rng=root)
        assert root in rr.tolist()


def test_rr_ic_deterministic_chain_reaches_sources():
    g = _path_graph()
    rr = rr_set_ic(g, 4, rng=0)
    # Every in-edge has probability 1: the RR set is all ancestors.
    assert sorted(rr.tolist()) == [0, 1, 2, 3, 4]


def test_rr_lt_is_a_chain():
    g = _path_graph()
    rr = rr_set_lt(g, 4, rng=1)
    assert 4 in rr.tolist()
    assert sorted(rr.tolist()) == list(range(5 - len(rr), 5))


def test_rr_lt_stops_on_self_loop():
    # Node 0 has only its normalization self-loop.
    g = _path_graph()
    rr = rr_set_lt(g, 0, rng=2)
    assert rr.tolist() == [0]


def test_rr_ic_probability_matches_edge_weight():
    # Node 1 has in-neighbors {0, 3} each with weight 1/2.
    g = graph_from_edges(4, [0, 3, 0], [1, 1, 2])
    rng = np.random.default_rng(3)
    hits = sum(0 in rr_set_ic(g, 1, rng).tolist() for _ in range(4000))
    assert abs(hits / 4000 - 0.5) < 0.03


def test_rr_lt_cycle_terminates():
    g = graph_from_edges(3, [0, 1, 2], [1, 2, 0])
    rr = rr_set_lt(g, 0, rng=4)
    assert len(rr) <= 3
