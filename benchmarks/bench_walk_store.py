"""Walk-store benchmark: shared persistent walks vs regenerate-per-round.

Part 1 — greedy walk reuse.  A ``k``-round exhaustive greedy on
walk-estimated scores run twice: once through an ``rw-store`` engine whose
:class:`~repro.core.walk_store.WalkStore` generates the per-node pool
*once* and serves every round by post-generation truncation of a
copy-on-write view, and once as a regenerate-per-round baseline that draws
a fresh (but identically seeded) pool before every round — the behaviour
of a storeless estimator that cannot keep walks across calls.  Both paths
must select byte-identical seeds (same seeded walks ⇒ same estimates);
the win is measured with the deterministic
:class:`~repro.core.walk_store.StoreStats` generation counters (reverse
walk steps actually sampled), immune to timer noise, and must be ≥ 3x at
``k = 16`` (it is ~``k``x by construction: one generation instead of one
per round).

Part 2 — sweep reuse.  An RS budget sweep (``sketch_select`` at several
``k``) with one shared store vs a private store per budget, the θ ladder
of each call extending the same uniform pool.  Counter-based as well;
recorded for the results archive and the perf-trajectory JSON.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_walk_store.py``;
set ``REPRO_BENCH_TINY=1`` for the CI smoke variant (small graph, k=4 —
the ≥ 3x assertion and the JSON counters still run).
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, BENCH_TINY, run_once
from repro.core.engine import make_engine
from repro.core.greedy import greedy_engine
from repro.core.sketch import sketch_select
from repro.core.walk_store import WalkStore
from repro.datasets.twitter import _twitter_base
from repro.eval.reporting import format_series
from repro.utils.timing import Timer
from repro.voting.scores import CumulativeScore, PluralityScore

TINY = BENCH_TINY
N = 200 if TINY else 800
K = 4 if TINY else 16
WALKS_PER_NODE = 16 if TINY else 32
HORIZON = 20
SWEEP_KS = [2, 4] if TINY else [2, 4, 8, 16]
SWEEP_THETA_CAP = 2_000 if TINY else 8_000
#: Acceptance floor: generating once must beat regenerating per round by
#: at least this factor across the k-round greedy (issue criterion).
MIN_GENERATION_REDUCTION = 3.0


def _sparse_problem(n: int, score):
    dataset = _twitter_base(
        "twitter-social-distancing-sparse",
        ("For Social Distancing", "Against Social Distancing"),
        np.array([0.42, 0.60]),
        n,
        10.0,
        2.5,
        HORIZON,
        BENCH_SEED,
        min_degree=1,
        exponent=2.6,
    )
    problem = dataset.problem(score)
    problem.others_by_user()  # shared input, warmed outside the timers
    return problem


def _store_engine(problem, store=None):
    return make_engine(
        "rw-store",
        problem,
        rng=BENCH_SEED,
        store=store,
        walks_per_node=WALKS_PER_NODE,
        adaptive=False,
        epsilon=None,
    )


def _regenerate_per_round_greedy(problem, k: int):
    """Storeless baseline: a fresh identically-seeded pool every round.

    Each round regenerates the walk collection, replays the committed
    prefix by truncation, and scans all remaining candidates — exactly
    what a one-shot estimator without a persistent store must do.
    Returns ``(seeds, total_generation_steps)``.
    """
    selected: list[int] = []
    remaining = np.arange(problem.n)
    steps = 0
    for _ in range(k):
        store = WalkStore(problem.state, problem.horizon, seed=BENCH_SEED)
        engine = _store_engine(problem, store=store)
        for seed in selected:  # replay the committed prefix
            engine.walks.add_seed(seed)
        gains = engine.optimizer.marginal_gains()[remaining]
        idx = int(np.argmax(gains))
        selected.append(int(remaining[idx]))
        remaining = np.delete(remaining, idx)
        steps += store.stats.generation_work()
    return selected, steps


def _greedy_rounds() -> dict[str, float]:
    problem = _sparse_problem(N, PluralityScore())
    shared = WalkStore(problem.state, problem.horizon, seed=BENCH_SEED)
    with Timer() as store_timer:
        engine = _store_engine(problem, store=shared)
        result = greedy_engine(engine, K, lazy=False)
    store_steps = shared.stats.generation_work()
    with Timer() as regen_timer:
        regen_seeds, regen_steps = _regenerate_per_round_greedy(problem, K)
    assert result.seeds.tolist() == regen_seeds, "selection diverged"
    return {
        "store_steps": float(store_steps),
        "regen_steps": float(regen_steps),
        "reduction_x": regen_steps / max(store_steps, 1),
        "store_s": store_timer.elapsed,
        "regen_s": regen_timer.elapsed,
        "index_builds": float(shared.stats.index_builds),
    }


def _sweep_rounds() -> dict[str, float]:
    problem = _sparse_problem(N, CumulativeScore())
    shared = WalkStore(problem.state, problem.horizon, seed=BENCH_SEED)
    for k in SWEEP_KS:
        sketch_select(
            problem,
            k,
            epsilon=0.3,
            theta_cap=SWEEP_THETA_CAP,
            rng=BENCH_SEED,
            store=shared,
        )
    shared_steps = shared.stats.generation_work()
    private_steps = 0
    for k in SWEEP_KS:
        private = WalkStore(problem.state, problem.horizon, seed=BENCH_SEED)
        sketch_select(
            problem,
            k,
            epsilon=0.3,
            theta_cap=SWEEP_THETA_CAP,
            rng=BENCH_SEED,
            store=private,
        )
        private_steps += private.stats.generation_work()
    return {
        "sweep_shared_steps": float(shared_steps),
        "sweep_private_steps": float(private_steps),
        "sweep_reduction_x": private_steps / max(shared_steps, 1),
    }


def test_walk_store_generation_work_reduction(
    benchmark, save_result, save_bench_json
):
    rows = run_once(benchmark, lambda: {**_greedy_rounds(), **_sweep_rounds()})
    series = {
        "store walk-steps": [rows["store_steps"]],
        "regenerate walk-steps": [rows["regen_steps"]],
        "generation reduction (x)": [rows["reduction_x"]],
        "store wall (s)": [rows["store_s"]],
        "regenerate wall (s)": [rows["regen_s"]],
        "sweep shared steps": [rows["sweep_shared_steps"]],
        "sweep private steps": [rows["sweep_private_steps"]],
        "sweep reduction (x)": [rows["sweep_reduction_x"]],
    }
    if not TINY:  # don't let the CI smoke run clobber the full-size archive
        save_result(
            "walk_store",
            "rw-store greedy (plurality, k=%d, λ=%d/node) and RS sweep "
            "(cumulative, k in %s), sparse retweet graph, t=%d:\n%s"
            % (
                K,
                WALKS_PER_NODE,
                SWEEP_KS,
                HORIZON,
                format_series("n", [N], series),
            ),
        )
    save_bench_json(
        "walk_store",
        {
            "generation_reduction_x": {
                "value": rows["reduction_x"],
                "higher_is_better": True,
            },
            "store_walk_steps": {
                "value": rows["store_steps"],
                "higher_is_better": False,
            },
            "sweep_reduction_x": {
                "value": rows["sweep_reduction_x"],
                "higher_is_better": True,
            },
        },
    )
    assert rows["reduction_x"] >= MIN_GENERATION_REDUCTION, (
        f"walk-store generation reduction only {rows['reduction_x']:.2f}x "
        f"across a k={K} greedy (floor {MIN_GENERATION_REDUCTION}x)"
    )
    assert rows["sweep_reduction_x"] > 1.0
