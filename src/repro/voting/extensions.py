"""Additional voting scores beyond the paper's five (§IX future work).

The paper's positional framework (Eq. 6) directly accommodates classic
positional rules; this module instantiates two standard ones from social
choice theory so downstream users can experiment with richer winning
criteria:

* **Borda** — position weights ``(r-1, r-2, ..., 0) / (r-1)`` over all
  positions; the archetypal positional rule.
* **Dowdall / harmonic** — weights ``1/i`` for position ``i``; used in
  Nauru's parliamentary elections, heavier-headed than Borda.

Both inherit the monotonicity (non-decreasing in the seed set) of all
positional scores and the non-submodularity of the plurality family, and
both work with every solver (DM greedy, sandwich, RW, RS) out of the box
because they are :class:`PositionalPApprovalScore` instances.
"""

from __future__ import annotations

import numpy as np

from repro.voting.scores import PositionalPApprovalScore


class BordaScore(PositionalPApprovalScore):
    """Borda count over opinion rankings, normalized to [0, 1] weights."""

    name = "borda"

    def __init__(self, r: int) -> None:
        if r < 2:
            raise ValueError("Borda needs at least 2 candidates")
        weights = np.arange(r - 1, -1, -1, dtype=np.float64) / (r - 1)
        super().__init__(p=r, weights=weights)
        self.r = int(r)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BordaScore(r={self.r})"


class DowdallScore(PositionalPApprovalScore):
    """Dowdall (harmonic) positional rule: weight 1/i at position i."""

    name = "dowdall"

    def __init__(self, r: int) -> None:
        if r < 1:
            raise ValueError("Dowdall needs at least 1 candidate")
        weights = 1.0 / np.arange(1, r + 1, dtype=np.float64)
        super().__init__(p=r, weights=weights)
        self.r = int(r)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DowdallScore(r={self.r})"
