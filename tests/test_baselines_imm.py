"""Tests for the IMM baseline."""

import numpy as np
import pytest

from repro.baselines.cascade import expected_spread
from repro.baselines.imm import IMMResult, imm, max_coverage
from repro.graph.build import graph_from_edges


def test_max_coverage_simple():
    rr_sets = [np.array([0, 1]), np.array([1, 2]), np.array([3])]
    seeds, frac = max_coverage(rr_sets, 4, 1)
    assert seeds.tolist() == [1]
    assert frac == pytest.approx(2 / 3)


def test_max_coverage_pads_when_everything_covered():
    rr_sets = [np.array([0])]
    seeds, frac = max_coverage(rr_sets, 4, 3)
    assert seeds.size == 3
    assert frac == 1.0
    assert 0 in seeds.tolist()


def test_imm_identifies_dominant_hub():
    # Star: hub 0 -> 20 leaves with probability-1 edges.
    n = 21
    g = graph_from_edges(n, [0] * 20, list(range(1, 21)))
    result = imm(g, 1, model="ic", epsilon=0.5, rng=0, theta_cap=20_000)
    assert isinstance(result, IMMResult)
    assert result.seeds.tolist() == [0]
    assert result.spread_estimate == pytest.approx(n, rel=0.1)


def test_imm_lt_runs_and_is_sane():
    rng = np.random.default_rng(1)
    g = graph_from_edges(30, rng.integers(0, 30, 120), rng.integers(0, 30, 120))
    result = imm(g, 3, model="lt", epsilon=0.5, rng=2, theta_cap=20_000)
    assert result.seeds.size == 3
    assert len(set(result.seeds.tolist())) == 3


def test_imm_spread_estimate_close_to_monte_carlo():
    rng = np.random.default_rng(3)
    g = graph_from_edges(25, rng.integers(0, 25, 100), rng.integers(0, 25, 100))
    result = imm(g, 2, model="ic", epsilon=0.3, rng=4, theta_cap=50_000)
    mc = expected_spread(g, result.seeds, model="ic", mc_runs=2000, rng=5)
    assert result.spread_estimate == pytest.approx(mc, rel=0.15)


def test_imm_validation():
    g = graph_from_edges(5, [0], [1])
    with pytest.raises(ValueError):
        imm(g, 2, model="sir")
    with pytest.raises(ValueError):
        imm(g, 2, epsilon=0.0)
    with pytest.raises(ValueError):
        imm(g, 9)
