"""Multiprocess fan-out over the batched DM engine (``--engine dm-mp``).

:class:`MultiprocessDMEngine` shards the candidate columns that
:meth:`~repro.core.engine.BatchedDMEngine._evolve_blocks` would evolve in
one process across a persistent pool of worker processes.  Per-candidate
delta evolutions are independent (each column of the ``(n, C)`` delta
matrix depends only on its own pinned seeds), so a greedy round splits into
``workers`` contiguous candidate chunks that evolve and score concurrently;
the parent concatenates the per-chunk score vectors in chunk order, which
keeps selections byte-identical to :class:`~repro.core.engine.BatchedDMEngine`
no matter how many workers run.

Problem state is shipped once per worker, at pool start: under the
``fork`` start method the matrices are inherited copy-on-write for free,
under ``forkserver``/``spawn`` the pickled
:class:`~repro.core.problem.FJVoteProblem` (minus its session-specific
seeded-trajectory cache, see ``FJVoteProblem.__getstate__``) travels with
the ``Process`` arguments.  Each worker builds its own private
:class:`BatchedDMEngine` from it — per-round messages then carry only seed
id chunks and score vectors, never matrices.

Transports (the data plane)
---------------------------
Every message still rides a pipe, but *what* rides it is transport-
dependent:

``"pipe"`` (default)
    Arrays are pickled into the message: candidate chunks out, score
    vectors back.  Zero setup cost, pays the serialization tax per round.
``"shm"`` (``dm-mp:<W>:shm``)
    A :class:`~repro.core.shm.ShmArena` maps the data plane once: the
    problem's CSR matrices and shareable caches are written to shared
    memory at pool start (workers rebuild the problem from zero-copy
    views via :meth:`~repro.core.problem.FJVoteProblem.from_shared_arrays`),
    request arrays land in per-worker slabs, workers write score vectors
    and dense ``target_opinion_rows`` blocks straight into preallocated
    reply slabs, and each session commit publishes the parent's committed
    trajectory through a single shared slab that every worker adopts by
    one memcpy instead of replaying the extension.  Messages shrink to
    ``(segment, dtype, shape, offset)`` tuples.

The serialization tax is measured, not guessed:
:attr:`~repro.core.engine.EngineStats.ipc_bytes` counts every byte the
parent actually moves through worker pipes (both directions; the engine
frames messages itself, so the counter is exact and deterministic).
``benchmarks/bench_data_plane.py`` asserts the shm transport cuts it
>= 5x per greedy round at n=2000 — in practice the reduction is orders of
magnitude, since shm messages no longer scale with ``n``.  Segment
lifecycle is guarded three ways (explicit ``close``, ``weakref.finalize``
on garbage collection, interpreter-exit finalization), so crashed rounds
cannot leak ``/dev/shm`` segments.

Selection sessions fan out too: :class:`MultiprocessDMSession` keeps the
parent-side committed trajectory (for values and win-min prefix probes)
exactly like its base class, and *broadcasts* every ``commit`` to the pool
so each worker folds the chosen seed into a worker-local committed
trajectory — by the same one-column extension the parent performs under
``pipe``, or by adopting the parent's trajectory from the commit slab
under ``shm``; bitwise the same state either way.  A worker that missed a
broadcast (e.g. the pool started mid-session) rebuilds the committed
trajectory lazily from the ``(base, seeds)`` pair every fan-out message
carries, replaying the commit sequence so the rebuilt trajectory is still
bitwise identical.

On a single-core host the fan-out cannot beat the in-process engine on
wall-clock — IPC overhead buys nothing — but the sharding itself is
measurable either way: ``benchmarks/bench_engine_mp.py`` asserts on the
deterministic per-worker :class:`~repro.core.engine.EngineStats` counters
(critical-path dense column-steps), which translate to wall-clock on
multi-core hardware where each worker owns a memory domain.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
from typing import Iterable, Sequence

import numpy as np

from repro.core import faults
from repro.core.engine import (
    BatchedDMEngine,
    BatchedDMSession,
    EngineStats,
    SeedSet,
)
from repro.core.problem import FJVoteProblem
from repro.utils.workers import stop_worker_pool

#: Work counters folded from worker deltas into the parent's ``stats``
#: (and per-worker into ``worker_stats``).  Probe accounting
#: (``evaluate_calls`` / ``sets_evaluated``) is *not* in this list: the
#: parent counts probes itself, exactly as the single-process engine
#: would, so the counters stay comparable across worker counts.  Workers
#: reply with these counters as a plain tuple in this order.
_EVOLUTION_COUNTERS = (
    "sparse_steps",
    "sparse_nnz",
    "dense_column_steps",
    "trajectory_steps",
    "repin_steps",
    "repin_inserted",
    "repin_rebuilds",
)

#: Worker-local committed trajectories kept per worker (FIFO eviction);
#: mirrors ``FJVoteProblem.SEEDED_TRAJECTORY_CACHE``.
_WORKER_SESSION_CACHE = 8

#: Delta broadcasts remembered for journal replay onto respawned workers.
#: Replay is idempotent (``_worker_apply_delta`` early-outs on current
#: versions), so the cap bounds memory, not correctness.
_DELTA_JOURNAL_CAP = 4

#: One identical message per worker; a lost worker's copy is dropped, not
#: re-dispatched (survivors already received theirs, and a respawned
#: worker recovers the state from the journal replay / lazy rebuild).
_BROADCAST_OPS = frozenset({"ping", "commit", "delta", "adopt"})

#: Supported message transports (the ``dm-mp:<W>:shm`` spec suffix).
TRANSPORTS = ("pipe", "shm")

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
_STOP_BYTES = pickle.dumps(("stop",), _PICKLE_PROTOCOL)

#: Tag marking a message field as a shared-memory array reference
#: ``("@shm", segment, dtype, shape, offset)`` instead of inline data.
_SHM_TAG = "@shm"


def _send_message(conn, message: tuple) -> int:
    """Frame and send one message; returns its exact serialized size.

    The engine pickles messages itself (``send_bytes``) so the
    ``ipc_bytes`` accounting measures precisely what crosses the pipe.
    """
    payload = pickle.dumps(message, _PICKLE_PROTOCOL)
    conn.send_bytes(payload)
    return len(payload)


def _recv_message(conn) -> tuple[tuple, int]:
    """Receive one framed message; returns ``(message, serialized size)``."""
    payload = conn.recv_bytes()
    return pickle.loads(payload), len(payload)


def _flatten_sets(sets: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Pack a list of (normalized) seed-id arrays into two flat arrays.

    Pickling many tiny ndarrays costs ~150 bytes of framing *each*; one
    ``(lengths, values)`` pair costs two headers however many sets ride
    along — and maps into a request slab as two contiguous writes.
    """
    lengths = np.array([s.size for s in sets], dtype=np.int64)
    if sets:
        values = np.concatenate(sets).astype(np.int64, copy=False)
    else:
        values = np.empty(0, dtype=np.int64)
    return lengths, values


def _split_sets(lengths: np.ndarray, values: np.ndarray) -> list[np.ndarray]:
    """Inverse of :func:`_flatten_sets` (copies: slabs are reused)."""
    bounds = np.cumsum(np.asarray(lengths, dtype=np.int64))[:-1]
    return [
        np.array(chunk, dtype=np.int64)
        for chunk in np.split(np.asarray(values, dtype=np.int64), bounds)
    ]


def _resolve(value, attach):
    """Materialize a message field: shm refs become views, data passes."""
    if (
        attach is not None
        and isinstance(value, tuple)
        and value
        and value[0] == _SHM_TAG
    ):
        return attach.array(value[1:])
    return value


def _unique_graphs(state) -> list:
    """Deduplicated graphs in first-occurrence order (the gid order of
    ``FJVoteProblem.share_arrays``) — parent and workers derive identical
    gids from their own state, so delta broadcasts can address graphs by
    gid without shipping object identities."""
    seen: dict[int, None] = {}
    graphs = []
    for graph in state.graphs:
        if id(graph) not in seen:
            seen[id(graph)] = None
            graphs.append(graph)
    return graphs


def _worker_apply_delta(
    problem: FJVoteProblem,
    engine: BatchedDMEngine,
    sessions: dict,
    report,
    columns_by_gid,
    opinions,
    new_refs,
    attach,
) -> None:
    """Fold a parent delta broadcast into the worker's problem and engine.

    Shared-memory workers only re-map structurally changed matrices
    (``new_refs``) — data-only patches already landed in the mapped
    segments — and adopt versions/cache drops via ``note_external_delta``.
    Pipe workers splice the shipped post-delta columns and opinion rows
    into their private arrays (never re-running the surgery: the parent
    ships final bytes, keeping worker state bit-identical).  Idempotent
    per problem version, so a re-broadcast is a no-op.
    """
    if (
        problem.graph_version >= report.graph_version
        and problem.opinion_version >= report.opinion_version
    ):
        return
    graphs = _unique_graphs(problem.state)
    if attach is not None:
        if new_refs:
            from scipy import sparse

            for gid_key, refs in new_refs.items():
                graph = graphs[int(gid_key)]
                parts = {}
                matrix_kinds = (
                    ("csr", sparse.csr_matrix),
                    ("csc", sparse.csc_matrix),
                )
                for orient, kind in matrix_kinds:
                    parts[orient] = kind(
                        (
                            attach.array(refs[f"{orient}.data"][1:]),
                            attach.array(refs[f"{orient}.indices"][1:]),
                            attach.array(refs[f"{orient}.indptr"][1:]),
                        ),
                        shape=(problem.n, problem.n),
                        copy=False,
                    )
                graph._csr = parts["csr"]
                graph._csc = parts["csc"]
        problem.note_external_delta(report)
    else:
        if columns_by_gid:
            for gid_key, columns in columns_by_gid.items():
                graphs[int(gid_key)].adopt_columns(
                    columns, graphs[int(gid_key)].version + 1
                )
        if opinions:
            b0 = problem.state.initial_opinions
            b0.setflags(write=True)
            try:
                for q, nodes, values in opinions:
                    b0[int(q), np.asarray(nodes, dtype=np.int64)] = values
            finally:
                b0.setflags(write=False)
        # Versions/caches: same selective invalidation as the shm path
        # (graph versions were already advanced by adopt_columns).
        problem.graph_version = report.graph_version
        problem.opinion_version = report.opinion_version
        dirty = set(report.touched_by_candidate) | set(
            report.opinions_by_candidate
        )
        if problem.target in dirty:
            problem._base_target = None
            problem._base_trajectory = None
            problem._seeded_trajectories.clear()
        if dirty - {problem.target}:
            problem._competitors = None
            problem._others_by_user = None
    if report.target_touched(problem.target).size:
        engine._build_wt_scaled()
    dirty = set(report.touched_by_candidate) | set(report.opinions_by_candidate)
    if problem.target in dirty:
        for state in sessions.values():
            state["traj"] = None  # rebuilt lazily from the seed sequence


def _rebuild_session(engine: BatchedDMEngine, base: tuple, seeds: tuple) -> dict:
    """Worker-side committed state for a session, rebuilt from scratch.

    Replays the exact commit sequence a :class:`BatchedDMSession` performs
    — base trajectory, then one single-seed extension per commit — so the
    rebuilt trajectory is bitwise identical to the parent's regardless of
    whether the worker saw the individual commit broadcasts.
    """
    traj = engine.problem.target_trajectory(tuple(base))
    committed = list(base)
    for seed in list(seeds)[len(base) :]:
        traj = engine.extend_trajectory(
            traj,
            np.asarray(committed, dtype=np.int64),
            np.array([seed], dtype=np.int64),
        )
        committed.append(int(seed))
    return {"seeds": list(seeds), "traj": traj}


def _store_session(sessions: dict, sid: int, state: dict) -> None:
    """Insert session state with the FIFO eviction cap."""
    evict = [k for k in sessions if k != sid]
    while len(evict) + 1 > _WORKER_SESSION_CACHE:
        sessions.pop(evict.pop(0))
    sessions[sid] = state


def _worker_session(
    engine: BatchedDMEngine, sessions: dict, sid: int, base: tuple, seeds: tuple
) -> dict:
    """Fetch (or lazily rebuild) the worker's state for session ``sid``."""
    state = sessions.get(sid)
    if state is None or state["seeds"] != list(seeds) or state["traj"] is None:
        state = _rebuild_session(engine, base, seeds)
        _store_session(sessions, sid, state)
    return state


def _worker_main(conn, problem_payload, engine_kwargs: dict, shm_info=None) -> None:
    """Process-pool worker: build the private engine, run the shared loop.

    ``problem_payload`` is the problem itself (pipe transport) or the
    ``(skeleton, array refs)`` pair of
    :meth:`FJVoteProblem.share_arrays` (shm transport: the worker maps the
    arrays and rebuilds the problem around zero-copy views).  The command
    dispatch itself lives in :func:`_worker_loop`, shared with the TCP
    net-worker of :mod:`repro.core.engine_net` — same ops, same framed
    replies, whatever carries the bytes.
    """
    attach = None
    commit_view = None
    if shm_info is not None:
        from repro.core.shm import ShmAttachments

        attach = ShmAttachments()
        skeleton, refs = problem_payload
        arrays = {key: attach.array(ref) for key, ref in refs.items()}
        problem = FJVoteProblem.from_shared_arrays(skeleton, arrays)
        commit_view = attach.array(shm_info["commit"])
    else:
        problem = problem_payload
    engine = BatchedDMEngine(problem, **engine_kwargs)
    try:
        _worker_loop(
            conn,
            problem,
            engine,
            attach=attach,
            commit_view=commit_view,
            watch_parent=True,
        )
    finally:
        if attach is not None:
            attach.close()


def _worker_loop(
    conn,
    problem: FJVoteProblem,
    engine: BatchedDMEngine,
    *,
    attach=None,
    commit_view=None,
    watch_parent: bool = True,
) -> None:
    """The dm-mp worker command loop, transport-agnostic.

    ``conn`` is anything with the ``mp.Connection`` byte surface
    (``recv_bytes`` / ``send_bytes`` / ``poll``): a worker-pool pipe end
    or the net-worker's framed TCP socket.  Every reply carries the delta
    of the worker engine's evolution counters (as a tuple ordered like
    ``_EVOLUTION_COUNTERS``) so the parent can account the work each
    worker actually performed; payload arrays are written into the reply
    slab the request names (shm) or pickled into the ack.

    ``watch_parent`` enables the orphan watchdog for forked pool members;
    net workers serve a remote coordinator whose death arrives as plain
    EOF instead.
    """
    sessions: dict[int, dict] = {}
    # Workers forked later inherit duplicates of earlier workers'
    # parent-side pipe fds, so a SIGKILLed parent does *not* deliver EOF
    # to every sibling — watch for orphaning (reparenting) instead, or
    # the pool (and via its held fds, the resource tracker's shm
    # cleanup) outlives a crashed server.
    parent_pid = os.getppid() if watch_parent else None
    while True:
        try:
            if watch_parent:
                orphaned = False
                while not conn.poll(1.0):
                    if os.getppid() != parent_pid:
                        orphaned = True
                        break
                if orphaned:
                    break
            message = pickle.loads(conn.recv_bytes())
        except (EOFError, KeyboardInterrupt, OSError):
            break
        op = message[0]
        if op == "stop":
            break
        try:
            engine.stats.reset()
            result = None
            payload = None
            reply_ref = None
            if op == "ping":
                result = (os.getpid(), mp.current_process().name)
            elif op == "chunk":
                _, lengths, values, reply_ref = message
                sets = _split_sets(_resolve(lengths, attach), _resolve(values, attach))
                # ``evaluate`` (not ``_chunked_scores``) so a net worker
                # hosting its own dm-mp pool fans the chunk out again;
                # results are bitwise identical either way.
                payload = engine.evaluate(sets)
            elif op == "ext":
                _, sid, base, seeds, cand, reply_ref = message
                cand = np.asarray(_resolve(cand, attach), dtype=np.int64)
                state = _worker_session(engine, sessions, sid, base, seeds)
                payload = engine.extension_values(
                    state["traj"], np.asarray(seeds, dtype=np.int64), cand
                )
            elif op == "extrows":
                # Like "ext" but unscored: the (chunk, n) horizon rows go
                # back so the parent scores each through the canonical
                # width-1 path (batch-stable serving responses).
                _, sid, base, seeds, cand, reply_ref = message
                cand = np.asarray(_resolve(cand, attach), dtype=np.int64)
                state = _worker_session(engine, sessions, sid, base, seeds)
                payload = engine.extension_rows(
                    state["traj"], np.asarray(seeds, dtype=np.int64), cand
                )
            elif op == "rows":
                _, lengths, values, reply_ref = message
                sets = _split_sets(_resolve(lengths, attach), _resolve(values, attach))
                payload = engine.target_opinion_rows(sets)
            elif op == "delta":
                _, report, columns_by_gid, opinions, new_refs = message
                _worker_apply_delta(
                    problem,
                    engine,
                    sessions,
                    report,
                    columns_by_gid,
                    opinions,
                    new_refs,
                    attach,
                )
            elif op == "commit":
                _, sid, base, before, seed = message
                if commit_view is not None:
                    # The slab holds the parent's full committed
                    # trajectory: adopting it by copy is bitwise the
                    # parent's state and heals missed broadcasts too.
                    _store_session(
                        sessions,
                        sid,
                        {
                            "seeds": list(before) + [int(seed)],
                            "traj": commit_view.copy(),
                        },
                    )
                else:
                    state = sessions.get(sid)
                    if (
                        state is not None
                        and state["traj"] is not None
                        and state["seeds"] == list(before)
                    ):
                        state["traj"] = engine.extend_trajectory(
                            state["traj"],
                            np.asarray(before, dtype=np.int64),
                            np.array([seed], dtype=np.int64),
                        )
                        state["seeds"].append(int(seed))
                    else:
                        # Missed or out-of-order broadcast: remember the
                        # seed sequence, rebuild lazily on the next
                        # fan-out.
                        sessions[sid] = {
                            "seeds": list(before) + [int(seed)],
                            "traj": None,
                        }
            elif op == "adopt":
                # Journal replay onto a respawned worker: register the
                # session's committed seed sequence; the trajectory is
                # rebuilt lazily (``_rebuild_session`` replays the exact
                # commit sequence, so it is bitwise the parent's state).
                _, sid, base, seeds = message
                _store_session(
                    sessions, sid, {"seeds": list(seeds), "traj": None}
                )
            else:
                raise ValueError(f"unknown dm-mp worker op {op!r}")
            stats = tuple(
                int(getattr(engine.stats, name)) for name in _EVOLUTION_COUNTERS
            )
            if payload is not None and reply_ref is not None and attach is not None:
                view = attach.array(reply_ref[1:])
                view[...] = payload
                payload = None
            out = result if payload is None else payload
            conn.send_bytes(pickle.dumps(("ok", out, stats), _PICKLE_PROTOCOL))
        except Exception as exc:  # pragma: no cover - worker-side failures
            import traceback

            conn.send_bytes(
                pickle.dumps(
                    ("err", f"{exc}\n{traceback.format_exc()}", None),
                    _PICKLE_PROTOCOL,
                )
            )


class _WorkerHandle:
    """One pool member: the process and the parent end of its pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class MultiprocessDMSession(BatchedDMSession):
    """Warm-started session whose commits are broadcast to the worker pool.

    The parent keeps the committed trajectory exactly like
    :class:`BatchedDMSession` (values, ``gain=None`` commits and win-min
    prefix probes are single-column work, cheapest done locally); each
    round's ``marginal_gains`` fans the candidate chunks out with the
    session id, and each ``commit`` tells every worker to fold the chosen
    seed into its local copy of the committed trajectory (under the shm
    transport the parent's trajectory is published through the commit
    slab, so workers adopt it by one memcpy).
    """

    def __init__(self, engine: "MultiprocessDMEngine", base: SeedSet = ()) -> None:
        super().__init__(engine, base)
        self._base = tuple(self._seeds)
        self._sid = engine._next_session_id()

    def marginal_gains(self, candidates: SeedSet) -> np.ndarray:
        self._ensure_fresh()  # a delta may have scheduled a lazy rebuild
        values = self.engine.session_extension_values(
            self._sid, self._base, tuple(self._seeds), self._traj, candidates
        )
        return values - self._value

    def coalesced_gains(self, candidates: SeedSet) -> np.ndarray:
        """Batch-stable gains over the pool: fanned rows, parent scoring.

        Workers return unscored extension rows (bitwise identical to the
        single-process engine's at every worker count); the parent scores
        each through the canonical width-1 path, so coalesced responses
        match serial ones byte for byte across transports and pool sizes.
        """
        self._ensure_fresh()
        rows = self.engine.session_extension_rows(
            self._sid, self._base, tuple(self._seeds), self._traj, candidates
        )
        values = np.array(
            [self.engine.score_target_row(row) for row in rows],
            dtype=np.float64,
        )
        return values - self._value

    def commit(self, seed: int, *, gain: float | None = None) -> float:
        before = tuple(self._seeds)
        value = super().commit(seed, gain=gain)
        self.engine.broadcast_commit(
            self._sid, self._base, before, int(seed), self._traj
        )
        return value

    def _on_delta(self, report, mode: str = "auto") -> None:
        # Workers rebuild their committed trajectories from the seed
        # sequence after a delta, so the parent must rebuild too: a
        # patched (floating-point-corrected) parent trajectory would
        # disagree bitwise with the worker-side rebuilds that fanned-out
        # rounds read from.
        super()._on_delta(report, "rebuild")


class MultiprocessDMEngine(BatchedDMEngine):
    """Exact DM evaluation sharded across a persistent process pool.

    Parameters
    ----------
    problem:
        The FJ-Vote instance (shipped to each worker once, at pool start).
    workers:
        Pool size (the ``dm-mp:<workers>`` CLI suffix); must be >= 1.
    start_method:
        ``multiprocessing`` start method: ``"fork"`` (default where
        available — matrices are inherited for free), ``"forkserver"`` or
        ``"spawn"`` (the problem is pickled to the worker instead, or
        mapped from shared memory under the shm transport).
    transport:
        ``"pipe"`` (default) pickles payload arrays into the messages;
        ``"shm"`` (the ``dm-mp:<W>:shm`` spec suffix) maps the problem,
        request/reply payloads and commit broadcasts through a
        :class:`~repro.core.shm.ShmArena` so only array descriptors cross
        the pipe — see the module docstring.  Results are bitwise
        identical either way; :attr:`EngineStats.ipc_bytes` measures the
        difference.
    min_fanout:
        Below this many seed sets per call the parent — itself a full
        batched engine holding the same state — evaluates locally: a CELF
        stale-entry refresh is one column, not worth a round-trip.
        Results are bitwise identical either way.  Default ``2 * workers``.
    kwargs:
        Forwarded to :class:`BatchedDMEngine` in the parent *and* every
        worker (``batch_rows``, ``densify_threshold``, ``repin``, ...).

    The pool starts lazily on the first fanned-out call and is released by
    :meth:`close` (also via ``with``, garbage collection, or interpreter
    exit — shared-memory segments are additionally guarded by
    ``weakref.finalize``, so a crashed worker or an abandoned engine never
    leaks ``/dev/shm``).  The engine keeps per-worker
    :class:`EngineStats` in ``worker_stats`` — the max dense-column-step
    share across workers is the round's critical path, the deterministic
    scaling metric of ``benchmarks/bench_engine_mp.py``.
    """

    def __init__(
        self,
        problem: FJVoteProblem,
        *,
        workers: int = 2,
        start_method: str | None = None,
        min_fanout: int | None = None,
        transport: str = "pipe",
        **kwargs: object,
    ) -> None:
        super().__init__(problem, **kwargs)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"dm-mp needs at least one worker, got {workers}")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        self.workers = workers
        self.transport = str(transport)
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = str(start_method)
        self.min_fanout = (
            2 * workers if min_fanout is None else max(1, int(min_fanout))
        )
        self.worker_stats = [EngineStats() for _ in range(workers)]
        #: Fan-out rounds dispatched and wall time spent inside them,
        #: cumulative across pool restarts (``pool_stats`` derives idle
        #: time from the pool's uptime).
        self.pool_rounds = 0
        self.pool_busy_s = 0.0
        self._pool_started: float | None = None
        self._engine_kwargs = dict(kwargs)
        self._handles: list[_WorkerHandle] | None = None
        self._session_counter = 0
        self._arena = None
        self._request_slabs = None
        self._reply_slabs = None
        self._commit_view: np.ndarray | None = None
        self._shared_refs: dict | None = None
        self._shm_info: dict | None = None
        #: Supervision state: worker slots detected dead (healed by
        #: respawn at the next dispatch) and the coordinator-side journal
        #: a respawned worker replays — committed seed sequences per live
        #: session plus the recent delta broadcasts.
        self._dead: set[int] = set()
        self._session_journal: dict[int, tuple[tuple, tuple]] = {}
        self._delta_journal: list[tuple] = []

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> list[_WorkerHandle]:
        if self._handles is None:
            ctx = mp.get_context(self.start_method)
            problem_payload = self.problem
            shm_info = None
            if self.transport == "shm":
                from repro.core.shm import ShmArena, ShmSlab

                arena = ShmArena()
                skeleton, arrays = self.problem.share_arrays()
                refs = {key: arena.share_array(a) for key, a in arrays.items()}
                problem_payload = (skeleton, refs)
                # Retained so a later delta broadcast can patch the mapped
                # problem arrays in place (or re-share structurally
                # changed ones) instead of re-shipping the problem.
                self._shared_refs = refs
                shape = (self.problem.horizon + 1, self.problem.n)
                segment = arena.create(8 * shape[0] * shape[1])
                self._commit_view = np.ndarray(
                    shape, dtype=np.float64, buffer=segment.buf
                )
                shm_info = {
                    "commit": (segment.name, np.dtype(np.float64).str, shape, 0)
                }
                self._arena = arena
                self._request_slabs = [ShmSlab(arena) for _ in range(self.workers)]
                self._reply_slabs = [ShmSlab(arena) for _ in range(self.workers)]
            self._shm_info = shm_info
            self._handles = [
                self._spawn_worker(ctx, problem_payload, shm_info)
                for _ in range(self.workers)
            ]
            self._dead = set()
            self._pool_started = time.monotonic()
        return self._handles

    def _spawn_worker(self, ctx, problem_payload, shm_info) -> _WorkerHandle:
        """Start one pool member and hand back its handle."""
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, problem_payload, self._engine_kwargs, shm_info),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(process, parent_conn)

    def close(self) -> None:
        """Stop the pool and unlink its shm segments (idempotent).

        Robust to workers that died mid-round: sends are guarded, joins
        escalate ``join -> terminate -> kill`` with bounded timeouts so a
        dead or wedged pipe can never hang the caller, and the arena
        teardown runs in a ``finally`` (it is additionally guarded by
        ``weakref.finalize``, so even a close that never runs cannot leak
        segments).  The engine restarts lazily if used again.
        """
        handles, self._handles = self._handles, None
        arena, self._arena = self._arena, None
        self._pool_started = None
        self._request_slabs = None
        self._reply_slabs = None
        self._commit_view = None
        self._shared_refs = None
        self._shm_info = None
        self._dead = set()
        try:
            if handles:
                stop_worker_pool(
                    handles, lambda conn: conn.send_bytes(_STOP_BYTES)
                )
        finally:
            if arena is not None:
                arena.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    def ping(self) -> list[tuple[int, str]]:
        """Round-trip every worker; returns ``(pid, process name)`` pairs."""
        return self._run([("ping",)] * self.workers)

    def pool_stats(self) -> dict[str, object]:
        """Live pool accounting (the serving layer's ``stats`` op).

        ``rounds`` counts fan-out dispatches, ``busy_s`` the wall time
        spent inside them, ``idle_s`` the remainder of the running pool's
        uptime.  ``shm_segments`` names the arena's live segments — the
        serving crash tests poll these to prove a killed server leaks
        nothing.  Round/busy counters are cumulative across pool
        restarts; only the uptime window resets.
        """
        started = self._handles is not None
        uptime = 0.0
        if started and self._pool_started is not None:
            uptime = time.monotonic() - self._pool_started
        busy = float(self.pool_busy_s)
        segments: list[str] = []
        if self._arena is not None:
            segments = sorted(self._arena.names)
        return {
            "backend": type(self).__name__,
            "workers": self.workers,
            "transport": self.transport,
            "started": started,
            "rounds": int(self.pool_rounds),
            "busy_s": round(busy, 6),
            "idle_s": round(max(uptime - busy, 0.0), 6),
            "shm_segments": segments,
            "workers_lost": int(self.stats.workers_lost),
            "workers_respawned": int(self.stats.workers_respawned),
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _run(self, messages: Sequence[tuple], pending: Sequence | None = None) -> list:
        """Supervised dispatch: send, gather, survive worker deaths.

        Workers compute concurrently — all sends complete before the first
        receive — and replies are folded into ``stats`` / ``worker_stats``.
        ``pending[i]``, when set, names the reply-slab region reserved for
        message ``i`` (the shm transport); the result is copied out of the
        slab on receipt.  Every byte actually crossing a pipe, in either
        direction, lands in ``stats.ipc_bytes``.

        A worker whose pipe fails mid-round (EOF, broken pipe) is marked
        lost (``stats.workers_lost``): its chunked message re-dispatches
        to a survivor in the same round (``stats.chunks_resharded`` —
        slots are kept, so ``results[i]`` always answers ``messages[i]``
        and the chunk-order concatenation never observes the loss), while
        broadcast copies are simply dropped.  Dead slots are healed by
        :meth:`_respawn_worker` at the start of the next dispatch, so the
        pool returns to full strength with journal-replayed state.  A
        worker-side ``err`` status still raises — the evaluation itself
        failed on a live worker and would fail anywhere.
        """
        handles = self._ensure_pool()
        self._heal_pool()
        self._inject_worker_faults()
        round_start = time.monotonic()
        try:
            messages = list(messages)
            results: dict[int, object] = {}
            failed: list[int] = []
            dispatched: list[tuple[int, _WorkerHandle]] = []
            for index, message in enumerate(messages):
                if index in self._dead:
                    failed.append(index)
                    continue
                handle = handles[index]
                try:
                    self.stats.ipc_bytes += _send_message(handle.conn, message)
                    dispatched.append((index, handle))
                except (BrokenPipeError, ConnectionError, OSError):
                    self._lose_worker(index)
                    failed.append(index)
            for index, handle in dispatched:
                try:
                    reply, nbytes = _recv_message(handle.conn)
                except (EOFError, ConnectionError, OSError):
                    self._lose_worker(index)
                    failed.append(index)
                    continue
                self.stats.ipc_bytes += nbytes
                result = self._fold_reply(index, reply)
                if pending is not None and pending[index] is not None:
                    result = np.array(
                        self._reply_slabs[index].view(pending[index])
                    )
                results[index] = result
            if failed:
                if messages[failed[0]][0] in _BROADCAST_OPS:
                    # Survivors already served the broadcast; the
                    # journal replay on respawn covers the dead workers.
                    if len(self._dead) >= len(handles):
                        self.close()
                        raise RuntimeError("dm-mp: every worker died")
                else:
                    self._redispatch(messages, sorted(failed), results, pending)
            return [results[index] for index in sorted(results)]
        finally:
            self.pool_rounds += 1
            self.pool_busy_s += time.monotonic() - round_start

    def _fold_reply(self, slot: int, reply: tuple):
        """Account one worker reply; raises on a worker-side ``err``."""
        status, result, stats = reply
        if status != "ok":
            self.close()
            raise RuntimeError(f"dm-mp worker {slot} failed:\n{result}")
        for name, value in zip(_EVOLUTION_COUNTERS, stats):
            setattr(self.stats, name, getattr(self.stats, name) + value)
            worker = self.worker_stats[slot]
            setattr(worker, name, getattr(worker, name) + value)
        return result

    def _lose_worker(self, index: int) -> None:
        """Mark slot ``index`` dead; the next dispatch respawns it."""
        if index in self._dead:
            return
        self._dead.add(index)
        self.stats.workers_lost += 1
        if self._handles is not None:
            try:
                self._handles[index].conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def _redispatch(
        self,
        messages: list,
        queue: list[int],
        results: dict[int, object],
        pending: Sequence | None,
    ) -> None:
        """Re-shard a dead worker's chunks across the survivors, in waves.

        Each wave assigns at most one queued message per survivor; a
        survivor that dies mid-wave sends its message back into the
        queue.  Slab copy-out always uses the *message* index — the shm
        refs baked into a message name the originating slot's slabs, and
        segments attach by name, so any worker can fill them.
        """
        while queue:
            handles = self._handles or []
            survivors = [
                slot for slot in range(len(handles)) if slot not in self._dead
            ]
            if not survivors:
                self.close()
                raise RuntimeError(
                    "dm-mp: every worker was lost before the round's "
                    "chunks could be re-dispatched"
                )
            wave: list[tuple[int, int, _WorkerHandle]] = []
            for slot, index in zip(survivors, list(queue)):
                handle = handles[slot]
                try:
                    self.stats.ipc_bytes += _send_message(
                        handle.conn, messages[index]
                    )
                except (BrokenPipeError, ConnectionError, OSError):
                    self._lose_worker(slot)
                    continue
                self.stats.chunks_resharded += 1
                wave.append((index, slot, handle))
                queue.remove(index)
            for index, slot, handle in wave:
                try:
                    reply, nbytes = _recv_message(handle.conn)
                except (EOFError, ConnectionError, OSError):
                    self._lose_worker(slot)
                    queue.append(index)
                    continue
                self.stats.ipc_bytes += nbytes
                result = self._fold_reply(slot, reply)
                if pending is not None and pending[index] is not None:
                    result = np.array(
                        self._reply_slabs[index].view(pending[index])
                    )
                results[index] = result

    def _heal_pool(self) -> None:
        """Respawn every dead slot before the next round dispatches."""
        if not self._dead or self._handles is None:
            return
        for index in sorted(self._dead):
            self._respawn_worker(index)
        self._dead = set()

    def _respawn_worker(self, index: int) -> None:
        """Replace a dead pool member and replay the journal onto it.

        The replacement gets the *current* problem: re-pickled under the
        pipe transport, or a fresh skeleton around the existing shared
        segments under shm (``_shared_refs`` is patched in place by delta
        republishing, so the refs are always current — re-sharing would
        orphan the commit view).  Journal replay then registers committed
        session seed sequences (``adopt`` — trajectories rebuild lazily,
        bitwise identical) and re-sends recent delta broadcasts
        (idempotent on the already-current problem).
        """
        handles = self._handles
        if handles is None:  # pragma: no cover - close raced the heal
            return
        stop_worker_pool([handles[index]], lambda conn: conn.send_bytes(_STOP_BYTES))
        ctx = mp.get_context(self.start_method)
        problem_payload = self.problem
        if self.transport == "shm":
            skeleton, _ = self.problem.share_arrays()
            problem_payload = (skeleton, self._shared_refs)
        handles[index] = self._spawn_worker(ctx, problem_payload, self._shm_info)
        self.stats.workers_respawned += 1
        self._replay_journal(index, handles[index])

    def _replay_journal(self, slot: int, handle: _WorkerHandle) -> None:
        """Ship the coordinator-side journal to one (re)spawned worker."""
        replay: list[tuple] = []
        for sid, (base, seeds) in self._session_journal.items():
            replay.append(("adopt", sid, base, seeds))
        replay.extend(self._delta_journal)
        for message in replay:
            self.stats.ipc_bytes += _send_message(handle.conn, message)
        for _ in replay:
            reply, nbytes = _recv_message(handle.conn)
            self.stats.ipc_bytes += nbytes
            self._fold_reply(slot, reply)

    def _inject_worker_faults(self) -> None:
        """The ``mp-kill-worker`` fault point: SIGKILL a planned victim.

        The kill is real — detection and recovery then run the exact
        production path (EOF on the pipe, re-shard, respawn), which is
        the point of injecting here rather than faking a dead handle.
        """
        if faults.active() is None or self._handles is None:
            return
        for index, handle in enumerate(self._handles):
            process = getattr(handle, "process", None)
            if index in self._dead or process is None:
                continue
            spec = faults.maybe_fail(
                "mp-kill-worker", worker=index, round=self.pool_rounds
            )
            if spec is not None:
                process.kill()
                # Reap before dispatch so the death is visible this round.
                process.join(timeout=5.0)

    def _chunk_indices(self, count: int) -> list[np.ndarray]:
        """Deterministic contiguous index chunks, one per worker, no empties."""
        return [
            idx
            for idx in np.array_split(np.arange(count), self.workers)
            if idx.size
        ]

    def _slab_request(
        self,
        worker: int,
        arrays: list[np.ndarray],
        reply_shape: tuple[int, ...],
    ) -> tuple[list[tuple], tuple]:
        """One shm request: write ``arrays`` to the worker's request slab
        and reserve its float64 reply region.

        Returns the tagged array refs (message fields, in order) and the
        reserved reply ref — the single place the slab protocol (begin,
        pre-``ensure`` of the full message, aligned writes, reservation)
        is spelled out for every fan-out op.
        """
        self._ensure_pool()
        request = self._request_slabs[worker]
        request.begin()
        request.ensure(sum(a.nbytes for a in arrays) + 8 * len(arrays))
        refs = [(_SHM_TAG, *request.write(a)) for a in arrays]
        reply = self._reply_slabs[worker]
        reply.begin()
        reply.ensure(8 * int(np.prod(reply_shape, dtype=np.int64)))
        return refs, reply.reserve(np.float64, reply_shape)

    def _sets_message(
        self, op: str, chunk_sets: list[np.ndarray], worker: int
    ) -> tuple[tuple, tuple | None]:
        """Build a ``chunk``/``rows`` request; returns ``(message, pending)``.

        Seed sets travel flattened as ``(lengths, values)``; under the shm
        transport both land in the worker's request slab and the reply
        payload region is reserved up front, so the message itself is a
        few descriptor tuples.
        """
        lengths, values = _flatten_sets(chunk_sets)
        if op == "rows":
            shape: tuple[int, ...] = (len(chunk_sets), self.problem.n)
        else:
            shape = (len(chunk_sets),)
        if self.transport != "shm":
            return (op, lengths, values, None), None
        refs, payload_ref = self._slab_request(worker, [lengths, values], shape)
        return (op, refs[0], refs[1], (_SHM_TAG, *payload_ref)), payload_ref

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------
    def open_session(self, base: SeedSet = ()) -> MultiprocessDMSession:
        return MultiprocessDMSession(self, base)

    def _next_session_id(self) -> int:
        self._session_counter += 1
        return self._session_counter

    def evaluate(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        sets = self._normalize_sets(seed_sets)
        self.stats.evaluate_calls += 1
        self.stats.sets_evaluated += len(sets)
        if not sets:
            return np.empty(0, dtype=np.float64)
        if len(sets) < self.min_fanout:
            return self._chunked_scores(sets)
        chunks = self._chunk_indices(len(sets))
        messages, pending = [], []
        for worker, idx in enumerate(chunks):
            message, reply_ref = self._sets_message(
                "chunk", [sets[i] for i in idx], worker
            )
            messages.append(message)
            pending.append(reply_ref)
        return np.concatenate(self._run(messages, pending))

    def target_opinion_rows(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        """``(C, n)`` horizon opinion rows, fanned out across the pool.

        Chunks of seed sets evolve concurrently and each worker writes its
        dense block straight into its reply slab under the shm transport —
        the canonical "dense payload" case the zero-copy data plane
        exists for.  Small requests run locally, like ``evaluate``.
        """
        sets = self._normalize_sets(seed_sets)
        if len(sets) < self.min_fanout:
            return super().target_opinion_rows(sets)
        chunks = self._chunk_indices(len(sets))
        messages, pending = [], []
        for worker, idx in enumerate(chunks):
            message, reply_ref = self._sets_message(
                "rows", [sets[i] for i in idx], worker
            )
            messages.append(message)
            pending.append(reply_ref)
        results = self._run(messages, pending)
        rows = np.empty((len(sets), self.problem.n), dtype=np.float64)
        for idx, block in zip(chunks, results):
            rows[idx[0] : idx[-1] + 1] = block
        return rows

    def session_extension_values(
        self,
        sid: int,
        base: tuple,
        seeds: tuple,
        traj: np.ndarray,
        candidates: SeedSet,
    ) -> np.ndarray:
        """One session round: candidate chunks fanned out with the session id.

        Small rounds (CELF refreshes) run on the parent's own committed
        trajectory; both paths produce bitwise-identical values.
        """
        cand = np.asarray(candidates, dtype=np.int64)
        if cand.size == 0:
            return np.empty(0, dtype=np.float64)
        if cand.size < self.min_fanout:
            return self.extension_values(
                traj, np.asarray(seeds, dtype=np.int64), cand
            )
        chunks = self._chunk_indices(cand.size)
        messages, pending = [], []
        for worker, idx in enumerate(chunks):
            part = cand[idx]
            if self.transport == "shm":
                refs, payload_ref = self._slab_request(
                    worker, [part], (int(part.size),)
                )
                messages.append(
                    ("ext", sid, base, seeds, refs[0], (_SHM_TAG, *payload_ref))
                )
                pending.append(payload_ref)
            else:
                messages.append(("ext", sid, base, seeds, part, None))
                pending.append(None)
        return np.concatenate(self._run(messages, pending))

    def session_extension_rows(
        self,
        sid: int,
        base: tuple,
        seeds: tuple,
        traj: np.ndarray,
        candidates: SeedSet,
    ) -> np.ndarray:
        """Unscored extension rows for one session round, fanned out.

        The rows counterpart of :meth:`session_extension_values`: workers
        evolve their candidate chunks against the session's committed
        trajectory and reply with the ``(chunk, n)`` horizon rows (written
        straight into the reply slab under shm), so the parent can score
        each row through the canonical width-1 path
        (:meth:`MultiprocessDMSession.coalesced_gains`).  Rows are
        bitwise identical to the local :meth:`BatchedDMEngine.extension_rows`
        at every worker count and batch size.
        """
        cand = np.asarray(candidates, dtype=np.int64)
        n = self.problem.n
        if cand.size == 0:
            return np.empty((0, n), dtype=np.float64)
        if cand.size < self.min_fanout:
            return self.extension_rows(
                traj, np.asarray(seeds, dtype=np.int64), cand
            )
        chunks = self._chunk_indices(cand.size)
        messages, pending = [], []
        for worker, idx in enumerate(chunks):
            part = cand[idx]
            if self.transport == "shm":
                refs, payload_ref = self._slab_request(
                    worker, [part], (int(part.size), n)
                )
                messages.append(
                    (
                        "extrows",
                        sid,
                        base,
                        seeds,
                        refs[0],
                        (_SHM_TAG, *payload_ref),
                    )
                )
                pending.append(payload_ref)
            else:
                messages.append(("extrows", sid, base, seeds, part, None))
                pending.append(None)
        results = self._run(messages, pending)
        rows = np.empty((cand.size, n), dtype=np.float64)
        for idx, block in zip(chunks, results):
            rows[idx[0] : idx[-1] + 1] = block
        return rows

    def apply_delta(self, report, *, sessions: str = "auto") -> None:
        """Broadcast a delta to the pool, then refresh the parent engine.

        Workers patch their problem state in place instead of being
        restarted with a re-shipped problem: under ``pipe`` the broadcast
        carries only the touched columns' post-delta bytes (and changed
        opinion rows); under ``shm`` the parent patches the mapped
        segments directly — workers observe the new bytes without any
        message payload — re-sharing only matrices whose sparsity
        structure changed.  Warm sessions are rebuilt (never patched):
        workers reconstruct committed trajectories from seed sequences,
        and parent/worker state must stay bitwise identical.  A pool that
        has not started yet needs no broadcast — it forks from the
        already-patched problem.
        """
        if report.empty:
            return
        if self._handles is not None:
            columns_by_gid = None
            opinions = None
            new_refs = None
            if self.transport == "shm":
                new_refs = self._republish_delta(report)
            else:
                state = self.problem.state
                graphs = _unique_graphs(state)
                gid_of = {id(g): i for i, g in enumerate(graphs)}
                columns_by_gid = {}
                for q, touched in report.touched_by_candidate.items():
                    graph = state.graph(int(q))
                    gid = gid_of[id(graph)]
                    if gid in columns_by_gid:
                        continue
                    columns_by_gid[gid] = {
                        int(t): tuple(
                            np.array(part)
                            for part in graph.in_neighbors(int(t))
                        )
                        for t in np.asarray(touched, dtype=np.int64)
                    }
                if report.opinions_by_candidate:
                    b0 = state.initial_opinions
                    opinions = [
                        (
                            int(q),
                            np.asarray(nodes, dtype=np.int64),
                            np.array(b0[int(q), np.asarray(nodes, dtype=np.int64)]),
                        )
                        for q, nodes in report.opinions_by_candidate.items()
                    ]
            # Journaled before dispatch so a worker that dies *during*
            # this broadcast still sees the delta on respawn replay
            # (idempotent: respawns re-ship the already-patched problem).
            self._delta_journal.append(
                ("delta", report, columns_by_gid, opinions, new_refs)
            )
            del self._delta_journal[:-_DELTA_JOURNAL_CAP]
            self._run([self._delta_journal[-1]] * self.workers)
        super().apply_delta(report, sessions=sessions)

    def _republish_delta(self, report) -> dict | None:
        """Patch the shared problem segments in place; re-share on growth.

        Returns ``{gid: {"csr.data": tagged ref, ...}}`` for graphs whose
        arrays changed shape (structural deltas) — workers rebuild those
        matrix views; everything else was patched inside the live
        segments and needs no message payload at all.
        """
        refs = self._shared_refs
        arena = self._arena
        if refs is None or arena is None:
            return None
        state = self.problem.state
        graphs = _unique_graphs(state)
        gid_of = {id(g): i for i, g in enumerate(graphs)}
        touched_gids = sorted(
            {gid_of[id(state.graph(int(q)))] for q in report.touched_by_candidate}
        )
        new_refs: dict[int, dict[str, tuple]] = {}
        for gid in touched_gids:
            graph = graphs[gid]
            replaced = False
            for orient in ("csr", "csc"):
                matrix = getattr(graph, orient)
                for part in ("data", "indices", "indptr"):
                    key = f"g{gid}.{orient}.{part}"
                    ref = refs[key]
                    array = np.ascontiguousarray(getattr(matrix, part))
                    if (
                        tuple(ref[2]) == tuple(array.shape)
                        and np.dtype(ref[1]) == array.dtype
                    ):
                        arena.view(ref)[...] = array
                    else:
                        old_name = ref[0]
                        refs[key] = arena.share_array(array)
                        arena.release(old_name)
                        replaced = True
            if replaced:
                # Ship the full matrix ref set so the worker re-maps both
                # orientations coherently (some parts may be unreplaced
                # in-place segments — the refs are current either way).
                new_refs[gid] = {
                    f"{orient}.{part}": (
                        _SHM_TAG,
                        *refs[f"g{gid}.{orient}.{part}"],
                    )
                    for orient in ("csr", "csc")
                    for part in ("data", "indices", "indptr")
                }
        if report.opinions_by_candidate:
            ref = refs["initial_opinions"]
            arena.view(ref)[...] = state.initial_opinions
        return new_refs or None

    def broadcast_commit(
        self,
        sid: int,
        base: tuple,
        before: tuple,
        seed: int,
        traj: np.ndarray | None = None,
    ) -> None:
        """Tell every worker to fold ``seed`` into session ``sid``'s state.

        ``traj`` is the parent's post-commit committed trajectory; under
        the shm transport it is published through the commit slab so
        workers adopt it by one copy (no per-worker re-extension, nothing
        dense pickled).  A no-op while the pool has not started: the first
        fan-out message carries the full seed sequence and workers rebuild
        from it.
        """
        if self._handles is None:
            return
        self._journal_commit(sid, tuple(base), tuple(before) + (int(seed),))
        if self._commit_view is not None:
            if traj is None:
                raise ValueError("shm commit broadcasts need the committed trajectory")
            self._commit_view[...] = traj
        self._run([("commit", sid, base, before, seed)] * self.workers)

    def _journal_commit(self, sid: int, base: tuple, seeds: tuple) -> None:
        """Record session ``sid``'s committed seed sequence (FIFO-capped).

        The journal is what a respawned worker replays (as ``adopt``
        messages) to recover every live session's committed state; the
        cap mirrors the worker-side session cache, so the journal never
        promises more sessions than a worker would retain anyway.
        """
        journal = self._session_journal
        journal.pop(sid, None)
        journal[sid] = (base, seeds)
        while len(journal) > _WORKER_SESSION_CACHE:
            journal.pop(next(iter(journal)))
