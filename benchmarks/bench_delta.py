"""Incremental re-solve benchmark: delta-aware invalidation vs from-scratch.

One warm serving stack — problem caches, a committed
:class:`~repro.core.engine.BatchedDMSession`, two live ``dm-mp`` pools
(pipe + shm) and a memory-mapped rw-store — absorbs ~1% edge churn on the
target graph (mixed weight updates, edge insertions and removals, plus an
opinion flip) through ``FJVoteProblem.apply_delta`` and the per-layer
``apply_delta`` forwards.  The from-scratch reference rebuilds every layer
cold over the *same* post-delta state: a fresh problem (all caches
recomputed), a fresh engine, and a cold walk store in a second directory.

Acceptance (the issue's floors, asserted here):

* ``problem.evolution_steps`` spent bringing caches current after the
  delta must be >= 5x below the from-scratch recompute (with ``r`` = 6
  per-candidate graphs and target-only churn the ratio is exactly ``r``).
* The delta path regenerates **zero** whole walk blocks
  (``StoreStats.blocks_generated`` stays flat; invalid walks are patched
  individually inside their blocks), so blocks-regenerated drops >= 5x
  versus the cold store.  The per-walk ratio (walks generated from
  scratch / walks patched) must also clear 5x.
* The pipe-transport delta broadcast ships >= 5x fewer bytes than the
  initial full problem ship (only the churned columns travel).
* Post-delta selections are byte-identical to the from-scratch reference
  on every engine: ``dm``, ``dm-mp:pipe``, ``dm-mp:shm`` (exact engines
  agree with each other), and ``rw-store:mmap`` (patched blocks are
  bitwise equal to cold-regenerated ones, so the stochastic greedy
  reproduces exactly).
* The pre-delta committed session survives via the sparse trajectory
  correction (``EngineStats.trajectories_patched`` >= 1) and its gains
  match a fresh session replaying the same commit.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_delta.py``.
Set ``REPRO_BENCH_TINY=1`` for the CI smoke variant: tiny sizes, same
assertions, counters land in ``BENCH_delta.tiny.json``.
"""

import pickle

import numpy as np

from benchmarks.conftest import BENCH_SEED, BENCH_TINY, run_once
from repro.core.engine import BatchedDMEngine, make_engine
from repro.core.engine_mp import MultiprocessDMEngine
from repro.core.greedy import greedy_engine
from repro.core.problem import FJVoteProblem
from repro.core.walk_store import WalkStore
from repro.datasets.yelp import yelp_like
from repro.eval.reporting import format_series
from repro.utils.timing import Timer
from repro.voting.scores import CumulativeScore

TINY = BENCH_TINY
N = 160 if TINY else 2000
HORIZON = 8 if TINY else 20
R = 6
K = 2 if TINY else 3
WORKERS = 2
WALKS_PER_NODE = 8
#: Fraction of the target graph's columns churned by the delta.
CHURN_FRACTION = 0.01
#: Acceptance floor: every reduction counter must clear this (issue
#: criterion; measured headroom is order-of-magnitude on most of them).
MIN_DELTA_REDUCTION = 5.0


def _build_problem() -> FJVoteProblem:
    dataset = yelp_like(
        n=N,
        r=R,
        per_candidate_weights=True,  # competitor caches must be churn-proof
        rng=BENCH_SEED,
        horizon=HORIZON,
    )
    return dataset.problem(CumulativeScore())


def _make_churn(problem: FJVoteProblem):
    """~1% of the target graph's columns churned, deterministically.

    A third of the touched columns get an existing in-edge reweighted
    (data-only surgery), a third a brand-new in-edge, a third an in-edge
    removed (both structural), plus one opinion flip on the target row.
    Columns are the highest out-degree nodes: a reverse walk lands on a
    node with probability proportional to its out-weight, so these are
    the columns stored walks actually cross and the store patch path has
    real work to do.
    """
    graph = problem.state.graph(problem.target)
    n = problem.n
    src, dst, weight = graph.edges()
    out_deg = np.bincount(src, minlength=n)
    in_deg = np.bincount(dst, minlength=n)
    count = max(3, round(CHURN_FRACTION * n))
    eligible = np.flatnonzero(in_deg >= 2)  # removals must not empty a column
    cols = eligible[np.argsort(out_deg[eligible])[::-1][:count]]
    added, removed = [], []
    for i, col in enumerate(sorted(int(c) for c in cols)):
        edges_in = np.flatnonzero(dst == col)
        first = int(edges_in[0])
        if i % 3 == 0:
            added.append((int(src[first]), col, float(weight[first]) * 1.5))
        elif i % 3 == 1:
            incoming = {int(s) for s in src[edges_in]}
            new_src = next(
                u for u in range(n) if u != col and u not in incoming
            )
            added.append((new_src, col, 0.5))
        else:
            removed.append((int(src[first]), col))
    opinions = [(problem.target, int(cols[0]), 0.9)]
    return added, removed, opinions


def _store_greedy(problem: FJVoteProblem, store: WalkStore):
    engine = make_engine(
        "rw-store",
        problem,
        store=store,
        walks_per_node=WALKS_PER_NODE,
        adaptive=False,
        epsilon=None,
    )
    return greedy_engine(engine, K, lazy=False)


def _delta_vs_scratch(store_dir_delta, store_dir_scratch) -> dict[str, float]:
    problem = _build_problem()
    problem.others_by_user()  # warm the shared caches pre-delta
    problem.target_trajectory()
    added, removed, opinions = _make_churn(problem)

    # Warm every serving layer before the churn arrives.
    dm_engine = BatchedDMEngine(problem)
    warm_session = dm_engine.open_session()
    probe = np.arange(min(problem.n, 48))
    warm_session.commit(int(np.argmax(warm_session.marginal_gains(probe))))
    committed_seed = warm_session.seeds[0]
    store = WalkStore(
        problem.state, problem.horizon, seed=BENCH_SEED,
        store_dir=store_dir_delta,
    )
    _store_greedy(problem, store)
    assert store.stats.blocks_generated > 0

    mp_pipe = MultiprocessDMEngine(
        problem, workers=WORKERS, min_fanout=1, transport="pipe"
    )
    mp_shm = MultiprocessDMEngine(
        problem, workers=WORKERS, min_fanout=1, transport="shm"
    )
    try:
        mp_pipe.ping()  # pool start + the full problem ship
        mp_shm.ping()
        # A cold pipe pool ships the whole pickled problem to every worker
        # inside the spawn args (it never crosses the message pipe, so
        # ipc_bytes cannot see it); size it the same way the spawn does.
        full_ship_bytes = float(
            WORKERS * len(pickle.dumps(problem, pickle.HIGHEST_PROTOCOL))
        )

        # --- the delta: problem surgery, then per-layer forwards -------
        evolution_before = problem.evolution_steps
        patched_before = dm_engine.stats.trajectories_patched
        blocks_before = store.stats.blocks_generated
        with Timer() as delta_timer:
            report = problem.apply_delta(
                edges_added=added,
                edges_removed=removed,
                opinions_changed=opinions,
            )
            problem.others_by_user()  # competitors untouched: no-op
            problem.target_trajectory()  # the one dirty trajectory
            delta_steps = float(problem.evolution_steps - evolution_before)
            dm_engine.apply_delta(report)
            pipe_before = mp_pipe.stats.ipc_bytes
            mp_pipe.apply_delta(report)
            delta_ship_bytes = float(mp_pipe.stats.ipc_bytes - pipe_before)
            mp_shm.apply_delta(report)
            store.apply_delta(report)
        delta_blocks = float(store.stats.blocks_generated - blocks_before)
        trajectories_patched = float(
            dm_engine.stats.trajectories_patched - patched_before
        )

        # --- post-delta selections on the warm stack -------------------
        delta_dm = greedy_engine(dm_engine, K, lazy=False)
        delta_pipe = greedy_engine(mp_pipe, K, lazy=False)
        delta_shm = greedy_engine(mp_shm, K, lazy=False)
        delta_store = _store_greedy(problem, store)
        delta_blocks = float(store.stats.blocks_generated - blocks_before)
    finally:
        mp_pipe.close()
        mp_shm.close()

    # --- the from-scratch reference over the same post-delta state -----
    with Timer() as scratch_timer:
        scratch_problem = FJVoteProblem(
            problem.state, problem.target, problem.horizon, problem.score
        )
        scratch_problem.others_by_user()
        scratch_problem.target_trajectory()
    scratch_steps = float(scratch_problem.evolution_steps)
    scratch_engine = BatchedDMEngine(scratch_problem)
    scratch_dm = greedy_engine(scratch_engine, K, lazy=False)
    scratch_store_handle = WalkStore(
        problem.state, problem.horizon, seed=BENCH_SEED,
        store_dir=store_dir_scratch,
    )
    scratch_store = _store_greedy(scratch_problem, scratch_store_handle)
    scratch_blocks = float(scratch_store_handle.stats.blocks_generated)
    scratch_walks = float(scratch_store_handle.stats.walks_generated)

    # Byte-identical selections: every engine's delta path must reproduce
    # its from-scratch run exactly (the exact engines also agree with
    # each other, so one reference covers dm and both dm-mp transports).
    for name, result in (
        ("dm", delta_dm),
        ("dm-mp:pipe", delta_pipe),
        ("dm-mp:shm", delta_shm),
    ):
        assert result.seeds.tolist() == scratch_dm.seeds.tolist(), (
            f"{name} delta-path seeds diverged from the from-scratch run"
        )
        np.testing.assert_array_equal(result.gains, scratch_dm.gains)
    assert delta_store.seeds.tolist() == scratch_store.seeds.tolist(), (
        "rw-store:mmap delta-path seeds diverged from the cold store"
    )
    np.testing.assert_array_equal(delta_store.gains, scratch_store.gains)

    # The pre-delta committed session survived by trajectory patching and
    # matches a fresh session replaying the same commit.
    assert trajectories_patched >= 1
    reference_session = scratch_engine.open_session()
    reference_session.commit(committed_seed)
    np.testing.assert_allclose(
        warm_session.marginal_gains(probe),
        reference_session.marginal_gains(probe),
        atol=1e-8,
        rtol=0,
    )

    walks_patched = float(store.stats.walks_patched)
    return {
        "delta_steps": delta_steps,
        "scratch_steps": scratch_steps,
        "evolution_reduction_x": scratch_steps / max(delta_steps, 1.0),
        "delta_blocks": delta_blocks,
        "scratch_blocks": scratch_blocks,
        "block_reduction_x": scratch_blocks / max(delta_blocks, 1.0),
        "blocks_patched": float(store.stats.blocks_invalidated),
        "walks_patched": walks_patched,
        "scratch_walks": scratch_walks,
        "walk_reduction_x": scratch_walks / max(walks_patched, 1.0),
        "full_ship_bytes": full_ship_bytes,
        "delta_ship_bytes": delta_ship_bytes,
        "ship_reduction_x": full_ship_bytes / max(delta_ship_bytes, 1.0),
        "trajectories_patched": trajectories_patched,
        "delta_s": delta_timer.elapsed,
        "scratch_s": scratch_timer.elapsed,
    }


def test_delta_vs_from_scratch(benchmark, tmp_path, save_result, save_bench_json):
    rows = run_once(
        benchmark,
        lambda: _delta_vs_scratch(
            tmp_path / "delta-store", tmp_path / "scratch-store"
        ),
    )
    series = {
        "delta evolution steps": [rows["delta_steps"]],
        "scratch evolution steps": [rows["scratch_steps"]],
        "evolution reduction (x)": [rows["evolution_reduction_x"]],
        "delta blocks regenerated": [rows["delta_blocks"]],
        "scratch blocks generated": [rows["scratch_blocks"]],
        "blocks patched in place": [rows["blocks_patched"]],
        "walks patched": [rows["walks_patched"]],
        "walk reduction (x)": [rows["walk_reduction_x"]],
        "delta broadcast bytes": [rows["delta_ship_bytes"]],
        "full problem ship bytes": [rows["full_ship_bytes"]],
        "ship reduction (x)": [rows["ship_reduction_x"]],
        "delta refresh (s)": [rows["delta_s"]],
        "scratch refresh (s)": [rows["scratch_s"]],
    }
    if not TINY:
        save_result(
            "delta",
            "incremental re-solve under %.0f%% edge churn (yelp-like, n=%d, "
            "r=%d per-candidate graphs, t=%d, k=%d, λ=%d/node):\n%s"
            % (
                100 * CHURN_FRACTION,
                N,
                R,
                HORIZON,
                K,
                WALKS_PER_NODE,
                format_series("counter", ["delta"], series),
            ),
        )
    save_bench_json(
        "delta",
        {
            "evolution_reduction_x": {
                "value": rows["evolution_reduction_x"],
                "higher_is_better": True,
            },
            "delta_evolution_steps": {
                "value": rows["delta_steps"],
                "higher_is_better": False,
            },
            "block_reduction_x": {
                "value": rows["block_reduction_x"],
                "higher_is_better": True,
            },
            "delta_blocks_regenerated": {
                "value": rows["delta_blocks"],
                "higher_is_better": False,
            },
            "walk_reduction_x": {
                "value": rows["walk_reduction_x"],
                "higher_is_better": True,
            },
            "delta_ship_bytes": {
                "value": rows["delta_ship_bytes"],
                "higher_is_better": False,
            },
            "ship_reduction_x": {
                "value": rows["ship_reduction_x"],
                "higher_is_better": True,
            },
        },
    )
    floors = (
        ("evolution_reduction_x", "evolution work"),
        ("block_reduction_x", "walk blocks regenerated"),
        ("walk_reduction_x", "walks regenerated"),
        ("ship_reduction_x", "dm-mp pipe bytes shipped"),
    )
    for key, label in floors:
        assert rows[key] >= MIN_DELTA_REDUCTION, (
            f"delta path only cut {label} by {rows[key]:.2f}x at n={N} "
            f"(floor {MIN_DELTA_REDUCTION}x)"
        )
    assert rows["delta_blocks"] == 0, (
        f"delta path regenerated {rows['delta_blocks']:.0f} whole blocks "
        "(must patch walks in place)"
    )
    assert rows["walks_patched"] > 0, (
        "churn on the hottest columns invalidated no stored walks — the "
        "delta path was never exercised"
    )
