"""Unit tests for the InfluenceGraph substrate."""

import numpy as np
import pytest
from scipy import sparse

from repro.graph.build import graph_from_edges
from repro.graph.digraph import InfluenceGraph


def test_basic_properties():
    g = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    assert g.n == 4
    # 3 social edges + self-loops for in-degree-0 nodes 0 and 1.
    assert g.m == 5


def test_rejects_non_square():
    mat = sparse.csr_matrix(np.ones((2, 3)))
    with pytest.raises(ValueError, match="square"):
        InfluenceGraph(mat)


def test_rejects_non_stochastic():
    mat = sparse.eye(3, format="csr") * 0.5
    with pytest.raises(ValueError, match="column-stochastic"):
        InfluenceGraph(mat)


def test_rejects_negative_weights():
    mat = sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, -1.0]]) + np.eye(2))
    with pytest.raises(ValueError):
        InfluenceGraph(mat)


def test_validate_flag_skips_checks():
    mat = sparse.eye(3, format="csr") * 0.5
    g = InfluenceGraph(mat, validate=False)
    assert g.n == 3


def test_in_neighbors_are_transition_distribution():
    g = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    sources, weights = g.in_neighbors(2)
    assert sorted(sources.tolist()) == [0, 1]
    np.testing.assert_allclose(sorted(weights.tolist()), [0.5, 0.5])
    sources, weights = g.in_neighbors(3)
    assert sources.tolist() == [2]
    np.testing.assert_allclose(weights, [1.0])


def test_out_neighbors():
    g = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    targets, weights = g.out_neighbors(2)
    assert 3 in targets.tolist()


def test_degrees_and_edges_roundtrip():
    g = graph_from_edges(5, [0, 0, 1, 2], [1, 2, 2, 3])
    assert g.in_degrees().sum() == g.m
    assert g.out_degrees().sum() == g.m
    src, dst, w = g.edges()
    assert src.size == g.m
    rebuilt = InfluenceGraph(
        sparse.coo_matrix((w, (src, dst)), shape=(5, 5)).tocsr()
    )
    assert rebuilt.m == g.m


def test_weighted_out_degrees():
    g = graph_from_edges(3, [0, 0], [1, 2])
    wd = g.weighted_out_degrees()
    # Node 0 influences nodes 1 and 2 with full weight each.
    assert wd[0] == pytest.approx(2.0)


def test_column_sums_exactly_one():
    rng = np.random.default_rng(3)
    n = 20
    mask = rng.random((n, n)) < 0.2
    src, dst = np.where(mask)
    g = graph_from_edges(n, src, dst, rng.uniform(0.1, 2.0, src.size))
    sums = np.asarray(g.csr.sum(axis=0)).ravel()
    np.testing.assert_allclose(sums, 1.0, atol=1e-12)
