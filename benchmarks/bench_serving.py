"""Serving benchmark: request coalescing over warm engines.

Part 1 — coalescing effectiveness, deterministic and gated.  A fixed
workload of 8 concurrent clients — marginal-gain requests sharing a
committed prefix (overlapping candidate lists) plus win/value probes —
is executed twice through :class:`~repro.serve.batcher.CoalescingBatcher`
on fresh hubs: serially (one request per batch, the no-coalescing
reference) and as one coalesced batch.  Responses must be **byte
identical** (the encoded protocol lines), across the per-set ``dm``
backend, the vectorized ``dm-batched``, and ``dm-mp`` over both
transports.  The gated metrics are the deterministic counters:
``round_reduction_x`` (serial engine rounds / coalesced engine rounds —
the acceptance floor is >= 2x with 8 clients), ``requests_per_round``,
and ``evolution_sets_saved`` (candidate-union sharing).

Part 2 — warm-store serving start.  A hub over ``rw-store:2:mmap=DIR``
is built cold (walk blocks generated and spilled), closed, and rebuilt
warm: the second start must regenerate **zero** walk blocks
(``warm_blocks_generated``, gated at 0) and reuse every shard
(``warm_blocks_reused``).

Part 3 — socket latency, honest and unasserted.  The real CLI server
(``repro serve``) at 1/2(/4) ``dm-mp`` workers, driven by the load
generator over 8 pipelined connections vs 1 serial connection;
p50/p99 latency and QPS go to ``benchmarks/results/`` for trend reading
(wall-clock on a shared CI runner is noise, so nothing is asserted).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_serving.py``.
Set ``REPRO_BENCH_TINY=1`` for the CI smoke variant (smaller problem,
fewer worker counts, same assertions and gated counters).
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys
import time

from benchmarks.conftest import BENCH_SEED, BENCH_TINY
from repro.datasets.yelp import yelp_like
from repro.serve.batcher import CoalescingBatcher, EngineHub
from repro.serve.protocol import Request, encode
from repro.voting.scores import CumulativeScore

TINY = BENCH_TINY
N_USERS = 150 if TINY else 600
HORIZON = 6 if TINY else 10
CLIENTS = 8
#: Byte-identity is asserted on every backend; the gated counters come
#: from ``dm-batched`` (identical on all of them by construction).
SPECS = ("dm", "dm-batched", "dm-mp:2", "dm-mp:2:shm")
MIN_ROUND_REDUCTION = 2.0
SOCKET_WORKERS = [1, 2] if TINY else [1, 2, 4]
SOCKET_REQUESTS = 32 if TINY else 128


def _problem():
    dataset = yelp_like(n=N_USERS, rng=BENCH_SEED, horizon=HORIZON)
    problem = dataset.problem(CumulativeScore())
    problem.others_by_user()
    return problem


def _workload() -> list[Request]:
    """8 concurrent clients: gains sharing the prefix (overlapping
    candidate lists, so the union is smaller than the sum) + win probes."""
    requests = []
    for i in range(CLIENTS):
        requests.append(
            Request(
                id=i,
                op="marginal_gain",
                params={
                    "seeds": [3],
                    # 3 candidates each, stride-1 overlap with the next
                    # client: 8 requests x 3 = 24 requested, union = 17.
                    "candidates": [10 + 2 * i, 11 + 2 * i, 12 + 2 * i],
                },
            )
        )
    for i in range(CLIENTS):
        requests.append(
            Request(
                id=CLIENTS + i,
                op="prefix_win_probability",
                params={"seeds": [40 + i, 41 + i]},
            )
        )
    return requests


def _run(spec: str, coalesced: bool):
    hub = EngineHub(_problem(), [spec], rng=7)
    try:
        batcher = CoalescingBatcher(hub)
        if coalesced:
            responses = batcher.execute(_workload())
        else:
            responses = [batcher.execute([r])[0] for r in _workload()]
        return [encode(r) for r in responses], batcher.stats
    finally:
        hub.close()


def test_coalescing_round_reduction(save_result, save_bench_json):
    reference_lines = None
    gated = None
    rows = []
    for spec in SPECS:
        serial_lines, serial_stats = _run(spec, coalesced=False)
        coalesced_lines, stats = _run(spec, coalesced=True)
        # The headline contract: coalescing changes *no* response bytes.
        assert coalesced_lines == serial_lines, spec
        if reference_lines is None:
            reference_lines = serial_lines
        reduction = serial_stats.engine_rounds / stats.engine_rounds
        assert reduction >= MIN_ROUND_REDUCTION, (spec, reduction)
        assert stats.rounds_coalesced >= 1
        assert stats.evolution_sets_saved > 0
        rows.append(
            f"{spec:>12}: rounds {serial_stats.engine_rounds} -> "
            f"{stats.engine_rounds} ({reduction:.1f}x), "
            f"requests/round {stats.requests_total / stats.engine_rounds:.1f}, "
            f"sets requested {stats.sets_requested} evolved "
            f"{stats.sets_evolved} saved {stats.evolution_sets_saved}"
        )
        if spec == "dm-batched":
            gated = (serial_stats, stats)
    save_result(
        "serving_coalescing",
        f"{CLIENTS} concurrent clients, shared prefix + win probes "
        f"(n={N_USERS}, t={HORIZON}), byte-identical responses:\n"
        + "\n".join(rows),
    )
    serial_stats, stats = gated
    save_bench_json(
        "serving",
        {
            "round_reduction_x": {
                "value": serial_stats.engine_rounds / stats.engine_rounds,
                "higher_is_better": True,
            },
            "rounds_coalesced": {
                "value": stats.rounds_coalesced,
                "higher_is_better": True,
            },
            "requests_per_round": {
                "value": stats.requests_total / stats.engine_rounds,
                "higher_is_better": True,
            },
            "evolution_sets_saved": {
                "value": stats.evolution_sets_saved,
                "higher_is_better": True,
            },
            "coalesced_engine_rounds": {
                "value": stats.engine_rounds,
                "higher_is_better": False,
            },
        },
    )


def test_warm_store_serving_start(tmp_path, save_result, save_bench_json):
    """A restarted server over a persistent walk store regenerates zero
    walk blocks: the mmap shards are the warm state."""
    from repro.core.walk_store import store_for_problem

    spec = f"rw-store:2:mmap={tmp_path}"

    def boot():
        problem = _problem()
        store = store_for_problem(
            problem, seed=BENCH_SEED, store_dir=str(tmp_path), shards=2
        )
        hub = EngineHub(problem, [spec], rng=BENCH_SEED, store=store)
        hub.warm()
        # One real query so the warm engine actually answers from the
        # store-backed walks.
        response = CoalescingBatcher(hub).execute(
            [Request(id=0, op="prefix_win_probability", params={"seeds": [1]})]
        )[0]
        assert response["ok"]
        stats = store.stats
        cold = (stats.blocks_generated, stats.blocks_loaded, stats.blocks_reused)
        hub.close()
        return cold

    cold_generated, _, _ = boot()
    assert cold_generated > 0  # the first start did real generation work
    warm_generated, warm_loaded, warm_reused = boot()
    assert warm_generated == 0
    assert warm_reused > 0
    save_result(
        "serving_warm_store",
        f"cold start generated {cold_generated} walk blocks; warm restart "
        f"generated {warm_generated}, loaded {warm_loaded}, "
        f"reused {warm_reused}",
    )
    save_bench_json(
        "serving_store",
        {
            "warm_blocks_generated": {
                "value": warm_generated,
                "higher_is_better": False,
            },
            "warm_blocks_reused": {
                "value": warm_reused,
                "higher_is_better": True,
            },
        },
    )


def _spawn_server(workers: int):
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--dataset", "yelp", "--users", str(N_USERS),
        "--horizon", str(HORIZON), "--score", "cumulative",
        "--engine", f"dm-mp:{workers}:shm", "--seed", str(BENCH_SEED),
    ]
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    assert proc.stdout is not None
    deadline = time.time() + 120
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.match(r"serving on \S+?:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise AssertionError("server never became ready")


def test_socket_latency(save_result):
    """Unasserted wall-clock: p50/p99/QPS at each worker count, 8
    pipelined connections (coalescible) vs 1 serial connection."""
    from repro.serve.client import run_load

    payloads = []
    for i in range(SOCKET_REQUESTS):
        if i % 4 == 3:
            payloads.append(
                {"op": "prefix_win_probability",
                 "seeds": [(7 * i) % N_USERS, (7 * i + 3) % N_USERS]}
            )
        else:
            payloads.append(
                {"op": "marginal_gain", "seeds": [3],
                 "candidates": [(5 * i) % N_USERS]}
            )
    rows = []
    for workers in SOCKET_WORKERS:
        proc, port = _spawn_server(workers)
        try:
            for connections, label in ((1, "serial"), (CLIENTS, "coalesced")):
                report = run_load(
                    "127.0.0.1", port, payloads, connections=connections
                )
                assert all(r["ok"] for r in report.responses)
                rows.append(
                    f"workers={workers} {label:>9}: "
                    f"qps={report.qps:8.1f} "
                    f"p50={report.latency_percentile(50) * 1e3:7.2f}ms "
                    f"p99={report.latency_percentile(99) * 1e3:7.2f}ms"
                )
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate(timeout=30)
    save_result(
        "serving_latency",
        f"{SOCKET_REQUESTS} requests over dm-mp:<W>:shm "
        f"(n={N_USERS}, t={HORIZON}; wall-clock, not gated):\n"
        + "\n".join(rows),
    )
