"""Random-walk-based opinion estimation and greedy seed selection (paper §V).

A *t-step reverse random walk* from node ``u`` walks the in-edges of the
target candidate's graph: at each of ``t`` steps it first terminates at the
current node ``v`` with probability ``d_qv`` (the stubbornness), otherwise
moves to an in-neighbor sampled with the column-stochastic weights.  The
initial opinion of the end node is an unbiased estimate of ``b_qu^(t)``
(Theorem 8).

*Post-Generation Truncation* (Theorem 9) lets one walk collection serve
every seed set: walks are generated once with no seeds, and a seed set ``S``
simply truncates each walk at its first occurrence of a node in ``S`` (whose
initial opinion is 1).  :class:`TruncatedWalks` stores the walks in padded
matrices plus a first-occurrence inverted index so that each greedy round of
Algorithm 4/5 is a handful of vectorized numpy passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounds import lambda_cumulative, lambda_rank
from repro.core.greedy import GreedyResult
from repro.core.problem import FJVoteProblem
from repro.graph.alias import AliasSampler
from repro.graph.digraph import InfluenceGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_seed_budget
from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    SeparableScore,
    VotingScore,
)


def generate_reverse_walks(
    graph: InfluenceGraph,
    stubbornness: np.ndarray,
    horizon: int,
    starts: np.ndarray,
    rng: int | np.random.Generator | None = None,
    *,
    sampler: AliasSampler | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``len(starts)`` t-step reverse walks (Direct Generation, §V-A).

    Returns ``(walks, lengths)`` where ``walks`` is ``(W, horizon+1)`` int32
    padded with -1 and ``lengths[i]`` is the index of walk ``i``'s end node.
    """
    rng = ensure_rng(rng)
    starts = np.asarray(starts, dtype=np.int64)
    if starts.size and (starts.min() < 0 or starts.max() >= graph.n):
        raise ValueError("walk start nodes out of range")
    d = np.asarray(stubbornness, dtype=np.float64)
    if d.shape != (graph.n,):
        raise ValueError(f"stubbornness must have shape ({graph.n},)")
    if sampler is None:
        sampler = AliasSampler(graph.csc)
    num = starts.size
    walks = np.full((num, horizon + 1), -1, dtype=np.int32)
    walks[:, 0] = starts
    lengths = np.zeros(num, dtype=np.int64)
    cur = starts.copy()
    active = np.ones(num, dtype=bool)
    for step in range(1, horizon + 1):
        idx = np.where(active)[0]
        if idx.size == 0:
            break
        stops = rng.random(idx.size) < d[cur[idx]]
        active[idx[stops]] = False
        go = idx[~stops]
        if go.size == 0:
            continue
        nxt = sampler.sample(cur[go], rng)
        walks[go, step] = nxt
        cur[go] = nxt
        lengths[go] = step
    return walks, lengths


def generate_reverse_walks_streamed(
    graph: InfluenceGraph,
    stubbornness: np.ndarray,
    horizon: int,
    starts: np.ndarray,
    entropy: "list[int]",
    *,
    stream_indices: np.ndarray | None = None,
    sampler: AliasSampler | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate reverse walks with one deterministic rng stream *per walk*.

    Walk ``i`` (its ``stream_indices`` entry, defaulting to its position)
    pre-draws a ``(horizon, 3)`` uniform grid from
    ``SeedSequence(entropy, spawn_key=(i,))`` — per step one termination
    draw and the two alias-method draws.  Because every walk owns its
    uniforms, a walk is a pure function of ``(start, its grid, the columns
    it transitions from)``: the walk store can regenerate exactly the
    walks invalidated by a graph delta, and the patched block is
    byte-identical to regenerating the whole block from scratch.

    Returns ``(walks, lengths)`` in the :func:`generate_reverse_walks`
    layout (``(W, horizon+1)`` int32 padded with -1).
    """
    starts = np.asarray(starts, dtype=np.int64)
    if starts.size and (starts.min() < 0 or starts.max() >= graph.n):
        raise ValueError("walk start nodes out of range")
    d = np.asarray(stubbornness, dtype=np.float64)
    if d.shape != (graph.n,):
        raise ValueError(f"stubbornness must have shape ({graph.n},)")
    if sampler is None:
        sampler = AliasSampler(graph.csc)
    num = starts.size
    if stream_indices is None:
        stream_indices = np.arange(num, dtype=np.int64)
    else:
        stream_indices = np.asarray(stream_indices, dtype=np.int64)
        if stream_indices.shape != (num,):
            raise ValueError("stream_indices must match starts in length")
    uniforms = np.empty((num, horizon, 3), dtype=np.float64)
    for row, stream in enumerate(stream_indices):
        seq = np.random.SeedSequence(entropy, spawn_key=(int(stream),))
        uniforms[row] = np.random.default_rng(seq).random((horizon, 3))
    walks = np.full((num, horizon + 1), -1, dtype=np.int32)
    walks[:, 0] = starts
    lengths = np.zeros(num, dtype=np.int64)
    cur = starts.copy()
    active = np.ones(num, dtype=bool)
    for step in range(1, horizon + 1):
        idx = np.where(active)[0]
        if idx.size == 0:
            break
        stops = uniforms[idx, step - 1, 0] < d[cur[idx]]
        active[idx[stops]] = False
        go = idx[~stops]
        if go.size == 0:
            continue
        nxt = sampler.sample_with(
            cur[go], uniforms[go, step - 1, 1], uniforms[go, step - 1, 2]
        )
        walks[go, step] = nxt
        cur[go] = nxt
        lengths[go] = step
    return walks, lengths


class TruncatedWalks:
    """A collection of reverse walks supporting Post-Generation Truncation.

    Attributes
    ----------
    walks, lengths, starts:
        The generated walks (see :func:`generate_reverse_walks`).
    end_pos:
        Current truncation pointer per walk; the walk's estimate is the
        (possibly seeded) initial opinion of ``walks[i, end_pos[i]]``.
    values:
        Current per-walk estimates ``Y_qu^(t)[S]``.
    """

    def __init__(
        self,
        walks: np.ndarray,
        lengths: np.ndarray,
        initial_opinions: np.ndarray,
        n: int,
    ) -> None:
        self.walks = walks
        self.lengths = np.asarray(lengths, dtype=np.int64)
        self.n = int(n)
        self.starts = walks[:, 0].astype(np.int64)
        self.num_walks = walks.shape[0]
        self._b0 = np.array(initial_opinions, dtype=np.float64)
        if self._b0.shape != (self.n,):
            raise ValueError(f"initial_opinions must have shape ({self.n},)")
        self.end_pos = self.lengths.copy()
        ends = walks[np.arange(self.num_walks), self.end_pos]
        self.values = self._b0[ends]
        self._seeds: list[int] = []
        self._seed_set: set[int] = set()
        self._shared = False
        self._build_index()

    @classmethod
    def generate(
        cls,
        graph: InfluenceGraph,
        stubbornness: np.ndarray,
        initial_opinions: np.ndarray,
        horizon: int,
        starts: np.ndarray,
        rng: int | np.random.Generator | None = None,
        *,
        sampler: AliasSampler | None = None,
    ) -> "TruncatedWalks":
        """Generate walks with the empty seed set and wrap them."""
        walks, lengths = generate_reverse_walks(
            graph, stubbornness, horizon, starts, rng, sampler=sampler
        )
        return cls(walks, lengths, initial_opinions, graph.n)

    # ------------------------------------------------------------------
    def _build_index(self) -> None:
        """First-occurrence inverted index: (node, walk, pos) triples.

        Only the first occurrence of a node within a walk matters: it is
        where truncation would cut.  Triples are stored sorted by node with
        a CSR-style ``node_ptr`` for per-node slicing.
        """
        num, width = self.walks.shape
        pos_grid = np.broadcast_to(np.arange(width, dtype=np.int64), (num, width))
        walk_grid = np.broadcast_to(
            np.arange(num, dtype=np.int64)[:, None], (num, width)
        )
        valid = self.walks >= 0
        nodes = self.walks[valid].astype(np.int64)
        pos = pos_grid[valid]
        wids = walk_grid[valid]
        order = np.lexsort((pos, nodes, wids))
        nodes, pos, wids = nodes[order], pos[order], wids[order]
        first = np.ones(nodes.size, dtype=bool)
        if nodes.size > 1:
            first[1:] = (nodes[1:] != nodes[:-1]) | (wids[1:] != wids[:-1])
        nodes, pos, wids = nodes[first], pos[first], wids[first]
        by_node = np.argsort(nodes, kind="stable")
        self.idx_node = nodes[by_node]
        self.idx_pos = pos[by_node]
        self.idx_walk = wids[by_node]
        self.node_ptr = np.searchsorted(self.idx_node, np.arange(self.n + 1))

    # ------------------------------------------------------------------
    def entries_for(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """``(walk_ids, first_positions)`` of walks containing ``node``."""
        lo, hi = self.node_ptr[node], self.node_ptr[node + 1]
        return self.idx_walk[lo:hi], self.idx_pos[lo:hi]

    def live_entries(self) -> tuple[np.ndarray, np.ndarray]:
        """``(nodes, walk_ids)`` of index entries inside current truncations.

        An entry is *live* when its first-occurrence position has not been
        cut off by a previously chosen seed; only live entries can change a
        walk's value.
        """
        mask = self.idx_pos <= self.end_pos[self.idx_walk]
        return self.idx_node[mask], self.idx_walk[mask]

    @property
    def seeds(self) -> list[int]:
        """Seeds applied so far, in application order."""
        return self._seeds

    @seeds.setter
    def seeds(self, value) -> None:
        self._seeds = [int(v) for v in value]
        self._seed_set = set(self._seeds)

    def snapshot_state(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy snapshot of ``(end_pos, values, b0)``.

        The arrays are returned *by reference* and the collection is
        marked shared: the next mutating :meth:`add_seed` copies before
        writing (copy-on-write), so the snapshot stays pristine without
        either side paying an upfront copy.
        """
        self._shared = True
        return (self.end_pos, self.values, self._b0)

    def restore_state(
        self, state: tuple[np.ndarray, np.ndarray, np.ndarray]
    ) -> None:
        """Adopt a :meth:`snapshot_state` by reference and clear seeds.

        No arrays are copied here — restore is an O(1) pointer swap, and
        copy-on-write in :meth:`add_seed` protects the snapshot.
        """
        self.end_pos, self.values, self._b0 = state
        self._shared = True
        self._seeds = []
        self._seed_set = set()

    def _own_state(self) -> None:
        """Copy-on-write barrier: materialize private arrays before a write."""
        if self._shared:
            self.end_pos = self.end_pos.copy()
            self.values = self.values.copy()
            self._b0 = self._b0.copy()
            self._shared = False

    def share(self) -> "TruncatedWalks":
        """A clone sharing the walks and index, with private truncation state.

        The padded walk matrices and the first-occurrence inverted index
        are immutable after construction and are shared by reference — the
        expensive parts (generation, the index lexsort) are paid once per
        collection, however many clones serve concurrent selection
        sessions.  The truncation state (``end_pos``, ``values``, ``b0``)
        is handed over copy-on-write, exactly like :meth:`snapshot_state`:
        the first ``add_seed`` on either side detaches it, so no clone can
        corrupt the pristine walk-store master it was served from.
        """
        clone = TruncatedWalks.__new__(TruncatedWalks)
        clone.walks = self.walks
        clone.lengths = self.lengths
        clone.n = self.n
        clone.starts = self.starts
        clone.num_walks = self.num_walks
        clone.idx_node = self.idx_node
        clone.idx_pos = self.idx_pos
        clone.idx_walk = self.idx_walk
        clone.node_ptr = self.node_ptr
        clone.end_pos = self.end_pos
        clone.values = self.values
        clone._b0 = self._b0
        clone._seeds = list(self._seeds)
        clone._seed_set = set(self._seed_set)
        clone._shared = True
        self._shared = True
        return clone

    def add_seed(self, node: int) -> None:
        """Truncate every walk containing ``node`` at ``node`` (Alg. 4 line 8)."""
        node = int(node)
        if node in self._seed_set:
            return
        self._own_state()
        self._seeds.append(node)
        self._seed_set.add(node)
        self._b0[node] = 1.0
        wids, pos = self.entries_for(node)
        hit = pos <= self.end_pos[wids]
        wids, pos = wids[hit], pos[hit]
        self.end_pos[wids] = pos
        self.values[wids] = 1.0

    def estimated_opinions(self) -> np.ndarray:
        """Per-start-node average walk value (NaN for nodes without walks)."""
        sums = np.bincount(self.starts, weights=self.values, minlength=self.n)
        counts = np.bincount(self.starts, minlength=self.n).astype(np.float64)
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1.0), np.nan)

    def memory_bytes(self) -> int:
        """Approximate resident bytes of walks + index (Fig. 17 metric)."""
        arrays = (
            self.walks,
            self.lengths,
            self.end_pos,
            self.values,
            self.idx_node,
            self.idx_pos,
            self.idx_walk,
            self.node_ptr,
        )
        return int(sum(a.nbytes for a in arrays))


class WalkGreedyOptimizer:
    """Greedy seed selection on walk-estimated scores (Algorithms 4 and 5).

    Parameters
    ----------
    walks:
        A :class:`TruncatedWalks` collection for the target candidate.
    score:
        The voting score to maximize.
    others_by_user:
        ``(n, r-1)`` *exact* competitor opinions at the horizon (the paper
        computes these once via direct matrix multiplication).
    grouping:
        ``"start"`` (Algorithm 4, RW): walks from the same start node are
        averaged into one per-user estimate, and the score sums over all
        users.  ``"walk"`` (Algorithm 5, RS): each walk is an independent
        sketch sample and the score is rescaled by ``n / θ``.
    """

    def __init__(
        self,
        walks: TruncatedWalks,
        score: VotingScore,
        others_by_user: np.ndarray | None,
        *,
        grouping: str = "start",
    ) -> None:
        if grouping not in ("start", "walk"):
            raise ValueError(f"grouping must be 'start' or 'walk', got {grouping!r}")
        self.walks = walks
        self.score = score
        self.grouping = grouping
        n = walks.n
        if isinstance(score, CumulativeScore):
            self.others = np.empty((n, 0), dtype=np.float64)
        else:
            if others_by_user is None:
                raise ValueError(f"score {score.name!r} needs competitor opinions")
            self.others = np.asarray(others_by_user, dtype=np.float64)
        if grouping == "start":
            uniq, group_of_walk = np.unique(walks.starts, return_inverse=True)
            self.group_of_walk = group_of_walk.astype(np.int64)
            self.group_user = uniq.astype(np.int64)
            self.group_weight = np.ones(uniq.size, dtype=np.float64)
        else:
            self.group_of_walk = np.arange(walks.num_walks, dtype=np.int64)
            self.group_user = walks.starts.copy()
            self.group_weight = np.full(
                walks.num_walks, n / max(walks.num_walks, 1), dtype=np.float64
            )
        self.num_groups = self.group_user.size
        self.group_size = np.bincount(
            self.group_of_walk, minlength=self.num_groups
        ).astype(np.float64)
        self._is_copeland = isinstance(score, CopelandScore)
        if not self._is_copeland and not isinstance(score, SeparableScore):
            raise TypeError(f"unsupported score type {type(score).__name__}")

    # ------------------------------------------------------------------
    def _group_sums(self) -> np.ndarray:
        return np.bincount(
            self.group_of_walk, weights=self.walks.values, minlength=self.num_groups
        )

    def group_estimates(self) -> np.ndarray:
        """Current estimated opinion per group (per user for RW)."""
        return self._group_sums() / self.group_size

    def estimated_score(self) -> float:
        """Walk/sketch estimate of ``F`` for the current seed set."""
        b_hat = self.group_estimates()
        others_g = self.others[self.group_user]
        if self._is_copeland:
            weight = self.group_weight[:, None]
            wins = ((b_hat[:, None] > others_g) * weight).sum(axis=0)
            losses = ((b_hat[:, None] < others_g) * weight).sum(axis=0)
            return float(np.sum(wins > losses))
        contrib = self.score.contributions(b_hat, others_g)
        return float(np.dot(self.group_weight, contrib))

    # ------------------------------------------------------------------
    def _candidate_updates(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per (candidate-node, group) estimate updates for this round.

        Returns ``(pair_node, pair_group, old_b, new_b)``: for every node
        ``w`` still present in some truncated walk and every group with a
        walk through ``w``, the group estimate before and after seeding
        ``w`` (all affected walk values jump to 1).
        """
        nodes, wids = self.walks.live_entries()
        groups = self.group_of_walk[wids]
        delta = 1.0 - self.walks.values[wids]
        key = nodes * np.int64(self.num_groups) + groups
        uniq, inverse = np.unique(key, return_inverse=True)
        delta_sum = np.bincount(inverse, weights=delta, minlength=uniq.size)
        pair_node = (uniq // self.num_groups).astype(np.int64)
        pair_group = (uniq % self.num_groups).astype(np.int64)
        sums = self._group_sums()
        old_b = sums[pair_group] / self.group_size[pair_group]
        new_b = (sums[pair_group] + delta_sum) / self.group_size[pair_group]
        return pair_node, pair_group, old_b, new_b

    def marginal_gains(self) -> np.ndarray:
        """Estimated marginal gain of seeding each node (one vectorized scan)."""
        n = self.walks.n
        pair_node, pair_group, old_b, new_b = self._candidate_updates()
        others_pair = self.others[self.group_user[pair_group]]
        weight = self.group_weight[pair_group]
        if self._is_copeland:
            return self._copeland_gains(pair_node, old_b, new_b, others_pair, weight)
        contrib_old = self.score.contributions(old_b, others_pair)
        contrib_new = self.score.contributions(new_b, others_pair)
        return np.bincount(
            pair_node, weights=weight * (contrib_new - contrib_old), minlength=n
        )

    def _copeland_gains(
        self,
        pair_node: np.ndarray,
        old_b: np.ndarray,
        new_b: np.ndarray,
        others_pair: np.ndarray,
        weight: np.ndarray,
    ) -> np.ndarray:
        n = self.walks.n
        b_hat = self.group_estimates()
        others_g = self.others[self.group_user]
        w_g = self.group_weight[:, None]
        wins_base = ((b_hat[:, None] > others_g) * w_g).sum(axis=0)
        losses_base = ((b_hat[:, None] < others_g) * w_g).sum(axis=0)
        score_base = float(np.sum(wins_base > losses_base))
        n_comp = others_g.shape[1]
        gains = np.zeros(n, dtype=np.float64)
        if pair_node.size == 0 or n_comp == 0:
            return gains
        d_win = (
            (new_b[:, None] > others_pair).astype(np.float64)
            - (old_b[:, None] > others_pair)
        ) * weight[:, None]
        d_loss = (
            (new_b[:, None] < others_pair).astype(np.float64)
            - (old_b[:, None] < others_pair)
        ) * weight[:, None]
        win_acc = np.zeros((n, n_comp), dtype=np.float64)
        loss_acc = np.zeros((n, n_comp), dtype=np.float64)
        for x in range(n_comp):
            win_acc[:, x] = np.bincount(pair_node, weights=d_win[:, x], minlength=n)
            loss_acc[:, x] = np.bincount(pair_node, weights=d_loss[:, x], minlength=n)
        new_scores = np.sum(
            (wins_base[None, :] + win_acc) > (losses_base[None, :] + loss_acc), axis=1
        ).astype(np.float64)
        return new_scores - score_base

    # ------------------------------------------------------------------
    def select(self, k: int) -> GreedyResult:
        """Greedy selection of ``k`` seeds on the estimated score.

        Runs through the shared round-driver of :mod:`repro.core.greedy`
        behind a small session adapter: each round is one vectorized
        all-candidates scan, each pick truncates the walks in place, and
        the tie-break contract (smallest node id) matches the exact
        engines.  ``evaluations`` therefore counts ``C`` per round, the
        same convention as the batched engines.
        """
        from repro.core.greedy import run_selection_rounds

        n = self.walks.n
        k = check_seed_budget(k, n)
        pool = np.setdiff1d(
            np.arange(n), np.asarray(self.walks.seeds, dtype=np.int64)
        )
        if k > pool.size:
            raise ValueError(
                f"budget k={k} exceeds candidate pool size {pool.size}"
            )
        return run_selection_rounds(_OptimizerSession(self), k, pool, lazy=False)


class _OptimizerSession:
    """:class:`WalkGreedyOptimizer` behind the selection-session protocol.

    ``commit`` applies post-generation truncation immediately, so the next
    round's scan sees the updated walk values; the committed value
    accumulates the picked gains exactly like the engine sessions.
    """

    def __init__(self, optimizer: WalkGreedyOptimizer) -> None:
        self.optimizer = optimizer
        self.value = optimizer.estimated_score()

    def marginal_gains(self, candidates: np.ndarray) -> np.ndarray:
        gains = self.optimizer.marginal_gains()
        return gains[np.asarray(candidates, dtype=np.int64)]

    def commit(self, seed: int, *, gain: float | None = None) -> float:
        seed = int(seed)
        if gain is None:
            gain = float(self.optimizer.marginal_gains()[seed])
        self.optimizer.walks.add_seed(seed)
        self.value += float(gain)
        return self.value


# ----------------------------------------------------------------------
# Per-node walk counts and the top-level RW method
# ----------------------------------------------------------------------
def estimate_gamma_star(
    estimated: np.ndarray, others_by_user: np.ndarray, *, floor: float = 0.05
) -> np.ndarray:
    """Heuristic per-user margin ``γ*_v = min_{|S|≤k} γ_v[S]`` (§V-C).

    Seeding only raises the target estimate, sweeping ``b̂_v`` upward over
    the interval ``[b̂_v[∅], 1]`` (seeding ``v`` itself already reaches 1).
    The minimum distance from any competitor opinion to that interval is
    therefore ``b̂_v[∅] − max_x b_xv`` when all competitors sit below the
    current estimate and (essentially) 0 otherwise; a ``floor`` keeps the
    resulting walk counts finite, as in the paper's heuristic estimation.
    """
    estimated = np.asarray(estimated, dtype=np.float64)
    others = np.asarray(others_by_user, dtype=np.float64)
    if others.size == 0:
        return np.full(estimated.shape, np.inf)
    top_other = others.max(axis=1)
    gamma = np.where(estimated > top_other, estimated - top_other, 0.0)
    return np.maximum(gamma, floor)


@dataclass
class WalkSelectResult:
    """Seed set chosen by the RW method plus diagnostics."""

    seeds: np.ndarray
    estimated_objective: float
    exact_objective: float
    total_walks: int
    walks_per_node: np.ndarray
    memory_bytes: int


def random_walk_select(
    problem: FJVoteProblem,
    k: int,
    *,
    rho: float = 0.9,
    delta: float = 0.1,
    gamma_floor: float = 0.05,
    lambda_cap: int | None = 256,
    walks_per_node: int | np.ndarray | None = None,
    probe_walks: int = 16,
    rng: int | np.random.Generator | None = None,
    store=None,
) -> WalkSelectResult:
    """The RW method (Algorithm 4): greedy on walk-estimated scores.

    The number of walks per node follows the paper's accuracy analysis:
    the Hoeffding bound of Theorem 10 for the cumulative score (parameters
    ``delta``, ``rho``), and the γ-margin bounds of Theorems 11/12 with the
    heuristic γ* estimate for the rank-based scores.  Pass
    ``walks_per_node`` to override (scalar or per-node array).

    Parameters mirror the paper's defaults (ρ = 0.9, δ = 0.1).  The exact
    objective of the returned seed set is evaluated via DM for reporting.

    ``store`` (a :class:`~repro.core.walk_store.WalkStore`) reuses the
    shared per-node walk pool for the probe *and* — when the per-node count
    is uniform, i.e. the cumulative score or a scalar override — for the
    selection walks themselves; per-node λ arrays fall back to private
    generation (the pool serves whole per-node rounds only).
    """
    rng = ensure_rng(rng)
    k = check_seed_budget(k, problem.n)
    if store is not None:
        store.require_problem(problem)
    state = problem.state
    q = problem.target
    graph = state.graph(q)
    if store is None:
        sampler = AliasSampler(graph.csc)
    else:
        # The store pool's cached alias table also serves this function's
        # private-generation fallback (per-node λ arrays), so a budget
        # sweep never rebuilds the O(E) table.
        from repro.core.walk_store import KIND_PER_NODE

        sampler = store.pool(q, KIND_PER_NODE).sampler()
    d_q = state.stubbornness[q]
    b0_q = state.initial_opinions[q]
    n = problem.n
    uniform_lambda = walks_per_node is None or np.ndim(walks_per_node) == 0
    if walks_per_node is not None:
        lam = np.broadcast_to(
            np.asarray(walks_per_node, dtype=np.int64), (n,)
        ).copy()
    elif isinstance(problem.score, CumulativeScore):
        lam = np.full(n, lambda_cumulative(delta, rho), dtype=np.int64)
    else:
        # Probe walks give a cheap opinion estimate, from which per-user
        # margins γ*_v and then per-node walk counts follow (Theorems 11-12).
        uniform_lambda = False
        if store is not None:
            probe = store.per_node_view(q, max(probe_walks, 1))
        else:
            probe = TruncatedWalks.generate(
                graph,
                d_q,
                b0_q,
                problem.horizon,
                np.repeat(np.arange(n, dtype=np.int64), max(probe_walks, 1)),
                rng,
                sampler=sampler,
            )
        gamma = estimate_gamma_star(
            probe.estimated_opinions(), problem.others_by_user(), floor=gamma_floor
        )
        lam = lambda_rank(gamma, rho)
    if lambda_cap is not None:
        lam = np.minimum(lam, int(lambda_cap))
    lam = np.maximum(lam, 1)
    if store is not None and uniform_lambda:
        walks = store.per_node_view(q, int(lam.max()))
    else:
        starts = np.repeat(np.arange(n, dtype=np.int64), lam)
        walks = TruncatedWalks.generate(
            graph, d_q, b0_q, problem.horizon, starts, rng, sampler=sampler
        )
    optimizer = WalkGreedyOptimizer(
        walks,
        problem.score,
        None
        if isinstance(problem.score, CumulativeScore)
        else problem.others_by_user(),
        grouping="start",
    )
    result = optimizer.select(k)
    return WalkSelectResult(
        seeds=result.seeds,
        estimated_objective=result.objective,
        exact_objective=problem.objective(result.seeds),
        total_walks=walks.num_walks,
        walks_per_node=lam,
        memory_bytes=walks.memory_bytes(),
    )
