#!/usr/bin/env python
"""Perf-trajectory gate: fail when a deterministic work counter regresses.

Compares every ``benchmarks/baselines/BENCH_*.json`` against the matching
file in ``benchmarks/results/`` (produced by the benchmark smoke steps; the
``.tiny`` variants are what CI runs).  All metrics are deterministic work
counters or ratios derived from them — the same commit always produces the
same numbers on every host — so any drift is a real code change, not noise.

A metric fails when it moves more than ``--tolerance`` (default 10%) in
its bad direction: down for ``higher_is_better`` metrics (speedups,
reduction factors), up otherwise (work counters).  Improvements are
reported so baselines can be re-pinned; a missing result file or metric is
an error (the gate must never silently stop measuring).

Usage::

    python scripts/check_bench_regression.py [--tolerance 0.10]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINES = REPO / "benchmarks" / "baselines"
RESULTS = REPO / "benchmarks" / "results"


def compare(baseline_path: Path, tolerance: float) -> list[str]:
    """Return failure messages for one baseline file (empty = pass)."""
    result_path = RESULTS / baseline_path.name
    if not result_path.exists():
        return [
            f"{baseline_path.name}: no result produced at {result_path} "
            "(did the benchmark smoke step run?)"
        ]
    baseline = json.loads(baseline_path.read_text())["metrics"]
    result = json.loads(result_path.read_text())["metrics"]
    failures = []
    for metric, spec in sorted(baseline.items()):
        if metric not in result:
            failures.append(f"{baseline_path.name}: metric {metric!r} vanished")
            continue
        base = float(spec["value"])
        new = float(result[metric]["value"])
        higher_better = bool(spec.get("higher_is_better", False))
        if base == new:
            # Identical numbers (including a legitimate 0 == 0) are never
            # a regression, whatever the direction.
            print(f"  ok: {baseline_path.name}: {metric} {base:g} -> {new:g}")
            continue
        if base == 0:
            ratio = float("inf")
        else:
            ratio = new / base
        if higher_better:
            regressed = ratio < 1.0 - tolerance
            improved = ratio > 1.0 + tolerance
        else:
            regressed = ratio > 1.0 + tolerance
            improved = ratio < 1.0 - tolerance
        arrow = f"{base:g} -> {new:g}"
        if regressed:
            failures.append(
                f"{baseline_path.name}: {metric} regressed {arrow} "
                f"({'-' if higher_better else '+'}{abs(ratio - 1):.1%}, "
                f"tolerance {tolerance:.0%})"
            )
        elif improved:
            print(
                f"  improvement: {baseline_path.name}: {metric} {arrow} "
                "— consider re-pinning the baseline"
            )
        else:
            print(f"  ok: {baseline_path.name}: {metric} {arrow}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.10)
    args = parser.parse_args(argv)
    baselines = sorted(BASELINES.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no baselines under {BASELINES}", file=sys.stderr)
        return 2
    failures: list[str] = []
    for path in baselines:
        failures.extend(compare(path, args.tolerance))
    if failures:
        print("\nperf-trajectory regressions:", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baselines)} benchmark baselines within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
