"""Tests for the shared-memory arena (repro.core.shm).

The lifecycle contract is the point: segments created through an arena
must be unlinked exactly once no matter how the arena dies — explicit
``close``, garbage collection, or teardown after a crashed worker — and
attaching processes must never adopt cleanup responsibility.
"""

from __future__ import annotations

import gc
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.shm import ShmArena, ShmAttachments, ShmSlab, attach_segment


def _segment_exists(name: str) -> bool:
    try:
        segment = attach_segment(name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


def test_share_array_round_trip_and_close_unlinks():
    arena = ShmArena()
    data = np.arange(12, dtype=np.float64).reshape(3, 4)
    ref = arena.share_array(data)
    attach = ShmAttachments()
    view = attach.array(ref)
    np.testing.assert_array_equal(view, data)
    assert view.dtype == data.dtype
    name = ref[0]
    assert _segment_exists(name)
    attach.close()
    arena.close()
    assert not _segment_exists(name)
    arena.close()  # idempotent


def test_garbage_collected_arena_unlinks_segments():
    """The weakref.finalize guard must clean up an arena nobody closed."""
    arena = ShmArena()
    ref = arena.share_array(np.ones(16))
    name = ref[0]
    assert _segment_exists(name)
    del arena
    gc.collect()
    assert not _segment_exists(name)


def test_slab_reuses_segment_and_grows_by_reallocation():
    arena = ShmArena()
    try:
        slab = ShmSlab(arena, 64)
        first = slab.name
        slab.begin()
        ref_a = slab.write(np.arange(4, dtype=np.int64))
        ref_b = slab.write(np.arange(3, dtype=np.float64))
        assert ref_a[0] == ref_b[0] == first
        assert ref_b[3] % 8 == 0  # aligned offsets
        np.testing.assert_array_equal(slab.view(ref_a), np.arange(4))
        # A bigger message reallocates (new name), old name is unlinked.
        slab.begin()
        slab.ensure(4096)
        assert slab.name != first
        assert not _segment_exists(first)
    finally:
        arena.close()


def test_slab_refuses_midmessage_reallocation():
    """Growth after a write would orphan the refs already handed out."""
    arena = ShmArena()
    try:
        slab = ShmSlab(arena, 32)
        slab.begin()
        slab.write(np.arange(4, dtype=np.int64))
        with pytest.raises(RuntimeError, match="mid-message"):
            slab.write(np.zeros(1024, dtype=np.float64))
    finally:
        arena.close()


def test_slab_view_rejects_foreign_refs():
    arena = ShmArena()
    try:
        slab = ShmSlab(arena, 64)
        slab.begin()
        ref = slab.write(np.arange(2, dtype=np.int64))
        other = ShmSlab(arena, 64)
        with pytest.raises(ValueError, match="does not belong"):
            other.view(ref)
    finally:
        arena.close()


def test_attach_segment_does_not_adopt_cleanup():
    """An attach followed by close must leave the segment linked: only the
    creator's arena unlinks (the resource-tracker pitfall)."""
    arena = ShmArena()
    ref = arena.share_array(np.arange(8))
    name = ref[0]
    segment = attach_segment(name)
    segment.close()
    assert _segment_exists(name)  # still linked after attacher closed
    arena.close()
    assert not _segment_exists(name)


def test_reserve_round_trip_through_attachment():
    """A reserved region written through an attachment (the worker's path)
    reads back through the slab view (the parent's path)."""
    arena = ShmArena()
    try:
        slab = ShmSlab(arena, 256)
        slab.begin()
        ref = slab.reserve(np.float64, (2, 5))
        attach = ShmAttachments()
        writer = attach.array(ref)
        writer[...] = np.arange(10, dtype=np.float64).reshape(2, 5)
        np.testing.assert_array_equal(
            slab.view(ref), np.arange(10).reshape(2, 5)
        )
        attach.close()
    finally:
        arena.close()


def test_arena_release_single_segment():
    arena = ShmArena()
    keep = arena.share_array(np.ones(4))
    drop = arena.share_array(np.ones(4))
    arena.release(drop[0])
    assert not _segment_exists(drop[0])
    assert _segment_exists(keep[0])
    arena.close()


def test_attach_missing_segment_raises():
    with pytest.raises(FileNotFoundError):
        attach_segment("psm_repro_definitely_missing")


def test_arena_names_reflect_live_segments():
    arena = ShmArena()
    assert arena.names == ()
    ref = arena.share_array(np.ones(2))
    assert ref[0] in arena.names
    arena.close()
    assert arena.names == ()


def test_segment_contents_survive_creator_view_release():
    """Data written through share_array persists for later attachments
    (the worker may attach well after the parent wrote)."""
    arena = ShmArena()
    try:
        payload = np.linspace(0.0, 1.0, 17)
        ref = arena.share_array(payload)
        gc.collect()
        attach = ShmAttachments()
        np.testing.assert_array_equal(attach.array(ref), payload)
        attach.close()
    finally:
        arena.close()


def test_shared_memory_available():
    """The data plane assumes functional POSIX shared memory."""
    segment = shared_memory.SharedMemory(create=True, size=64)
    segment.close()
    segment.unlink()
