"""Input validation helpers shared across the library.

All public entry points validate their numeric inputs eagerly, raising
``ValueError`` with a descriptive message, so failures surface at the API
boundary instead of deep inside a diffusion loop.
"""

from __future__ import annotations

import numpy as np


def check_probability(value: float, name: str, *, inclusive_low: bool = True) -> float:
    """Validate that ``value`` is a probability in [0, 1] (or (0, 1])."""
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    if not (low_ok and value <= 1.0):
        bracket = "[0, 1]" if inclusive_low else "(0, 1]"
        raise ValueError(f"{name} must be in {bracket}, got {value}")
    return value


def check_opinions(opinions: np.ndarray, name: str = "opinions") -> np.ndarray:
    """Validate an opinion array: finite values in [0, 1]."""
    arr = np.asarray(opinions, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    if arr.size and (arr.min() < -1e-12 or arr.max() > 1 + 1e-12):
        raise ValueError(
            f"{name} must lie in [0, 1]; observed range "
            f"[{arr.min():.6g}, {arr.max():.6g}]"
        )
    return np.clip(arr, 0.0, 1.0)


def check_stubbornness(stubbornness: np.ndarray, n: int) -> np.ndarray:
    """Validate a stubbornness vector: length ``n``, values in [0, 1]."""
    arr = np.asarray(stubbornness, dtype=np.float64)
    if arr.shape != (n,):
        raise ValueError(f"stubbornness must have shape ({n},), got {arr.shape}")
    return check_opinions(arr, "stubbornness")


def check_seed_budget(k: int, n: int) -> int:
    """Validate a seed budget ``k`` against the number of nodes ``n``."""
    k = int(k)
    if not 0 <= k <= n:
        raise ValueError(f"seed budget k must be in [0, {n}], got {k}")
    return k


def check_time_horizon(t: int) -> int:
    """Validate a time horizon (non-negative integer)."""
    t = int(t)
    if t < 0:
        raise ValueError(f"time horizon must be non-negative, got {t}")
    return t
