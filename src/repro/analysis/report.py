"""Reporters and the baseline mechanism for ``repro lint``.

Text output is one greppable line per finding; JSON output is fully
deterministic (sorted findings, sorted keys, compact separators — the
same wire discipline the serving layer enforces), so CI diffs and the
baseline file are byte-stable across runs on an unchanged tree.

Baselines let the gate land on a tree with pre-existing accepted
findings: ``--write-baseline`` records today's finding keys,
``--baseline FILE`` subtracts them on later runs, and anything *new*
still fails.  Keys deliberately exclude line numbers (see
:attr:`~repro.analysis.base.Finding.key`) so unrelated edits do not
un-baseline an accepted finding.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.base import Checker, Finding

__all__ = [
    "apply_baseline",
    "format_json",
    "format_text",
    "load_baseline",
    "write_baseline",
]

_BASELINE_VERSION = 1


def format_text(
    findings: Sequence[Finding], *, baselined: int = 0
) -> str:
    """Human/CI-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        counts = Counter(finding.checker for finding in findings)
        summary = ", ".join(
            f"{name}={count}" for name, count in sorted(counts.items())
        )
        lines.append(f"reprolint: {len(findings)} finding(s) ({summary})")
    else:
        lines.append("reprolint: clean")
    if baselined:
        lines.append(f"reprolint: {baselined} baselined finding(s) suppressed")
    return "\n".join(lines)


def format_json(
    findings: Sequence[Finding],
    checkers: Iterable[Checker],
    *,
    baselined: int = 0,
) -> str:
    """Stable machine-readable report (sorted findings, deterministic bytes)."""
    payload = {
        "baselined": baselined,
        "checkers": sorted(checker.name for checker in checkers),
        "counts": dict(
            sorted(Counter(f.checker for f in findings).items())
        ),
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def load_baseline(path: str | Path) -> list[str]:
    """Finding keys accepted by a baseline file (see :func:`write_baseline`)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if (
        not isinstance(data, dict)
        or data.get("version") != _BASELINE_VERSION
        or not isinstance(data.get("keys"), list)
    ):
        raise ValueError(
            f"{path}: not a reprolint baseline (expected "
            f'{{"version": {_BASELINE_VERSION}, "keys": [...]}})'
        )
    return [str(key) for key in data["keys"]]


def write_baseline(findings: Sequence[Finding], path: str | Path) -> int:
    """Record the current findings' keys; returns how many were written."""
    keys = sorted(finding.key for finding in findings)
    payload = {"keys": keys, "version": _BASELINE_VERSION}
    Path(path).write_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return len(keys)


def apply_baseline(
    findings: Sequence[Finding], keys: Iterable[str]
) -> tuple[list[Finding], int]:
    """Subtract baselined findings; returns ``(fresh, baselined_count)``.

    Keys are consumed as a multiset: a baseline recording one accepted
    instance of a key does not silence a second, new occurrence of the
    same violation.
    """
    budget = Counter(keys)
    fresh: list[Finding] = []
    baselined = 0
    for finding in sorted(findings):
        if budget.get(finding.key, 0) > 0:
            budget[finding.key] -= 1
            baselined += 1
        else:
            fresh.append(finding)
    return fresh, baselined
