"""Engine benchmark: multi-host TCP sharding parity and degradation.

Part 1 — dm-mp:tcp fan-out.  One exhaustive greedy round (all ``n``
single-seed extensions, plurality score) through
:class:`~repro.core.engine.BatchedDMEngine` and through a
:class:`~repro.core.engine_net.HostPool` sharding over two loopback
``net-worker`` hosts.  Gains must match the in-process engine **exactly**
(byte-identical, the transport moves final float64 bytes); the scaling
metric is deterministic, not a timer: the critical path of the fanned-out
dense phase is the largest per-host ``dense_column_steps`` share, exactly
as ``bench_engine_mp.py`` measures the process pool.  On a single machine
the TCP loopback cannot beat in-process evaluation on wall-clock — the
counters are the cross-machine ceiling.

Part 2 — graceful degradation.  The same round with one host killed
mid-run: the lost host's chunk re-shards to the survivor, the results
stay byte-identical, and the deterministic degradation counters
(``hosts_lost``, ``chunks_resharded``) land in the gated JSON so a
regression in the re-shard path (double-dispatch, dropped chunks) fails
the perf-trajectory gate.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_net.py``.
Set ``REPRO_BENCH_TINY=1`` for the CI smoke variant (tiny size, parity +
degradation assertions, counters gated via ``BENCH_net.tiny.json``).
"""

import threading

import numpy as np

from benchmarks.conftest import BENCH_SEED, BENCH_TINY, run_once
from repro.core.engine import BatchedDMEngine, EngineSpec
from repro.core.engine_net import run_net_worker
from repro.datasets.twitter import twitter_social_distancing
from repro.eval.reporting import format_series
from repro.utils.timing import Timer
from repro.voting.scores import PluralityScore

TINY = BENCH_TINY
NET_SIZE = 200 if TINY else 800
HORIZON = 20
HOSTS = 2


def _start_worker():
    """One loopback net worker serving a single coordinator."""
    ready = threading.Event()
    address: list[str] = []

    def on_ready(host, port):
        address.append(f"{host}:{port}")
        ready.set()

    thread = threading.Thread(
        target=run_net_worker,
        kwargs=dict(port=0, connections=1, on_ready=on_ready),
        daemon=True,
    )
    thread.start()
    assert ready.wait(30), "net worker never became ready"
    return address[0], thread


def _net_problem(n: int):
    dataset = twitter_social_distancing(n=n, rng=BENCH_SEED, horizon=HORIZON)
    problem = dataset.problem(PluralityScore())
    problem.others_by_user()  # shared inputs, warmed outside the timers
    problem.target_trajectory()
    return problem


def _net_round(n: int) -> dict[str, float]:
    problem = _net_problem(n)
    candidates = np.arange(n)
    batched = BatchedDMEngine(problem)
    with Timer() as ref_timer:
        reference = batched.marginal_gains((), candidates)
    total_dense = batched.stats.dense_column_steps

    started = [_start_worker() for _ in range(HOSTS)]
    hosts = tuple(addr for addr, _ in started)
    spec = EngineSpec(name="dm-mp", transport="tcp", hosts=hosts)
    with spec.build(problem, min_fanout=1) as engine:
        engine.ping()  # connect + handshake outside the timed region
        with Timer() as timer:
            gains = engine.marginal_gains((), candidates)
        assert np.array_equal(gains, reference), "tcp gains must be exact"
        critical = max(w.dense_column_steps for w in engine.worker_stats)
        ipc = int(engine.stats.ipc_bytes)
    for _, thread in started:
        thread.join(30)

    # Degradation: same fan-out, one host killed after the first round.
    started = [_start_worker() for _ in range(HOSTS)]
    spec = EngineSpec(
        name="dm-mp", transport="tcp", hosts=tuple(a for a, _ in started)
    )
    sets = [np.array([i]) for i in candidates]
    with spec.build(problem, min_fanout=1) as engine:
        before = engine.evaluate(sets)
        engine._handles[0].conn.close()  # the "host" dies mid-run
        after = engine.evaluate(sets)
        assert np.array_equal(before, after), "re-sharded results must match"
        hosts_lost = int(engine.stats.hosts_lost)
        resharded = int(engine.stats.chunks_resharded)
        survivors = int(engine.workers)
    for _, thread in started:
        thread.join(30)
    assert hosts_lost == 1 and survivors == HOSTS - 1

    return {
        "total_dense": int(total_dense),
        "critical_dense": int(critical),
        "cp_speedup": total_dense / max(critical, 1),
        "batched_s": ref_timer.elapsed,
        "net_s": timer.elapsed,
        "ipc_bytes": ipc,
        "hosts_lost": hosts_lost,
        "chunks_resharded": resharded,
    }


def test_net_fanout_parity_and_degradation(benchmark, save_result, save_bench_json):
    row = run_once(benchmark, lambda: _net_round(NET_SIZE))
    series = {
        "batched dense col-steps": [row["total_dense"]],
        f"critical dense col-steps ({HOSTS} hosts)": [row["critical_dense"]],
        "critical-path speedup x": [round(row["cp_speedup"], 3)],
        "batched wall s": [round(row["batched_s"], 4)],
        "tcp wall s (loopback)": [round(row["net_s"], 4)],
        "ipc bytes (informational)": [row["ipc_bytes"]],
        "hosts lost (forced)": [row["hosts_lost"]],
        "chunks re-sharded": [row["chunks_resharded"]],
    }
    save_result("net_fanout", format_series("n", [NET_SIZE], series))
    # Gated counters are deterministic work/degradation counts only —
    # ipc_bytes stays informational (pickle framing varies across Python
    # versions), wall times are never gated.
    save_bench_json(
        "net",
        {
            "cp_speedup_2h_x": {
                "value": round(row["cp_speedup"], 6),
                "higher_is_better": True,
            },
            "critical_dense_col_steps_2h": {
                "value": float(row["critical_dense"]),
                "higher_is_better": False,
            },
            "chunks_resharded_after_loss": {
                "value": float(row["chunks_resharded"]),
                "higher_is_better": False,
            },
        },
    )
