"""Tests for the alias-method sampler."""

import numpy as np
import pytest

from repro.graph.alias import AliasSampler
from repro.graph.build import graph_from_edges


def _example_sampler():
    g = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    return g, AliasSampler(g.csc)


def test_distribution_reconstruction_matches_input():
    g, sampler = _example_sampler()
    for j in range(4):
        expected_nodes, expected_weights = g.in_neighbors(j)
        nodes, probs = sampler.distribution(j)
        assert nodes.tolist() == expected_nodes.tolist()
        np.testing.assert_allclose(probs, expected_weights, atol=1e-12)


def test_sampling_frequencies_approximate_weights():
    g, sampler = _example_sampler()
    rng = np.random.default_rng(0)
    draws = sampler.sample(np.full(20_000, 2), rng)
    freq0 = np.mean(draws == 0)
    assert freq0 == pytest.approx(0.5, abs=0.02)
    assert set(np.unique(draws)) == {0, 1}


def test_sampling_deterministic_column():
    g, sampler = _example_sampler()
    draws = sampler.sample(np.full(100, 3), np.random.default_rng(1))
    assert set(np.unique(draws)) == {2}


def test_skewed_distribution():
    g = graph_from_edges(3, [0, 1], [2, 2], weight=np.array([9.0, 1.0]))
    sampler = AliasSampler(g.csc)
    rng = np.random.default_rng(5)
    draws = sampler.sample(np.full(30_000, 2), rng)
    assert np.mean(draws == 0) == pytest.approx(0.9, abs=0.01)


def test_rejects_missing_in_neighbors():
    from scipy import sparse

    mat = sparse.csc_matrix((2, 2))
    with pytest.raises(ValueError, match="no in-neighbors"):
        AliasSampler(mat)


def test_sample_shape_and_range():
    g, sampler = _example_sampler()
    rng = np.random.default_rng(2)
    current = rng.integers(0, 4, size=500)
    out = sampler.sample(current, rng)
    assert out.shape == current.shape
    assert out.min() >= 0 and out.max() < 4
