"""Tests for competitor seed sets (§II-C Remark 2)."""

import numpy as np
import pytest

from repro.core.greedy import greedy_dm
from repro.core.problem import FJVoteProblem
from repro.opinion.fj import apply_seeds, fj_evolve
from repro.voting.scores import CumulativeScore, PluralityScore
from tests.conftest import random_instance


def test_competitor_seeds_shift_competitor_opinions(random_state):
    plain = FJVoteProblem(random_state, 0, 4, PluralityScore())
    rigged = FJVoteProblem(
        random_state, 0, 4, PluralityScore(),
        competitor_seeds={1: np.array([0, 1, 2])},
    )
    base = plain.competitor_opinions()
    seeded = rigged.competitor_opinions()
    assert np.all(seeded[0] >= base[0] - 1e-12)
    assert seeded[0].sum() > base[0].sum()
    # Other competitors are untouched.
    np.testing.assert_allclose(seeded[1], base[1])


def test_competitor_seeds_match_manual_evolution(random_state):
    seeds = np.array([2, 5])
    problem = FJVoteProblem(
        random_state, 0, 3, CumulativeScore(), competitor_seeds={2: seeds}
    )
    b0, d = apply_seeds(
        random_state.initial_opinions[2], random_state.stubbornness[2], seeds
    )
    expected = fj_evolve(b0, d, random_state.graph(2), 3)
    # Row for candidate 2 sits at index 1 of (r-1, n) competitors (target 0).
    np.testing.assert_allclose(problem.competitor_opinions()[1], expected)


def test_competitor_seeds_lower_target_plurality(random_state):
    """A rigged competitor makes the target's rank-based score weakly worse."""
    plain = FJVoteProblem(random_state, 0, 4, PluralityScore())
    rigged = FJVoteProblem(
        random_state, 0, 4, PluralityScore(),
        competitor_seeds={1: np.arange(4)},
    )
    assert rigged.objective(()) <= plain.objective(()) + 1e-9


def test_cumulative_score_ignores_competitor_seeds(random_state):
    """The cumulative score is independent of the competition (§II-C)."""
    plain = FJVoteProblem(random_state, 0, 4, CumulativeScore())
    rigged = FJVoteProblem(
        random_state, 0, 4, CumulativeScore(), competitor_seeds={1: np.arange(3)}
    )
    assert plain.objective(np.array([0])) == pytest.approx(
        rigged.objective(np.array([0]))
    )


def test_greedy_adapts_to_competitor_seeds():
    """Greedy still runs and improves the score under a rigged competitor."""
    state = random_instance(n=10, r=2, seed=21)
    problem = FJVoteProblem(
        state, 0, 3, PluralityScore(), competitor_seeds={1: np.array([0, 1])}
    )
    result = greedy_dm(problem, 2)
    assert result.objective >= problem.objective(()) - 1e-9


def test_with_score_preserves_competitor_seeds(random_state):
    problem = FJVoteProblem(
        random_state, 0, 3, PluralityScore(), competitor_seeds={1: np.array([0])}
    )
    clone = problem.with_score(CumulativeScore())
    assert 1 in clone.competitor_seeds
    np.testing.assert_array_equal(clone.competitor_seeds[1], [0])


def test_competitor_seeds_validation(random_state):
    with pytest.raises(ValueError, match="target"):
        FJVoteProblem(
            random_state, 0, 3, PluralityScore(), competitor_seeds={0: np.array([1])}
        )
    with pytest.raises(ValueError, match="unknown candidate"):
        FJVoteProblem(
            random_state, 0, 3, PluralityScore(), competitor_seeds={9: np.array([1])}
        )
