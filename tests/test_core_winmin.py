"""Tests for Problem 2 (minimum winning seed set, Algorithm 2)."""

import numpy as np
import pytest

from repro.core.problem import FJVoteProblem
from repro.core.winmin import min_seeds_to_win
from repro.graph.build import graph_from_edges
from repro.opinion.state import CampaignState
from repro.voting.scores import CumulativeScore, PluralityScore
from tests.conftest import random_instance


def _losing_state(n=10, margin=0.3, seed=0):
    """Target starts uniformly behind the competitor by ``margin``."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < 0.3
    np.fill_diagonal(mask, False)
    src, dst = np.where(mask)
    graph = graph_from_edges(n, src, dst, rng.uniform(0.2, 1.0, src.size))
    b_target = rng.uniform(0.2, 0.5, n)
    b_other = np.clip(b_target + margin, 0, 1)
    return CampaignState(
        graphs=(graph, graph),
        initial_opinions=np.vstack([b_target, b_other]),
        stubbornness=rng.uniform(0.3, 0.9, size=(2, n)),
    )


def test_already_winning_needs_zero_seeds():
    state = _losing_state()
    # Swap roles: target is the stronger candidate.
    problem = FJVoteProblem(state, 1, 3, CumulativeScore())
    result = min_seeds_to_win(problem)
    assert result.found and result.k == 0
    assert result.seeds.size == 0


def test_minimal_k_matches_linear_scan():
    state = _losing_state(seed=1)
    problem = FJVoteProblem(state, 0, 3, PluralityScore())
    result = min_seeds_to_win(problem)
    assert result.found
    # Cross-check: binary search result equals the first winning prefix.
    from repro.core.greedy import greedy_dm

    ranking = greedy_dm(problem, problem.n).seeds
    linear_k = next(
        k for k in range(problem.n + 1) if problem.target_wins(ranking[:k])
    )
    assert result.k == linear_k
    assert problem.target_wins(result.seeds)
    assert not problem.target_wins(result.seeds[: result.k - 1])


def test_not_found_within_cap():
    state = _losing_state(margin=0.5, seed=2)
    problem = FJVoteProblem(state, 0, 1, CumulativeScore())
    result = min_seeds_to_win(problem, k_max=1)
    if not result.found:
        assert result.k == 1
    # With the full budget the target always wins under cumulative
    # (all opinions become 1 > competitor somewhere below 1).
    full = min_seeds_to_win(problem)
    assert full.found


def test_custom_selector_used():
    state = _losing_state(seed=3)
    problem = FJVoteProblem(state, 0, 3, CumulativeScore())
    calls: list[int] = []

    def selector(k: int) -> np.ndarray:
        calls.append(k)
        return np.arange(k, dtype=np.int64)

    result = min_seeds_to_win(problem, selector=selector)
    assert calls, "selector never invoked"
    assert result.found
    assert problem.target_wins(result.seeds)


def test_k_max_validation():
    state = random_instance(n=6, r=2, seed=4)
    problem = FJVoteProblem(state, 0, 2, CumulativeScore())
    with pytest.raises(ValueError):
        min_seeds_to_win(problem, k_max=0)
    with pytest.raises(ValueError):
        min_seeds_to_win(problem, k_max=99)


def test_cap_hit_returns_found_false_with_cap_sized_attempt():
    """Deterministic k_max-cap case: a fully-stubborn competitor at opinion
    1.0 beats any cumulative score reachable with fewer than n seeds."""
    n = 8
    rng = np.random.default_rng(5)
    mask = rng.random((n, n)) < 0.4
    np.fill_diagonal(mask, False)
    src, dst = np.where(mask)
    graph = graph_from_edges(n, src, dst, rng.uniform(0.2, 1.0, src.size))
    state = CampaignState(
        graphs=(graph, graph),
        initial_opinions=np.vstack([rng.uniform(0.1, 0.4, n), np.ones(n)]),
        stubbornness=np.vstack([rng.uniform(0.3, 0.8, n), np.ones(n)]),
    )
    problem = FJVoteProblem(state, 0, 3, CumulativeScore())
    result = min_seeds_to_win(problem, k_max=2)
    assert result.found is False
    assert result.k == 2
    assert result.seeds.size == 2
    # Empty-set check plus the failed full-budget probe; no binary search.
    assert result.probes == 2


def test_singleton_graph():
    graph = graph_from_edges(1, [], [], np.empty(0))
    state = CampaignState(
        graphs=(graph, graph),
        initial_opinions=np.array([[0.2], [0.9]]),
        stubbornness=np.array([[0.5], [0.5]]),
    )
    losing = FJVoteProblem(state, 0, 2, PluralityScore())
    result = min_seeds_to_win(losing)
    assert result.found and result.k == 1
    assert result.seeds.tolist() == [0]
    assert result.probes == 2  # k_max == n == 1: no midpoints to bisect
    winning = FJVoteProblem(state, 1, 2, PluralityScore())
    already = min_seeds_to_win(winning)
    assert already.found and already.k == 0 and already.probes == 1


def test_probe_accounting_matches_selector_invocations():
    """``probes`` counts winning checks: one for the empty set, then one
    per selector invocation (upper bound + binary-search midpoints)."""
    state = _losing_state(seed=6)
    problem = FJVoteProblem(state, 0, 3, CumulativeScore())
    calls: list[int] = []

    def selector(k: int) -> np.ndarray:
        calls.append(k)
        return np.arange(k, dtype=np.int64)

    result = min_seeds_to_win(problem, selector=selector)
    assert result.probes == len(calls) + 1


def test_session_prefix_probes_match_stateless_engines():
    """The warm-started prefix_wins path (dm-batched) and the per-set path
    (dm) must agree on the result and on probe accounting."""
    state = _losing_state(seed=7)
    problem = FJVoteProblem(state, 0, 3, PluralityScore())
    batched = min_seeds_to_win(problem, engine="dm-batched")
    per_set = min_seeds_to_win(problem, engine="dm")
    assert batched.found == per_set.found
    assert batched.k == per_set.k
    assert batched.seeds.tolist() == per_set.seeds.tolist()
    assert batched.probes == per_set.probes
    assert problem.target_wins(batched.seeds)
    if batched.k > 1:
        assert not problem.target_wins(batched.seeds[: batched.k - 1])


def test_k_max_zero_rejected_even_when_already_winning():
    state = _losing_state()
    problem = FJVoteProblem(state, 1, 3, CumulativeScore())  # target leads
    with pytest.raises(ValueError):
        min_seeds_to_win(problem, k_max=0)
