"""Fig. 19 (Appendix D): score sensitivity to the edge-weight parameter μ.

Expected shape (paper): small differences across μ — column normalization
washes most of μ's effect out — with the μ=10 and μ=15 curves nearly
overlapping, justifying the μ=10 default.
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, run_once
from repro.datasets.yelp import yelp_like
from repro.eval.experiments import mu_experiment
from repro.eval.reporting import format_series
from repro.voting.scores import PluralityScore

MUS = [1.0, 5.0, 10.0, 15.0, 20.0]
KS = [5, 10, 20]


def test_fig19_mu(benchmark, save_result):
    out = run_once(
        benchmark,
        lambda: mu_experiment(
            lambda mu, rng: yelp_like(n=400, r=6, mu=mu, rng=rng, horizon=10),
            MUS,
            KS,
            PluralityScore(),
            method="dm",
            dataset_seed=BENCH_SEED,
            rng=61,
        ),
    )
    series = {k: v for k, v in out.items() if k != "k"}
    save_result("fig19_mu", format_series("k", KS, series))
    # The μ=10 and μ=15 curves nearly overlap (paper's justification).
    a = np.array(out["mu=10.0"])
    b = np.array(out["mu=15.0"])
    assert np.all(np.abs(a - b) <= 0.1 * np.maximum(np.abs(a), 1.0))
    # Overall spread across μ stays modest at the largest k.
    at_kmax = np.array([out[f"mu={mu}"][-1] for mu in MUS])
    assert at_kmax.max() - at_kmax.min() <= 0.35 * at_kmax.max()
