"""Greedy seed selection (paper Algorithm 1) with optional CELF laziness.

One *round-driver*, :func:`run_selection_rounds`, hosts both the exhaustive
scan and CELF lazy evaluation [Leskovec et al. 2007] over a
:class:`~repro.core.engine.SelectionSession` — greedy state (the committed
seeds, their objective, and any backend warm-start state) lives in the
session, not in per-algorithm loops.  ``greedy_select`` drives it over a
black-box set function; ``greedy_engine`` drives it over an
:class:`~repro.core.engine.ObjectiveEngine` session, collapsing each
exhaustive round into *one* batched, warm-started evaluation;
``greedy_dm`` instantiates it with exact opinion computation via direct
matrix multiplication (the DM method of §VIII-A, batched by default).
CELF is valid when the objective is submodular — in this library: the
cumulative score, the sandwich bound functions, and coverage — and is
applied automatically for those.

Tie-breaking contract
---------------------
The driver is deterministic.  The exhaustive path scans candidates in
ascending node order and ``np.argmax`` keeps the *first* maximum, so
equal-gain ties resolve to the smallest node id.  The CELF heap stores
``(-gain, node, stamp)`` tuples, so equal ``-gain`` entries compare on
``node`` next: ties again pop the smallest node id first.  Tests pin this
contract.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.problem import FJVoteProblem
from repro.utils.validation import check_seed_budget
from repro.voting.scores import CumulativeScore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> greedy)
    from repro.core.engine import ObjectiveEngine, SelectionSession


@dataclass
class GreedyResult:
    """Outcome of a greedy run.

    Attributes
    ----------
    seeds:
        Selected nodes in pick order.
    objective:
        Objective value of the full seed set.
    gains:
        Marginal gain recorded at each pick.
    evaluations:
        Number of candidate-objective evaluations performed (CELF
        effectiveness metric; a batched round of ``C`` candidates counts
        as ``C`` evaluations).
    """

    seeds: np.ndarray
    objective: float
    gains: np.ndarray
    evaluations: int


class _FunctionSession:
    """A black-box set function behind the session protocol.

    Lets :func:`run_selection_rounds` drive arbitrary ``value_fn`` callers
    (coverage, equilibrium sums, test doubles) through the same exhaustive
    and CELF code paths the engine sessions use.
    """

    def __init__(self, value_fn: Callable[[tuple[int, ...]], float]) -> None:
        self._fn = value_fn
        self.seeds: tuple[int, ...] = ()
        self.value = float(value_fn(()))

    def marginal_gains(self, candidates: Sequence[int]) -> np.ndarray:
        base = self.seeds
        return np.array(
            [self._fn(base + (int(v),)) for v in candidates], dtype=np.float64
        ) - self.value

    def commit(self, seed: int, *, gain: float | None = None) -> float:
        seed = int(seed)
        if gain is None:
            gain = float(self._fn(self.seeds + (seed,))) - self.value
        self.seeds += (seed,)
        self.value += float(gain)
        return self.value


def _candidate_pool(
    n: int, k: int, candidates: Sequence[int] | None
) -> tuple[int, np.ndarray]:
    k = check_seed_budget(k, n)
    pool = np.arange(n) if candidates is None else np.asarray(sorted(set(candidates)))
    if k > pool.size:
        raise ValueError(f"budget k={k} exceeds candidate pool size {pool.size}")
    return k, pool


def run_selection_rounds(
    session: "SelectionSession | _FunctionSession",
    k: int,
    pool: np.ndarray,
    *,
    lazy: bool = False,
) -> GreedyResult:
    """The shared greedy round-driver: ``k`` commits against one session.

    The exhaustive path performs *one* ``session.marginal_gains`` call per
    round — a warm-started batched backend collapses the whole round into a
    single vectorized evolution against the committed state.  The CELF path
    batches the first round (all initial gains at once) and then
    re-evaluates individual stale entries on demand; only sound for
    submodular objectives.  Each pick is folded into the session via
    ``commit``, so the next round (and any later prefix probe) starts from
    the committed state instead of replaying the selection.
    """
    selected: list[int] = []
    gains_trace: list[float] = []
    evaluations = 0
    if lazy:
        # CELF: heap entries are (-cached_gain, node, stamp) where stamp is
        # the size of the selected set when the gain was computed.  A cached
        # gain is exact iff stamp == len(selected); by submodularity stale
        # gains only over-estimate, so popping a fresh maximum is safe.
        # Tuple comparison breaks equal -gain ties by ascending node id.
        initial = session.marginal_gains(pool)
        evaluations += pool.size
        heap: list[tuple[float, int, int]] = [
            (-float(g), int(v), 0) for g, v in zip(initial, pool)
        ]
        heapq.heapify(heap)
        for _ in range(k):
            while True:
                neg_gain, v, stamp = heapq.heappop(heap)
                if stamp == len(selected):
                    best, best_gain = v, -neg_gain
                    break
                gain = float(session.marginal_gains(np.array([v]))[0])
                evaluations += 1
                heapq.heappush(heap, (-gain, v, len(selected)))
            selected.append(best)
            gains_trace.append(best_gain)
            session.commit(best, gain=best_gain)
    else:
        # Candidates stay in ascending node order and np.argmax keeps the
        # first maximum, so the smallest node id wins equal-gain ties.
        remaining = np.asarray(pool).copy()
        for _ in range(k):
            gains = session.marginal_gains(remaining)
            evaluations += remaining.size
            idx = int(np.argmax(gains))
            best, best_gain = int(remaining[idx]), float(gains[idx])
            selected.append(best)
            gains_trace.append(best_gain)
            session.commit(best, gain=best_gain)
            remaining = np.delete(remaining, idx)
    return GreedyResult(
        seeds=np.array(selected, dtype=np.int64),
        objective=session.value,
        gains=np.array(gains_trace, dtype=np.float64),
        evaluations=evaluations,
    )


def greedy_select(
    value_fn: Callable[[tuple[int, ...]], float],
    n: int,
    k: int,
    *,
    lazy: bool = False,
    candidates: Sequence[int] | None = None,
) -> GreedyResult:
    """Select ``k`` elements greedily maximizing ``value_fn``.

    Parameters
    ----------
    value_fn:
        Maps a tuple of selected node ids to the objective value.  Must be
        non-decreasing for the result to be meaningful.
    n:
        Ground-set size (nodes are ``0..n-1``).
    k:
        Number of elements to pick.
    lazy:
        Use CELF lazy evaluation.  Only sound for submodular objectives.
    candidates:
        Optional restriction of the ground set.

    Equal-gain ties resolve to the smallest node id on both paths (see the
    module docstring), so results are reproducible across runs.
    """
    k, pool = _candidate_pool(n, k, candidates)
    return run_selection_rounds(_FunctionSession(value_fn), k, pool, lazy=lazy)


def greedy_engine(
    engine: "ObjectiveEngine",
    k: int,
    *,
    lazy: bool = False,
    candidates: Sequence[int] | None = None,
    session: "SelectionSession | None" = None,
) -> GreedyResult:
    """Greedy selection driven by an :class:`ObjectiveEngine` session.

    Opens a fresh :class:`~repro.core.engine.SelectionSession` on the
    engine (or drives the caller's ``session``, which must be rooted at the
    empty set — win-min passes one in so the binary search can keep probing
    the committed ranking afterwards) and hands it to
    :func:`run_selection_rounds`.

    Tie-breaking matches :func:`greedy_select`: candidates are scanned in
    ascending node order and ``np.argmax`` keeps the first maximum, so
    equal-gain ties resolve to the smallest node id.
    """
    k, pool = _candidate_pool(engine.problem.n, k, candidates)
    # Let estimator backends escalate their sample for this budget (and
    # account the achieved (ε, δ)) before any session state is built; a
    # no-op for the exact engines.
    escalated = bool(engine.prepare_budget(k))
    if session is None:
        session = engine.open_session()
    elif session.engine is not engine:
        raise ValueError("session belongs to a different engine")
    elif session.seeds:
        # A pre-committed session would let committed seeds be re-selected
        # and would fold their value into the result's objective.
        raise ValueError("session must be rooted at the empty seed set")
    elif escalated:
        # The caller's session snapshotted its base value on the sample
        # the escalation just replaced; rebase so the committed value and
        # the round gains come from one sample.
        session.rebase()
    return run_selection_rounds(session, k, pool, lazy=lazy)


def greedy_dm(
    problem: FJVoteProblem,
    k: int,
    *,
    lazy: bool | str = "auto",
    candidates: Sequence[int] | None = None,
    engine: "ObjectiveEngine | str | None" = None,
    rng: "int | np.random.Generator | None" = None,
) -> GreedyResult:
    """Algorithm 1 with exact (direct matrix multiplication) opinions.

    ``lazy="auto"`` enables CELF exactly when the score is cumulative (the
    submodular case, Theorem 3); other scores use exhaustive re-evaluation
    each round as in the paper.

    ``engine`` selects the evaluation backend: an
    :class:`~repro.core.engine.ObjectiveEngine` instance, a spec name from
    :data:`~repro.core.engine.ENGINE_NAMES`, or ``None`` for the default
    batched DM engine (exact, identical objectives, one warm-started
    vectorized evolution per round instead of ~n restarts).  ``rng`` seeds
    the stochastic (walk/sketch) engine specs for reproducible selections;
    exact engines ignore it.
    """
    from repro.core.engine import make_engine

    if lazy == "auto":
        lazy = isinstance(problem.score, CumulativeScore)
    made = make_engine(engine, problem, rng=rng)
    try:
        return greedy_engine(made, k, lazy=bool(lazy), candidates=candidates)
    finally:
        # Engines built here from a spec are scoped to this selection;
        # caller-supplied instances stay open (make_engine passed them
        # through).  close() is a no-op for the in-process backends.
        if made is not engine:
            made.close()
