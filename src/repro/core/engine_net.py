"""Multi-host candidate sharding over TCP (``--engine dm-mp:tcp=...``).

:class:`HostPool` is the coordinator: it shards candidate chunks across
remote worker pools exactly the way
:class:`~repro.core.engine_mp.MultiprocessDMEngine` shards them across
local processes — same framed ops (``chunk``, ``commit``, ``delta``,
``extrows``, ``stop``), same exact
:attr:`~repro.core.engine.EngineStats.ipc_bytes` accounting — except the
frames ride length-prefixed TCP sockets instead of pipes.  Each host runs
``repro net-worker`` (:func:`run_net_worker`): an accept loop that
handshakes one coordinator at a time, builds the same private
:class:`~repro.core.engine.BatchedDMEngine` a forked pool member would
(or a whole host-side ``dm-mp`` pool with ``--workers``), and serves the
shared :func:`~repro.core.engine_mp._worker_loop`.

Determinism is inherited, not re-proved: the coordinator reuses the
multiprocess engine's chunking (`np.array_split` contiguous chunks,
results concatenated in chunk order), so selections are byte-identical
to ``dm`` at every host count — and stay byte-identical when a host is
lost mid-run, because re-sharding only moves *which* connection evaluates
a chunk, never the chunk contents or their concatenation order.

Failure model
-------------
Connects retry until ``connect_timeout`` (hosts may still be starting).
After the handshake, a host that dies mid-round is dropped from the pool
(``stats.hosts_lost``) and its unanswered chunks are re-dispatched to the
survivors (``stats.chunks_resharded``); later rounds shard across the
survivors while the coordinator keeps re-dialing the lost address on a
deterministic backoff schedule — a host that comes back is re-handshaken
with the current problem, journal-replayed, and restored to its original
shard slot (``stats.hosts_rejoined``).  Broadcast ops (``ping`` /
``commit`` / ``delta``) are simply dropped for dead hosts — a worker
that misses a commit rebuilds its session trajectory lazily from the
``(base, seeds)`` pair every fan-out message carries, bitwise identical
either way.  Losing the *last* host raises.  A worker-side evaluation
error (as opposed to a transport failure) still raises immediately, like
the process pool.

The handshake ships the pickled problem once per connection, mirroring
the process pool's ship-once-at-start contract.  When the net worker was
started with ``--store-dir``, it opens the shared
:class:`~repro.core.walk_store.WalkStore` against the coordinator's
problem first — the store manifest's identity check rejects coordinators
whose problem does not match the walks on disk, so a fleet can only ever
agree on one problem identity.
"""

from __future__ import annotations

import os
import pickle
import select
import socket
import struct
import time
from typing import Callable, Sequence

from repro.core import faults
from repro.core.engine import BatchedDMEngine, EngineStats
from repro.core.engine_mp import (
    _BROADCAST_OPS,
    _EVOLUTION_COUNTERS,
    _PICKLE_PROTOCOL,
    _STOP_BYTES,
    MultiprocessDMEngine,
    _recv_message,
    _send_message,
    _worker_loop,
)
from repro.core.problem import FJVoteProblem
from repro.utils.retry import backoff_schedule, with_backoff
from repro.utils.workers import stop_worker_pool

#: Re-dial ladder for lost hosts (seconds between rejoin attempts);
#: deterministic — the attempt count indexes it, the tail repeats.
_REJOIN_DELAYS = tuple(backoff_schedule(retries=6, base_delay=0.1, max_delay=2.0))

#: Per-attempt connect budget while re-dialing a lost host; short so a
#: still-dead host costs one refused dial per due attempt, not a stall.
_REJOIN_DIAL_TIMEOUT = 0.25

#: Frame header: unsigned 64-bit big-endian payload length.
_FRAME_HEADER = struct.Struct("!Q")

#: recv() slice cap; large frames arrive in pieces regardless.
_RECV_CHUNK = 1 << 20


class FramedSocket:
    """``mp.Connection`` byte surface over one TCP socket.

    Frames are length-prefixed (8-byte big-endian header) so
    ``recv_bytes`` returns exactly one peer ``send_bytes`` payload —
    the same whole-message semantics a pipe gives the worker loop.  The
    header is transport framing, not payload: ``ipc_bytes`` counts the
    pickled payload only, keeping the counter comparable across pipe,
    shm and tcp transports for identical messages.
    """

    __slots__ = ("_sock",)

    def __init__(self, sock: socket.socket) -> None:
        sock.settimeout(None)  # blocking frames; liveness is EOF-based
        self._sock = sock

    def send_bytes(self, payload: bytes) -> None:
        self._sock.sendall(_FRAME_HEADER.pack(len(payload)) + payload)

    def recv_bytes(self) -> bytes:
        (length,) = _FRAME_HEADER.unpack(self._recv_exact(_FRAME_HEADER.size))
        return self._recv_exact(length)

    def _recv_exact(self, count: int) -> bytes:
        parts: list[bytes] = []
        remaining = count
        while remaining:
            part = self._sock.recv(min(remaining, _RECV_CHUNK))
            if not part:
                raise EOFError("dm-mp tcp peer closed the connection")
            parts.append(part)
            remaining -= len(part)
        return b"".join(parts)

    def poll(self, timeout: float = 0.0) -> bool:
        ready, _, _ = select.select([self._sock], [], [], timeout)
        return bool(ready)

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass


def _split_address(entry: str) -> tuple[str, int]:
    """``host:port`` -> ``(host, port)``; the EngineSpec grammar's shape."""
    host, sep, port = entry.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"malformed dm-mp tcp host {entry!r}; expected host:port"
        )
    return host, int(port)


def _connect(address: str, timeout: float) -> FramedSocket:
    """Dial one host, retrying with backoff until ``timeout`` elapses.

    Hosts are commonly started in parallel with the coordinator, so a
    refused connection is retried (the listener may not be up yet);
    only the deadline turns persistent failure into an error.
    """
    host, port = _split_address(address)
    deadline = time.monotonic() + timeout
    # Enough capped delays to span the timeout; the dial itself uses the
    # remaining budget, so the last attempt cannot overshoot.
    schedule: list[float] = []
    total = 0.0
    for delay in backoff_schedule(retries=64, base_delay=0.05, max_delay=0.5):
        if total >= timeout:
            break
        schedule.append(delay)
        total += delay

    def dial() -> FramedSocket:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ConnectionError("connect deadline exhausted")
        sock = socket.create_connection((host, port), timeout=max(remaining, 0.05))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return FramedSocket(sock)

    try:
        return with_backoff(dial, exceptions=(OSError,), schedule=schedule)
    except OSError as exc:
        raise RuntimeError(
            f"cannot reach dm-mp tcp host {address} within {timeout:.1f}s: {exc}"
        ) from exc


class _HostHandle:
    """One connected host: framed socket, address, per-host counters.

    Duck-typed for :func:`~repro.utils.workers.stop_worker_pool` minus
    the ``process`` attribute — there is no local process to reap, the
    remote ``net-worker`` loops back to ``accept`` when the stop frame
    (or EOF) arrives.
    """

    __slots__ = ("conn", "address", "stats")

    def __init__(self, conn: FramedSocket, address: str, stats: EngineStats) -> None:
        self.conn = conn
        self.address = address
        self.stats = stats


class HostPool(MultiprocessDMEngine):
    """Exact DM evaluation sharded across remote ``net-worker`` hosts.

    Parameters
    ----------
    problem:
        The FJ-Vote instance, shipped once per host in the handshake.
    hosts:
        ``host:port`` targets (the ``dm-mp:tcp=<host:port,...>`` spec);
        one candidate shard per host, ``workers == len(hosts)``.
    connect_timeout:
        Seconds to keep retrying each host's connect before giving up.
    kwargs:
        Forwarded to :class:`BatchedDMEngine` locally *and* to every
        host's engine through the handshake, exactly like the process
        pool ships its ``engine_kwargs``.

    Everything above the wire is inherited from
    :class:`MultiprocessDMEngine` with the pipe-style message bodies
    (arrays pickled into frames, no shm slabs): sessions broadcast
    commits, deltas ship patched columns, ``min_fanout`` keeps tiny
    rounds local.  Only connection management, dispatch-with-degradation
    and teardown are socket-specific.
    """

    def __init__(
        self,
        problem: FJVoteProblem,
        *,
        hosts: Sequence[str],
        connect_timeout: float = 10.0,
        min_fanout: int | None = None,
        **kwargs: object,
    ) -> None:
        hosts = tuple(str(h) for h in hosts)
        if not hosts:
            raise ValueError("dm-mp tcp needs at least one host:port")
        for entry in hosts:
            _split_address(entry)  # fail fast on malformed addresses
        super().__init__(
            problem,
            workers=len(hosts),
            transport="pipe",
            min_fanout=min_fanout,
            **kwargs,
        )
        # "pipe" above selects the pickled-frames message bodies in the
        # inherited fan-out paths; the data plane is really TCP.
        self.transport = "tcp"
        self.hosts = hosts
        self.connect_timeout = float(connect_timeout)
        self._handles: list[_HostHandle] | None = None
        #: Lost addresses pending rejoin: address -> [attempts, next_retry].
        self._lost_hosts: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _handshake(self, address: str, timeout: float) -> _HostHandle:
        """Dial one host and ship the hello (problem + engine kwargs).

        The handshake always carries the *current* problem, so a host
        rejoining after deltas starts from patched state (journal replay
        of the deltas is then an idempotent no-op).
        """
        conn = _connect(address, timeout)
        try:
            hello = pickle.dumps(
                ("hello", self.problem, self._engine_kwargs), _PICKLE_PROTOCOL
            )
            conn.send_bytes(hello)
            self.stats.ipc_bytes += len(hello)
            reply, nbytes = _recv_message(conn)
            self.stats.ipc_bytes += nbytes
            status, result, _ = reply
            if status != "ok":
                raise RuntimeError(
                    f"dm-mp tcp host {address} rejected the handshake:\n{result}"
                )
        except BaseException:
            conn.close()
            raise
        slot = self.hosts.index(address)
        return _HostHandle(conn, address, self.worker_stats[slot])

    def _ensure_pool(self) -> list[_HostHandle]:
        """Connect and handshake every host (idempotent, all-or-nothing)."""
        if self._handles is None:
            handles: list[_HostHandle] = []
            try:
                for address in self.hosts:
                    handles.append(
                        self._handshake(address, self.connect_timeout)
                    )
            except BaseException:
                for handle in handles:
                    handle.conn.close()
                raise
            self._handles = handles
            self._lost_hosts = {}
            self._pool_started = time.monotonic()
        return self._handles

    def close(self) -> None:
        """Send stop frames and close every socket (idempotent).

        Reuses the shared guarded-stop ladder; host handles carry no
        local process, so only the send and the socket close apply.
        """
        handles, self._handles = self._handles, None
        self._pool_started = None
        self._lost_hosts = {}
        if handles:
            stop_worker_pool(handles, lambda conn: conn.send_bytes(_STOP_BYTES))

    # ------------------------------------------------------------------
    # Dispatch with graceful degradation
    # ------------------------------------------------------------------
    def _lose_host(self, handle: _HostHandle) -> None:
        """Drop a dead host: later rounds shard across the survivors
        while the rejoin schedule re-dials its address."""
        handles = self._handles or []
        if handle in handles:
            handles.remove(handle)
        handle.conn.close()
        self.stats.hosts_lost += 1
        if handles:
            self.workers = len(handles)
        self._lost_hosts.setdefault(
            handle.address, [0, time.monotonic() + _REJOIN_DELAYS[0]]
        )

    def _try_rejoin(self) -> None:
        """Re-dial lost hosts whose backoff deadline has passed.

        A successful dial re-runs the full handshake (current problem),
        replays the coordinator journal, and restores the host to its
        original shard slot — selections stay byte-identical throughout
        because chunk contents and concatenation order never depended on
        *which* connection evaluates a chunk.
        """
        if not self._lost_hosts or self._handles is None:
            return
        for address, entry in list(self._lost_hosts.items()):
            if time.monotonic() < entry[1]:
                continue
            try:
                handle = self._handshake(address, _REJOIN_DIAL_TIMEOUT)
            except (RuntimeError, OSError, EOFError):
                entry[0] += 1
                delay = _REJOIN_DELAYS[min(int(entry[0]), len(_REJOIN_DELAYS) - 1)]
                entry[1] = time.monotonic() + delay
                continue
            del self._lost_hosts[address]
            self._handles.append(handle)
            self._handles.sort(key=lambda h: self.hosts.index(h.address))
            self.workers = len(self._handles)
            self.stats.hosts_rejoined += 1
            self._replay_journal(self.hosts.index(address), handle)

    def _inject_host_faults(self) -> None:
        """The ``net-sever-host`` fault point: cut a planned host's socket.

        Closing the coordinator side mid-round makes the next send fail
        with a real transport error, driving the production lose /
        re-shard / rejoin path (the remote net-worker sees EOF and loops
        back to ``accept``, ready for the rejoin dial).
        """
        if faults.active() is None or self._handles is None:
            return
        for handle in list(self._handles):
            spec = faults.maybe_fail(
                "net-sever-host", host=handle.address, round=self.pool_rounds
            )
            if spec is not None:
                handle.conn.close()

    def _receive(self, handle: _HostHandle):
        """One reply off ``handle``; folds counters, raises on worker err.

        Transport failures (EOF/OSError) propagate to the caller — they
        mean the *host* died and its chunk can be re-dispatched; a
        worker-side ``err`` status means the evaluation itself failed on
        a live host and re-running it elsewhere would fail the same way.
        """
        reply, nbytes = _recv_message(handle.conn)
        self.stats.ipc_bytes += nbytes
        status, result, stats = reply
        if status != "ok":
            self.close()
            raise RuntimeError(
                f"dm-mp tcp host {handle.address} failed:\n{result}"
            )
        for name, value in zip(_EVOLUTION_COUNTERS, stats):
            setattr(self.stats, name, getattr(self.stats, name) + value)
            setattr(handle.stats, name, getattr(handle.stats, name) + value)
        return result

    def _run(self, messages: Sequence[tuple], pending: Sequence | None = None) -> list:
        """Fan out one round over the hosts, re-sharding around losses.

        Chunked ops keep their slots: ``results[i]`` always answers
        ``messages[i]``, however many times host failures re-dispatch it,
        so the caller's chunk-order concatenation (the byte-identity
        contract) never observes the loss.  ``pending`` is unused — the
        tcp data plane has no reply slabs.
        """
        del pending  # tcp frames carry their payloads inline
        self._ensure_pool()
        self._try_rejoin()
        self._inject_host_faults()
        handles = list(self._handles or [])
        round_start = time.monotonic()
        try:
            messages = list(messages)
            results: dict[int, object] = {}
            failed: list[int] = []
            dispatched: list[tuple[int, _HostHandle]] = []
            for index, message in enumerate(messages):
                handle = handles[index]
                try:
                    self.stats.ipc_bytes += _send_message(handle.conn, message)
                    dispatched.append((index, handle))
                except (BrokenPipeError, ConnectionError, OSError):
                    self._lose_host(handle)
                    failed.append(index)
            for index, handle in dispatched:
                try:
                    results[index] = self._receive(handle)
                except (EOFError, ConnectionError, OSError):
                    self._lose_host(handle)
                    failed.append(index)
            if failed:
                if messages[failed[0]][0] in _BROADCAST_OPS:
                    # Survivors already served the broadcast; missed
                    # commits self-heal from the next fan-out's seeds.
                    if not self._handles:
                        self.close()
                        raise RuntimeError(
                            "dm-mp tcp: every host is unreachable"
                        )
                else:
                    self._redispatch(messages, sorted(failed), results)
            return [results[index] for index in sorted(results)]
        finally:
            self.pool_rounds += 1
            self.pool_busy_s += time.monotonic() - round_start

    def _redispatch(
        self,
        messages: list,
        queue: list[int],
        results: dict[int, object],
    ) -> None:
        """Re-shard a lost host's chunks across the survivors, in waves.

        Each wave assigns at most one queued chunk per survivor (keeping
        hosts busy concurrently); a survivor that dies mid-wave sends its
        chunk back into the queue.  Runs until every chunk has a result
        or no hosts remain.
        """
        while queue:
            survivors = list(self._handles or [])
            if not survivors:
                self.close()
                raise RuntimeError(
                    "dm-mp tcp: every host was lost before the round's "
                    "chunks could be re-sharded"
                )
            wave: list[tuple[int, _HostHandle]] = []
            for handle, index in zip(survivors, list(queue)):
                try:
                    self.stats.ipc_bytes += _send_message(
                        handle.conn, messages[index]
                    )
                except (BrokenPipeError, ConnectionError, OSError):
                    self._lose_host(handle)
                    continue
                self.stats.chunks_resharded += 1
                wave.append((index, handle))
                queue.remove(index)
            for index, handle in wave:
                try:
                    results[index] = self._receive(handle)
                except (EOFError, ConnectionError, OSError):
                    self._lose_host(handle)
                    queue.append(index)

    # ------------------------------------------------------------------
    def pool_stats(self) -> dict[str, object]:
        """The process pool's snapshot plus host fleet accounting."""
        stats = super().pool_stats()
        connected = [h.address for h in (self._handles or [])]
        stats["hosts"] = list(self.hosts)
        stats["hosts_connected"] = connected
        stats["hosts_lost"] = int(self.stats.hosts_lost)
        stats["hosts_rejoined"] = int(self.stats.hosts_rejoined)
        stats["chunks_resharded"] = int(self.stats.chunks_resharded)
        return stats


# ----------------------------------------------------------------------
# The host side: ``repro net-worker``
# ----------------------------------------------------------------------
def _net_worker_connection(
    conn: FramedSocket,
    *,
    workers: int,
    store_dir: str | None,
    store_seed: int,
    engine_overrides: dict | None,
) -> None:
    """Serve one coordinator: handshake, then the shared dm-mp worker loop.

    The hello frame carries the pickled problem and engine kwargs.  With
    ``store_dir`` set, the shared :class:`WalkStore` is opened against
    that problem *before* the ok goes back — its manifest identity check
    turns a mismatched coordinator into a structured ``err`` reply
    instead of silently answering for the wrong problem.  ``--workers``
    > 1 builds a host-side ``dm-mp`` pool, so chunks fan out again
    locally (bitwise identical results either way).
    """
    try:
        message = pickle.loads(conn.recv_bytes())
    except (EOFError, OSError, pickle.UnpicklingError):
        return
    if not (
        isinstance(message, tuple) and len(message) == 3 and message[0] == "hello"
    ):
        conn.send_bytes(
            pickle.dumps(
                ("err", "expected a ('hello', problem, kwargs) handshake", None),
                _PICKLE_PROTOCOL,
            )
        )
        return
    _, problem, engine_kwargs = message
    engine_kwargs = {**engine_kwargs, **(engine_overrides or {})}
    store = None
    try:
        if store_dir is not None:
            from repro.core.walk_store import store_for_problem

            store = store_for_problem(
                problem, seed=store_seed, store_dir=store_dir
            )
        if workers > 1:
            engine: BatchedDMEngine = MultiprocessDMEngine(
                problem, workers=workers, **engine_kwargs
            )
        else:
            engine = BatchedDMEngine(problem, **engine_kwargs)
    except (ValueError, TypeError, OSError) as exc:
        conn.send_bytes(
            pickle.dumps(
                ("err", f"handshake rejected: {exc}", None), _PICKLE_PROTOCOL
            )
        )
        return
    try:
        conn.send_bytes(
            pickle.dumps(
                ("ok", (os.getpid(), socket.gethostname()), None),
                _PICKLE_PROTOCOL,
            )
        )
        _worker_loop(conn, problem, engine, watch_parent=False)
    finally:
        engine.close()
        if store is not None:
            store.close()


def run_net_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    workers: int = 1,
    store_dir: str | None = None,
    store_seed: int = 0,
    connections: int | None = None,
    on_ready: Callable[[str, int], None] | None = None,
    engine_overrides: dict | None = None,
) -> int:
    """Listen for ``HostPool`` coordinators and serve their chunks.

    One coordinator is served at a time (a coordinator holds its
    connection for the engine's lifetime); when it stops or disconnects
    the loop returns to ``accept``, so a long-lived host outlives many
    selection runs.  ``port=0`` binds a free port; ``on_ready`` receives
    the bound ``(host, port)`` before the first accept (the CLI prints
    its readiness line from it).  ``connections`` bounds how many
    coordinators are served before returning (``None`` = serve forever);
    returns the number served.
    """
    if workers < 1:
        raise ValueError(f"net-worker needs at least one worker, got {workers}")
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    served = 0
    try:
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((host, port))
        server.listen(8)
        bound_host, bound_port = server.getsockname()[:2]
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        while connections is None or served < connections:
            sock, _ = server.accept()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = FramedSocket(sock)
            try:
                _net_worker_connection(
                    conn,
                    workers=workers,
                    store_dir=store_dir,
                    store_seed=store_seed,
                    engine_overrides=engine_overrides,
                )
            except (OSError, EOFError, ConnectionError):
                # A coordinator that dies mid-serve (socket reset, severed
                # link) must not take the host down: the loop returns to
                # ``accept`` so the coordinator can rejoin.
                pass
            finally:
                conn.close()
            served += 1
    finally:
        server.close()
    return served


__all__ = [
    "FramedSocket",
    "HostPool",
    "run_net_worker",
]
