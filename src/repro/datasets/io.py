"""Saving and loading datasets as ``.npz`` archives.

Datasets are fully determined by edge lists + weights (per candidate graph,
deduplicated by object identity), the opinion/stubbornness matrices, names
and the default target/horizon.  Non-array metadata is serialized as JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.datasets.synth import Dataset
from repro.graph.digraph import InfluenceGraph
from repro.opinion.state import CampaignState
from scipy import sparse


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` (.npz)."""
    path = Path(path)
    state = dataset.state
    unique_graphs: list[InfluenceGraph] = []
    graph_index: list[int] = []
    for g in state.graphs:
        for i, seen in enumerate(unique_graphs):
            if seen is g:
                graph_index.append(i)
                break
        else:
            graph_index.append(len(unique_graphs))
            unique_graphs.append(g)
    payload: dict[str, np.ndarray] = {
        "initial_opinions": np.asarray(state.initial_opinions),
        "stubbornness": np.asarray(state.stubbornness),
        "graph_index": np.asarray(graph_index, dtype=np.int64),
        "target": np.asarray([dataset.target], dtype=np.int64),
        "horizon": np.asarray([dataset.horizon], dtype=np.int64),
        "n": np.asarray([state.n], dtype=np.int64),
    }
    for i, g in enumerate(unique_graphs):
        src, dst, w = g.edges()
        payload[f"graph{i}_src"] = src.astype(np.int64)
        payload[f"graph{i}_dst"] = dst.astype(np.int64)
        payload[f"graph{i}_weight"] = w
    meta = {
        "name": dataset.name,
        "candidates": list(state.candidates),
        "num_graphs": len(unique_graphs),
        "scalar_meta": {
            key: value
            for key, value in dataset.meta.items()
            if isinstance(value, (int, float, str, bool))
        },
    }
    payload["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def save_edge_list(graph: InfluenceGraph, path: str | Path) -> None:
    """Write a graph as whitespace-separated ``src dst weight`` lines.

    The plain-text interchange format used by most public graph snapshots
    (SNAP, KONECT); weights are the *normalized* column-stochastic values.
    """
    src, dst, weight = graph.edges()
    with Path(path).open("w") as handle:
        handle.write("# src dst weight\n")
        for u, v, w in zip(src, dst, weight):
            handle.write(f"{int(u)} {int(v)} {w:.12g}\n")


def load_edge_list(
    path: str | Path, *, n: int | None = None, normalize: bool = True
) -> InfluenceGraph:
    """Read a ``src dst [weight]`` text file into an :class:`InfluenceGraph`.

    Lines starting with ``#`` or ``%`` are comments.  ``n`` defaults to
    1 + the largest node id seen.  Raw weights are column-normalized unless
    the file already stores stochastic weights (``normalize=False``).
    """
    src_list: list[int] = []
    dst_list: list[int] = []
    w_list: list[float] = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            src_list.append(int(parts[0]))
            dst_list.append(int(parts[1]))
            w_list.append(float(parts[2]) if len(parts) > 2 else 1.0)
    if not src_list:
        raise ValueError(f"no edges found in {path}")
    inferred = max(max(src_list), max(dst_list)) + 1
    n = inferred if n is None else int(n)
    from repro.graph.build import graph_from_edges

    graph = graph_from_edges(
        n,
        np.asarray(src_list),
        np.asarray(dst_list),
        np.asarray(w_list),
        normalize=normalize,
    )
    return graph


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Only scalar metadata survives the round trip; array-valued metadata
    (e.g. DBLP domain memberships) is reconstruction-time information.
    """
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        n = int(data["n"][0])
        graphs: list[InfluenceGraph] = []
        for i in range(meta["num_graphs"]):
            mat = sparse.coo_matrix(
                (data[f"graph{i}_weight"], (data[f"graph{i}_src"], data[f"graph{i}_dst"])),
                shape=(n, n),
            ).tocsr()
            graphs.append(InfluenceGraph(mat))
        state = CampaignState(
            graphs=tuple(graphs[i] for i in data["graph_index"]),
            initial_opinions=data["initial_opinions"],
            stubbornness=data["stubbornness"],
            candidates=tuple(meta["candidates"]),
        )
        return Dataset(
            name=meta["name"],
            state=state,
            target=int(data["target"][0]),
            horizon=int(data["horizon"][0]),
            meta=dict(meta["scalar_meta"]),
        )
