"""Core algorithms: the FJ-Vote problems and all seed-selection methods."""

from repro.core.bounds import (
    lambda_copeland,
    lambda_cumulative,
    lambda_rank,
    theta_cumulative,
)
from repro.core.engine import (
    ENGINE_HELP,
    ENGINE_NAMES,
    BatchedDMEngine,
    DMEngine,
    EngineStats,
    EstimatorPrecisionWarning,
    ObjectiveEngine,
    SelectionSession,
    WalkEngine,
    make_engine,
    parse_engine_spec,
    spec_is_exact_dm,
)
from repro.core.engine_mp import MultiprocessDMEngine
from repro.core.exact import brute_force_optimum, submodularity_violations
from repro.core.greedy import (
    GreedyResult,
    greedy_dm,
    greedy_engine,
    greedy_select,
    run_selection_rounds,
)
from repro.core.problem import FJVoteProblem
from repro.core.random_walk import TruncatedWalks, random_walk_select
from repro.core.reachability import ReachabilityIndex, coverage_greedy
from repro.core.sandwich import SandwichResult, sandwich_select
from repro.core.sketch import sketch_select
from repro.core.walk_store import RRSetPool, StoreStats, WalkStore, store_for_problem
from repro.core.winmin import WinMinResult, min_seeds_to_win

__all__ = [
    "BatchedDMEngine",
    "DMEngine",
    "ENGINE_HELP",
    "ENGINE_NAMES",
    "EngineStats",
    "EstimatorPrecisionWarning",
    "FJVoteProblem",
    "GreedyResult",
    "MultiprocessDMEngine",
    "ObjectiveEngine",
    "ReachabilityIndex",
    "SandwichResult",
    "RRSetPool",
    "SelectionSession",
    "StoreStats",
    "TruncatedWalks",
    "WalkEngine",
    "WalkStore",
    "WinMinResult",
    "brute_force_optimum",
    "coverage_greedy",
    "greedy_dm",
    "greedy_engine",
    "greedy_select",
    "make_engine",
    "parse_engine_spec",
    "spec_is_exact_dm",
    "lambda_copeland",
    "lambda_cumulative",
    "lambda_rank",
    "min_seeds_to_win",
    "random_walk_select",
    "run_selection_rounds",
    "sandwich_select",
    "sketch_select",
    "store_for_problem",
    "submodularity_violations",
    "theta_cumulative",
]
