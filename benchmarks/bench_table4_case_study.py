"""Table IV / Fig. 4: the ACM general election case study (§VIII-B).

Seeds the target candidate on the DBLP-like dataset (7 domains of Table V)
and reports the per-domain vote counts without/with seeds.  Expected shape
(paper): the overall vote share jumps dramatically (21.8% -> 72.7% with 100
seeds on 64K users), every domain's share rises, and most switched users
were near-neutral initially.
"""


from benchmarks.conftest import run_once
from repro.eval.case_study import acm_election_case_study
from repro.eval.reporting import format_table

K = 60  # scaled from the paper's 100 seeds on a 53x larger graph


def test_table4_case_study(benchmark, dblp_ds, save_result):
    result = run_once(
        benchmark,
        lambda: acm_election_case_study(dblp_ds, k=K, rng=7, lambda_cap=32),
    )
    rows = [
        [
            row.domain,
            row.total_users,
            f"{row.votes_without_seeds} ({row.pct_without:.1f}%)",
            f"{row.votes_with_seeds} ({row.pct_with:.1f}%)",
        ]
        for row in result.rows
    ]
    summary = (
        f"overall: {result.votes_before} ({result.share_before:.1f}%) -> "
        f"{result.votes_after} ({result.share_after:.1f}%) of {result.n}; "
        f"neutral switchers: {100 * result.neutral_fraction_of_switchers:.0f}%"
    )
    save_result(
        "table4_case_study",
        format_table(
            ["Domain", "Total #users", "Without seeds", "With seeds"], rows
        )
        + "\n" + summary,
    )
    # Paper shape: a large absolute jump in supporters...
    assert result.votes_after > result.votes_before
    assert result.votes_after - result.votes_before >= 0.05 * result.n
    # ...and no domain loses votes.
    for row in result.rows:
        assert row.votes_with_seeds >= row.votes_without_seeds
