"""Tests for the ASCII chart renderers."""

import pytest

from repro.eval.charts import bar_chart, line_chart


def test_bar_chart_scales_to_width():
    out = bar_chart(["a", "bb"], [10.0, 5.0], width=20, title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].count("#") == 20
    assert lines[2].count("#") == 10
    assert "10" in lines[1] and "5" in lines[2]


def test_bar_chart_zero_values():
    out = bar_chart(["x"], [0.0])
    assert "#" not in out


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])
    assert bar_chart([], [], title="empty") == "empty"


def test_line_chart_contains_all_markers():
    out = line_chart(
        [0, 1, 2],
        {"up": [0.0, 1.0, 2.0], "down": [2.0, 1.0, 0.0]},
        width=30,
        height=8,
    )
    assert "*" in out and "o" in out
    assert "up" in out and "down" in out


def test_line_chart_extremes_on_axis():
    out = line_chart([0, 10], {"s": [0.0, 100.0]}, width=20, height=5)
    lines = out.splitlines()
    assert lines[0].lstrip().startswith("100")  # y max label
    assert "0" in lines[4]


def test_line_chart_flat_series():
    out = line_chart([0, 1], {"flat": [3.0, 3.0]}, width=10, height=4)
    assert "*" in out


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart([0, 1], {"s": [1.0]}, width=10, height=4)
    with pytest.raises(ValueError):
        line_chart([0, 1], {"s": [1.0, 2.0]}, width=1, height=4)
    assert line_chart([], {}, title="t") == "t"
