"""Unit and property tests for graph construction / normalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.graph.build import column_stochastic, graph_from_edges, induced_subgraph


def test_column_stochastic_normalizes():
    raw = sparse.csr_matrix(np.array([[0.0, 2.0], [3.0, 2.0]]))
    out = column_stochastic(raw).toarray()
    np.testing.assert_allclose(out.sum(axis=0), [1.0, 1.0])
    np.testing.assert_allclose(out[:, 1], [0.5, 0.5])


def test_column_stochastic_adds_self_loop_for_isolated():
    raw = sparse.csr_matrix((3, 3))
    out = column_stochastic(raw).toarray()
    np.testing.assert_allclose(out, np.eye(3))


def test_column_stochastic_can_reject_isolated():
    raw = sparse.csr_matrix((2, 2))
    with pytest.raises(ValueError, match="zero in-weight"):
        column_stochastic(raw, self_loop_isolated=False)


def test_column_stochastic_rejects_negative():
    raw = sparse.csr_matrix(np.array([[0.0, -1.0], [1.0, 0.0]]))
    with pytest.raises(ValueError, match="non-negative"):
        column_stochastic(raw)


def test_column_stochastic_rejects_non_square():
    with pytest.raises(ValueError, match="square"):
        column_stochastic(sparse.csr_matrix(np.ones((2, 3))))


def test_graph_from_edges_sums_duplicates():
    g = graph_from_edges(3, [0, 0], [1, 1], weight=np.array([1.0, 3.0]))
    sources, weights = g.in_neighbors(1)
    assert sources.tolist() == [0]
    np.testing.assert_allclose(weights, [1.0])  # normalized


def test_graph_from_edges_validates_bounds():
    with pytest.raises(ValueError, match="endpoints"):
        graph_from_edges(3, [0], [5])
    with pytest.raises(ValueError, match="same shape"):
        graph_from_edges(3, [0, 1], [2])
    with pytest.raises(ValueError, match="weight"):
        graph_from_edges(3, [0], [1], weight=np.array([1.0, 2.0]))


def test_induced_subgraph_renormalizes():
    g = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    sub, nodes = induced_subgraph(g, np.array([0, 2, 3]))
    assert sub.n == 3
    sums = np.asarray(sub.csr.sum(axis=0)).ravel()
    np.testing.assert_allclose(sums, 1.0)


def test_induced_subgraph_rejects_bad_nodes():
    g = graph_from_edges(3, [0], [1])
    with pytest.raises(ValueError):
        induced_subgraph(g, np.array([0, 7]))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 15),
    seed=st.integers(0, 10_000),
    density=st.floats(0.0, 0.6),
)
def test_property_columns_always_sum_to_one(n, seed, density):
    """Any non-negative raw matrix normalizes to an exactly stochastic one."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    src, dst = np.where(mask)
    weights = rng.uniform(0.0, 5.0, size=src.size)
    g = graph_from_edges(n, src, dst, weights)
    sums = np.asarray(g.csr.sum(axis=0)).ravel()
    np.testing.assert_allclose(sums, 1.0, atol=1e-9)
