"""Twitter-like retweet networks (US Election, Social Distancing, Mask).

Mirrors §VIII-A: directed retweet graphs with heavy-tailed degrees, edge
weights ``1 - exp(-a/μ)`` from retweet counts, initial opinions as
normalized sentiment scores (VADER in the paper; Beta-distributed sentiment
here), and stubbornness uniform in [0, 1] (most users have a single tweet,
so no variance signal exists — the paper assigns uniform random values).

Three variants match Table III:

* ``twitter_us_election`` — 4 party candidates, target "Democratic".
* ``twitter_social_distancing`` — 2 stance candidates, target "For".
* ``twitter_mask`` — 2 stance candidates, target "For".
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synth import Dataset, activity_edge_weights, sentiment_opinions
from repro.graph.build import graph_from_edges
from repro.graph.generators import power_law_edges
from repro.opinion.state import CampaignState
from repro.utils.rng import ensure_rng


def _twitter_base(
    name: str,
    candidates: tuple[str, ...],
    lean_means: np.ndarray,
    n: int,
    mu: float,
    polarization: float,
    horizon: int,
    rng: int | np.random.Generator | None,
    min_degree: int = 2,
    exponent: float = 2.3,
) -> Dataset:
    """Shared construction for the three Twitter variants.

    ``lean_means[q]`` is the population-average lean toward candidate q;
    two latent camps (split uniformly) shift leans toward/away from the
    first candidate to create the polarized structure of political Twitter.
    ``min_degree=1`` reproduces the extreme sparsity of the paper's retweet
    graphs (Table III: ~1.3-1.9 edges per node); the default 2 keeps the
    graph better connected for the effectiveness sweeps.
    """
    rng = ensure_rng(rng)
    r = len(candidates)
    src, dst = power_law_edges(n, exponent=exponent, min_degree=min_degree, rng=rng)
    # Retweet graphs are homophilous: most edges stay within a political
    # camp.  Rewire cross-camp edges into the source's camp with probability
    # ``homophily`` (echo-chamber structure).
    camp = rng.random(n) < 0.5
    homophily = 0.8
    cross = camp[src] != camp[dst]
    rewire = cross & (rng.random(src.size) < homophily)
    if rewire.any():
        same_camp_pool = {
            True: np.where(camp)[0],
            False: np.where(~camp)[0],
        }
        new_dst = dst.copy()
        for flag, pool in same_camp_pool.items():
            if pool.size == 0:
                continue
            to_fix = np.where(rewire & (camp[src] == flag))[0]
            new_dst[to_fix] = rng.choice(pool, size=to_fix.size)
        keep = new_dst != src
        src, dst = src[keep], new_dst[keep]
    weights = activity_edge_weights(src.size, mu, mean_activity=3.0, rng=rng)
    graph = graph_from_edges(n, src, dst, weights)
    lean = np.tile(lean_means[:, None], (1, n)).astype(np.float64)
    # Camp members lean toward candidate 0; others away, symmetrically.
    shift = np.where(camp, 0.18, -0.18)
    lean[0] = np.clip(lean[0] + shift, 0.05, 0.95)
    if r > 1:
        lean[1] = np.clip(lean[1] - shift, 0.05, 0.95)
    opinions = sentiment_opinions(n, r, polarization=polarization, lean=lean, rng=rng)
    stubbornness = rng.uniform(0.0, 1.0, size=(r, n))
    state = CampaignState(
        graphs=(graph,) * r,
        initial_opinions=opinions,
        stubbornness=stubbornness,
        candidates=candidates,
    )
    return Dataset(
        name=name,
        state=state,
        target=0,
        horizon=horizon,
        meta={"mu": mu, "camp": camp},
    )


def twitter_us_election(
    n: int = 4000,
    *,
    mu: float = 10.0,
    horizon: int = 20,
    rng: int | np.random.Generator | None = None,
) -> Dataset:
    """US-Election-like instance: 4 parties, target "Democratic"."""
    return _twitter_base(
        "twitter-us-election",
        ("Democratic", "Republican", "Green", "Libertarian"),
        np.array([0.55, 0.55, 0.25, 0.25]),
        n,
        mu,
        polarization=3.0,
        horizon=horizon,
        rng=rng,
    )


def twitter_social_distancing(
    n: int = 3000,
    *,
    mu: float = 10.0,
    horizon: int = 20,
    rng: int | np.random.Generator | None = None,
) -> Dataset:
    """Social-Distancing-like instance: For vs Against, target "For".

    The target starts slightly behind (as in the paper, where a modest seed
    set is needed to win — Table VI).
    """
    return _twitter_base(
        "twitter-social-distancing",
        ("For Social Distancing", "Against Social Distancing"),
        np.array([0.42, 0.60]),
        n,
        mu,
        polarization=2.5,
        horizon=horizon,
        rng=rng,
    )


def twitter_mask(
    n: int = 3000,
    *,
    mu: float = 10.0,
    horizon: int = 20,
    rng: int | np.random.Generator | None = None,
) -> Dataset:
    """Mask-wearing-like instance: For vs Against, target "For".

    The target starts slightly behind, so winning requires a small seed set
    (the paper's Table VI reports k* in the tens on this dataset).
    """
    return _twitter_base(
        "twitter-mask",
        ("For Wearing a Mask", "Against Wearing a Mask"),
        np.array([0.47, 0.56]),
        n,
        mu,
        polarization=2.5,
        horizon=horizon,
        rng=rng,
    )
