"""Tests for the FJVoteProblem objective and caching."""

import numpy as np
import pytest

from repro.core.problem import FJVoteProblem
from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    PluralityScore,
)
from tests.conftest import random_instance


def test_objective_matches_score_on_full_matrix(random_state):
    for score in (CumulativeScore(), PluralityScore(), CopelandScore()):
        problem = FJVoteProblem(random_state, 1, 4, score)
        seeds = np.array([0, 5])
        direct = score.evaluate(problem.full_opinions(seeds), 1)
        assert problem.objective(seeds) == pytest.approx(direct)


def test_competitors_independent_of_seeds(random_state):
    problem = FJVoteProblem(random_state, 0, 3, PluralityScore())
    before = problem.competitor_opinions().copy()
    problem.objective(np.array([1, 2, 3]))
    np.testing.assert_array_equal(problem.competitor_opinions(), before)


def test_full_opinions_row_order(random_state):
    problem = FJVoteProblem(random_state, 1, 2, CumulativeScore())
    full = problem.full_opinions(())
    from repro.opinion.fj import fj_evolve

    for q in range(random_state.r):
        expected = fj_evolve(
            random_state.initial_opinions[q],
            random_state.stubbornness[q],
            random_state.graph(q),
            2,
        )
        np.testing.assert_allclose(full[q], expected)


def test_with_score_shares_caches(random_state):
    base = FJVoteProblem(random_state, 0, 5, CumulativeScore())
    base.others_by_user()
    clone = base.with_score(PluralityScore())
    assert clone._others_by_user is base._others_by_user
    assert isinstance(clone.score, PluralityScore)
    assert clone.horizon == base.horizon


def test_target_wins(random_state):
    problem = FJVoteProblem(random_state, 0, 3, CumulativeScore())
    all_seeds = np.arange(random_state.n)
    # Seeding everyone gives the maximum possible cumulative score n.
    assert problem.objective(all_seeds) == pytest.approx(random_state.n)
    assert problem.target_wins(all_seeds)


def test_invalid_target():
    state = random_instance(n=6, r=2, seed=1)
    with pytest.raises(ValueError):
        FJVoteProblem(state, 5, 3, CumulativeScore())


def test_horizon_zero_uses_initial_opinions(random_state):
    problem = FJVoteProblem(random_state, 0, 0, CumulativeScore())
    assert problem.objective(()) == pytest.approx(
        random_state.initial_opinions[0].sum()
    )


def test_seeded_objective_monotone_in_seed_count(random_state):
    problem = FJVoteProblem(random_state, 0, 4, CumulativeScore())
    values = [problem.objective(np.arange(k)) for k in range(5)]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
