"""Integration tests: every experiment function runs and returns sane shapes."""

import pytest

from repro.datasets.twitter import twitter_mask
from repro.datasets.yelp import yelp_like
from repro.eval.experiments import (
    effectiveness_experiment,
    eis_experiment,
    epsilon_experiment,
    horizon_experiment,
    horizon_seed_overlap,
    min_seeds_experiment,
    mu_experiment,
    opinion_change_experiment,
    positional_overlap_experiment,
    rank_distribution_experiment,
    rho_experiment,
    sandwich_ratio_trials,
    scalability_experiment,
    theta_experiment,
)
from repro.voting.scores import CopelandScore, CumulativeScore, PluralityScore

FAST = {"rw": {"lambda_cap": 8}, "rs": {"theta": 200}}


@pytest.fixture(scope="module")
def dataset():
    return yelp_like(n=150, r=3, rng=0, horizon=4)


@pytest.fixture(scope="module")
def mask_dataset():
    return twitter_mask(n=200, rng=1, horizon=4)


def test_effectiveness(dataset):
    res = effectiveness_experiment(
        dataset, PluralityScore(), [2, 4], ["rw", "dc"], rng=1, method_kwargs=FAST
    )
    assert res.ks == [2, 4]
    assert len(res.scores["rw"]) == 2
    assert all(t >= 0 for t in res.times["dc"])
    # Score should be non-decreasing in k for the same method.
    assert res.scores["rw"][1] >= res.scores["rw"][0] - 1e-9


def test_sandwich_ratio(dataset):
    out = sandwich_ratio_trials(
        dataset, PluralityScore(), [2, 3], rng=2, lambda_cap=8
    )
    assert len(out["ratio"]) == 2
    assert all(0 <= r <= 1 + 1e-9 for r in out["ratio"])


def test_positional_overlap(dataset):
    out = positional_overlap_experiment(
        dataset, 3, 2, [0.0, 1.0], rng=3, lambda_cap=8
    )
    assert len(out["vs_plurality"]) == 2
    assert all(0 <= v <= 1 for v in out["vs_plurality"])


def test_rank_distribution(dataset):
    out = rank_distribution_experiment(dataset, 3, [1, 2], rng=4, lambda_cap=8)
    assert len(out["position"]) == dataset.r
    # Total users constant across positions.
    assert sum(out["p=1"]) == dataset.n


def test_min_seeds(mask_dataset):
    out = min_seeds_experiment(
        mask_dataset,
        methods=("dm", "rw"),
        k_max=60,
        rng=5,
        method_kwargs=FAST,
    )
    assert set(out) == {"dm", "rw"}
    assert all(v == -1 or 0 <= v <= 60 for v in out.values())


def test_eis(mask_dataset):
    out = eis_experiment(
        mask_dataset, [2, 4], mc_runs=10, rng=6, rw_kwargs={"lambda_cap": 8}
    )
    assert set(out) == {"ic", "lt"}
    assert len(out["ic"]["rw-cumulative"]) == 2
    assert all(v >= 0 for v in out["lt"]["imm-lt"])


def test_horizon(dataset):
    out = horizon_experiment(
        dataset, [0, 2, 4], 2, methods=("rw", "rs"), rng=7, method_kwargs=FAST
    )
    assert len(out["score"]["rw"]) == 3
    assert len(out["time"]["rs"]) == 3


def test_theta(dataset):
    out = theta_experiment(
        dataset, PluralityScore(), [50, 100], ks=[2], ts=[2], rng=8
    )
    assert len(out["k=2"]) == 2
    assert len(out["t=2"]) == 2


def test_epsilon(dataset):
    out = epsilon_experiment(dataset, [0.2, 0.4], 2, theta_cap=500, rng=9)
    assert len(out["score"]) == 2
    assert out["theta"][0] >= out["theta"][1]  # smaller ε needs more sketches


def test_rho(dataset):
    out = rho_experiment(dataset, [0.8, 0.9], 2, rng=10, lambda_cap=16)
    assert len(out["score"]) == 2
    assert all(w > 0 for w in out["walks"])


def test_scalability(dataset):
    out = scalability_experiment(
        dataset, [50, 100], 2, methods=("rw", "rs"), rng=11, method_kwargs=FAST
    )
    assert len(out["time"]["rw"]) == 2
    assert all(m > 0 for m in out["memory"]["rs"])


def test_opinion_change(dataset):
    out = opinion_change_experiment(dataset, [1.0, 5.0], horizon=6)
    assert len(out["t"]) == 6
    assert all(0 <= v <= 100 for v in out["delta=1.0%"])
    # Looser tolerance counts fewer changes.
    assert all(
        a >= b for a, b in zip(out["delta=1.0%"], out["delta=5.0%"])
    )


def test_horizon_seed_overlap(dataset):
    # DM is deterministic, so the reference horizon overlaps itself fully.
    out = horizon_seed_overlap(dataset, [1, 4], 4, 3, rng=12, method="dm")
    assert len(out["overlap"]) == 2
    assert all(0 <= v <= 1 for v in out["overlap"])
    assert out["overlap"][1] == pytest.approx(1.0)


def test_mu(dataset):
    out = mu_experiment(
        lambda mu, rng: yelp_like(n=120, r=3, mu=mu, rng=rng, horizon=3),
        [5.0, 10.0],
        [2],
        CumulativeScore(),
        rng=13,
        lambda_cap=8,
    )
    assert len(out["mu=5.0"]) == 1


def test_effectiveness_with_copeland(dataset):
    res = effectiveness_experiment(
        dataset, CopelandScore(), [2], ["rw"], rng=14, method_kwargs=FAST
    )
    assert 0 <= res.scores["rw"][0] <= dataset.r - 1
