"""Random number generator helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalizes
all three into a ``Generator`` so that experiments are reproducible end to
end from a single integer seed.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a numpy ``Generator`` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged).
    """
    if rng is None:
        # The library's single audited fresh-entropy entry point: ``None``
        # explicitly means "not replayable, draw OS entropy", and every
        # reproducibility-sensitive path threads a seed/Generator instead.
        # reprolint: disable-next=determinism -- documented None => fresh-entropy contract
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int, or numpy Generator, got {type(rng)!r}")


def spawn_rngs(rng: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used when an experiment runs several stochastic sub-procedures that must
    not share a stream (e.g. walk generation for different candidates).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = ensure_rng(rng)
    return [np.random.default_rng(seed) for seed in base.integers(0, 2**63 - 1, size=count)]
