"""The paper's running example (Fig. 1, Table I, Example 1-3).

Four users, edges 1→3, 2→3 (weight 1/2 each) and 3→4 (weight 1); all users
have stubbornness 1/2 toward the target candidate c1.  The figure's initial
opinions for c1 are recovered from Table I: ``B⁰_1 = (0.4, 0.8, 0.6, 0.9)``
(users 1-2 keep their initial opinions; user 4's 0.75 at t=1 implies 0.9 at
t=0).  The paper specifies the competitor c2 only by its *horizon* opinions
``(0.35, 0.75, 0.78, 0.90)`` at t=1 — these are not FJ-consistent with any
[0,1] initial vector under the shared weights — so c2's users are made fully
stubborn at those values, which pins c2's opinions at every horizon exactly
as Table I assumes.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synth import Dataset
from repro.graph.build import graph_from_edges
from repro.opinion.state import CampaignState

#: Expected Table I rows: seed set (0-indexed) -> (cumulative, plurality, copeland)
TABLE_I = {
    (): (2.55, 2, 0),
    (0,): (3.30, 2, 0),
    (1,): (2.80, 2, 0),
    (2,): (3.15, 4, 1),
    (3,): (2.80, 3, 1),
    (0, 1): (3.55, 3, 1),
}

#: Expected Table I opinion rows for c1 at t=1, same keys as TABLE_I.
TABLE_I_OPINIONS = {
    (): (0.40, 0.80, 0.60, 0.75),
    (0,): (1.00, 0.80, 0.75, 0.75),
    (1,): (0.40, 1.00, 0.65, 0.75),
    (2,): (0.40, 0.80, 1.00, 0.95),
    (3,): (0.40, 0.80, 0.60, 1.00),
    (0, 1): (1.00, 1.00, 0.80, 0.75),
}


def running_example() -> Dataset:
    """Build the 4-user, 2-candidate instance of Fig. 1."""
    graph = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    initial = np.array(
        [
            [0.40, 0.80, 0.60, 0.90],  # c1 (target) at t=0
            [0.35, 0.75, 0.78, 0.90],  # c2 pinned at its t=1 values
        ]
    )
    stubbornness = np.array(
        [
            [0.5, 0.5, 0.5, 0.5],
            [1.0, 1.0, 1.0, 1.0],
        ]
    )
    state = CampaignState(
        graphs=(graph, graph),
        initial_opinions=initial,
        stubbornness=stubbornness,
        candidates=("c1", "c2"),
    )
    return Dataset(name="running-example", state=state, target=0, horizon=1, meta={})


def running_example_table() -> dict[tuple[int, ...], tuple[float, int, int]]:
    """The expected (cumulative, plurality, Copeland) values of Table I."""
    return dict(TABLE_I)
