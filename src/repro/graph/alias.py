"""Vectorized alias-method sampler over per-node categorical distributions.

Reverse random walks (§V of the paper) repeatedly sample an in-neighbor of
the current node proportionally to the (column-stochastic) influence
weights.  The alias method gives O(1) sampling per step after an O(degree)
per-node build, and the flat layout below lets a whole batch of walks take
one step with a few numpy operations.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.utils.rng import ensure_rng


class AliasSampler:
    """Alias tables for every column of a sparse column-stochastic matrix.

    ``sample(current, rng)`` draws, for each node ``j`` in ``current``, one
    in-neighbor ``i`` with probability ``w[i, j]``.
    """

    def __init__(self, csc: sparse.csc_matrix) -> None:
        csc = sparse.csc_matrix(csc)
        n = csc.shape[1]
        self.n = n
        self._indptr = csc.indptr.astype(np.int64)
        self._indices = csc.indices.astype(np.int64)
        self._degrees = np.diff(self._indptr)
        if (self._degrees == 0).any():
            missing = int((self._degrees == 0).sum())
            raise ValueError(
                f"{missing} nodes have no in-neighbors; normalize the graph "
                "with self loops before building an AliasSampler"
            )
        self._prob = np.empty(csc.nnz, dtype=np.float64)
        self._alias = np.empty(csc.nnz, dtype=np.int64)
        for j in range(n):
            lo, hi = self._indptr[j], self._indptr[j + 1]
            self._build_one(csc.data[lo:hi], lo)

    def _build_one(self, weights: np.ndarray, offset: int) -> None:
        """Vose's alias construction for one distribution (local indices)."""
        deg = weights.size
        scaled = weights * (deg / weights.sum())
        prob = np.ones(deg)
        alias = np.arange(deg)
        small = [i for i in range(deg) if scaled[i] < 1.0]
        large = [i for i in range(deg) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            g = large.pop()
            prob[s] = scaled[s]
            alias[s] = g
            scaled[g] = (scaled[g] + scaled[s]) - 1.0
            if scaled[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        # Remaining entries keep prob 1 (numerical leftovers).
        self._prob[offset : offset + deg] = prob
        self._alias[offset : offset + deg] = alias

    def sample(
        self, current: np.ndarray, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Sample one in-neighbor for each node in ``current``."""
        rng = ensure_rng(rng)
        current = np.asarray(current, dtype=np.int64)
        u_slot = rng.random(current.size)
        u_alias = rng.random(current.size)
        return self.sample_with(current, u_slot, u_alias)

    def sample_with(
        self, current: np.ndarray, u_slot: np.ndarray, u_alias: np.ndarray
    ) -> np.ndarray:
        """Sample with caller-supplied uniforms (one pair per draw).

        The pick is a deterministic function of ``(column, u_slot,
        u_alias)`` and of the column's stored ``(indices, data)`` bytes
        alone — columns untouched by a graph delta map the same uniforms
        to the same in-neighbor, which is what lets the walk store
        regenerate only the walks that crossed a changed column.
        """
        current = np.asarray(current, dtype=np.int64)
        deg = self._degrees[current]
        offset = self._indptr[current]
        slot = (np.asarray(u_slot, dtype=np.float64) * deg).astype(np.int64)
        # Guard against the (measure-zero) event rng.random() == 1.0.
        np.minimum(slot, deg - 1, out=slot)
        flat = offset + slot
        use_alias = np.asarray(u_alias, dtype=np.float64) > self._prob[flat]
        local = np.where(use_alias, self._alias[flat], slot)
        return self._indices[offset + local]

    def distribution(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(in_neighbors, probabilities)`` encoded for node ``j``.

        Reconstructed from the alias tables; useful for testing that the
        construction preserved the input distribution.
        """
        lo, hi = self._indptr[j], self._indptr[j + 1]
        deg = hi - lo
        probs = np.zeros(deg)
        base = self._prob[lo:hi] / deg
        probs += base
        for slot in range(deg):
            probs[self._alias[lo + slot]] += (1.0 - self._prob[lo + slot]) / deg
        return self._indices[lo:hi], probs
