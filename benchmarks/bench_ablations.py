"""Ablations for the paper's design choices (not a paper figure).

Three claims baked into the paper's algorithms, measured head-to-head:

1. **CELF** (§III-C) — lazy evaluation on the submodular cumulative score
   must return the same seeds as exhaustive greedy with far fewer objective
   evaluations.
2. **Post-Generation Truncation** (§V-B, Theorem 9) — reusing one walk set
   across greedy rounds must be much faster than regenerating walks for
   every candidate seed set (Direct Generation), with statistically
   indistinguishable seed quality.
3. **Walk sketches vs RR sets** (§VI-A) — the paper argues its path-shaped
   sketches are lighter than the BFS-tree RR sets of classic IM; we compare
   average sketch sizes on the same graph.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.baselines.rrset import rr_set_ic
from repro.core.greedy import greedy_dm
from repro.core.problem import FJVoteProblem
from repro.core.random_walk import TruncatedWalks, WalkGreedyOptimizer
from repro.eval.reporting import format_table
from repro.utils.timing import Timer
from repro.voting.scores import CumulativeScore
from repro.graph.alias import AliasSampler


def test_ablation_celf_vs_exhaustive(benchmark, yelp_ds, save_result):
    problem = yelp_ds.problem(CumulativeScore())
    problem.others_by_user()
    k = 10

    def run():
        with Timer() as t_lazy:
            lazy = greedy_dm(problem, k, lazy=True)
        with Timer() as t_eager:
            eager = greedy_dm(problem, k, lazy=False)
        return lazy, eager, t_lazy.elapsed, t_eager.elapsed

    lazy, eager, t_lazy, t_eager = run_once(benchmark, run)
    save_result(
        "ablation_celf",
        format_table(
            ["variant", "objective", "evaluations", "time (s)"],
            [
                ["CELF", lazy.objective, lazy.evaluations, t_lazy],
                ["exhaustive", eager.objective, eager.evaluations, t_eager],
            ],
        ),
    )
    assert lazy.objective == pytest.approx(eager.objective)
    assert lazy.seeds.tolist() == eager.seeds.tolist()
    assert lazy.evaluations < 0.5 * eager.evaluations


def test_ablation_truncation_vs_regeneration(benchmark, mask_ds, save_result):
    problem = mask_ds.problem(CumulativeScore())
    state = problem.state
    q = problem.target
    graph = state.graph(q)
    sampler = AliasSampler(graph.csc)
    k, lam = 8, 16
    starts = np.repeat(np.arange(problem.n, dtype=np.int64), lam)

    def run():
        rng = np.random.default_rng(71)
        # (a) Post-generation truncation: one walk set for all rounds.
        with Timer() as t_trunc:
            walks = TruncatedWalks.generate(
                graph, state.stubbornness[q], state.initial_opinions[q],
                problem.horizon, starts, rng, sampler=sampler,
            )
            optimizer = WalkGreedyOptimizer(walks, CumulativeScore(), None)
            trunc_result = optimizer.select(k)
        # (b) Direct generation: regenerate all walks after every pick
        # (the expensive alternative §V-B replaces).
        with Timer() as t_regen:
            seeds: list[int] = []
            for _ in range(k):
                b0_s, d_s = state.seeded(q, np.array(seeds, dtype=np.int64))
                fresh = TruncatedWalks.generate(
                    graph, d_s, b0_s, problem.horizon, starts, rng,
                    sampler=sampler,
                )
                for s in seeds:
                    fresh.add_seed(s)
                opt = WalkGreedyOptimizer(fresh, CumulativeScore(), None)
                gains = opt.marginal_gains()
                if seeds:
                    gains[np.asarray(seeds)] = -np.inf
                seeds.append(int(np.argmax(gains)))
            regen_score = problem.objective(np.array(seeds))
        return trunc_result, regen_score, seeds, t_trunc.elapsed, t_regen.elapsed

    trunc_result, regen_score, regen_seeds, t_trunc, t_regen = run_once(benchmark, run)
    trunc_score = problem.objective(trunc_result.seeds)
    save_result(
        "ablation_truncation",
        format_table(
            ["variant", "exact score of seeds", "time (s)"],
            [
                ["post-generation truncation", trunc_score, t_trunc],
                ["regeneration per round", regen_score, t_regen],
            ],
        ),
    )
    # Same estimator in expectation: seed quality within a few percent.
    assert trunc_score >= 0.97 * regen_score
    # Reuse must be dramatically cheaper than k regenerations.
    assert t_trunc < 0.5 * t_regen


def test_ablation_finite_horizon_vs_equilibrium(benchmark, mask_ds, save_result):
    """Appendix A/B: optimizing at the Nash equilibrium (the objective of
    Gionis et al.) vs at the paper's finite horizon.  The seed sets overlap
    only partially at short horizons, and the equilibrium seeds score lower
    on the finite-horizon objective — the paper's motivation for FJ-Vote."""
    from repro.baselines.gedt import ged_equilibrium_select, gedt_select
    from repro.core.problem import FJVoteProblem
    from repro.eval.metrics import seed_overlap

    k = 10
    state = mask_ds.state
    # Anchor all users slightly so every seeded equilibrium exists.
    from repro.opinion.state import CampaignState

    anchored = CampaignState(
        graphs=state.graphs,
        initial_opinions=state.initial_opinions,
        stubbornness=np.clip(np.asarray(state.stubbornness), 0.05, 1.0),
    )

    def run():
        rows = []
        eq_seeds = None
        for t in (2, 5, 10):
            problem = FJVoteProblem(anchored, mask_ds.target, t, CumulativeScore())
            horizon_seeds = gedt_select(problem, k)
            if eq_seeds is None:  # equilibrium seeds do not depend on t
                eq_seeds = ged_equilibrium_select(problem, k)
            rows.append(
                [
                    t,
                    seed_overlap(horizon_seeds, eq_seeds),
                    problem.objective(horizon_seeds),
                    problem.objective(eq_seeds),
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_horizon_vs_equilibrium",
        format_table(
            ["t", "seed overlap", "F(horizon seeds)", "F(equilibrium seeds)"], rows
        ),
    )
    for _, _, f_horizon, f_eq in rows:
        # Horizon-greedy maximizes the reported objective: it cannot lose to
        # equilibrium seeds on its own metric.
        assert f_horizon >= f_eq - 1e-9


def test_ablation_walk_vs_rrset_size(benchmark, mask_ds, save_result):
    graph = mask_ds.state.graph(0)
    d = mask_ds.state.stubbornness[0]
    rng = np.random.default_rng(73)
    samples = 2000

    def run():
        roots = rng.integers(0, graph.n, size=samples)
        walks, lengths = __import__(
            "repro.core.random_walk", fromlist=["generate_reverse_walks"]
        ).generate_reverse_walks(graph, d, mask_ds.horizon, roots, rng)
        walk_nodes = (lengths + 1).mean()
        rr_sizes = [rr_set_ic(graph, int(r), rng).size for r in roots[:500]]
        return walk_nodes, float(np.mean(rr_sizes))

    walk_nodes, rr_nodes = run_once(benchmark, run)
    save_result(
        "ablation_sketch_size",
        format_table(
            ["sketch type", "avg #nodes"],
            [["t-step reverse walk", walk_nodes], ["IC RR set (BFS tree)", rr_nodes]],
        ),
    )
    # Walks store a path; RR sets store a tree — walks must not be larger
    # by construction, and are typically much smaller.
    assert walk_nodes <= 2 * rr_nodes
