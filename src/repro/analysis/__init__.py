"""reprolint: AST-based static analysis of this repo's own invariants.

The headline guarantees — byte-identical selections across every exact
backend, deterministic serving responses, zero leaked shm segments after
SIGKILL — rest on hand-maintained source invariants (seeded RNG only,
``__getstate__`` cache-dropping, paired shm teardown, sorted-key wire
JSON, complete worker-op dispatch, protocol-compatible engine
overrides).  This package machine-checks them: ``repro lint`` runs the
checkers in :mod:`repro.analysis.checkers` over ``src/repro`` and fails
on any non-baselined finding.  See the README "Static analysis" section
for what each checker enforces and how to suppress a finding.
"""

from repro.analysis.base import (
    Checker,
    Finding,
    Module,
    Project,
    Suppression,
    run_checkers,
)
from repro.analysis.checkers import (
    ALL_CHECKERS,
    DeterminismChecker,
    EngineProtocolChecker,
    FaultPointChecker,
    MpOpParityChecker,
    PickleBudgetChecker,
    ResourceLifecycleChecker,
    WireFormatChecker,
    default_checkers,
)
from repro.analysis.report import (
    apply_baseline,
    format_json,
    format_text,
    load_baseline,
    write_baseline,
)

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "DeterminismChecker",
    "EngineProtocolChecker",
    "FaultPointChecker",
    "Finding",
    "Module",
    "MpOpParityChecker",
    "PickleBudgetChecker",
    "Project",
    "ResourceLifecycleChecker",
    "Suppression",
    "WireFormatChecker",
    "apply_baseline",
    "default_checkers",
    "format_json",
    "format_text",
    "load_baseline",
    "run_checkers",
    "write_baseline",
]
