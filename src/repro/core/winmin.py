"""Problem 2 (FJ-Vote-Win): minimum seed set for the target to win (Alg. 2).

Binary search over the budget ``k``: scores are non-decreasing in the seed
set, and with a deterministic greedy selector the size-``k`` solutions are
nested prefixes of one ranking, so the winning indicator is monotone in
``k``.  As the paper remarks, the returned size can exceed the true optimum
because the inner seed selection is itself approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.engine import ObjectiveEngine
from repro.core.greedy import greedy_dm
from repro.core.problem import FJVoteProblem


@dataclass
class WinMinResult:
    """Outcome of the minimum-winning-seed-set search.

    ``found`` is false when the target cannot win even with the maximum
    budget probed, in which case ``seeds``/``k`` describe that largest
    attempt.
    """

    seeds: np.ndarray
    k: int
    found: bool
    probes: int


def min_seeds_to_win(
    problem: FJVoteProblem,
    *,
    k_max: int | None = None,
    selector: Callable[[int], np.ndarray] | None = None,
    engine: ObjectiveEngine | str | None = None,
    rng: int | np.random.Generator | None = None,
) -> WinMinResult:
    """Find the smallest budget whose selected seed set makes the target win.

    Parameters
    ----------
    k_max:
        Upper end of the binary search (default: n).  Use a smaller cap to
        bound runtime on large instances.
    selector:
        Maps a budget to a seed set (e.g. a closure over
        :func:`repro.core.random_walk.random_walk_select`).  Defaults to the
        exact greedy ranking, evaluated as prefixes so Algorithm 1 runs only
        once.
    engine:
        Evaluation backend for the default greedy ranking (see
        :func:`repro.core.engine.make_engine`); ignored when ``selector``
        is given.  The winning criterion itself is always checked exactly
        via :meth:`FJVoteProblem.target_wins`.
    rng:
        Seeds the stochastic (walk/sketch) engine specs so the default
        ranking stays reproducible; exact engines ignore it.
    """
    n = problem.n
    upper = n if k_max is None else int(k_max)
    if not 0 < upper <= n:
        raise ValueError(f"k_max must be in (0, {n}], got {k_max}")
    probes = 1
    if problem.target_wins(()):
        return WinMinResult(seeds=np.empty(0, dtype=np.int64), k=0, found=True, probes=probes)
    if selector is None:
        ranking = greedy_dm(problem, upper, engine=engine, rng=rng).seeds

        def get(k: int) -> np.ndarray:
            return ranking[:k]

    else:
        get = selector
    best = get(upper)
    probes += 1
    if not problem.target_wins(best):
        return WinMinResult(seeds=best, k=upper, found=False, probes=probes)
    lo, hi = 0, upper
    while hi - lo > 1:
        mid = (lo + hi) // 2
        candidate = get(mid)
        probes += 1
        if problem.target_wins(candidate):
            hi, best = mid, candidate
        else:
            lo = mid
    return WinMinResult(seeds=best, k=hi, found=True, probes=probes)
