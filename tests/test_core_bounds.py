"""Tests for the sample-complexity formulas (Theorems 10-13)."""

import numpy as np
import pytest

from repro.core.bounds import (
    lambda_copeland,
    lambda_cumulative,
    lambda_rank,
    log_comb,
    theta_cumulative,
    theta_estimate_round,
)


def test_log_comb_values():
    assert log_comb(5, 2) == pytest.approx(np.log(10))
    assert log_comb(10, 0) == pytest.approx(0.0)
    assert log_comb(10, 10) == pytest.approx(0.0)
    assert log_comb(3, 5) == float("-inf")


def test_lambda_cumulative_formula():
    # λ = ceil(ln(2/(1-ρ)) / (2 δ²)) — Theorem 10.
    assert lambda_cumulative(0.1, 0.9) == int(np.ceil(np.log(20) / 0.02))


def test_lambda_cumulative_monotone_in_accuracy():
    assert lambda_cumulative(0.05, 0.9) > lambda_cumulative(0.1, 0.9)
    assert lambda_cumulative(0.1, 0.95) > lambda_cumulative(0.1, 0.9)


def test_lambda_cumulative_validation():
    with pytest.raises(ValueError):
        lambda_cumulative(0.0, 0.9)
    with pytest.raises(ValueError):
        lambda_cumulative(0.1, 1.0)
    with pytest.raises(ValueError):
        lambda_cumulative(0.1, -0.1)


def test_lambda_rank_scalar_and_array():
    scalar = lambda_rank(0.2, 0.9)
    assert isinstance(scalar, int)
    arr = lambda_rank(np.array([0.2, 0.1]), 0.9)
    assert arr[0] == scalar
    assert arr[1] > arr[0]


def test_lambda_rank_rejects_zero_gamma():
    with pytest.raises(ValueError):
        lambda_rank(0.0, 0.9)


def test_lambda_copeland_one_sided_smaller():
    # ln(1/(1-ρ)) < ln(2/(1-ρ)): the Copeland bound needs fewer walks.
    assert lambda_copeland(0.2, 0.9) <= lambda_rank(0.2, 0.9)


def test_theta_cumulative_monotonicity():
    base = theta_cumulative(1000, 10, 100.0, 0.1, 1.0)
    assert theta_cumulative(1000, 10, 200.0, 0.1, 1.0) < base  # better OPT LB
    assert theta_cumulative(1000, 10, 100.0, 0.05, 1.0) > base  # tighter ε
    assert theta_cumulative(1000, 10, 100.0, 0.1, 2.0) > base  # higher confidence


def test_theta_cumulative_validation():
    with pytest.raises(ValueError):
        theta_cumulative(100, 5, 0.0, 0.1, 1.0)
    with pytest.raises(ValueError):
        theta_cumulative(100, 5, 10.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        theta_cumulative(0, 0, 10.0, 0.1, 1.0)


def test_theta_estimate_round_positive_and_decreasing_in_x():
    hi = theta_estimate_round(1000, 10, 500.0, 0.2, 1.0)
    lo = theta_estimate_round(1000, 10, 50.0, 0.2, 1.0)
    assert 0 < hi < lo


def test_theta_estimate_round_validation():
    with pytest.raises(ValueError):
        theta_estimate_round(100, 5, 0.0, 0.2, 1.0)
    with pytest.raises(ValueError):
        theta_estimate_round(100, 5, 10.0, 0.0, 1.0)


def test_theta_scans_infeasible_for_realistic_parameters():
    """§VI-E's motivation: Eqs. 44/48 admit no θ at realistic scales."""
    from repro.core.bounds import theta_copeland_scan, theta_positional_scan

    assert theta_positional_scan(10**6, 100, 5 * 10**5, 0.1, 1.0, 0.9) is None
    assert theta_copeland_scan(10**6, 100, 4, 0.1, 1.0, 0.9) is None


def test_theta_scans_feasible_on_tiny_instances():
    from repro.core.bounds import theta_copeland_scan, theta_positional_scan

    theta_p = theta_positional_scan(20, 2, 15, 0.5, 0.1, 0.999999)
    assert theta_p is not None and theta_p > 0
    theta_c = theta_copeland_scan(20, 2, 3, 0.9, 0.1, 0.999999)
    assert theta_c is not None and theta_c > 0
    # Minimality: θ-1 must violate the condition (re-scan capped below θ).
    assert theta_positional_scan(
        20, 2, 15, 0.5, 0.1, 0.999999, theta_max=theta_p - 1
    ) is None


def test_theta_scans_validation():
    from repro.core.bounds import theta_copeland_scan, theta_positional_scan

    with pytest.raises(ValueError):
        theta_positional_scan(100, 5, 0.0, 0.1, 1.0, 0.9)
    with pytest.raises(ValueError):
        theta_positional_scan(100, 5, 10.0, 0.1, 1.0, 1.0)
    with pytest.raises(ValueError):
        theta_copeland_scan(100, 5, 3, 0.0, 1.0, 0.9)
    with pytest.raises(ValueError):
        theta_copeland_scan(100, 5, 1, 0.5, 1.0, 0.9)
