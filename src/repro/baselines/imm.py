"""IMM: Influence Maximization via Martingales [Tang, Shi, Xiao; SIGMOD'15].

The classic-IM baseline of §VIII-A ("IC and LT models-based seed selection,
both coupled with IMM").  Two phases:

1. **Sampling** — estimate a lower bound LB on the optimal spread by testing
   guesses ``x = n/2, n/4, ...`` with progressively more RR sets, then draw
   ``θ = λ*/LB`` RR sets in total.
2. **Node selection** — greedy maximum coverage of the RR sets; the covered
   fraction times ``n`` is an unbiased spread estimate, and the result is a
   ``(1 - 1/e - ε)``-approximation w.h.p.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.rrset import rr_set_ic, rr_set_lt
from repro.core.bounds import log_comb
from repro.graph.digraph import InfluenceGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_seed_budget


def max_coverage(rr_sets: list[np.ndarray], n: int, k: int) -> tuple[np.ndarray, float]:
    """Greedy max coverage over RR sets.

    Returns ``(seeds, covered_fraction)``.  Maintains per-node counts and
    decrements them as sets get covered — O(total RR size) overall.
    """
    counts = np.zeros(n, dtype=np.int64)
    node_sets: dict[int, list[int]] = {}
    for idx, rr in enumerate(rr_sets):
        for u in rr:
            u = int(u)
            counts[u] += 1
            node_sets.setdefault(u, []).append(idx)
    covered = np.zeros(len(rr_sets), dtype=bool)
    seeds: list[int] = []
    total_covered = 0
    for _ in range(min(k, n)):
        best = int(np.argmax(counts))
        if counts[best] <= 0:
            # All RR sets covered; pad with arbitrary unpicked nodes.
            remaining = [v for v in range(n) if v not in seeds]
            seeds.extend(remaining[: k - len(seeds)])
            break
        seeds.append(best)
        for idx in node_sets.get(best, []):
            if covered[idx]:
                continue
            covered[idx] = True
            total_covered += 1
            for u in rr_sets[idx]:
                counts[int(u)] -= 1
    frac = total_covered / max(len(rr_sets), 1)
    return np.array(seeds[:k], dtype=np.int64), frac


@dataclass
class IMMResult:
    """Seeds plus diagnostics of an IMM run."""

    seeds: np.ndarray
    spread_estimate: float
    theta: int
    opt_lower_bound: float


def imm(
    graph: InfluenceGraph,
    k: int,
    *,
    model: str = "ic",
    epsilon: float = 0.5,
    ell: float = 1.0,
    theta_cap: int | None = 200_000,
    rng: int | np.random.Generator | None = None,
    rr_pool=None,
) -> IMMResult:
    """Run IMM on ``graph`` for budget ``k`` under the IC or LT model.

    ``epsilon = 0.5`` is the original paper's default trade-off.
    ``theta_cap`` bounds the RR-set count so laptop-scale runs stay fast;
    the approximation guarantee formally needs the uncapped count.

    ``rr_pool`` (an :class:`~repro.core.walk_store.RRSetPool`, usually from
    a shared :class:`~repro.core.walk_store.WalkStore`) replaces the
    private RR-set sample: the lower-bound rounds and the final θ draw all
    extend one deterministic pooled sample, and a later run — another
    budget of the same sweep — reuses every RR set already generated.
    """
    rng = ensure_rng(rng)
    n = graph.n
    k = check_seed_budget(k, n)
    if model == "ic":
        make_rr = rr_set_ic
    elif model == "lt":
        make_rr = rr_set_lt
    else:
        raise ValueError(f"model must be 'ic' or 'lt', got {model!r}")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if rr_pool is not None:
        if rr_pool.model != model:
            raise ValueError(
                f"rr_pool is for model {rr_pool.model!r}, imm called with {model!r}"
            )
        if rr_pool.graph is not graph:
            raise ValueError(
                "rr_pool was built for a different graph; RR-set node ids "
                "would not refer to this instance"
            )

    def extend(rr_sets: list[np.ndarray], target: int) -> list[np.ndarray]:
        target = min(target, theta_cap) if theta_cap is not None else target
        if rr_pool is not None:
            return rr_pool.ensure(max(target, len(rr_sets)))
        while len(rr_sets) < target:
            root = int(rng.integers(0, n))
            rr_sets.append(make_rr(graph, root, rng))
        return rr_sets

    # Phase 1: estimate a lower bound on OPT (Alg. 2 of the IMM paper).
    eps_prime = float(np.sqrt(2.0) * epsilon)
    log_n = np.log(max(n, 2))
    lambda_prime = (
        (2.0 + 2.0 * eps_prime / 3.0)
        * (log_comb(n, k) + ell * log_n + np.log(max(np.log2(max(n, 2)), 1.0)))
        * n
        / (eps_prime**2)
    )
    rr_sets: list[np.ndarray] = []
    lower_bound = 1.0
    max_rounds = max(int(np.ceil(np.log2(n))) - 1, 1)
    for i in range(1, max_rounds + 1):
        x = n / (2.0**i)
        rr_sets = extend(rr_sets, int(np.ceil(lambda_prime / x)))
        _, frac = max_coverage(rr_sets, n, k)
        if n * frac >= (1.0 + eps_prime) * x:
            lower_bound = n * frac / (1.0 + eps_prime)
            break
    # Phase 2: the final sample size θ = λ*/LB (Theorem 1 of the IMM paper).
    alpha = np.sqrt(ell * log_n + np.log(2.0))
    beta = np.sqrt((1.0 - 1.0 / np.e) * (log_comb(n, k) + ell * log_n + np.log(2.0)))
    lambda_star = 2.0 * n * ((1.0 - 1.0 / np.e) * alpha + beta) ** 2 / (epsilon**2)
    theta = int(np.ceil(lambda_star / max(lower_bound, 1.0)))
    rr_sets = extend(rr_sets, theta)
    seeds, frac = max_coverage(rr_sets, n, k)
    return IMMResult(
        seeds=seeds,
        spread_estimate=n * frac,
        theta=len(rr_sets),
        opt_lower_bound=lower_bound,
    )
