"""Fig. 9: overlap of the positional-p-approval seed set with plurality / p-approval.

Expected shape (paper, Yelp): at ω[p]=1 positional-p-approval coincides with
p-approval (overlap → high), at ω[p]=0 it reduces to (p-1)-approval, and the
overlap with plurality stays substantial (~80% for p=2) because top-rank
improvements help every variant.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.experiments import positional_overlap_experiment
from repro.eval.reporting import format_series

OMEGAS = [0.0, 0.25, 0.5, 0.75, 1.0]
K = 20


@pytest.mark.parametrize("p", [2, 3])
def test_fig9_overlap(benchmark, yelp_ds, save_result, p):
    out = run_once(
        benchmark,
        lambda: positional_overlap_experiment(
            yelp_ds, K, p, OMEGAS, method="dm", rng=19
        ),
    )
    save_result(
        f"fig9_overlap_p{p}",
        format_series(
            "omega_p",
            OMEGAS,
            {"vs plurality": out["vs_plurality"], "vs p-approval": out["vs_p_approval"]},
        ),
    )
    assert all(0 <= v <= 1 for v in out["vs_plurality"])
    # At ω[p]=1 the positional variant IS p-approval: identical seed sets
    # under the deterministic DM selector.
    assert out["vs_p_approval"][-1] == pytest.approx(1.0)
    # Seed sets remain substantially shared with plurality across ω.
    assert min(out["vs_plurality"]) >= 0.2
