"""Yelp-like review network: 10 restaurant categories as candidates.

Mirrors §VIII-A: nodes are users, edges friendships (influence flows both
ways), edge weight ``1 - exp(-a/μ)`` where ``a`` counts common restaurant
visits within a month, initial opinions are users' average ratings per
category normalized to [0, 1], and stubbornness is one minus the variance
of monthly average opinions.  The default target is the "Chinese" category,
as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synth import Dataset, activity_edge_weights, variance_stubbornness
from repro.graph.build import graph_from_edges
from repro.graph.generators import preferential_attachment_edges
from repro.opinion.state import CampaignState
from repro.utils.rng import ensure_rng

#: Restaurant categories (the paper names American, Chinese, Italian, ...).
CATEGORIES = (
    "American",
    "Chinese",
    "Italian",
    "Mexican",
    "Japanese",
    "Thai",
    "Indian",
    "French",
    "Korean",
    "Vietnamese",
)


def yelp_like(
    n: int = 3000,
    *,
    r: int = 10,
    mu: float = 10.0,
    m_attach: int = 6,
    horizon: int = 20,
    per_candidate_weights: bool = False,
    rng: int | np.random.Generator | None = None,
) -> Dataset:
    """Build the Yelp-like instance with ``r ≤ 10`` category candidates.

    Ratings are simulated per user from a Dirichlet taste profile: the mean
    rating of category q is ``1 + 4·taste_q / max(taste)`` stars with
    per-review noise, averaged and rescaled to [0, 1] — the same pipeline as
    averaging real star ratings.

    With ``per_candidate_weights=True`` each candidate gets its own
    influence matrix ``W_q`` (§II-A allows this; cf. topic-aware IM): the
    raw weight of edge ``(u, v)`` is scaled by how much *both* endpoints
    care about category q, so influence about Chinese food flows along
    Chinese-food-lover friendships.
    """
    rng = ensure_rng(rng)
    if not 2 <= r <= len(CATEGORIES):
        raise ValueError(f"r must be in [2, {len(CATEGORIES)}]")
    src, dst = preferential_attachment_edges(n, m_attach, rng)
    weights = activity_edge_weights(src.size, mu, mean_activity=5.0, rng=rng)
    taste = rng.dirichlet(np.full(r, 0.8), size=n).T  # (r, n)
    mean_rating = 1.0 + 4.0 * taste / np.maximum(taste.max(axis=0, keepdims=True), 1e-12)
    n_reviews = 1 + rng.poisson(4.0, size=(r, n))
    noise = rng.normal(0.0, 0.8, size=(r, n)) / np.sqrt(n_reviews)
    ratings = np.clip(mean_rating + noise, 1.0, 5.0)
    opinions = (ratings - 1.0) / 4.0
    stub = variance_stubbornness(opinions, rng=rng)
    if per_candidate_weights:
        # Topic affinity of an edge for category q: geometric mean of the
        # endpoints' (normalized) tastes, floored to keep graphs connected.
        rel_taste = taste / np.maximum(taste.max(axis=0, keepdims=True), 1e-12)
        graphs = tuple(
            graph_from_edges(
                n,
                src,
                dst,
                weights * (0.1 + np.sqrt(rel_taste[q, src] * rel_taste[q, dst])),
            )
            for q in range(r)
        )
    else:
        graphs = (graph_from_edges(n, src, dst, weights),) * r
    state = CampaignState(
        graphs=graphs,
        initial_opinions=opinions,
        stubbornness=np.tile(stub, (r, 1)),
        candidates=CATEGORIES[:r],
    )
    return Dataset(
        name="yelp",
        state=state,
        target=1,  # "Chinese", the paper's default target
        horizon=horizon,
        meta={"mu": mu, "taste": taste},
    )
