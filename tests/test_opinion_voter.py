"""Tests for the voter-model substrate."""

import numpy as np
import pytest

from repro.graph.build import graph_from_edges
from repro.opinion.voter import (
    initial_states_from_opinions,
    simulate_voter,
    voter_expected_shares,
)


def _path_graph(n=5):
    return graph_from_edges(n, list(range(n - 1)), list(range(1, n)))


def test_initial_states_from_opinions():
    opinions = np.array([[0.9, 0.1, 0.5], [0.1, 0.9, 0.5]])
    np.testing.assert_array_equal(
        initial_states_from_opinions(opinions), [0, 1, 0]
    )
    with pytest.raises(ValueError):
        initial_states_from_opinions(np.zeros(3))


def test_voter_deterministic_chain_converges_to_source():
    # Each node's only in-neighbor is its predecessor: after n steps
    # everyone holds node 0's state.
    g = _path_graph()
    states = np.array([1, 0, 0, 0, 0])
    final = simulate_voter(g, states, horizon=5, rng=0)
    np.testing.assert_array_equal(final, np.ones(5, dtype=np.int64))


def test_voter_zealots_never_change():
    g = _path_graph()
    states = np.zeros(5, dtype=np.int64)
    final = simulate_voter(
        g, states, horizon=4, zealots=np.array([2]), zealot_state=1, rng=1
    )
    assert final[2] == 1
    assert final[3] == 1  # downstream of the zealot on the chain
    assert final[4] == 1


def test_voter_isolated_node_keeps_state():
    # Node 0 has only its normalization self-loop.
    g = _path_graph()
    states = np.array([3, 0, 0, 0, 0])
    final = simulate_voter(g, states, horizon=3, rng=2)
    assert final[0] == 3


def test_voter_shape_validation():
    g = _path_graph()
    with pytest.raises(ValueError):
        simulate_voter(g, np.zeros(3, dtype=np.int64), 2)
    with pytest.raises(ValueError):
        simulate_voter(g, np.zeros(5, dtype=np.int64), -1)


def test_voter_expected_shares_sum_to_one():
    rng = np.random.default_rng(3)
    g = graph_from_edges(12, rng.integers(0, 12, 40), rng.integers(0, 12, 40))
    states = rng.integers(0, 3, size=12)
    shares = voter_expected_shares(g, states, horizon=4, r=3, mc_runs=40, rng=4)
    assert shares.shape == (3,)
    assert shares.sum() == pytest.approx(1.0)


def test_voter_zealots_raise_target_share():
    rng = np.random.default_rng(5)
    g = graph_from_edges(15, rng.integers(0, 15, 60), rng.integers(0, 15, 60))
    states = np.ones(15, dtype=np.int64)  # everyone starts with candidate 1
    base = voter_expected_shares(g, states, 5, r=2, mc_runs=60, rng=6)
    seeded = voter_expected_shares(
        g, states, 5, r=2, zealots=np.array([0, 1, 2]), zealot_state=0,
        mc_runs=60, rng=6,
    )
    assert seeded[0] > base[0]


def test_voter_expected_shares_validation():
    g = _path_graph()
    with pytest.raises(ValueError):
        voter_expected_shares(g, np.zeros(5, dtype=np.int64), 2, r=2, mc_runs=0)
    with pytest.raises(ValueError):
        voter_expected_shares(g, np.zeros(5, dtype=np.int64), 2, r=0)
