"""Random graph generators (implemented from scratch; no networkx).

These supply the structural substrate for the synthetic dataset recipes in
:mod:`repro.datasets`.  All generators return ``(src, dst)`` integer edge
arrays with self-loops and duplicate edges removed; weights are assigned by
the dataset layer.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def _dedup(n: int, src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Drop self-loops and duplicate directed edges."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    keys = np.unique(src * np.int64(n) + dst)
    return keys // n, keys % n


def erdos_renyi_edges(
    n: int, p: float, rng: int | np.random.Generator | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Directed Erdős–Rényi G(n, p) edges.

    Samples the edge count from a binomial and then draws that many distinct
    ordered pairs, which is exact and avoids materializing all n(n-1)
    candidate edges.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = ensure_rng(rng)
    total = n * (n - 1)
    if total == 0 or p == 0.0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    m = int(rng.binomial(total, p))
    # Sample distinct pair codes in [0, total); rejection is cheap for the
    # sparse regimes used here.
    codes: set[int] = set()
    while len(codes) < m:
        draw = rng.integers(0, total, size=m - len(codes))
        codes.update(int(c) for c in draw)
    arr = np.fromiter(codes, dtype=np.int64, count=len(codes))
    src = arr // (n - 1)
    off = arr % (n - 1)
    dst = np.where(off >= src, off + 1, off)  # skip the diagonal
    return src, dst


def preferential_attachment_edges(
    n: int, m_attach: int, rng: int | np.random.Generator | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Barabási–Albert-style preferential attachment, emitted bidirectionally.

    Each new node attaches to ``m_attach`` distinct existing nodes chosen
    proportionally to degree; both edge directions are emitted (social ties
    such as friendships/co-authorships influence both endpoints).
    """
    if m_attach < 1:
        raise ValueError("m_attach must be >= 1")
    if n <= m_attach:
        raise ValueError("n must exceed m_attach")
    rng = ensure_rng(rng)
    repeated: list[int] = list(range(m_attach))  # seed clique targets
    src_list: list[int] = []
    dst_list: list[int] = []
    for v in range(m_attach, n):
        targets: set[int] = set()
        while len(targets) < m_attach:
            pick = repeated[int(rng.integers(0, len(repeated)))]
            targets.add(pick)
        for u in targets:
            src_list.append(v)
            dst_list.append(u)
            repeated.append(u)
        repeated.extend([v] * m_attach)
    src = np.array(src_list, dtype=np.int64)
    dst = np.array(dst_list, dtype=np.int64)
    return _dedup(n, np.concatenate([src, dst]), np.concatenate([dst, src]))


def ring_lattice_edges(n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Directed ring lattice: each node points to its ``k`` clockwise successors."""
    if k < 0 or (n > 0 and k >= n):
        raise ValueError("need 0 <= k < n")
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    shift = np.tile(np.arange(1, k + 1, dtype=np.int64), n)
    dst = (src + shift) % n
    return _dedup(n, src, dst)


def watts_strogatz_edges(
    n: int, k: int, beta: float, rng: int | np.random.Generator | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Watts–Strogatz small world: ring lattice with rewiring, bidirectional."""
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    rng = ensure_rng(rng)
    src, dst = ring_lattice_edges(n, k)
    rewire = rng.random(src.size) < beta
    new_dst = dst.copy()
    new_dst[rewire] = rng.integers(0, n, size=int(rewire.sum()))
    src2 = np.concatenate([src, new_dst])
    dst2 = np.concatenate([new_dst, src])
    return _dedup(n, src2, dst2)


def planted_partition_edges(
    n: int,
    n_communities: int,
    p_in: float,
    p_out: float,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Planted-partition (community) graph.

    Returns ``(src, dst, membership)`` where ``membership[v]`` is the
    community index of node ``v``.  Within-community pairs connect with
    probability ``p_in``, across with ``p_out``.
    """
    if n_communities < 1:
        raise ValueError("n_communities must be >= 1")
    rng = ensure_rng(rng)
    membership = rng.integers(0, n_communities, size=n)
    src_all: list[np.ndarray] = []
    dst_all: list[np.ndarray] = []
    # Sample across the full pair space with the background probability, then
    # add the extra in-community density.
    s, d = erdos_renyi_edges(n, p_out, rng)
    src_all.append(s)
    dst_all.append(d)
    if p_in > p_out:
        extra = (p_in - p_out) / max(1.0 - p_out, 1e-12)
        for c in range(n_communities):
            members = np.where(membership == c)[0]
            if members.size < 2:
                continue
            s, d = erdos_renyi_edges(members.size, extra, rng)
            src_all.append(members[s])
            dst_all.append(members[d])
    src = np.concatenate(src_all) if src_all else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dst_all) if dst_all else np.empty(0, dtype=np.int64)
    src, dst = _dedup(n, src, dst)
    return src, dst, membership


def power_law_edges(
    n: int,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: int | None = None,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Configuration-model digraph with power-law out-degrees.

    Out-degrees are drawn from a truncated discrete power law with the given
    ``exponent``; targets are chosen uniformly at random (distinctness within
    a node enforced by dedup).  This mimics the heavy-tailed retweet graphs
    of the Twitter datasets.
    """
    if exponent <= 1.0:
        raise ValueError("exponent must exceed 1")
    if min_degree < 1:
        raise ValueError("min_degree must be >= 1")
    rng = ensure_rng(rng)
    cap = max_degree if max_degree is not None else max(min_degree, int(np.sqrt(n)) + 1)
    degrees = np.arange(min_degree, cap + 1, dtype=np.float64)
    pmf = degrees ** (-exponent)
    pmf /= pmf.sum()
    out_deg = rng.choice(np.arange(min_degree, cap + 1), size=n, p=pmf)
    src = np.repeat(np.arange(n, dtype=np.int64), out_deg)
    dst = rng.integers(0, n, size=src.size)
    return _dedup(n, src, dst)
