"""Tests for the future-work extensions: HK dynamics, Borda/Dowdall scores."""

import numpy as np
import pytest

from repro.core.greedy import greedy_select
from repro.core.problem import FJVoteProblem
from repro.graph.build import graph_from_edges
from repro.opinion.bounded_confidence import (
    bounded_confidence_objective,
    hk_evolve,
    hk_step,
)
from repro.opinion.fj import fj_evolve
from repro.voting.extensions import BordaScore, DowdallScore
from tests.conftest import random_instance


def _example():
    g = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    b0 = np.array([0.4, 0.8, 0.6, 0.9])
    d = np.full(4, 0.5)
    return g, b0, d


# ----------------------------------------------------------------------
# Bounded confidence (HK)
# ----------------------------------------------------------------------
def test_hk_with_full_confidence_equals_fj():
    g, b0, d = _example()
    hk = hk_evolve(b0, d, g, 6, epsilon=1.0)
    fj = fj_evolve(b0, d, g, 6)
    np.testing.assert_allclose(hk, fj, atol=1e-12)


def test_hk_with_zero_confidence_freezes_non_neighbors():
    g, b0, d = _example()
    # ε=0: only exactly-equal neighbors are heard; everyone keeps mixing
    # with their own anchor -> opinions stay at initial values.
    hk = hk_evolve(b0, d, g, 5, epsilon=0.0)
    np.testing.assert_allclose(hk, b0)


def test_hk_opinions_stay_in_unit_interval():
    state = random_instance(n=12, r=1, seed=3)
    out = hk_evolve(
        state.initial_opinions[0],
        state.stubbornness[0],
        state.graph(0),
        8,
        epsilon=0.25,
    )
    assert out.min() >= -1e-12 and out.max() <= 1 + 1e-12


def test_hk_confidence_restricts_influence():
    # 0 -> 1 with a huge opinion gap: with small ε node 1 ignores node 0.
    g = graph_from_edges(2, [0], [1])
    b0 = np.array([1.0, 0.0])
    d = np.array([0.0, 0.0])
    narrow = hk_step(b0, b0, d, g, epsilon=0.1)
    wide = hk_step(b0, b0, d, g, epsilon=1.0)
    assert narrow[1] == pytest.approx(0.0)  # unheard
    assert wide[1] == pytest.approx(1.0)  # fully heard


def test_hk_validation():
    g, b0, d = _example()
    with pytest.raises(ValueError):
        hk_evolve(b0, d, g, 3, epsilon=-0.5)
    with pytest.raises(ValueError):
        hk_evolve(b0, d, g, -1)


def test_bounded_confidence_greedy_objective():
    state = random_instance(n=8, r=1, seed=5)
    objective = bounded_confidence_objective(
        state.graph(0),
        state.initial_opinions[0],
        state.stubbornness[0],
        t=3,
        epsilon=0.4,
    )
    base = objective(())
    result = greedy_select(objective, 8, 2, lazy=False)
    assert result.objective >= base
    assert result.seeds.size == 2


# ----------------------------------------------------------------------
# Borda / Dowdall
# ----------------------------------------------------------------------
def test_borda_weights():
    score = BordaScore(4)
    np.testing.assert_allclose(score.weights, [1.0, 2 / 3, 1 / 3, 0.0])
    assert score.p == 4


def test_borda_on_known_profile():
    opinions = np.array([[0.9, 0.2], [0.5, 0.8], [0.1, 0.5]])
    # Candidate 0: rank 1 then rank 3 -> 1 + 0 = 1.
    assert BordaScore(3).evaluate(opinions, 0) == pytest.approx(1.0)
    # Candidate 1: rank 2 then rank 1 -> 0.5 + 1 = 1.5.
    assert BordaScore(3).evaluate(opinions, 1) == pytest.approx(1.5)


def test_dowdall_weights():
    score = DowdallScore(3)
    np.testing.assert_allclose(score.weights, [1.0, 0.5, 1 / 3])


def test_extension_scores_work_with_problem(random_state):
    for score in (BordaScore(random_state.r), DowdallScore(random_state.r)):
        problem = FJVoteProblem(random_state, 0, 3, score)
        base = problem.objective(())
        seeded = problem.objective(np.array([0, 1]))
        assert seeded >= base - 1e-12


def test_extension_validation():
    with pytest.raises(ValueError):
        BordaScore(1)
    with pytest.raises(ValueError):
        DowdallScore(0)
