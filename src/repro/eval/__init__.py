"""Experiment harness reproducing every table and figure of §VIII."""

from repro.eval.case_study import CaseStudyResult, acm_election_case_study
from repro.eval.charts import bar_chart, line_chart
from repro.eval.harness import METHOD_NAMES, MethodRun, run_methods, select_seeds
from repro.eval.metrics import seed_overlap
from repro.eval.reporting import format_series, format_table

__all__ = [
    "CaseStudyResult",
    "METHOD_NAMES",
    "MethodRun",
    "acm_election_case_study",
    "bar_chart",
    "format_series",
    "format_table",
    "line_chart",
    "run_methods",
    "seed_overlap",
    "select_seeds",
]
