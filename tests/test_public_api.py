"""The public API surface: every ``__all__`` name must resolve and be documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.opinion",
    "repro.voting",
    "repro.core",
    "repro.baselines",
    "repro.datasets",
    "repro.eval",
    "repro.utils",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    for attr in getattr(module, "__all__", []):
        assert hasattr(module, attr), f"{name}.__all__ lists missing {attr!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_are_documented(name):
    module = importlib.import_module(name)
    for attr in getattr(module, "__all__", []):
        obj = getattr(module, attr)
        if callable(obj):
            assert obj.__doc__, f"{name}.{attr} lacks a docstring"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_extension_modules_importable():
    for name in (
        "repro.voting.extensions",
        "repro.opinion.bounded_confidence",
        "repro.opinion.voter",
        "repro.eval.charts",
        "repro.cli",
    ):
        module = importlib.import_module(name)
        assert module.__doc__
