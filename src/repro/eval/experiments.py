"""One function per table/figure of the paper's evaluation (§VIII).

Every function returns a plain data structure (dict of series) that the
corresponding benchmark prints in the paper's row/series shape.  Parameters
default to laptop-scale versions of the paper's settings; the *relative*
comparisons (who wins, crossover positions, trends) are what reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.baselines.cascade import expected_spread
from repro.baselines.imm import imm
from repro.core.greedy import greedy_dm
from repro.core.problem import FJVoteProblem
from repro.core.random_walk import random_walk_select
from repro.core.sandwich import sandwich_select
from repro.core.sketch import _run_sketch_greedy, sketch_select
from repro.core.winmin import min_seeds_to_win
from repro.datasets.synth import Dataset
from repro.eval.harness import run_methods, select_seeds
from repro.eval.metrics import seed_overlap
from repro.graph.alias import AliasSampler
from repro.graph.build import induced_subgraph
from repro.opinion.convergence import fraction_changing
from repro.opinion.state import CampaignState
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.voting.rank import ranks
from repro.voting.scores import (
    CumulativeScore,
    PApprovalScore,
    PluralityScore,
    PositionalPApprovalScore,
    VotingScore,
)


# ----------------------------------------------------------------------
# Figs. 6-8: effectiveness and efficiency vs seed budget k
# ----------------------------------------------------------------------
@dataclass
class EffectivenessResult:
    """Score/time series per method over a k-sweep (one panel of Figs. 6-8)."""

    dataset: str
    score_name: str
    ks: list[int]
    scores: dict[str, list[float]]
    times: dict[str, list[float]]


def effectiveness_experiment(
    dataset: Dataset,
    score: VotingScore,
    ks: Sequence[int],
    methods: Sequence[str],
    *,
    horizon: int | None = None,
    rng: int | np.random.Generator | None = None,
    method_kwargs: dict[str, dict[str, object]] | None = None,
    engine: str | None = None,
) -> EffectivenessResult:
    """Score and seed-selection time vs k for each method (Figs. 6-8)."""
    problem = dataset.problem(score, horizon=horizon)
    runs = run_methods(
        problem, ks, methods, rng, method_kwargs=method_kwargs, engine=engine
    )
    scores: dict[str, list[float]] = {m: [] for m in methods}
    times: dict[str, list[float]] = {m: [] for m in methods}
    for run in runs:
        scores[run.method].append(run.score_value)
        times[run.method].append(run.seconds)
    return EffectivenessResult(
        dataset=dataset.name,
        score_name=score.name,
        ks=[int(k) for k in ks],
        scores=scores,
        times=times,
    )


# ----------------------------------------------------------------------
# Fig. 2 (§IV-D): empirical sandwich approximation factor
# ----------------------------------------------------------------------
def sandwich_ratio_trials(
    dataset: Dataset,
    score: VotingScore,
    ks: Sequence[int],
    *,
    method: str = "rw",
    rng: int | np.random.Generator | None = None,
    **method_kwargs: object,
) -> dict[str, list[float]]:
    """``F(S_U)/UB(S_U)`` per trial, one trial per k (Fig. 2 protocol).

    Also records the relative runtime of computing S_U and S_L versus S_F,
    reproducing the §IV-D claim that the bounds cost ~2% / ~5% of S_F.
    """
    rng = ensure_rng(rng)
    ratios: list[float] = []
    factors: list[float] = []
    chosen: list[float] = []
    for k in ks:
        problem = dataset.problem(score)
        result = sandwich_select(problem, int(k), method=method, rng=rng, **method_kwargs)
        ratios.append(result.sandwich_ratio)
        factors.append(result.approximation_factor)
        chosen.append(float(result.chosen == "F"))
    return {"k": [float(k) for k in ks], "ratio": ratios, "factor": factors,
            "feasible_chosen": chosen}


# ----------------------------------------------------------------------
# Fig. 9: seed overlap among plurality variants
# ----------------------------------------------------------------------
def positional_overlap_experiment(
    dataset: Dataset,
    k: int,
    p: int,
    omegas: Sequence[float],
    *,
    method: str = "rw",
    rng: int | np.random.Generator | None = None,
    **method_kwargs: object,
) -> dict[str, list[float]]:
    """Overlap of positional-p-approval seeds vs plurality / p-approval seeds.

    Varies ``ω[p]`` in [0, 1] with ``ω[i] = 1`` for ``i < p``; at ``ω[p]=1``
    positional-p-approval equals p-approval, at ``ω[p]=0`` it equals
    (p-1)-approval, reproducing the Fig. 9 interpolation.
    """
    rng = ensure_rng(rng)
    r = dataset.r
    plain = select_seeds(
        method, dataset.problem(PluralityScore()), k, rng, **method_kwargs
    )
    papproval = select_seeds(
        method, dataset.problem(PApprovalScore(p, r)), k, rng, **method_kwargs
    )
    overlap_plurality: list[float] = []
    overlap_papproval: list[float] = []
    for omega_p in omegas:
        weights = np.ones(r)
        weights[p - 1 :] = omega_p
        problem = dataset.problem(PositionalPApprovalScore(p, weights))
        seeds = select_seeds(method, problem, k, rng, **method_kwargs)
        overlap_plurality.append(seed_overlap(seeds, plain))
        overlap_papproval.append(seed_overlap(seeds, papproval))
    return {
        "omega_p": list(float(w) for w in omegas),
        "vs_plurality": overlap_plurality,
        "vs_p_approval": overlap_papproval,
    }


# ----------------------------------------------------------------------
# Fig. 10: distribution of the target's rank across users
# ----------------------------------------------------------------------
def rank_distribution_experiment(
    dataset: Dataset,
    k: int,
    ps: Sequence[int],
    *,
    method: str = "rw",
    rng: int | np.random.Generator | None = None,
    **method_kwargs: object,
) -> dict[str, list[float]]:
    """#users ranking the target at each position, per p-approval variant."""
    rng = ensure_rng(rng)
    r = dataset.r
    out: dict[str, list[float]] = {"position": [float(i) for i in range(1, r + 1)]}
    for p in ps:
        problem = dataset.problem(PApprovalScore(int(p), r))
        seeds = select_seeds(method, problem, k, rng, **method_kwargs)
        beta = ranks(problem.full_opinions(seeds), problem.target)
        counts = np.bincount(beta, minlength=r + 1)[1 : r + 1]
        out[f"p={p}"] = [float(c) for c in counts]
    return out


# ----------------------------------------------------------------------
# Table VI: minimum seeds to win
# ----------------------------------------------------------------------
def min_seeds_experiment(
    dataset: Dataset,
    *,
    methods: Sequence[str] = ("dm", "rw", "rs"),
    k_max: int | None = None,
    score: VotingScore | None = None,
    rng: int | np.random.Generator | None = None,
    method_kwargs: dict[str, dict[str, object]] | None = None,
    engine: str | None = None,
) -> dict[str, int]:
    """Minimum winning budget per method, plurality score (Table VI)."""
    rng = ensure_rng(rng)
    method_kwargs = method_kwargs or {}
    problem = dataset.problem(score or PluralityScore())
    out: dict[str, int] = {}
    for method in methods:
        kwargs = dict(method_kwargs.get(method, {}))
        if method == "dm":
            result = min_seeds_to_win(problem, k_max=k_max, engine=engine, rng=rng)
        else:
            result = min_seeds_to_win(
                problem,
                k_max=k_max,
                selector=lambda k, m=method, kw=kwargs: select_seeds(
                    m, problem, k, rng, **kw
                ),
            )
        out[method] = result.k if result.found else -1
    return out


# ----------------------------------------------------------------------
# Fig. 11: expected influence spread of voting-score seeds vs IMM seeds
# ----------------------------------------------------------------------
def eis_experiment(
    dataset: Dataset,
    ks: Sequence[int],
    *,
    mc_runs: int = 100,
    rng: int | np.random.Generator | None = None,
    rw_kwargs: dict[str, object] | None = None,
    imm_epsilon: float = 0.5,
) -> dict[str, dict[str, list[float]]]:
    """EIS under IC and LT for RW seeds (3 scores) vs IMM seeds (Fig. 11)."""
    rng = ensure_rng(rng)
    rw_kwargs = rw_kwargs or {}
    graph = dataset.state.graph(dataset.target)
    seed_sets: dict[str, dict[int, np.ndarray]] = {}
    from repro.voting.scores import CopelandScore  # local to avoid cycle noise

    for name, score in (
        ("rw-cumulative", CumulativeScore()),
        ("rw-plurality", PluralityScore()),
        ("rw-copeland", CopelandScore()),
    ):
        problem = dataset.problem(score)
        seed_sets[name] = {
            int(k): random_walk_select(problem, int(k), rng=rng, **rw_kwargs).seeds
            for k in ks
        }
    for model in ("ic", "lt"):
        seed_sets[f"imm-{model}"] = {
            int(k): imm(graph, int(k), model=model, epsilon=imm_epsilon, rng=rng).seeds
            for k in ks
        }
    out: dict[str, dict[str, list[float]]] = {}
    for model in ("ic", "lt"):
        panel: dict[str, list[float]] = {}
        for name in ("rw-cumulative", "rw-plurality", "rw-copeland", f"imm-{model}"):
            panel[name] = [
                expected_spread(
                    graph, seed_sets[name][int(k)], model=model, mc_runs=mc_runs, rng=rng
                )
                for k in ks
            ]
        out[model] = panel
    return out


# ----------------------------------------------------------------------
# Fig. 12: score and time vs the horizon t
# ----------------------------------------------------------------------
def horizon_experiment(
    dataset: Dataset,
    ts: Sequence[int],
    k: int,
    *,
    methods: Sequence[str] = ("dm", "rw", "rs"),
    rng: int | np.random.Generator | None = None,
    method_kwargs: dict[str, dict[str, object]] | None = None,
) -> dict[str, dict[str, list[float]]]:
    """Cumulative score and seed-finding time vs t (Fig. 12)."""
    rng = ensure_rng(rng)
    method_kwargs = method_kwargs or {}
    scores: dict[str, list[float]] = {m: [] for m in methods}
    times: dict[str, list[float]] = {m: [] for m in methods}
    for t in ts:
        problem = dataset.problem(CumulativeScore(), horizon=int(t))
        problem.others_by_user()
        for method in methods:
            kwargs = dict(method_kwargs.get(method, {}))
            with Timer() as timer:
                seeds = select_seeds(method, problem, k, rng, **kwargs)
            scores[method].append(problem.objective(seeds))
            times[method].append(timer.elapsed)
    return {"score": scores, "time": times, "t": {"t": [float(t) for t in ts]}}


# ----------------------------------------------------------------------
# Figs. 13-14: score vs θ (sketch count)
# ----------------------------------------------------------------------
def theta_experiment(
    dataset: Dataset,
    score: VotingScore,
    thetas: Sequence[int],
    *,
    ks: Sequence[int] = (100,),
    ts: Sequence[int] | None = None,
    rng: int | np.random.Generator | None = None,
) -> dict[str, list[float]]:
    """Exact score of RS seeds as θ grows, for several k and t (Figs. 13-14)."""
    rng = ensure_rng(rng)
    out: dict[str, list[float]] = {"theta": [float(t) for t in thetas]}
    for k in ks:
        series = []
        problem = dataset.problem(score)
        sampler = AliasSampler(problem.state.graph(problem.target).csc)
        for theta in thetas:
            result, _ = _run_sketch_greedy(problem, int(k), int(theta), rng, sampler)
            series.append(problem.objective(result.seeds))
        out[f"k={k}"] = series
    for t in ts or ():
        series = []
        problem = dataset.problem(score, horizon=int(t))
        sampler = AliasSampler(problem.state.graph(problem.target).csc)
        for theta in thetas:
            result, _ = _run_sketch_greedy(
                problem, int(ks[0]), int(theta), rng, sampler
            )
            series.append(problem.objective(result.seeds))
        out[f"t={t}"] = series
    return out


# ----------------------------------------------------------------------
# Fig. 15: RS accuracy/time vs ε  |  Fig. 16: RW accuracy/time vs ρ
# ----------------------------------------------------------------------
def epsilon_experiment(
    dataset: Dataset,
    epsilons: Sequence[float],
    k: int,
    *,
    theta_cap: int | None = None,
    rng: int | np.random.Generator | None = None,
) -> dict[str, list[float]]:
    """Cumulative score and time of RS vs ε (Fig. 15)."""
    rng = ensure_rng(rng)
    problem = dataset.problem(CumulativeScore())
    problem.others_by_user()
    scores, times, thetas = [], [], []
    for eps in epsilons:
        with Timer() as timer:
            result = sketch_select(
                problem, k, epsilon=float(eps), theta_cap=theta_cap, rng=rng
            )
        scores.append(result.exact_objective)
        times.append(timer.elapsed)
        thetas.append(float(result.theta))
    return {
        "epsilon": [float(e) for e in epsilons],
        "score": scores,
        "time": times,
        "theta": thetas,
    }


def rho_experiment(
    dataset: Dataset,
    rhos: Sequence[float],
    k: int,
    *,
    score: VotingScore | None = None,
    rng: int | np.random.Generator | None = None,
    **rw_kwargs: object,
) -> dict[str, list[float]]:
    """Plurality score and time of RW vs ρ (Fig. 16)."""
    rng = ensure_rng(rng)
    problem = dataset.problem(score or PluralityScore())
    problem.others_by_user()
    scores, times, walks = [], [], []
    for rho in rhos:
        with Timer() as timer:
            result = random_walk_select(problem, k, rho=float(rho), rng=rng, **rw_kwargs)
        scores.append(result.exact_objective)
        times.append(timer.elapsed)
        walks.append(float(result.total_walks))
    return {
        "rho": [float(r) for r in rhos],
        "score": scores,
        "time": times,
        "walks": walks,
    }


# ----------------------------------------------------------------------
# Fig. 17: scalability and memory vs graph size
# ----------------------------------------------------------------------
def scalability_experiment(
    dataset: Dataset,
    sizes: Sequence[int],
    k: int,
    *,
    methods: Sequence[str] = ("dm", "rw", "rs"),
    rng: int | np.random.Generator | None = None,
    method_kwargs: dict[str, dict[str, object]] | None = None,
    engine: str | None = None,
) -> dict[str, dict[str, list[float]]]:
    """Seed-finding time and memory vs node count (Fig. 17).

    Subsamples node sets of increasing size (as the paper does with
    Twitter_Social_Distancing) and runs each method on the induced
    subgraph with the cumulative score.  ``engine`` selects the DM
    evaluation backend (default: batched).
    """
    rng = ensure_rng(rng)
    method_kwargs = method_kwargs or {}
    times: dict[str, list[float]] = {m: [] for m in methods}
    memory: dict[str, list[float]] = {m: [] for m in methods}
    state = dataset.state
    base_graph = state.graph(dataset.target)
    for size in sizes:
        nodes = rng.choice(dataset.n, size=int(size), replace=False)
        sub, nodes = induced_subgraph(base_graph, nodes)
        sub_state = CampaignState(
            graphs=(sub,) * state.r,
            initial_opinions=state.initial_opinions[:, nodes],
            stubbornness=state.stubbornness[:, nodes],
            candidates=state.candidates,
        )
        problem = FJVoteProblem(
            sub_state, dataset.target, dataset.horizon, CumulativeScore()
        )
        dm_memory = float(
            sub.csr.data.nbytes
            + sub.csr.indices.nbytes
            + sub.csr.indptr.nbytes
            + sub_state.initial_opinions.nbytes
            + sub_state.stubbornness.nbytes
        )
        for method in methods:
            kwargs = dict(method_kwargs.get(method, {}))
            with Timer() as timer:
                if method == "rw":
                    result = random_walk_select(problem, k, rng=rng, **kwargs)
                    mem = dm_memory + result.memory_bytes
                elif method == "rs":
                    result = sketch_select(problem, k, rng=rng, **kwargs)
                    mem = dm_memory + result.memory_bytes
                else:
                    greedy_dm(problem, k, engine=engine, rng=rng)
                    mem = dm_memory
            times[method].append(timer.elapsed)
            memory[method].append(mem)
    return {
        "sizes": {"n": [float(s) for s in sizes]},
        "time": times,
        "memory": memory,
    }


# ----------------------------------------------------------------------
# Fig. 18 + Appendix B: opinion change over time, seed overlap across t
# ----------------------------------------------------------------------
def opinion_change_experiment(
    dataset: Dataset, deltas: Sequence[float], horizon: int
) -> dict[str, list[float]]:
    """% of users changing opinion per step, per tolerance Δ (Fig. 18)."""
    q = dataset.target
    state = dataset.state
    out: dict[str, list[float]] = {"t": [float(t) for t in range(1, horizon + 1)]}
    for delta in deltas:
        fractions = fraction_changing(
            state.initial_opinions[q],
            state.stubbornness[q],
            state.graph(q),
            horizon,
            float(delta),
        )
        out[f"delta={delta}%"] = [100.0 * f for f in fractions]
    return out


def horizon_seed_overlap(
    dataset: Dataset,
    ts: Sequence[int],
    reference_t: int,
    k: int,
    *,
    method: str = "rw",
    rng: int | np.random.Generator | None = None,
    **method_kwargs: object,
) -> dict[str, list[float]]:
    """Overlap of optimal seed sets across horizons (Appendix B)."""
    rng = ensure_rng(rng)
    reference = select_seeds(
        method, dataset.problem(CumulativeScore(), horizon=reference_t), k, rng,
        **method_kwargs,
    )
    overlaps = [
        seed_overlap(
            select_seeds(
                method,
                dataset.problem(CumulativeScore(), horizon=int(t)),
                k,
                rng,
                **method_kwargs,
            ),
            reference,
        )
        for t in ts
    ]
    return {"t": [float(t) for t in ts], "overlap": overlaps}


# ----------------------------------------------------------------------
# Fig. 19 (Appendix D): sensitivity to the edge-weight parameter μ
# ----------------------------------------------------------------------
def mu_experiment(
    dataset_factory: Callable[..., Dataset],
    mus: Sequence[float],
    ks: Sequence[int],
    score: VotingScore,
    *,
    method: str = "rw",
    dataset_seed: int = 0,
    rng: int | np.random.Generator | None = None,
    **method_kwargs: object,
) -> dict[str, list[float]]:
    """Score vs k for datasets rebuilt with different μ (Fig. 19)."""
    rng = ensure_rng(rng)
    out: dict[str, list[float]] = {"k": [float(k) for k in ks]}
    for mu in mus:
        dataset = dataset_factory(mu=float(mu), rng=dataset_seed)
        problem = dataset.problem(score)
        series = [
            problem.objective(
                select_seeds(method, problem, int(k), rng, **method_kwargs)
            )
            for k in ks
        ]
        out[f"mu={mu}"] = series
    return out
