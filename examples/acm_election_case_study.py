#!/usr/bin/env python3
"""The ACM-general-election case study (paper §VIII-B, Table IV, Fig. 4).

Builds a DBLP-like collaboration network with seven research domains, seeds
the target candidate with the random-walk method under the plurality score,
and prints the per-domain vote swing — the paper's headline result is that
~100 seeds can reverse the election.

Run:  python examples/acm_election_case_study.py [--users 2000] [--seeds 100]
"""

import argparse

from repro.datasets import dblp_like
from repro.eval.case_study import acm_election_case_study
from repro.eval.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=2000, help="network size")
    parser.add_argument("--seeds", type=int, default=100, help="seed budget k")
    parser.add_argument("--horizon", type=int, default=20, help="time horizon t")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    dataset = dblp_like(n=args.users, horizon=args.horizon, rng=args.seed)
    result = acm_election_case_study(
        dataset, k=args.seeds, rng=args.seed + 1, lambda_cap=32
    )

    print(
        f"ACM election case study  (n={dataset.n}, k={args.seeds}, "
        f"t={args.horizon})\n"
        f"Users voting for {dataset.state.candidates[0]!r}: "
        f"{result.votes_before} ({result.share_before:.1f}%) -> "
        f"{result.votes_after} ({result.share_after:.1f}%)\n"
    )
    rows = [
        [
            row.domain,
            row.total_users,
            f"{row.votes_without_seeds} ({row.pct_without:.1f}%)",
            f"{row.votes_with_seeds} ({row.pct_with:.1f}%)",
            len(row.top_seed_names),
        ]
        for row in result.rows
    ]
    print(
        format_table(
            ["Domain", "#Users", "Votes w/o seeds", "Votes w/ seeds", "#Top seeds"],
            rows,
        )
    )
    print(
        f"\n{100 * result.neutral_fraction_of_switchers:.1f}% of users who "
        "switched to the target were near-neutral initially (the paper finds "
        "the majority of switchers are close to neutral)."
    )


if __name__ == "__main__":
    main()
