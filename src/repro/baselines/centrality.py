"""Centrality-based seed selectors: PageRank, RWR, Degree (§VIII-A).

All three ignore opinions/stubbornness dynamics and pick structurally
central nodes, which is why they trail the opinion-aware methods on the
voting scores.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import FJVoteProblem
from repro.graph.digraph import InfluenceGraph
from repro.utils.validation import check_seed_budget


def influence_pagerank(
    graph: InfluenceGraph,
    *,
    damping: float = 0.85,
    personalization: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 500,
) -> np.ndarray:
    """PageRank oriented toward *influencers*.

    Power iteration on ``π = (1-c)·p + c·W π``: since ``w[u, v]`` is the
    influence of ``u`` on ``v``, a node scores highly when it influences
    high-scoring nodes — "more frequently reached nodes in a random graph
    traversal are more likely to influence other users" (§VIII-A).  With a
    non-uniform ``personalization`` this is Random Walk with Restart.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = graph.n
    if personalization is None:
        p = np.full(n, 1.0 / n)
    else:
        p = np.asarray(personalization, dtype=np.float64)
        if p.shape != (n,) or p.min() < 0:
            raise ValueError("personalization must be a non-negative length-n vector")
        total = p.sum()
        p = np.full(n, 1.0 / n) if total <= 0 else p / total
    pi = p.copy()
    for _ in range(max_iter):
        nxt = (1.0 - damping) * p + damping * (graph.csr @ pi)
        if np.abs(nxt - pi).sum() < tol:
            return nxt
        pi = nxt
    return pi


def _top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest scores, in descending score order."""
    order = np.argsort(-scores, kind="stable")
    return order[:k].astype(np.int64)


def pagerank_select(problem: FJVoteProblem, k: int, *, damping: float = 0.85) -> np.ndarray:
    """PR baseline: top-k nodes by influence-oriented PageRank."""
    k = check_seed_budget(k, problem.n)
    scores = influence_pagerank(problem.state.graph(problem.target), damping=damping)
    return _top_k(scores, k)


def rwr_select(problem: FJVoteProblem, k: int, *, damping: float = 0.85) -> np.ndarray:
    """RWR baseline [as used by Gionis et al.]: restart-biased walk scores.

    The restart distribution is proportional to the users' initial opinions
    about the target, biasing the ranking toward regions already receptive
    to the campaign.
    """
    k = check_seed_budget(k, problem.n)
    scores = influence_pagerank(
        problem.state.graph(problem.target),
        damping=damping,
        personalization=problem.state.initial_opinions[problem.target],
    )
    return _top_k(scores, k)


def degree_select(problem: FJVoteProblem, k: int) -> np.ndarray:
    """DC baseline: top-k nodes by weighted out-degree (total influence mass)."""
    k = check_seed_budget(k, problem.n)
    return _top_k(problem.state.graph(problem.target).weighted_out_degrees(), k)
