"""Tests for incremental re-solve under graph/opinion churn.

``FJVoteProblem.apply_delta`` performs in-place CSR/CSC surgery and emits
a ``DeltaReport`` that every warm cache layer accepts instead of being
rebuilt.  The contracts pinned here:

* **Graph surgery** — touched columns are renormalized exactly; the
  worker-side ``adopt_columns`` splice reproduces the parent's surgery
  bit for bit; emptied columns get the standard self-loop.
* **Problem caches** — after a delta the warm problem's caches equal a
  cold problem built over the same post-delta state, byte for byte.
* **Sessions** — small deltas patch committed trajectories via the
  sparse correction (``EngineStats.trajectories_patched``); large deltas
  fall back to a bitwise rebuild.
* **Walk store** — exactly the walks that stepped out of a touched
  column are regenerated, in place inside their blocks; a patched pool
  is byte-identical to one generated cold under the post-delta graph,
  zero whole blocks are regenerated, and the forward is idempotent.
  Opinion-only deltas leave every block byte-intact.  Persisted stores
  pin graph versions in the manifest and refuse to open across an
  unforwarded delta.
* **dm-mp pools** — the delta broadcast (pipe columns / shm in-place
  patch) keeps live workers byte-identical to a single-process engine
  over the same post-delta problem.
* **CLI** — ``--apply-delta`` replays a journal against ``--store-dir``
  so cold runs, delta runs and idempotent re-runs share one command.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.engine import BatchedDMEngine
from repro.core.engine_mp import MultiprocessDMEngine
from repro.core.problem import FJVoteProblem
from repro.core.walk_store import KIND_PER_NODE, WalkStore
from repro.datasets.yelp import yelp_like
from repro.voting.scores import CumulativeScore, PluralityScore

from tests.conftest import random_instance


def make_problem(seed, *, n=24, r=3, horizon=4, score=None):
    state = random_instance(n=n, r=r, seed=seed, shared_graph=False)
    return FJVoteProblem(state, 0, horizon, score or PluralityScore())


def census_hot_nodes(store, candidate, kind, n, top=4):
    """Nodes whose columns stored walks step out of most often.

    Reverse walks consult column ``v`` only when stepping out of ``v``
    before terminating, so churn on these columns is guaranteed to
    invalidate stored walks (arbitrary nodes frequently have zero
    crossings — the walks are short).
    """
    pool = store.pool(candidate, kind)
    visits = np.zeros(n, dtype=np.int64)
    for index in range(len(pool.blocks)):
        walks, lengths = pool.block(index)
        trans = (
            np.arange(walks.shape[1])[None, :]
            < np.asarray(lengths)[:, None]
        )
        visits += np.bincount(walks[trans], minlength=n)
    hot = np.argsort(visits)[::-1]
    return [int(h) for h in hot[:top] if visits[h] > 0]


def reweight_in_edge(graph, node, factor=2.0):
    """An ``edges_added`` triple rescaling one existing in-edge of node."""
    sources, weights = graph.in_neighbors(node)
    assert sources.size, f"node {node} has no in-edges to churn"
    return (int(sources[0]), int(node), float(weights[0]) * factor)


# ----------------------------------------------------------------------
# Graph surgery
# ----------------------------------------------------------------------
def test_graph_surgery_invariants_and_versioning():
    state = random_instance(n=16, r=2, seed=3, shared_graph=False)
    graph = state.graph(0)
    src, dst, weight = graph.edges()
    assert graph.version == 0

    # Weight-only: arrays are rewritten in place (shm views observe it).
    data_before = graph.csr.data
    touched, structural = graph.apply_edge_delta(
        added=[(int(src[0]), int(dst[0]), float(weight[0]) * 3.0)]
    )
    assert not structural
    assert touched.tolist() == [int(dst[0])]
    assert graph.csr.data is data_before
    assert graph.version == 1

    # Structural: brand-new edge, then a removal.
    dense = graph.csr.toarray()
    non_edge = next(
        (i, j)
        for i in range(16)
        for j in range(16)
        if i != j and dense[i, j] == 0
    )
    touched, structural = graph.apply_edge_delta(
        added=[(non_edge[0], non_edge[1], 0.5)]
    )
    assert structural and touched.tolist() == [non_edge[1]]
    assert graph.version == 2

    # Every column stays stochastic and csr mirrors csc exactly.
    np.testing.assert_allclose(
        np.asarray(graph.csc.sum(axis=0)).ravel(), 1.0, rtol=0, atol=1e-12
    )
    np.testing.assert_array_equal(
        graph.csr.toarray(), graph.csc.toarray()
    )

    # Emptying a column installs the standard self-loop of weight 1.
    col = int(dst[0])
    sources, _ = graph.in_neighbors(col)
    touched, structural = graph.apply_edge_delta(
        removed=[(int(s), col) for s in sources]
    )
    assert structural
    sources, weights = graph.in_neighbors(col)
    assert sources.tolist() == [col]
    np.testing.assert_array_equal(weights, [1.0])

    # Invalid deltas are rejected before any mutation.
    version = graph.version
    with pytest.raises(ValueError, match="non-positive weight"):
        graph.apply_edge_delta(added=[(0, 1, 0.0)])
    with pytest.raises(ValueError, match="missing edge"):
        graph.apply_edge_delta(removed=[(non_edge[1], non_edge[0])])
    assert graph.version == version


def test_adopt_columns_matches_parent_surgery():
    """The pipe-worker splice must reproduce the parent's surgery bitwise."""
    parent = random_instance(n=14, r=2, seed=7, shared_graph=False).graph(0)
    worker = random_instance(n=14, r=2, seed=7, shared_graph=False).graph(0)
    src, dst, weight = parent.edges()
    dense = parent.csr.toarray()
    non_edge = next(
        (i, j)
        for i in range(14)
        for j in range(14)
        if i != j and dense[i, j] == 0
    )
    touched, _ = parent.apply_edge_delta(
        added=[
            (int(src[0]), int(dst[0]), float(weight[0]) * 2.0),
            (non_edge[0], non_edge[1], 0.3),
        ],
        removed=[(int(src[5]), int(dst[5]))],
    )
    columns = {
        int(t): tuple(np.array(a) for a in parent.in_neighbors(int(t)))
        for t in touched
    }
    worker.adopt_columns(columns, parent.version)
    assert worker.version == parent.version
    for attr in ("data", "indices", "indptr"):
        np.testing.assert_array_equal(
            getattr(worker.csr, attr), getattr(parent.csr, attr)
        )
        np.testing.assert_array_equal(
            getattr(worker.csc, attr), getattr(parent.csc, attr)
        )


# ----------------------------------------------------------------------
# Problem caches
# ----------------------------------------------------------------------
def test_problem_delta_refreshes_caches_bitwise():
    problem = make_problem(11)
    problem.others_by_user()  # warm every cache the delta must refresh
    problem.target_trajectory()
    graph = problem.state.graph(0)
    src, dst, weight = graph.edges()

    report = problem.apply_delta(
        edges_added=[(int(src[0]), int(dst[0]), float(weight[0]) * 2.0)],
        opinions_changed=[(0, 3, 0.75), (1, 5, 0.25)],
    )
    assert not report.empty
    assert report.graph_version == 1
    assert problem.graph_version == 1
    assert problem.opinion_version == 1
    assert report.touched_by_candidate[0].tolist() == [int(dst[0])]
    assert 1 not in report.touched_by_candidate  # per-candidate graphs
    assert set(report.opinions_by_candidate) == {0, 1}
    assert float(problem.state.initial_opinions[0, 3]) == 0.75

    fresh = FJVoteProblem(
        problem.state, problem.target, problem.horizon, problem.score
    )
    np.testing.assert_array_equal(
        problem.others_by_user(), fresh.others_by_user()
    )
    np.testing.assert_array_equal(
        problem.target_trajectory(), fresh.target_trajectory()
    )

    # An empty delta is a no-op report and bumps nothing.
    empty = problem.apply_delta()
    assert empty.empty
    assert problem.graph_version == 1


# ----------------------------------------------------------------------
# Sessions: patch vs rebuild
# ----------------------------------------------------------------------
def test_session_patched_after_small_delta():
    problem = make_problem(13)
    engine = BatchedDMEngine(problem)
    session = engine.open_session()
    gains = session.marginal_gains(np.arange(problem.n))
    session.commit(int(np.argmax(gains)))
    committed = list(session.seeds)

    graph = problem.state.graph(0)
    src, dst, weight = graph.edges()
    patched_before = engine.stats.trajectories_patched
    report = problem.apply_delta(
        edges_added=[(int(src[0]), int(dst[0]), float(weight[0]) * 2.0)],
        opinions_changed=[(0, 2, 0.9)],
    )
    engine.apply_delta(report)
    assert engine.stats.trajectories_patched == patched_before + 1

    fresh = FJVoteProblem(
        problem.state, problem.target, problem.horizon, problem.score
    )
    reference = BatchedDMEngine(fresh).open_session()
    for seed in committed:
        reference.commit(seed)
    np.testing.assert_allclose(
        session.marginal_gains(np.arange(problem.n)),
        reference.marginal_gains(np.arange(problem.n)),
        atol=1e-9,
        rtol=0,
    )


def test_session_rebuilt_bitwise_after_large_delta():
    problem = make_problem(17)
    engine = BatchedDMEngine(problem)
    session = engine.open_session()
    session.commit(1)
    session.commit(7)

    # Touch more than max(8, n // 8) columns: the patch correction would
    # be denser than a rebuild, so the session must replay its commits.
    graph = problem.state.graph(0)
    _, dst, _ = graph.edges()
    columns = sorted({int(d) for d in dst})[:10]
    assert len(columns) == 10
    report = problem.apply_delta(
        edges_added=[reweight_in_edge(graph, c) for c in columns]
    )
    patched_before = engine.stats.trajectories_patched
    engine.apply_delta(report)
    assert engine.stats.trajectories_patched == patched_before

    fresh = FJVoteProblem(
        problem.state, problem.target, problem.horizon, problem.score
    )
    reference = BatchedDMEngine(fresh).open_session()
    reference.commit(1)
    reference.commit(7)
    np.testing.assert_array_equal(
        session.marginal_gains(np.arange(problem.n)),
        reference.marginal_gains(np.arange(problem.n)),
    )


# ----------------------------------------------------------------------
# Walk store
# ----------------------------------------------------------------------
def test_store_delta_patches_walks_in_place_and_is_idempotent():
    problem = make_problem(19, n=30)
    store = WalkStore(problem.state, problem.horizon, seed=2)
    store.per_node_view(0, 8)  # generate the pool pre-delta
    generated = store.stats.blocks_generated
    assert generated > 0

    hot = census_hot_nodes(store, 0, KIND_PER_NODE, problem.n)
    assert hot, "census found no visited columns"
    report = problem.apply_delta(
        edges_added=[
            reweight_in_edge(problem.state.graph(0), node) for node in hot
        ]
    )
    store.apply_delta(report)
    assert store.stats.blocks_generated == generated  # zero whole blocks
    assert store.stats.blocks_invalidated >= 1
    assert store.stats.walks_patched >= 1

    # A patched pool is byte-identical to a cold store generated under
    # the post-delta graph.
    cold = WalkStore(problem.state, problem.horizon, seed=2)
    patched_view = store.per_node_view(0, 8)
    cold_view = cold.per_node_view(0, 8)
    np.testing.assert_array_equal(patched_view.walks, cold_view.walks)
    np.testing.assert_array_equal(patched_view.lengths, cold_view.lengths)
    np.testing.assert_array_equal(patched_view.values, cold_view.values)

    # Re-forwarding the same report is a no-op (engines sharing the
    # store may each forward it).
    invalidated = store.stats.blocks_invalidated
    store.apply_delta(report)
    assert store.stats.blocks_invalidated == invalidated


def test_store_opinion_only_delta_keeps_blocks_byte_intact():
    problem = make_problem(23, n=20)
    store = WalkStore(problem.state, problem.horizon, seed=6)
    before = store.per_node_view(0, 6)
    walks_before = np.array(before.walks)
    graph_version = problem.state.graph(0).version

    report = problem.apply_delta(opinions_changed=[(0, 4, 0.95)])
    store.apply_delta(report)
    assert problem.state.graph(0).version == graph_version
    assert store.stats.blocks_invalidated == 0
    assert store.stats.walks_patched == 0

    after = store.per_node_view(0, 6)
    np.testing.assert_array_equal(after.walks, walks_before)
    # Masters were dropped: served values embed the post-delta B0.
    cold = WalkStore(problem.state, problem.horizon, seed=6)
    np.testing.assert_array_equal(
        after.values, cold.per_node_view(0, 6).values
    )


def test_mmap_warm_reopen_after_delta(tmp_path):
    """A persisted store patched by a delta re-opens warm: zero blocks
    regenerated, byte-identical walks; an unforwarded delta is refused."""
    problem = make_problem(29, n=30)
    store = WalkStore(
        problem.state, problem.horizon, seed=3, store_dir=tmp_path
    )
    store.per_node_view(0, 8)
    hot = census_hot_nodes(store, 0, KIND_PER_NODE, problem.n)
    report = problem.apply_delta(
        edges_added=[
            reweight_in_edge(problem.state.graph(0), node) for node in hot
        ]
    )
    written_before = store.stats.blocks_written
    store.apply_delta(report)
    assert store.stats.blocks_invalidated >= 1
    # Exactly the invalidated blocks were rewritten; untouched blocks
    # keep their bytes on disk and are merely re-mapped on access.
    assert (
        store.stats.blocks_written - written_before
        == store.stats.blocks_invalidated
    )
    patched = store.per_node_view(0, 8)

    # Warm re-open over the post-delta state: loads, regenerates nothing.
    warm = WalkStore(
        problem.state, problem.horizon, seed=3, store_dir=tmp_path
    )
    view = warm.per_node_view(0, 8)
    assert warm.stats.blocks_generated == 0
    assert warm.stats.blocks_loaded > 0
    np.testing.assert_array_equal(view.walks, patched.walks)
    np.testing.assert_array_equal(view.lengths, patched.lengths)

    # A process whose graphs never saw the delta must be refused loudly.
    stale = random_instance(n=30, r=3, seed=29, shared_graph=False)
    with pytest.raises(ValueError, match="graph versions"):
        WalkStore(stale, problem.horizon, seed=3, store_dir=tmp_path)


def test_lru_eviction_order_survives_delta_patch(tmp_path):
    """Eviction is strictly least-recently-touched, and apply_delta's
    block re-writes count as touches without breaching the cap."""
    problem = make_problem(31, n=16)
    store = WalkStore(
        problem.state,
        problem.horizon,
        seed=8,
        block_walks=8,
        store_dir=tmp_path,
        resident_blocks=2,
    )
    store.uniform_view(0, 48)  # 6 blocks through a 2-slot LRU
    pool = store.pool(0, "uniform")
    total = len(pool.blocks)
    assert total >= 4

    # Touch blocks 0 then 1: residency must be exactly [0, 1] in order.
    pool.block(0)
    pool.block(1)
    assert [key[2] for key in store._resident] == [0, 1]
    # Re-touching 0 moves it to the back; touching 2 then evicts 1.
    pool.block(0)
    pool.block(2)
    assert [key[2] for key in store._resident] == [0, 2]
    assert pool.blocks[1] is None  # evicted back to disk
    assert pool.blocks[0] is not None and pool.blocks[2] is not None

    hot = census_hot_nodes(store, 0, "uniform", problem.n)
    report = problem.apply_delta(
        edges_added=[
            reweight_in_edge(problem.state.graph(0), node) for node in hot
        ]
    )
    store.apply_delta(report)
    # Patching walked every block; the LRU stayed bounded and holds the
    # most recently rewritten blocks in touch order.
    assert len(store._resident) <= 2
    assert sum(block is not None for block in pool.blocks) <= 2
    resident = [key[2] for key in store._resident if key[:2] == (0, "uniform")]
    assert resident == sorted(resident)  # blocks patched in index order


# ----------------------------------------------------------------------
# dm-mp delta broadcast
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_mp_delta_broadcast_matches_reference(transport):
    problem = make_problem(9, n=40, horizon=4, score=CumulativeScore())
    sets = [[0, 5], [7], [], [11, 3, 2]]
    graph0 = problem.state.graph(0)
    src, dst, weight = graph0.edges()
    dense = graph0.csr.toarray()
    non_edge = next(
        (i, j)
        for i in range(40)
        for j in range(40)
        if i != j and dense[i, j] == 0
    )
    graph1 = problem.state.graph(1)
    src1, dst1, _ = graph1.edges()

    def apply_sequence(target_problem, engine=None):
        """Data-only, structural add, competitor removal, opinion flip."""
        deltas = (
            dict(
                edges_added=[
                    (int(src[0]), int(dst[0]), float(weight[0]) * 3.0)
                ]
            ),
            dict(edges_added=[(non_edge[0], non_edge[1], 0.7)]),
            dict(
                edges_removed=[(int(src1[4]), int(dst1[4]))], candidate=1
            ),
            dict(opinions_changed=[(1, 2, 0.9), (0, 4, 0.05)]),
        )
        for delta in deltas:
            report = target_problem.apply_delta(**delta)
            if engine is not None:
                engine.apply_delta(report)

    reference_problem = make_problem(9, n=40, horizon=4, score=CumulativeScore())
    apply_sequence(reference_problem)
    reference = BatchedDMEngine(reference_problem)

    engine = MultiprocessDMEngine(
        problem, workers=2, min_fanout=1, transport=transport
    )
    try:
        engine.ping()  # live pool: the deltas must be broadcast
        engine.evaluate(sets)  # warm worker caches pre-delta
        session = engine.open_session()
        gains = session.marginal_gains(list(range(12)))
        committed = int(np.argmax(gains))
        session.commit(committed)

        apply_sequence(problem, engine)
        np.testing.assert_array_equal(
            engine.evaluate(sets), reference.evaluate(sets)
        )
        reference_session = reference.open_session()
        reference_session.commit(committed)
        np.testing.assert_array_equal(
            session.marginal_gains(list(range(12))),
            reference_session.marginal_gains(list(range(12))),
        )

        # A second round against the already-patched pool.
        report = problem.apply_delta(edges_added=[(2, 9, 0.4)])
        engine.apply_delta(report)
        reference.apply_delta(
            reference_problem.apply_delta(edges_added=[(2, 9, 0.4)])
        )
        np.testing.assert_array_equal(
            engine.evaluate(sets), reference.evaluate(sets)
        )
    finally:
        engine.close()


# ----------------------------------------------------------------------
# CLI journal replay
# ----------------------------------------------------------------------
def test_cli_apply_delta_journal_lifecycle(capsys, tmp_path):
    store_dir = tmp_path / "pools"
    base = [
        "select",
        "--dataset", "yelp",
        "--users", "100",
        "--horizon", "3",
        "--method", "rw",
        "--score", "cumulative",
        "-k", "2",
        "--seed", "1",
        "--store-dir", str(store_dir),
    ]
    assert cli_main(base) == 0
    cold = capsys.readouterr().out
    assert "store: blocks generated=0 " not in cold

    # Census the *persisted* walks to craft churn they must cross.
    dataset = yelp_like(n=100, rng=1, horizon=3)
    census_store = WalkStore(dataset.state, 3, seed=1, store_dir=store_dir)
    hot = census_hot_nodes(
        census_store, dataset.target, KIND_PER_NODE, 100
    )
    assert hot
    graph = dataset.state.graph(dataset.target)
    journal = tmp_path / "delta.json"
    journal.write_text(
        json.dumps(
            [{"edges_added": [
                list(reweight_in_edge(graph, node)) for node in hot
            ]}]
        )
    )

    delta_args = base + ["--apply-delta", str(journal)]
    assert cli_main(delta_args) == 0
    patched = capsys.readouterr().out
    assert "delta: steps=1 " in patched
    assert "store: blocks generated=0 " in patched
    invalidated = int(patched.split("invalidated=")[1].split()[0])
    assert invalidated >= 1

    # Replaying the same journal is idempotent: nothing re-patched.
    assert cli_main(delta_args) == 0
    replay = capsys.readouterr().out
    assert "store: blocks generated=0 " in replay
    assert "invalidated=0 " in replay
    # Identical post-delta pools serve identical selections.
    patched_seeds = [
        line for line in patched.splitlines() if line.startswith("seeds:")
    ]
    replay_seeds = [
        line for line in replay.splitlines() if line.startswith("seeds:")
    ]
    assert patched_seeds == replay_seeds

    # Without its journal the patched store must be refused, not served.
    with pytest.raises(ValueError, match="graph versions"):
        cli_main(base)
