"""DBLP-like collaboration network with research domains (case-study dataset).

Mirrors the paper's DBLP construction (§VIII-A): a co-authorship graph of
senior researchers, edge weights from co-authorship counts, initial opinions
as the similarity between a user's topic profile and each candidate's, and
stubbornness from the variance of yearly opinions.  The seven research
domains of Table V (DM, HCI, ML, CN, AL, SW, HW) drive community structure,
user topic vectors, and the case-study breakdown of Table IV; users may
belong to up to three domains.

The two candidates model the ACM 2022 presidential election: the target has
an HCI/recsys-leaning profile (also active in DM and ML), the competitor a
data-management-leaning one (also active in CN and AL) — matching the
paper's observation that DM is common ground of both, SW initially favors
the target, and HW does not overlap DM.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synth import (
    Dataset,
    activity_edge_weights,
    topic_opinions,
    variance_stubbornness,
)
from repro.graph.build import graph_from_edges
from repro.graph.generators import planted_partition_edges
from repro.opinion.state import CampaignState
from repro.utils.rng import ensure_rng

#: Research domains of Table V, in the paper's order.
DOMAINS = ("DM", "HCI", "ML", "CN", "AL", "SW", "HW")

# Probability that a member of the row domain also works in the column
# domain (secondary membership).  Encodes the overlaps discussed in §VIII-B:
# HCI/ML/CN overlap DM substantially; HW overlaps CN/SW but not DM.
_OVERLAP = np.array(
    #  DM   HCI  ML   CN   AL   SW   HW
    [
        [0.0, 0.25, 0.30, 0.20, 0.15, 0.05, 0.00],  # DM
        [0.30, 0.0, 0.25, 0.10, 0.05, 0.10, 0.05],  # HCI
        [0.35, 0.25, 0.0, 0.10, 0.10, 0.05, 0.05],  # ML
        [0.25, 0.10, 0.10, 0.0, 0.10, 0.05, 0.20],  # CN
        [0.20, 0.05, 0.15, 0.10, 0.0, 0.05, 0.05],  # AL
        [0.05, 0.15, 0.05, 0.10, 0.05, 0.0, 0.20],  # SW
        [0.00, 0.05, 0.05, 0.25, 0.05, 0.20, 0.0],  # HW
    ]
)

#: Candidate topic profiles over DOMAINS (rows sum to 1).
_TARGET_TOPICS = np.array([0.25, 0.40, 0.20, 0.03, 0.02, 0.08, 0.02])
_COMPETITOR_TOPICS = np.array([0.45, 0.05, 0.10, 0.20, 0.15, 0.02, 0.03])


def dblp_like(
    n: int = 2000,
    *,
    mu: float = 10.0,
    p_in: float | None = None,
    p_out: float | None = None,
    horizon: int = 20,
    rng: int | np.random.Generator | None = None,
) -> Dataset:
    """Build the DBLP-like two-candidate instance.

    Parameters
    ----------
    n:
        Number of researchers (the paper uses 63,910; default scales down).
    mu:
        Edge-weight decay of ``1 - exp(-a/μ)`` (Appendix D; default 10).
    p_in, p_out:
        Community densities; defaults give an average degree around 20.
    horizon:
        Default time horizon carried by the dataset (paper default t=20).
    """
    rng = ensure_rng(rng)
    k = len(DOMAINS)
    if p_in is None:
        p_in = min(1.0, 16.0 * k / max(n, 1))
    if p_out is None:
        p_out = min(1.0, 1.2 / max(n, 1))
    src, dst, primary = planted_partition_edges(n, k, p_in, p_out, rng)
    # Co-authorship influences both directions; symmetrize.
    src2 = np.concatenate([src, dst])
    dst2 = np.concatenate([dst, src])
    weights = activity_edge_weights(src2.size, mu, mean_activity=4.0, rng=rng)
    graph = graph_from_edges(n, src2, dst2, weights)
    # Multi-domain membership: primary community plus overlap-driven extras.
    member = np.zeros((k, n), dtype=bool)
    member[primary, np.arange(n)] = True
    extra_draws = rng.random((n, k))
    for d in range(k):
        rows = np.where(extra_draws[:, d] < _OVERLAP[primary, d])[0]
        member[d, rows] = True
    # Cap at 3 domains per user (paper footnote 7), dropping extras randomly.
    counts = member.sum(axis=0)
    for v in np.where(counts > 3)[0]:
        doms = np.where(member[:, v])[0]
        doms = doms[doms != primary[v]]
        drop = rng.choice(doms, size=int(counts[v] - 3), replace=False)
        member[drop, v] = False
    candidate_topics = np.vstack([_TARGET_TOPICS, _COMPETITOR_TOPICS])
    opinions, user_topics = topic_opinions(
        n, candidate_topics, primary, concentration=4.0, rng=rng
    )
    stub = variance_stubbornness(opinions, rng=rng)
    state = CampaignState(
        graphs=(graph, graph),
        initial_opinions=opinions,
        stubbornness=np.vstack([stub, stub]),
        candidates=("Joseph A. Konstan", "Yannis E. Ioannidis"),
    )
    return Dataset(
        name="dblp",
        state=state,
        target=0,
        horizon=horizon,
        meta={
            "domains": DOMAINS,
            "membership": member,
            "primary_domain": primary,
            "user_topics": user_topics,
            "mu": mu,
        },
    )
