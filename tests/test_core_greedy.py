"""Tests for the greedy engine, CELF equivalence, and the (1-1/e) guarantee."""

import numpy as np
import pytest

from repro.core.exact import brute_force_optimum
from repro.core.greedy import greedy_dm, greedy_select
from repro.core.problem import FJVoteProblem
from repro.opinion.state import CampaignState
from repro.voting.scores import CumulativeScore, PluralityScore
from tests.conftest import random_instance


def test_greedy_on_modular_function_is_exact():
    weights = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
    result = greedy_select(lambda s: sum(weights[list(s)]), 5, 3)
    assert sorted(result.seeds.tolist()) == [0, 2, 4]
    assert result.objective == pytest.approx(12.0)
    np.testing.assert_allclose(sorted(result.gains, reverse=True), [5.0, 4.0, 3.0])


def test_celf_matches_exhaustive_on_submodular_coverage():
    sets = [
        {0, 1, 2},
        {2, 3},
        {3, 4, 5, 6},
        {0, 6},
        {7},
    ]

    def coverage(selected):
        return float(len(set().union(*(sets[i] for i in selected)))) if selected else 0.0

    lazy = greedy_select(coverage, len(sets), 3, lazy=True)
    eager = greedy_select(coverage, len(sets), 3, lazy=False)
    assert lazy.objective == pytest.approx(eager.objective)
    assert lazy.seeds.tolist() == eager.seeds.tolist()
    assert lazy.evaluations <= eager.evaluations


def test_candidate_restriction():
    weights = np.array([5.0, 1.0, 3.0])
    result = greedy_select(lambda s: sum(weights[list(s)]), 3, 1, candidates=[1, 2])
    assert result.seeds.tolist() == [2]


def test_budget_validation():
    with pytest.raises(ValueError):
        greedy_select(lambda s: 0.0, 3, 5)
    with pytest.raises(ValueError):
        greedy_select(lambda s: 0.0, 3, 2, candidates=[0])


def test_zero_budget():
    result = greedy_select(lambda s: float(len(s)), 4, 0)
    assert result.seeds.size == 0
    assert result.objective == 0.0


def test_greedy_dm_celf_equals_exhaustive_for_cumulative():
    state = random_instance(n=10, r=2, seed=3)
    problem = FJVoteProblem(state, 0, 3, CumulativeScore())
    lazy = greedy_dm(problem, 3, lazy=True)
    eager = greedy_dm(problem, 3, lazy=False)
    assert lazy.objective == pytest.approx(eager.objective)
    assert lazy.evaluations <= eager.evaluations


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_greedy_dm_cumulative_meets_approximation_guarantee(seed):
    """Theorem 3 + Nemhauser: greedy >= (1 - 1/e) OPT for the cumulative score."""
    state = random_instance(n=9, r=2, seed=seed)
    problem = FJVoteProblem(state, 0, 2, CumulativeScore())
    greedy = greedy_dm(problem, 2)
    _, opt = brute_force_optimum(problem, 2)
    assert greedy.objective >= (1 - 1 / np.e) * opt - 1e-9


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_greedy_dm_plurality_reasonable(seed):
    """No guarantee for plurality, but greedy should not collapse to zero."""
    state = random_instance(n=9, r=3, seed=seed)
    problem = FJVoteProblem(state, 0, 2, PluralityScore())
    greedy = greedy_dm(problem, 2)
    _, opt = brute_force_optimum(problem, 2)
    assert greedy.objective >= 0.5 * opt  # empirically far better; loose floor


def test_exhaustive_ties_break_to_smallest_node():
    """Equal-gain ties resolve to the smallest node id (documented contract).

    The objective is modular with identical weights, so every remaining
    node always has the same gain; the selection must be 0, 1, 2 — not an
    arbitrary hash-order permutation.
    """
    result = greedy_select(lambda s: float(len(s)), 10, 3, lazy=False)
    assert result.seeds.tolist() == [0, 1, 2]


def test_exhaustive_ties_deterministic_across_pool_orderings():
    # Sorted-pool iteration makes the candidate ordering canonical even
    # when the caller passes a shuffled candidate restriction.
    weights = np.array([1.0, 2.0, 2.0, 2.0, 1.0])
    fn = lambda s: sum(weights[list(s)])  # noqa: E731
    a = greedy_select(fn, 5, 2, candidates=[4, 3, 2, 1, 0])
    b = greedy_select(fn, 5, 2, candidates=[0, 1, 2, 3, 4])
    assert a.seeds.tolist() == b.seeds.tolist() == [1, 2]


def test_celf_ties_break_to_smallest_node():
    """CELF heap entries are (-gain, node, stamp): ties pop the smallest id."""
    lazy = greedy_select(lambda s: float(len(s)), 10, 3, lazy=True)
    assert lazy.seeds.tolist() == [0, 1, 2]


def test_celf_and_exhaustive_agree_under_ties():
    sets = [{0, 1}, {2, 3}, {0, 1}, {2, 3}, {4}]

    def coverage(selected):
        return float(len(set().union(*(sets[i] for i in selected)))) if selected else 0.0

    lazy = greedy_select(coverage, len(sets), 3, lazy=True)
    eager = greedy_select(coverage, len(sets), 3, lazy=False)
    # Both must take the tie-champions 0 then 1... i.e. smallest ids first.
    assert lazy.seeds.tolist() == eager.seeds.tolist() == [0, 1, 4]


def test_engine_greedy_ties_break_to_smallest_node(random_state):
    """The engine-driven loops share the tie-break contract."""
    from repro.core.engine import BatchedDMEngine, DMEngine
    from repro.core.greedy import greedy_engine

    # A fully-stubborn instance: seeding any node yields the same gain.
    n = random_state.n
    state = random_instance(n=n, r=2, seed=7)
    flat = CampaignState(
        graphs=state.graphs,
        initial_opinions=np.full((2, n), 0.5),
        stubbornness=np.ones((2, n)),
    )
    problem = FJVoteProblem(flat, 0, 2, CumulativeScore())
    for engine in (DMEngine(problem), BatchedDMEngine(problem)):
        eager = greedy_engine(engine, 3, lazy=False)
        lazy = greedy_engine(engine, 3, lazy=True)
        assert eager.seeds.tolist() == [0, 1, 2]
        assert lazy.seeds.tolist() == [0, 1, 2]


def test_greedy_dm_auto_lazy_only_for_cumulative(random_state):
    cumulative = FJVoteProblem(random_state, 0, 2, CumulativeScore())
    plurality = FJVoteProblem(random_state, 0, 2, PluralityScore())
    # Exhaustive greedy evaluates n + (n-1) gains for k=2; CELF fewer.
    lazy_evals = greedy_dm(cumulative, 2).evaluations
    eager_evals = greedy_dm(plurality, 2).evaluations
    n = random_state.n
    assert eager_evals == 2 * n - 1
    assert lazy_evals <= eager_evals
