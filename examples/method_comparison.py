#!/usr/bin/env python3
"""All seed-selection methods head to head (mini version of Figs. 6-8).

Compares the paper's methods (DM, RW, RS) with the baselines (GED-T,
IC/LT + IMM, PageRank, RWR, Degree, Random) on one dataset, reporting the
attained voting score and the seed-selection time for each method.

Run:  python examples/method_comparison.py [--users 800] [--seeds 20]
      python examples/method_comparison.py --score copeland
"""

import argparse

from repro.datasets import twitter_us_election
from repro.eval.experiments import effectiveness_experiment
from repro.eval.reporting import format_table
from repro.voting.scores import make_score


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=800)
    parser.add_argument("--seeds", type=int, default=20)
    parser.add_argument("--horizon", type=int, default=10)
    parser.add_argument(
        "--score", default="plurality", choices=["cumulative", "plurality", "copeland"]
    )
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    dataset = twitter_us_election(n=args.users, horizon=args.horizon, rng=args.seed)
    methods = ["dm", "rw", "rs", "gedt", "ic", "lt", "pr", "rwr", "dc", "random"]
    result = effectiveness_experiment(
        dataset,
        make_score(args.score),
        ks=[args.seeds],
        methods=methods,
        rng=args.seed,
        method_kwargs={
            "rw": {"lambda_cap": 32},
            "rs": {"theta": 3000},
            "ic": {"theta_cap": 20000},
            "lt": {"theta_cap": 20000},
        },
    )
    baseline = dataset.problem(make_score(args.score)).objective(())
    print(
        f"{dataset.name}: n={dataset.n}, k={args.seeds}, t={args.horizon}, "
        f"score={args.score} (no-seed score: {baseline:.1f})\n"
    )
    rows = [
        [m.upper(), result.scores[m][0], f"{result.times[m][0] * 1e3:.0f} ms"]
        for m in methods
    ]
    rows.sort(key=lambda row: -float(row[1]))
    print(format_table(["method", "score", "select time"], rows))

    from repro.eval.charts import bar_chart

    gains = [float(row[1]) - baseline for row in rows]
    print("\nScore gain over the no-seed baseline:")
    print(bar_chart([row[0] for row in rows], gains, width=40))


if __name__ == "__main__":
    main()
