"""Tests for the serving layer (repro.serve).

The central contract: coalescing is *answer-preserving byte for byte*.
A request's encoded response line must be identical whether it was
answered alone or merged into a shared engine round — across backends
(``dm``, ``dm-batched``, ``dm-mp`` over both transports), with deltas
interleaved mid-stream, and over the real socket server.  On top of
that: structured protocol errors (a malformed engine spec answers with
the registry's own message instead of dropping the connection), the
deterministic coalescing counters, and crash-safe shutdown (SIGTERM and
SIGKILL both leave zero shm segments behind).
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.core.engine import parse_engine_spec
from repro.core.problem import FJVoteProblem
from repro.serve.batcher import CoalescingBatcher, EngineHub
from repro.serve.protocol import (
    ERROR_BAD_ENGINE_SPEC,
    ERROR_BAD_REQUEST,
    ERROR_ENGINE_NOT_LOADED,
    ERROR_UNKNOWN_OP,
    ProtocolError,
    Request,
    decode_line,
    encode,
    parse_request,
)
from repro.voting.scores import CumulativeScore, PluralityScore
from tests.conftest import random_instance

SCORES = {"cumulative": CumulativeScore, "plurality": PluralityScore}

#: One spec per coalescing code path: per-set fallback, vectorized
#: extension rows, fan-out over both transports.
COALESCING_SPECS = ("dm", "dm-batched", "dm-mp:2", "dm-mp:2:shm")


def make_problem(seed=0, score="cumulative", horizon=4, *, n=13, r=3):
    return FJVoteProblem(
        random_instance(n=n, r=r, seed=seed), 0, horizon, SCORES[score]()
    )


def make_request(rid, op, **params):
    return Request(id=rid, op=op, params=params)


def run_serial(spec, requests, *, seed=0, score="cumulative"):
    """Fresh hub, one request per batch: the no-coalescing reference."""
    hub = EngineHub(make_problem(seed, score), [spec], rng=7)
    try:
        batcher = CoalescingBatcher(hub)
        lines = []
        for request in requests:
            (response,) = batcher.execute([request])
            lines.append(encode(response))
        return lines, batcher.stats
    finally:
        hub.close()


def run_coalesced(spec, requests, *, seed=0, score="cumulative"):
    """Fresh hub, every request in one batch: maximal coalescing."""
    hub = EngineHub(make_problem(seed, score), [spec], rng=7)
    try:
        batcher = CoalescingBatcher(hub)
        responses = batcher.execute(list(requests))
        return [encode(r) for r in responses], batcher.stats
    finally:
        hub.close()


# ----------------------------------------------------------------------
# Protocol framing
# ----------------------------------------------------------------------
def test_encode_is_deterministic():
    line = encode({"b": 1, "a": [1.5, None], "c": {"y": True, "x": "s"}})
    assert line == b'{"a":[1.5,null],"b":1,"c":{"x":"s","y":true}}\n'
    # Key order of the input dict must not matter.
    assert line == encode({"c": {"x": "s", "y": True}, "a": [1.5, None], "b": 1})


def test_decode_line_rejects_junk():
    with pytest.raises(ProtocolError) as err:
        decode_line(b"{not json\n")
    assert err.value.code == ERROR_BAD_REQUEST
    with pytest.raises(ProtocolError) as err:
        decode_line(b"[1, 2]\n")
    assert err.value.code == ERROR_BAD_REQUEST


def test_parse_request_envelope():
    request = parse_request({"id": 3, "op": "ping", "payload": "x"})
    assert (request.id, request.op, request.params) == (3, "ping", {"payload": "x"})
    with pytest.raises(ProtocolError) as err:
        parse_request({"op": "frobnicate"})
    assert err.value.code == ERROR_UNKNOWN_OP
    with pytest.raises(ProtocolError) as err:
        parse_request({"id": [1], "op": "ping"})
    assert err.value.code == ERROR_BAD_REQUEST
    with pytest.raises(ProtocolError) as err:
        parse_request({"id": 1})
    assert err.value.code == ERROR_BAD_REQUEST


# ----------------------------------------------------------------------
# Coalescing determinism: byte-identical to serial, across backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", COALESCING_SPECS)
@pytest.mark.parametrize("score", sorted(SCORES))
def test_coalesced_matches_serial_bytes(spec, score):
    """N concurrent queries answered in one batch must produce the exact
    response bytes of N serial batches — gains sharing a prefix (with
    overlapping candidate lists), win probes, and a top-k request."""
    requests = [
        make_request(0, "marginal_gain", seeds=[3], candidates=[1]),
        make_request(1, "marginal_gain", seeds=[3], candidates=[2, 4]),
        make_request(2, "marginal_gain", seeds=[3], candidates=[4, 1]),
        make_request(3, "marginal_gain", seeds=[], candidates=[5]),
        make_request(4, "prefix_win_probability", seeds=[1, 3]),
        make_request(5, "prefix_win_probability", seeds=[3, 1, 1]),
        make_request(6, "prefix_win_probability", seeds=[6]),
        make_request(7, "top_k_seeds", k=2),
    ]
    serial_lines, serial_stats = run_serial(spec, requests, score=score)
    coalesced_lines, stats = run_coalesced(spec, requests, score=score)
    assert coalesced_lines == serial_lines
    # The shared-prefix gains merged (3 requests, union of 4 candidates),
    # as did the win probes (3 requests, 2 distinct sets after dedup).
    assert stats.engine_rounds == 4
    assert stats.rounds_coalesced == 2
    assert stats.requests_coalesced == 6
    assert stats.evolution_sets_saved >= 2
    # Serial never coalesces anything.
    assert serial_stats.rounds_coalesced == 0
    assert serial_stats.engine_rounds == 8


@pytest.mark.parametrize("spec", COALESCING_SPECS)
def test_delta_mid_batch_is_a_barrier(spec):
    """A delta inside a batch splits it: queries before answer against the
    old graph_version, queries after against the bumped one — and both
    halves stay byte-identical to the serial replay."""
    query = {"seeds": [3], "candidates": [1, 5]}
    requests = [
        make_request(0, "marginal_gain", **query),
        make_request(1, "apply_delta", edges_added=[[0, 5, 0.4]]),
        make_request(2, "marginal_gain", **query),
    ]
    serial_lines, _ = run_serial(spec, requests)
    coalesced_lines, stats = run_coalesced(spec, requests)
    assert coalesced_lines == serial_lines
    assert stats.deltas_applied == 1
    before = json.loads(coalesced_lines[0])
    report = json.loads(coalesced_lines[1])
    after = json.loads(coalesced_lines[2])
    assert all(r["ok"] for r in (before, report, after))
    assert after["graph_version"] == before["graph_version"] + 1
    assert report["graph_version"] == after["graph_version"]
    # The structural edge actually moved the answer.
    assert after["result"]["gains"] != before["result"]["gains"]


def test_coalesced_gains_independent_of_batch_composition():
    """The same request must get the same bytes whatever *else* happens
    to share its round (the batch-stability contract end to end)."""
    probe = make_request(9, "marginal_gain", seeds=[2], candidates=[4, 7])
    alone, _ = run_coalesced("dm-mp:2:shm", [probe])
    crowded, _ = run_coalesced(
        "dm-mp:2:shm",
        [
            make_request(0, "marginal_gain", seeds=[2], candidates=[1]),
            make_request(1, "marginal_gain", seeds=[2], candidates=[5, 6, 8]),
            probe,
            make_request(3, "marginal_gain", seeds=[2], candidates=[7]),
        ],
    )
    assert crowded[2] == alone[0]


# ----------------------------------------------------------------------
# Structured errors
# ----------------------------------------------------------------------
def test_bad_engine_spec_is_a_structured_error():
    """A malformed spec answers with parse_engine_spec's own message as a
    protocol error — not a dropped connection, not a server crash."""
    hub = EngineHub(make_problem(), ["dm-batched"])
    try:
        batcher = CoalescingBatcher(hub)
        for bad_spec in ("dm-mp:0", "warp-drive", "rw-store:"):
            with pytest.raises(ValueError) as registry_err:
                parse_engine_spec(bad_spec)
            (response,) = batcher.execute(
                [make_request(0, "marginal_gain", seeds=[], candidates=[1],
                              engine=bad_spec)]
            )
            assert response["ok"] is False
            assert response["error"]["code"] == ERROR_BAD_ENGINE_SPEC
            assert response["error"]["message"] == str(registry_err.value)
        # Well-formed but not loaded by this server.
        (response,) = batcher.execute(
            [make_request(1, "prefix_win_probability", seeds=[1], engine="dm")]
        )
        assert response["error"]["code"] == ERROR_ENGINE_NOT_LOADED
        assert "dm-batched" in response["error"]["message"]
        assert batcher.stats.errors == 4
    finally:
        hub.close()


def test_parameter_validation_errors():
    hub = EngineHub(make_problem(), ["dm-batched"])
    try:
        batcher = CoalescingBatcher(hub)
        cases = [
            make_request(0, "marginal_gain", seeds=[], candidates=[]),
            make_request(1, "marginal_gain", seeds=[1], candidates=[99]),
            make_request(2, "marginal_gain", seeds="3", candidates=[1]),
            make_request(3, "marginal_gain", seeds=[1.5], candidates=[1]),
            make_request(4, "top_k_seeds", k=0),
            make_request(5, "top_k_seeds", k="two"),
            make_request(6, "apply_delta", edges_added=[[1, 2]]),
            make_request(7, "apply_delta", candidate=99),
            make_request(8, "prefix_win_probability", seeds=[1], engine=7),
        ]
        responses = batcher.execute(cases)
        for response in responses:
            assert response["ok"] is False
            assert response["error"]["code"] == ERROR_BAD_REQUEST
        # Failed requests never mutate: versions unchanged.
        assert hub.problem.graph_version == 0
    finally:
        hub.close()


# ----------------------------------------------------------------------
# Caches and counters
# ----------------------------------------------------------------------
def test_topk_cache_and_delta_invalidation():
    hub = EngineHub(make_problem(), ["dm-batched"])
    try:
        batcher = CoalescingBatcher(hub)
        first, second = (
            batcher.execute([make_request(i, "top_k_seeds", k=2)])[0]
            for i in range(2)
        )
        assert first["result"] == second["result"]
        assert batcher.stats.topk_cache_hits == 1
        assert batcher.stats.engine_rounds == 1
        # Duplicates inside one batch compute once.
        third = batcher.execute(
            [make_request(3, "top_k_seeds", k=3),
             make_request(4, "top_k_seeds", k=3)]
        )
        assert third[0]["result"] == third[1]["result"]
        assert batcher.stats.engine_rounds == 2
        # A delta invalidates the cache: same query recomputes.
        batcher.execute([make_request(5, "apply_delta",
                                      edges_added=[[0, 1, 0.5]])])
        batcher.execute([make_request(6, "top_k_seeds", k=2)])
        assert batcher.stats.topk_cache_hits == 1
        assert batcher.stats.engine_rounds == 3
    finally:
        hub.close()


def test_session_reuse_across_batches():
    """The warm per-prefix session carries across batches: a second batch
    on the same prefix opens no new session (LRU hit)."""
    hub = EngineHub(make_problem(), ["dm-batched"])
    try:
        batcher = CoalescingBatcher(hub)
        batcher.execute([make_request(0, "marginal_gain", seeds=[3],
                                      candidates=[1])])
        session = next(iter(hub._sessions.values()))
        batcher.execute([make_request(1, "marginal_gain", seeds=[3],
                                      candidates=[2])])
        assert next(iter(hub._sessions.values())) is session
        assert len(hub._sessions) == 1
    finally:
        hub.close()


# ----------------------------------------------------------------------
# The socket server
# ----------------------------------------------------------------------
def _asyncio_run(coro):
    return asyncio.run(coro)


def test_server_concurrent_clients_match_serial_bytes():
    """Concurrent clients over real sockets get byte-identical response
    lines to the serial in-process reference (ids aligned), and malformed
    lines answer a structured error without killing the connection."""
    from repro.serve.client import ServeClient
    from repro.serve.server import QueryServer

    queries = [
        (0, {"op": "marginal_gain", "seeds": [3], "candidates": [1]}),
        (1, {"op": "marginal_gain", "seeds": [3], "candidates": [2, 4]}),
        (2, {"op": "prefix_win_probability", "seeds": [1, 3]}),
        (3, {"op": "top_k_seeds", "k": 2}),
    ]
    reference, _ = run_serial(
        "dm-batched",
        [make_request(rid, payload["op"],
                      **{k: v for k, v in payload.items() if k != "op"})
         for rid, payload in queries],
    )

    async def main():
        hub = EngineHub(make_problem(), ["dm-batched"], rng=7)
        server = QueryServer(hub)
        host, port = await server.start()
        clients = [await ServeClient.connect(host, port) for _ in queries]
        try:
            outcomes = await asyncio.gather(
                *(
                    client.request_raw(
                        payload["op"],
                        **{k: v for k, v in payload.items() if k != "op"},
                    )
                    for client, (_, payload) in zip(clients, queries)
                )
            )
            # Client ids all start at 0 per connection; align with the
            # reference by re-stamping the reference ids to 0.
            for (payload, line), expected in zip(outcomes, reference):
                expected_payload = json.loads(expected)
                expected_payload["id"] = 0
                assert line == encode(expected_payload)
                assert payload["ok"]
            # Malformed line: structured error, connection survives.
            raw_client = clients[0]
            raw_client._writer.write(b"this is not json\n")
            await raw_client._writer.drain()
            follow_up = await raw_client.request("ping")
            assert follow_up["ok"]
        finally:
            for client in clients:
                await client.close()
            await server.aclose()

    _asyncio_run(main())


def test_server_rejects_unknown_op_and_keeps_serving():
    from repro.serve.client import request_once
    from repro.serve.server import QueryServer

    async def main():
        hub = EngineHub(make_problem(), ["dm-batched"])
        server = QueryServer(hub)
        host, port = await server.start()
        try:
            loop = asyncio.get_running_loop()
            bad = await loop.run_in_executor(
                None, lambda: request_once(host, port, "frobnicate")
            )
            assert bad["ok"] is False
            assert bad["error"]["code"] == ERROR_UNKNOWN_OP
            good = await loop.run_in_executor(
                None, lambda: request_once(host, port, "ping")
            )
            assert good["ok"]
        finally:
            await server.aclose()

    _asyncio_run(main())


# ----------------------------------------------------------------------
# Crash-safe shutdown: no leaked shm segments
# ----------------------------------------------------------------------
def _spawn_cli_server(tmp_path=None, extra=()):
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--dataset", "yelp", "--users", "60", "--horizon", "4",
        "--score", "cumulative", "--engine", "dm-mp:2:shm", "--seed", "5",
        *extra,
    ]
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    port = None
    deadline = time.time() + 120
    assert proc.stdout is not None
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.match(r"serving on \S+?:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        pytest.fail("server never printed its readiness line")
    return proc, port


def _live_shm_segments(port):
    from repro.serve.client import request_once

    stats = request_once("127.0.0.1", port, "stats")
    assert stats["ok"]
    return stats["result"]["engines"]["dm-mp:2:shm"]["pool"]["shm_segments"]


def _assert_segments_unlinked(names, timeout=20.0):
    from repro.core.shm import attach_segment

    deadline = time.time() + timeout
    remaining = list(names)
    while remaining and time.time() < deadline:
        still = []
        for name in remaining:
            try:
                segment = attach_segment(name)
            except FileNotFoundError:
                continue
            segment.close()
            still.append(name)
        remaining = still
        if remaining:
            time.sleep(0.25)
    assert not remaining, f"leaked shm segments: {remaining}"


def test_sigterm_shutdown_unlinks_shm_segments():
    """The signal-routed shutdown path: SIGTERM stops the pool through
    stop_worker_pool and unlinks every arena segment."""
    proc, port = _spawn_cli_server()
    try:
        names = _live_shm_segments(port)
        assert names  # the pool is warm, its arena is mapped
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert "serve:" in out  # final counters line still printed
        _assert_segments_unlinked(names)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)


def test_sigkill_crash_unlinks_shm_segments():
    """Crash injection: SIGKILL the whole server mid-flight.  Nothing in
    the process gets to run, so cleanup falls to the resource tracker —
    segments must still disappear (bounded poll), mirroring the engine
    crash tests."""
    proc, port = _spawn_cli_server()
    try:
        names = _live_shm_segments(port)
        assert names
        proc.send_signal(signal.SIGKILL)
        # wait(), not communicate(): the worker children inherited the
        # stdout pipe, so it only reaches EOF once *they* exit too.
        proc.wait(timeout=60)
        proc.stdout.close()
        _assert_segments_unlinked(names)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
