"""Shared utilities: RNG handling, validation helpers and timing."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_opinions,
    check_probability,
    check_seed_budget,
    check_stubbornness,
)

__all__ = [
    "Timer",
    "check_opinions",
    "check_probability",
    "check_seed_budget",
    "check_stubbornness",
    "ensure_rng",
    "spawn_rngs",
]
