#!/usr/bin/env python3
"""Seeding against a competitor who also has seeds (§II-C, Remark 2).

The paper's algorithms handle competitors with known seed sets placed at
time 0: their horizon opinions shift but remain independent of the target's
choices.  This example rigs the election — the competitor seeds its own
hubs first — and shows how the target's optimal response changes and how
many extra seeds winning now takes.

Run:  python examples/competing_campaigns.py [--users 800]
"""

import argparse


from repro.baselines.centrality import degree_select
from repro.core.problem import FJVoteProblem
from repro.core.winmin import min_seeds_to_win
from repro.datasets import twitter_us_election
from repro.eval.harness import select_seeds
from repro.eval.metrics import seed_overlap
from repro.eval.reporting import format_table
from repro.voting.scores import PluralityScore


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=800)
    parser.add_argument("--horizon", type=int, default=10)
    parser.add_argument("--seeds", type=int, default=20)
    parser.add_argument("--rival-seeds", type=int, default=20)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    dataset = twitter_us_election(n=args.users, horizon=args.horizon, rng=args.seed)
    state = dataset.state
    score = PluralityScore()
    rival = 1  # "Republican"

    # The rival seeds its own most influential users (degree heuristic).
    rival_picker = FJVoteProblem(state, rival, args.horizon, score)
    rival_seed_set = degree_select(rival_picker, args.rival_seeds)

    plain = FJVoteProblem(state, dataset.target, args.horizon, score)
    rigged = FJVoteProblem(
        state, dataset.target, args.horizon, score,
        competitor_seeds={rival: rival_seed_set},
    )

    rows = []
    responses = {}
    for name, problem in (("no rival seeds", plain), ("rival seeded", rigged)):
        ours = select_seeds("rw", problem, args.seeds, rng=args.seed, lambda_cap=32)
        responses[name] = ours
        rows.append(
            [name, problem.objective(()), problem.objective(ours)]
        )
    print(
        f"{dataset.name}: n={dataset.n}, target="
        f"{state.candidates[dataset.target]!r}, rival={state.candidates[rival]!r} "
        f"with {args.rival_seeds} seeds\n"
    )
    print(format_table(["scenario", "target score before", "after k seeds"], rows))
    overlap = seed_overlap(responses["no rival seeds"], responses["rival seeded"])
    print(f"\nOptimal response overlap between scenarios: {100 * overlap:.0f}%")

    result = min_seeds_to_win(rigged, k_max=min(300, dataset.n))
    if result.found:
        print(f"Minimum seeds to beat the seeded rival: k* = {result.k}")
    else:
        print("Target cannot win within the probed budget.")


if __name__ == "__main__":
    main()
