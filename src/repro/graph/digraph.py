"""Sparse directed influence graph.

The paper (§II) models the social network as a directed graph ``G = (V, E)``
with a *column-stochastic* influence matrix ``W`` per candidate, where
``w[i, j]`` is the influence weight of user ``i`` on user ``j``.  Column
``j`` therefore holds the in-neighbor weights of node ``j`` and sums to 1.

:class:`InfluenceGraph` wraps a ``scipy.sparse`` matrix and exposes both
orientations: CSR for fast row access (out-edges, used by forward
reachability and cascade baselines) and CSC for fast column access
(in-edges, used by the reverse random walks of §V).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

_STOCHASTIC_ATOL = 1e-8


class InfluenceGraph:
    """A directed graph with a column-stochastic edge-weight matrix.

    Parameters
    ----------
    matrix:
        ``(n, n)`` sparse matrix with non-negative entries whose columns each
        sum to 1.  Use :func:`repro.graph.build.graph_from_edges` (or
        :func:`repro.graph.build.column_stochastic`) to construct one from
        raw edge weights.
    validate:
        When true (default), verify non-negativity and column sums.
    """

    def __init__(self, matrix: sparse.spmatrix, *, validate: bool = True) -> None:
        csr = sparse.csr_matrix(matrix, dtype=np.float64)
        if csr.shape[0] != csr.shape[1]:
            raise ValueError(f"influence matrix must be square, got {csr.shape}")
        csr.eliminate_zeros()
        csr.sort_indices()
        if validate:
            _validate_column_stochastic(csr)
        self._csr = csr
        self._csc = csr.tocsc()
        self._csc.sort_indices()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._csr.shape[0]

    @property
    def m(self) -> int:
        """Number of (non-zero weight) directed edges, including self-loops."""
        return self._csr.nnz

    @property
    def csr(self) -> sparse.csr_matrix:
        """Row-oriented weight matrix (row i = out-edges of node i)."""
        return self._csr

    @property
    def csc(self) -> sparse.csc_matrix:
        """Column-oriented weight matrix (column j = in-edges of node j)."""
        return self._csc

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------
    def out_neighbors(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(targets, weights)`` of the out-edges of node ``i``."""
        lo, hi = self._csr.indptr[i], self._csr.indptr[i + 1]
        return self._csr.indices[lo:hi], self._csr.data[lo:hi]

    def in_neighbors(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, weights)`` of the in-edges of node ``j``.

        The weights sum to 1 by column-stochasticity, so this is directly the
        transition distribution of a reverse random-walk step from ``j``.
        """
        lo, hi = self._csc.indptr[j], self._csc.indptr[j + 1]
        return self._csc.indices[lo:hi], self._csc.data[lo:hi]

    def out_degrees(self) -> np.ndarray:
        """Out-degree (edge count) of every node."""
        return np.diff(self._csr.indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree (edge count) of every node."""
        return np.diff(self._csc.indptr)

    def weighted_out_degrees(self) -> np.ndarray:
        """Sum of outgoing weights per node (the DC baseline's centrality).

        Self-loops are excluded: they are artifacts of stochastic
        normalization for nodes without in-neighbors, not social influence.
        """
        totals = np.asarray(self._csr.sum(axis=1)).ravel()
        return totals - self._csr.diagonal()

    def edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(src, dst, weight)`` arrays of all edges (COO order)."""
        coo = self._csr.tocoo()
        return coo.row, coo.col, coo.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InfluenceGraph(n={self.n}, m={self.m})"


def _validate_column_stochastic(csr: sparse.csr_matrix) -> None:
    if csr.nnz and csr.data.min() < 0:
        raise ValueError("influence weights must be non-negative")
    col_sums = np.asarray(csr.sum(axis=0)).ravel()
    bad = np.where(np.abs(col_sums - 1.0) > _STOCHASTIC_ATOL)[0]
    if bad.size:
        j = int(bad[0])
        raise ValueError(
            f"matrix is not column-stochastic: column {j} sums to "
            f"{col_sums[j]:.6g} ({bad.size} offending columns); normalize "
            "with repro.graph.build.column_stochastic first"
        )
