"""Tests for winner determination, Condorcet, and margin diagnostics."""

import numpy as np
import pytest

from repro.voting.rules import (
    condorcet_winner,
    copeland_margin,
    gamma_values,
    is_strict_winner,
    pairwise_tally,
    score_all_candidates,
    winner,
)
from repro.voting.scores import CumulativeScore, PluralityScore


def test_winner_and_scores():
    opinions = np.array([[0.9, 0.8], [0.1, 0.2]])
    assert winner(opinions, CumulativeScore()) == 0
    np.testing.assert_allclose(
        score_all_candidates(opinions, CumulativeScore()), [1.7, 0.3]
    )


def test_is_strict_winner_requires_strictness():
    opinions = np.array([[0.5, 0.5], [0.5, 0.5]])
    assert not is_strict_winner(opinions, CumulativeScore(), 0)
    opinions = np.array([[0.6, 0.5], [0.5, 0.5]])
    assert is_strict_winner(opinions, CumulativeScore(), 0)


def test_pairwise_tally():
    opinions = np.array([[0.9, 0.2, 0.5], [0.1, 0.8, 0.5]])
    wins, losses = pairwise_tally(opinions, 0, 1)
    assert (wins, losses) == (1, 1)  # third user ties


def test_condorcet_winner_exists():
    opinions = np.array(
        [
            [0.9, 0.9, 0.1],
            [0.5, 0.1, 0.9],
            [0.1, 0.5, 0.5],
        ]
    )
    assert condorcet_winner(opinions) == 0


def test_condorcet_winner_can_be_absent():
    # A rock-paper-scissors cycle over 3 users.
    opinions = np.array(
        [
            [0.9, 0.1, 0.5],
            [0.5, 0.9, 0.1],
            [0.1, 0.5, 0.9],
        ]
    )
    assert condorcet_winner(opinions) is None


def test_gamma_values():
    opinions = np.array([[0.5, 0.2], [0.7, 0.1], [0.4, 0.9]])
    np.testing.assert_allclose(gamma_values(opinions, 0), [0.1, 0.1])


def test_gamma_values_single_candidate_infinite():
    opinions = np.array([[0.5, 0.2]])
    assert np.all(np.isinf(gamma_values(opinions, 0)))


def test_copeland_margin():
    opinions = np.array([[0.9, 0.9, 0.1], [0.1, 0.1, 0.9]])
    # Target wins 2, loses 1: margin |2-1|/3.
    assert copeland_margin(opinions, 0) == pytest.approx(1 / 3)


def test_copeland_margin_single_candidate():
    assert copeland_margin(np.array([[0.5, 0.5]]), 0) == float("inf")


def test_plurality_winner_on_example():
    opinions = np.array(
        [
            [0.40, 0.80, 0.60, 0.75],
            [0.35, 0.75, 0.78, 0.90],
        ]
    )
    # Both have plurality 2: tie broken toward index 0, but not a strict win.
    assert winner(opinions, PluralityScore()) == 0
    assert not is_strict_winner(opinions, PluralityScore(), 0)
