"""Table II: properties of the voting scores (monotone, submodular or not).

Non-negativity and monotonicity are probed on random instances for all
scores; non-submodularity of plurality/Copeland is certified by the paper's
own Example 3 counterexample; submodularity of the cumulative score is
probed (a probe cannot prove it — Theorem 3 does — but it must find no
violations).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.exact import monotonicity_violations, submodularity_violations
from repro.core.problem import FJVoteProblem
from repro.datasets.example import running_example
from repro.eval.reporting import format_table
from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    PApprovalScore,
    PluralityScore,
    PositionalPApprovalScore,
)
from tests.conftest import random_instance


def test_table2_property_matrix(benchmark, save_result):
    example = running_example()
    state = random_instance(n=10, r=3, seed=1)
    scores = {
        "Cumulative": CumulativeScore(),
        "Plurality": PluralityScore(),
        "p-Approval": PApprovalScore(2, 3),
        "Pos.-p-Appr.": PositionalPApprovalScore(2, np.array([1.0, 0.5, 0.0])),
        "Copeland": CopelandScore(),
    }

    def probe():
        rows = []
        for name, score in scores.items():
            problem = FJVoteProblem(state, 0, 3, score)
            monotone = not monotonicity_violations(problem, trials=80, rng=2)
            sub_violations = submodularity_violations(problem, trials=150, rng=3)
            if name in ("Plurality", "Copeland"):
                # Certify with the paper's Example 3 counterexample too.
                ex_problem = example.problem(score)
                f = ex_problem.objective
                gain_small = f(np.array([1])) - f(())
                gain_large = f(np.array([0, 1])) - f(np.array([0]))
                assert gain_small < gain_large
                sub_violations = sub_violations or [object()]
            rows.append(
                [name, "Yes", "Yes" if monotone else "No",
                 "No" if sub_violations else "Yes (probe)"]
            )
        return rows

    rows = run_once(benchmark, probe)
    table = format_table(
        ["Score", "Non-negative", "Non-decreasing", "Submodular"], rows
    )
    save_result("table2_properties", table)
    lookup = {row[0]: row for row in rows}
    assert lookup["Cumulative"][3].startswith("Yes")
    assert lookup["Plurality"][3] == "No"
    assert lookup["Copeland"][3] == "No"
    assert all(row[2] == "Yes" for row in rows)
