#!/usr/bin/env python3
"""Persistent walk store: two invocations sharing one on-disk store.

The memory-mapped walk store (``WalkStore(store_dir=...)``, CLI
``--store-dir``) persists every generated walk block as a ``.npy`` shard
keyed by its deterministic identity.  This script simulates two separate
CLI invocations — the same selection run twice, each through a *freshly
opened* store over one directory — and prints the cold vs. warm
``StoreStats`` counters: the first run generates and persists every
block, the second regenerates **zero** and serves byte-identical walks
(hence byte-identical seeds) from the memory maps.

The equivalent CLI pair is:

    python -m repro select --dataset yelp --users 400 --method rw \
        --score cumulative -k 4 --seed 7 --store-dir /tmp/walk-pools
    python -m repro select --dataset yelp --users 400 --method rw \
        --score cumulative -k 4 --seed 7 --store-dir /tmp/walk-pools

Run:  PYTHONPATH=src python examples/persistent_store.py
"""

import tempfile
from pathlib import Path

from repro.core.engine import make_engine
from repro.core.greedy import greedy_engine
from repro.core.walk_store import WalkStore
from repro.datasets.yelp import yelp_like
from repro.voting.scores import CumulativeScore


def run_once(problem, store_dir: Path, label: str):
    """One 'CLI invocation': open the store, select seeds, report counters."""
    store = WalkStore(
        problem.state, problem.horizon, seed=7, store_dir=store_dir
    )
    engine = make_engine(
        "rw-store",
        problem,
        store=store,
        walks_per_node=16,
        adaptive=False,
        epsilon=None,
    )
    result = greedy_engine(engine, 4)
    stats = store.stats
    print(f"{label} run:")
    print(f"  seeds     : {result.seeds.tolist()}")
    print(f"  objective : {result.objective:.4f}")
    print(
        f"  store     : generated={stats.blocks_generated} "
        f"written={stats.blocks_written} loaded={stats.blocks_loaded} "
        f"reused={stats.blocks_reused} "
        f"walk-steps={stats.walk_steps_generated}"
    )
    return result


def main() -> None:
    dataset = yelp_like(n=400, r=6, rng=7, horizon=10)
    problem = dataset.problem(CumulativeScore())
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "walk-pools"
        cold = run_once(problem, store_dir, "cold")
        shards = sorted(p.name for p in store_dir.glob("*.npy"))
        print(f"\non disk: manifest.json + {len(shards)} shard files, e.g.")
        for name in shards[:3]:
            print(f"  {name}")
        print()
        warm = run_once(problem, store_dir, "warm")
        assert warm.seeds.tolist() == cold.seeds.tolist()
        print(
            "\nwarm re-open regenerated 0 blocks and selected identical "
            "seeds — the pools survived the 'restart'."
        )


if __name__ == "__main__":
    main()
