"""End-to-end resilience tests: deterministic faults, identical answers.

The central contract: a failure injected through :mod:`repro.core.faults`
never changes *what* the system computes, only which counters tick while
it recovers.  Selections, evaluations and walk-store bytes under a
:class:`FaultPlan` must be identical to the fault-free run — worker
SIGKILL mid-commit-broadcast (dm-mp over pipe and shm), severed tcp
hosts that rejoin, corrupted store blocks that quarantine and repair —
and the serve layer must degrade with *structured* errors (``overloaded``,
``deadline-exceeded``) instead of hangs or lost requests.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys

import numpy as np
import pytest

from repro.core import faults
from repro.core.engine import BatchedDMEngine, make_engine
from repro.core.engine_mp import MultiprocessDMEngine
from repro.core.faults import FAULT_IDS, FaultPlan, FaultSpec
from repro.core.greedy import greedy_engine
from repro.core.walk_store import WalkStore
from repro.serve.batcher import EngineHub
from repro.serve.protocol import (
    ERROR_DEADLINE_EXCEEDED,
    ERROR_OVERLOADED,
    Request,
)
from repro.serve.server import QueryServer
from tests.test_core_engine import make_problem
from tests.test_engine_net import _tcp_engine, start_worker


# ----------------------------------------------------------------------
# The fault plan itself: schema, fire-once semantics, replayability
# ----------------------------------------------------------------------
def test_fault_spec_validates_against_registry():
    with pytest.raises(ValueError, match="unknown fault id"):
        FaultSpec("made-up-fault")
    with pytest.raises(ValueError, match="context keys"):
        FaultSpec("mp-kill-worker", when={"shard": 1})
    # Registered ids accept any subset of their registered keys.
    for fault_id, keys in FAULT_IDS.items():
        FaultSpec(fault_id)
        if keys:
            FaultSpec(fault_id, when={keys[0]: 0})


def test_fault_plan_fires_each_spec_exactly_once():
    plan = FaultPlan(
        seed=3,
        faults=[
            FaultSpec("mp-kill-worker", when={"worker": 1}),
            FaultSpec("mp-kill-worker", when={"worker": 1}),
        ],
    )
    assert plan.maybe_fail("mp-kill-worker", worker=0, round=0) is None
    assert plan.maybe_fail("mp-kill-worker", worker=1, round=0) is not None
    assert plan.maybe_fail("mp-kill-worker", worker=1, round=1) is not None
    # Both armed copies are spent now.
    assert plan.maybe_fail("mp-kill-worker", worker=1, round=2) is None
    assert plan.fired == [
        ("mp-kill-worker", {"worker": 1, "round": 0}),
        ("mp-kill-worker", {"worker": 1, "round": 1}),
    ]
    with pytest.raises(ValueError, match="unregistered"):
        plan.maybe_fail("made-up-fault")


def test_fault_plan_json_round_trip(tmp_path):
    plan = FaultPlan(
        seed=11,
        faults=[
            FaultSpec("serve-delay", when={"batch": 0}, value=0.25),
            FaultSpec("store-corrupt-block", when={"candidate": 2, "block": 0}),
        ],
    )
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    loaded = FaultPlan.from_file(path)
    assert loaded.seed == plan.seed
    assert loaded.faults == plan.faults
    # The wire form is plain JSON a human can write by hand.
    payload = json.loads(path.read_text())
    assert payload["faults"][0]["value"] == 0.25


def test_fault_plan_rng_and_corruption_are_deterministic(tmp_path):
    a = FaultPlan(seed=7).rng(1, 2, 3).integers(0, 1 << 30, size=4)
    b = FaultPlan(seed=7).rng(1, 2, 3).integers(0, 1 << 30, size=4)
    c = FaultPlan(seed=8).rng(1, 2, 3).integers(0, 1 << 30, size=4)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)
    original = bytes(range(200))
    damaged = []
    for run in range(2):
        path = tmp_path / f"blob-{run}.bin"
        path.write_bytes(original)
        faults.corrupt_file(path, FaultPlan(seed=7).rng(0))
        damaged.append(path.read_bytes())
    assert damaged[0] != original  # guaranteed by the non-zero XOR masks
    assert damaged[0] == damaged[1]  # same plan, same damage


def test_injected_scopes_and_restores_the_active_plan():
    assert faults.active() is None
    assert faults.maybe_fail("serve-drop", request=0) is None  # no-op path
    outer = FaultPlan(seed=1)
    inner = FaultPlan(seed=2)
    with faults.injected(outer):
        assert faults.active() is outer
        with faults.injected(inner):
            assert faults.active() is inner
        assert faults.active() is outer
    assert faults.active() is None


# ----------------------------------------------------------------------
# dm-mp: planned worker SIGKILL, byte-identical recovery
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_mp_planned_kill_selection_is_byte_identical(transport):
    """A greedy selection with a planned mid-run worker SIGKILL matches
    the fault-free dm-batched selection exactly, and the recovery lands
    in the supervision counters."""
    problem = make_problem(3, "plurality", 4, n=14)
    reference = greedy_engine(BatchedDMEngine(problem), 4, lazy=False)
    plan = FaultPlan(
        seed=5, faults=[FaultSpec("mp-kill-worker", when={"worker": 1, "round": 2})]
    )
    with faults.injected(plan):
        with MultiprocessDMEngine(
            problem, workers=2, min_fanout=1, transport=transport
        ) as engine:
            result = greedy_engine(engine, 4, lazy=False)
            assert engine.stats.workers_lost == 1
            assert engine.stats.workers_respawned == 1
            assert engine.stats.chunks_resharded >= 1
    assert plan.fired == [("mp-kill-worker", {"worker": 1, "round": 2})]
    assert result.seeds.tolist() == reference.seeds.tolist()
    np.testing.assert_allclose(result.gains, reference.gains, atol=1e-10, rtol=0)


def test_mp_kill_during_commit_broadcast_stays_exact():
    """SIGKILL landing on the commit-broadcast round: the respawned
    worker adopts the committed trajectory from the journal, and every
    later marginal-gain round is byte-identical to dm-batched."""
    problem = make_problem(6, "cumulative", 3, n=12, r=2)
    reference = BatchedDMEngine(problem).open_session()
    with MultiprocessDMEngine(
        problem, workers=2, min_fanout=1
    ) as engine:
        session = engine.open_session()
        candidates = np.arange(problem.n)
        np.testing.assert_array_equal(
            session.marginal_gains(candidates),
            reference.marginal_gains(candidates),
        )
        plan = FaultPlan(
            seed=2, faults=[FaultSpec("mp-kill-worker", when={"worker": 0})]
        )
        with faults.injected(plan):
            session.commit(5)  # the kill fires on this broadcast round
        reference.commit(5)
        assert plan.fired and plan.fired[0][1]["worker"] == 0
        assert engine.stats.workers_lost == 1
        # Commit again *immediately*: the respawned worker replays the
        # journal (seeds only, lazy trajectory) and must take the
        # rebuild path for this commit, not extend a missing trajectory.
        session.commit(9)
        reference.commit(9)
        np.testing.assert_array_equal(
            session.marginal_gains(candidates),
            reference.marginal_gains(candidates),
        )
        assert session.value == pytest.approx(reference.value, abs=1e-10)


# ----------------------------------------------------------------------
# tcp: planned host sever, re-shard, backoff rejoin
# ----------------------------------------------------------------------
def test_tcp_planned_sever_resharded_then_rejoined():
    """A planned socket sever re-shards the round to the survivor with
    byte-identical results; the backoff schedule then re-dials the lost
    host and restores it to its shard slot (``hosts_rejoined``)."""
    import time

    # The severed host serves two sequential connections: the original
    # and the rejoin dial.  The survivor only ever sees one.
    addr_a, thread_a = start_worker(connections=2)
    addr_b, thread_b = start_worker(connections=1)
    problem = make_problem(3, "cumulative", 8)
    sets = [np.array([i]) for i in range(13)]
    with make_engine("dm-batched", problem) as ref:
        expected = ref.evaluate(sets)
    plan = FaultPlan(
        seed=4, faults=[FaultSpec("net-sever-host", when={"host": addr_a})]
    )
    engine = _tcp_engine(problem, [addr_a, addr_b])
    try:
        with faults.injected(plan):
            # The sever fires before this round's dispatch; the chunk
            # re-shards to the survivor and the answer does not change.
            assert np.array_equal(expected, engine.evaluate(sets))
            assert plan.fired == [
                ("net-sever-host", {"host": addr_a, "round": 0})
            ]
        assert engine.stats.hosts_lost == 1
        assert engine.stats.chunks_resharded >= 1
        assert engine.workers == 1
        # The rejoin schedule (decorrelated backoff, first delay 0.1s)
        # re-dials on a later round and restores the shard slot.
        deadline = time.monotonic() + 15.0
        while engine.stats.hosts_rejoined == 0:
            assert time.monotonic() < deadline, "host never rejoined"
            time.sleep(0.1)
            assert np.array_equal(expected, engine.evaluate(sets))
        assert engine.stats.hosts_rejoined == 1
        assert engine.workers == 2
        assert engine.pool_stats()["hosts_connected"] == [addr_a, addr_b]
        assert np.array_equal(expected, engine.evaluate(sets))
    finally:
        engine.close()
    thread_a.join(10)
    thread_b.join(10)
    assert not thread_a.is_alive() and not thread_b.is_alive()


# ----------------------------------------------------------------------
# Walk store: corruption detected, quarantined, repaired byte-identically
# ----------------------------------------------------------------------
def _store_problem():
    return make_problem(2, "cumulative", 6, n=10, r=2)


def test_corrupt_block_on_disk_repairs_on_warm_open(tmp_path):
    """Bytes damaged *between* runs: the warm re-open's checksum pass
    quarantines the block and regenerates it from the store identity —
    ``blocks_generated == blocks_repaired`` and identical walk bytes."""
    problem = _store_problem()
    store_dir = tmp_path / "store"
    with WalkStore(
        problem.state, problem.horizon, seed=3, store_dir=store_dir
    ) as cold:
        view = cold.per_node_view(0, 6)
        pristine = (
            np.array(view.walks).tobytes(),
            np.array(view.lengths).tobytes(),
        )
        assert cold.stats.blocks_generated > 0
    victim = sorted(store_dir.glob("*.walks.npy"))[0]
    faults.corrupt_file(victim, np.random.default_rng(0))
    with WalkStore(
        problem.state, problem.horizon, seed=3, store_dir=store_dir
    ) as warm:
        view = warm.per_node_view(0, 6)
        assert np.array(view.walks).tobytes() == pristine[0]
        assert np.array(view.lengths).tobytes() == pristine[1]
        assert warm.stats.blocks_quarantined == 1
        assert warm.stats.blocks_repaired == 1
        # Repair is the only generation work a warm open should do.
        assert warm.stats.blocks_generated == warm.stats.blocks_repaired
    quarantined = list(store_dir.glob("*.quarantined"))
    assert quarantined, "damaged bytes must be preserved for forensics"


def test_store_corrupt_block_fault_plan_repairs_transparently(tmp_path):
    problem = _store_problem()
    store_dir = tmp_path / "store"
    with WalkStore(
        problem.state, problem.horizon, seed=3, store_dir=store_dir
    ) as cold:
        pristine = np.array(cold.per_node_view(0, 6).walks).tobytes()
    plan = FaultPlan(
        seed=9,
        faults=[
            FaultSpec("store-corrupt-block", when={"candidate": 0, "block": 0})
        ],
    )
    with faults.injected(plan):
        with WalkStore(
            problem.state, problem.horizon, seed=3, store_dir=store_dir
        ) as warm:
            assert np.array(warm.per_node_view(0, 6).walks).tobytes() == pristine
            assert warm.stats.blocks_quarantined == 1
            assert warm.stats.blocks_repaired == 1
    assert len(plan.fired) == 1
    assert plan.fired[0][0] == "store-corrupt-block"
    assert plan.fired[0][1]["candidate"] == 0


def test_rw_store_selection_identical_under_corruption_fault(tmp_path):
    """The acceptance bar for ``rw-store:mmap``: a faulted selection —
    block corrupted under the engine mid-run — picks identical seeds with
    identical gains, because the repair reproduces the recorded bytes."""
    problem = _store_problem()
    spec = f"rw-store:2:mmap={tmp_path / 'store'}"
    with make_engine(spec, problem, rng=11) as engine:
        baseline = greedy_engine(engine, 3)
    plan = FaultPlan(seed=6, faults=[FaultSpec("store-corrupt-block")])
    with faults.injected(plan):
        with make_engine(spec, problem, rng=11) as engine:
            faulted = greedy_engine(engine, 3)
            assert engine.store.stats.blocks_quarantined == 1
            assert engine.store.stats.blocks_repaired == 1
    assert plan.fired and plan.fired[0][0] == "store-corrupt-block"
    assert faulted.seeds.tolist() == baseline.seeds.tolist()
    np.testing.assert_array_equal(faulted.gains, baseline.gains)


# ----------------------------------------------------------------------
# Serve layer: shed, expire, drain — structured errors, no hangs
# ----------------------------------------------------------------------
def _request(rid, op="ping", deadline_ms=None, **params):
    return Request(id=rid, op=op, params=params, deadline_ms=deadline_ms)


def test_serve_queue_cap_sheds_with_structured_overloaded():
    """Admissions past ``queue_cap`` answer ``overloaded`` immediately —
    in admission time, without touching the dispatcher."""

    async def main():
        hub = EngineHub(make_problem(1, "cumulative", 2, n=10, r=2), ["dm"], rng=7)
        server = QueryServer(hub, queue_cap=2)
        loop = asyncio.get_running_loop()
        futures = []
        for i in range(4):  # dispatcher not started: the queue only fills
            future = loop.create_future()
            server._admit(_request(i), future)
            futures.append(future)
        assert not futures[0].done() and not futures[1].done()
        for future in futures[2:]:
            payload = future.result()  # already resolved, synchronously
            assert payload["ok"] is False
            assert payload["error"]["code"] == ERROR_OVERLOADED
        assert server.stats.requests_shed == 2
        await server.aclose()
        # Post-close admissions shed too (shutdown, not queue pressure).
        late = loop.create_future()
        server._admit(_request(9), late)
        assert late.result()["error"]["code"] == ERROR_OVERLOADED
        assert server.stats.requests_shed == 3

    asyncio.run(main())


def test_serve_drop_fault_sheds_the_planned_arrival():
    """The ``serve-drop`` fault point sheds exactly the planned arrival
    index over a real socket, and the connection keeps serving."""
    from repro.serve.client import ServeClient

    async def main():
        hub = EngineHub(
            make_problem(1, "cumulative", 2, n=10, r=2), ["dm"], rng=7
        )
        server = QueryServer(hub)
        host, port = await server.start()
        client = await ServeClient.connect(host, port)
        try:
            answers = [await client.request("ping") for _ in range(3)]
        finally:
            await client.close()
            await server.aclose()
        return answers, server.stats.requests_shed

    plan = FaultPlan(seed=1, faults=[FaultSpec("serve-drop", when={"request": 1})])
    with faults.injected(plan):
        answers, shed = asyncio.run(main())
    assert plan.fired == [("serve-drop", {"request": 1})]
    assert shed == 1
    assert [a["ok"] for a in answers] == [True, False, True]
    assert answers[1]["error"]["code"] == ERROR_OVERLOADED


def test_serve_deadline_expires_in_queue_before_engine_work():
    """A request whose deadline lapses while queued answers
    ``deadline-exceeded`` from the dispatcher without an engine round."""

    async def main():
        hub = EngineHub(make_problem(1, "cumulative", 2, n=10, r=2), ["dm"], rng=7)
        server = QueryServer(hub, request_timeout_ms=10_000.0)
        loop = asyncio.get_running_loop()
        doomed = loop.create_future()
        healthy = loop.create_future()
        # Admit before the dispatcher exists: the tiny per-request
        # deadline lapses deterministically during the sleep; the second
        # request rides the server-wide 10s default and survives.
        server._admit(_request(0, deadline_ms=5.0), doomed)
        server._admit(_request(1), healthy)
        await asyncio.sleep(0.05)
        host, port = await server.start()
        del host, port
        expired = await doomed
        answered = await healthy
        await server.aclose()
        return expired, answered, server.stats.deadlines_exceeded

    expired, answered, count = asyncio.run(main())
    assert expired["ok"] is False
    assert expired["error"]["code"] == ERROR_DEADLINE_EXCEEDED
    assert answered["ok"] is True
    assert count == 1


def test_serve_graceful_drain_answers_everything_admitted():
    """``aclose(drain=True)`` answers every request admitted before the
    close — the first-SIGTERM path — then sheds late arrivals."""

    async def main():
        hub = EngineHub(make_problem(1, "cumulative", 2, n=10, r=2), ["dm"], rng=7)
        server = QueryServer(hub)
        loop = asyncio.get_running_loop()
        futures = []
        for i in range(3):
            future = loop.create_future()
            server._admit(_request(i), future)
            futures.append(future)
        server._dispatcher = asyncio.create_task(server._dispatch_loop())
        await server.aclose(drain=True)
        return [future.result() for future in futures]

    answers = asyncio.run(main())
    assert [a["ok"] for a in answers] == [True, True, True]
    assert sorted(a["id"] for a in answers) == [0, 1, 2]


# ----------------------------------------------------------------------
# CLI: --fault-plan wires a plan file into a real selection run
# ----------------------------------------------------------------------
def test_cli_fault_plan_selection_matches_fault_free(tmp_path):
    """``repro select --fault-plan`` with a worker-kill schedule exits 0
    and prints the same seeds line as the fault-free run."""
    plan = FaultPlan(
        seed=1, faults=[FaultSpec("mp-kill-worker", when={"worker": 1})]
    )
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(plan.to_json())

    def select(extra=()):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "select",
                "--dataset", "yelp", "--users", "60", "--horizon", "4",
                "--method", "dm", "--score", "cumulative",
                "-k", "4", "--seed", "1", "--engine", "dm-mp:2",
                *extra,
            ],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        seeds = [
            line
            for line in result.stdout.splitlines()
            if line.startswith("seeds:")
        ]
        assert seeds, result.stdout
        return seeds[0]

    expected = select()
    faulted = select(("--fault-plan", str(plan_path)))
    assert faulted == expected
