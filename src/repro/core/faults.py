"""Deterministic fault injection for chaos tests and resilience benchmarks.

Every recovery path in the execution stack (worker respawn, host rejoin,
block repair, request shedding) is only trustworthy if the *failure* that
triggers it can be replayed exactly.  This module is that seam: a seeded
:class:`FaultPlan` names which fault fires where (kill worker 1 in pool
round 3, corrupt candidate 0's first walk block, drop serve request 5),
and instrumented fault points call :func:`maybe_fail` with their local
context.  A spec fires exactly once, when its ``when`` constraints all
match; with no plan installed every fault point is a cheap no-op.

The registry :data:`FAULT_IDS` is the schema: plans may only reference
registered ids, and the ``fault-point`` reprolint checker cross-references
the registry against the ``maybe_fail("...")`` call sites so injection
points and tests cannot drift apart.

Determinism contract: firing decisions depend only on the plan (never on
wall clock or unseeded randomness), and byte corruption derives from the
plan's seed via :func:`corrupt_file` — the same plan always damages the
same bytes.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

__all__ = [
    "FAULT_IDS",
    "FaultPlan",
    "FaultSpec",
    "active",
    "clear",
    "corrupt_file",
    "injected",
    "install",
    "maybe_fail",
]

#: Registered fault points: id -> the context keys a plan may constrain.
#: Adding a ``maybe_fail`` call site requires registering its id here
#: (enforced by the ``fault-point`` reprolint checker), and vice versa.
FAULT_IDS: dict[str, tuple[str, ...]] = {
    # engine_mp._run: SIGKILL worker ``worker`` before pool round ``round``.
    "mp-kill-worker": ("worker", "round"),
    # engine_net.HostPool._run: sever host ``host`` before round ``round``.
    "net-sever-host": ("host", "round"),
    # walk_store._load_block: corrupt the block's bytes before the
    # checksum verification runs, exercising quarantine + repair.
    "store-corrupt-block": ("candidate", "kind", "block"),
    # serve.server: shed the ``request``-th accepted request as if the
    # dispatcher queue were full.
    "serve-drop": ("request",),
    # serve.batcher.execute: sleep ``value`` seconds before batch
    # ``batch`` executes, deterministically expiring its deadlines.
    "serve-delay": ("batch",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One planned failure: fire ``fault_id`` when ``when`` matches.

    ``when`` maps context keys (a subset of the keys registered for the
    id in :data:`FAULT_IDS`) to required values; a spec with an empty
    ``when`` fires at the first call site for its id.  ``value`` carries
    a fault parameter where one makes sense (seconds for ``serve-delay``).
    """

    fault_id: str
    when: Mapping[str, Any] = field(default_factory=dict)
    value: float | None = None

    def __post_init__(self) -> None:
        if self.fault_id not in FAULT_IDS:
            raise ValueError(
                f"unknown fault id {self.fault_id!r}; "
                f"registered: {sorted(FAULT_IDS)}"
            )
        allowed = FAULT_IDS[self.fault_id]
        unknown = sorted(set(self.when) - set(allowed))
        if unknown:
            raise ValueError(
                f"fault {self.fault_id!r} does not take context "
                f"keys {unknown}; allowed: {list(allowed)}"
            )
        # Freeze the mapping so specs are hashable/safely shareable.
        object.__setattr__(self, "when", dict(self.when))

    def matches(self, ctx: Mapping[str, Any]) -> bool:
        return all(key in ctx and ctx[key] == value for key, value in self.when.items())


class FaultPlan:
    """A seeded, replayable schedule of failures.

    ``seed`` feeds deterministic corruption (see :func:`corrupt_file`);
    ``faults`` is the ordered list of :class:`FaultSpec` to arm.  Each
    spec fires at most once; ``fired`` records ``(fault_id, ctx)`` in
    firing order so tests can assert the schedule actually ran.
    """

    def __init__(self, seed: int = 0, faults: Sequence[FaultSpec] = ()) -> None:
        self.seed = int(seed)
        self.faults: list[FaultSpec] = list(faults)
        self.fired: list[tuple[str, dict[str, Any]]] = []
        self._armed: list[bool] = [True] * len(self.faults)
        self._lock = threading.Lock()

    def maybe_fail(self, fault_id: str, **ctx: Any) -> FaultSpec | None:
        """Return the first armed matching spec (disarming it), else None."""
        if fault_id not in FAULT_IDS:
            raise ValueError(f"unregistered fault id {fault_id!r}")
        with self._lock:
            for i, spec in enumerate(self.faults):
                if self._armed[i] and spec.fault_id == fault_id and spec.matches(ctx):
                    self._armed[i] = False
                    self.fired.append((fault_id, dict(ctx)))
                    return spec
        return None

    def rng(self, *key: int) -> np.random.Generator:
        """A generator derived from the plan seed and a stable key."""
        return np.random.default_rng(np.random.SeedSequence([self.seed, *key]))

    # -- JSON round-trip ------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "faults": [
                {
                    "fault_id": spec.fault_id,
                    "when": dict(spec.when),
                    **({"value": spec.value} if spec.value is not None else {}),
                }
                for spec in self.faults
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        faults = [
            FaultSpec(
                fault_id=entry["fault_id"],
                when=entry.get("when", {}),
                value=entry.get("value"),
            )
            for entry in payload.get("faults", [])
        ]
        return cls(seed=payload.get("seed", 0), faults=faults)

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())


#: The process-wide installed plan; ``None`` keeps fault points no-ops.
_ACTIVE: FaultPlan | None = None


def install(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (``None`` disables injection)."""
    global _ACTIVE
    _ACTIVE = plan


def clear() -> None:
    install(None)


def active() -> FaultPlan | None:
    return _ACTIVE


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope ``plan`` to a with-block, restoring the previous plan after."""
    previous = _ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def maybe_fail(fault_id: str, **ctx: Any) -> FaultSpec | None:
    """Consult the installed plan at a fault point; None means proceed.

    Call sites pass their local coordinates (worker index, pool round,
    block identity, ...) and act on the returned spec — killing the
    process, closing the socket, corrupting the bytes.  The fault point
    itself never raises: injection is always an explicit action by the
    caller so the failure takes the production code path.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.maybe_fail(fault_id, **ctx)


def corrupt_file(path: str | Path, rng: np.random.Generator, nbytes: int = 8) -> None:
    """Deterministically flip ``nbytes`` bytes in the middle of ``path``.

    Offsets and XOR masks come from ``rng`` (derive it from the plan via
    :meth:`FaultPlan.rng` with a stable key) so the same plan always
    produces the same damage.  Bytes are flipped with a non-zero mask so
    the file is guaranteed to differ.
    """
    path = Path(path)
    raw = bytearray(path.read_bytes())
    if not raw:
        return
    offsets = rng.integers(0, len(raw), size=min(nbytes, len(raw)))
    masks = rng.integers(1, 256, size=len(offsets))
    for offset, mask in zip(offsets, masks):
        raw[int(offset)] ^= int(mask)
    path.write_bytes(bytes(raw))
