"""Preference ranks β (paper Eq. 4).

``β(b_qv) = Σ_{cx∈C} 1[b_xv ≥ b_qv]`` is the rank of candidate ``q`` in
user ``v``'s preference order at the time horizon.  The sum includes ``q``
itself, so ranks start at 1 and ties count *against* the target (a tie with
one other candidate gives rank 2).
"""

from __future__ import annotations

import numpy as np


def ranks(opinions: np.ndarray, q: int) -> np.ndarray:
    """Rank of candidate ``q`` for every user given opinion matrix ``(r, n)``."""
    opinions = np.asarray(opinions, dtype=np.float64)
    if opinions.ndim != 2:
        raise ValueError(f"opinions must be 2-D (r, n), got shape {opinions.shape}")
    r = opinions.shape[0]
    if not 0 <= q < r:
        raise ValueError(f"candidate index {q} out of range for r={r}")
    return 1 + np.sum(
        np.delete(opinions, q, axis=0) >= opinions[q][None, :], axis=0
    ).astype(np.int64)


def rank_against(values: np.ndarray, others_by_user: np.ndarray) -> np.ndarray:
    """Rank of hypothetical target values against fixed competitor opinions.

    Parameters
    ----------
    values:
        ``(m,)`` candidate-``q`` opinion values for ``m`` users.
    others_by_user:
        ``(m, r-1)`` competitor opinions for the same ``m`` users.

    Used by the greedy optimizers, which repeatedly re-rank only the users
    whose estimated target opinion changed.
    """
    values = np.asarray(values, dtype=np.float64)
    others_by_user = np.asarray(others_by_user, dtype=np.float64)
    if others_by_user.ndim != 2 or others_by_user.shape[0] != values.shape[0]:
        raise ValueError(
            f"others_by_user must be (m, r-1) with m={values.shape[0]}, "
            f"got {others_by_user.shape}"
        )
    return 1 + np.sum(others_by_user >= values[:, None], axis=1).astype(np.int64)


def rank_against_batch(values: np.ndarray, others_by_user: np.ndarray) -> np.ndarray:
    """Batched :func:`rank_against`: many hypothetical target rows at once.

    Parameters
    ----------
    values:
        ``(C, m)`` candidate-``q`` opinion values — one row per hypothesis
        (e.g. per candidate seed set in a batched greedy round).
    others_by_user:
        ``(m, r-1)`` competitor opinions, shared by every row.

    Returns the ``(C, m)`` rank matrix.  Memory is ``C * m * (r-1)`` bytes
    of transient booleans, so callers chunk ``C`` (the batched DM engine
    keeps chunks to a few hundred rows).
    """
    values = np.asarray(values, dtype=np.float64)
    others_by_user = np.asarray(others_by_user, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D (C, m), got shape {values.shape}")
    if others_by_user.ndim != 2 or others_by_user.shape[0] != values.shape[1]:
        raise ValueError(
            f"others_by_user must be (m, r-1) with m={values.shape[1]}, "
            f"got {others_by_user.shape}"
        )
    return 1 + np.sum(
        others_by_user[None, :, :] >= values[:, :, None], axis=2, dtype=np.int64
    )
