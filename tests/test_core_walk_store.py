"""Tests for the persistent sharded walk store (repro.core.walk_store).

The central contracts:

* **Shard invariance** — walks are a pure function of the store seed and
  the walk count, never of the shard count, so ``rw-store:1/2/4``
  selections are byte-identical to each other *and* to the plain ``rw``
  engine built from the same rng (hypothesis parity suite).
* **Isolation** — served views are copy-on-write: a session committing
  seeds truncates its own view only; the cached shard masters stay
  pristine for the next consumer.
* **Reuse** — a second view over the same pool generates zero new blocks,
  and the adaptive θ ladder extends one sample instead of redrawing.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.imm import imm
from repro.core.engine import (
    EstimatorPrecisionWarning,
    make_engine,
    parse_engine_spec,
    spec_is_exact_dm,
)
from repro.core.greedy import greedy_engine
from repro.core.problem import FJVoteProblem
from repro.core.sketch import sketch_select
from repro.core.walk_store import (
    KIND_PER_NODE,
    KIND_UNIFORM,
    WalkStore,
    store_for_problem,
)
from repro.voting.scores import CumulativeScore, PluralityScore
from tests.conftest import random_instance


def make_problem(seed, score=None, *, n=14, r=3, horizon=3):
    state = random_instance(n=n, r=r, seed=seed)
    return FJVoteProblem(state, 0, horizon, score or PluralityScore())


# ----------------------------------------------------------------------
# Parity: rw-store == rw, byte-identical, at shard counts 1/2/4
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 30),
    rng_seed=st.integers(0, 1000),
    score_name=st.sampled_from(["plurality", "cumulative"]),
    k=st.integers(1, 4),
)
def test_rw_store_matches_rw_at_every_shard_count(seed, rng_seed, score_name, k):
    """Fixed-count rw-store selections must equal the rw engine byte for
    byte at shards 1, 2 and 4 — same walks, same gains, same seeds."""
    score = CumulativeScore() if score_name == "cumulative" else PluralityScore()
    problem = make_problem(seed, score, n=12, r=2)
    ref_engine = make_engine("rw", problem, rng=rng_seed, walks_per_node=6)
    reference = greedy_engine(ref_engine, k)
    for shards in (1, 2, 4):
        engine = make_engine(
            f"rw-store:{shards}",
            problem,
            rng=rng_seed,
            walks_per_node=6,
            adaptive=False,
            epsilon=None,
        )
        result = greedy_engine(engine, k)
        assert result.seeds.tolist() == reference.seeds.tolist()
        np.testing.assert_array_equal(result.gains, reference.gains)
        assert result.objective == reference.objective
        # The raw walk matrices themselves must coincide with the rw
        # engine's — byte parity, not coincidental selection agreement.
        np.testing.assert_array_equal(engine.walks.walks, ref_engine.walks.walks)
        np.testing.assert_array_equal(engine.walks.lengths, ref_engine.walks.lengths)


@pytest.mark.parametrize("k", [3])
def test_rw_store_default_adaptive_is_shard_invariant(k):
    """The default (adaptive) rw-store engine must still be byte-identical
    across shard counts: escalation decisions depend only on the walks,
    and the walks depend only on the store seed."""
    problem = make_problem(4, n=12, r=2)
    results = []
    for shards in (1, 2, 4):
        engine = make_engine(f"rw-store:{shards}", problem, rng=11)
        results.append(greedy_engine(engine, k))
    assert results[0].seeds.tolist() == results[1].seeds.tolist()
    assert results[1].seeds.tolist() == results[2].seeds.tolist()
    np.testing.assert_array_equal(results[0].gains, results[1].gains)
    np.testing.assert_array_equal(results[1].gains, results[2].gains)


def test_store_walks_identical_across_shard_counts():
    """Raw pool content (not just selections) is shard-invariant."""
    problem = make_problem(2, n=10, r=2)
    views = []
    for shards in (1, 2, 4):
        store = WalkStore(problem.state, problem.horizon, seed=7, shards=shards)
        views.append(store.per_node_view(0, 5))
    for other in views[1:]:
        np.testing.assert_array_equal(views[0].walks, other.walks)
        np.testing.assert_array_equal(views[0].lengths, other.lengths)
        np.testing.assert_array_equal(views[0].values, other.values)


# ----------------------------------------------------------------------
# Isolation: commits truncate views, never the cached shard masters
# ----------------------------------------------------------------------
def test_view_commits_do_not_invalidate_store_master():
    """Shard-cache invalidation contract: a session committing seeds gets
    a detached truncation state (copy-on-write), so the master — and any
    later view — still serves the pristine sample."""
    problem = make_problem(5, n=12, r=2)
    store = store_for_problem(problem, seed=3)
    first = store.per_node_view(0, 4)
    pristine = (first.end_pos.copy(), first.values.copy())
    first.add_seed(7)  # a committed seed truncates the *view*
    first.add_seed(2)
    assert first.seeds == [7, 2]
    second = store.per_node_view(0, 4)
    assert second.seeds == []
    np.testing.assert_array_equal(second.end_pos, pristine[0])
    np.testing.assert_array_equal(second.values, pristine[1])
    # The two views never share mutated state.
    assert not np.shares_memory(first.values, second.values)
    # And the immutable parts are genuinely shared, not copied.
    assert np.shares_memory(first.walks, second.walks)
    master = store.pool(0, KIND_PER_NODE).master(4 * problem.n)
    np.testing.assert_array_equal(master.values, pristine[1])
    assert master.seeds == []


def test_engine_sessions_share_store_without_leaks():
    """Two engines on one shared store run interleaved sessions without
    corrupting each other or the store."""
    problem = make_problem(6, n=12, r=2)
    store = store_for_problem(problem, seed=9)
    a = make_engine("rw-store", problem, store=store, adaptive=False, epsilon=None)
    b = make_engine("rw-store", problem, store=store, adaptive=False, epsilon=None)
    base_a = a.evaluate_one(())
    base_b = b.evaluate_one(())
    assert base_a == base_b  # identical pristine walks
    sess = a.open_session()
    sess.commit(3)
    sess.commit(8)
    # b's empty-set estimate is untouched by a's commits.
    assert b.evaluate_one(()) == base_b
    assert a.evaluate_one(()) == base_a  # reset-and-replay still pristine


# ----------------------------------------------------------------------
# Reuse: memoized blocks, extending ladders, RR-set pools
# ----------------------------------------------------------------------
def test_second_view_generates_no_new_blocks():
    problem = make_problem(7, n=10, r=2)
    store = store_for_problem(problem, seed=1)
    store.per_node_view(0, 6)
    generated = store.stats.blocks_generated
    steps = store.stats.walk_steps_generated
    store.per_node_view(0, 6)
    store.per_node_view(0, 3)  # prefix of the same pool
    assert store.stats.blocks_generated == generated
    assert store.stats.walk_steps_generated == steps
    assert store.stats.blocks_reused > 0


def test_uniform_ladder_extends_instead_of_redrawing():
    """Doubling θ must only generate the missing blocks, and smaller views
    must be prefixes of larger ones (the martingale-reuse contract)."""
    problem = make_problem(8, n=10, r=2)
    store = WalkStore(problem.state, problem.horizon, seed=2, block_walks=32)
    small = store.uniform_view(0, 48)
    generated = store.stats.blocks_generated
    big = store.uniform_view(0, 96)
    assert store.stats.blocks_generated == generated + 1
    np.testing.assert_array_equal(big.walks[:48], small.walks)
    np.testing.assert_array_equal(big.lengths[:48], small.lengths)


def test_sketch_select_with_store_reuses_walks():
    problem = make_problem(9, CumulativeScore(), n=12, r=2)
    store = WalkStore(problem.state, problem.horizon, seed=4, block_walks=64)
    result = sketch_select(
        problem, 2, epsilon=0.3, theta_cap=500, rng=5, store=store
    )
    assert result.seeds.size == 2
    assert store.stats.blocks_generated > 0
    # A second budget extends the same pool: nothing regenerated below cap.
    generated = store.stats.walks_generated
    sketch_select(problem, 2, epsilon=0.3, theta_cap=500, rng=6, store=store)
    assert store.stats.walks_generated == generated


def test_imm_draws_from_store_rr_pool():
    problem = make_problem(10, n=12, r=2)
    store = store_for_problem(problem, seed=8)
    graph = problem.state.graph(problem.target)
    pool = store.rr_pool(problem.target, "ic")
    first = imm(graph, 2, model="ic", rng=0, theta_cap=400, rr_pool=pool)
    assert first.seeds.size == 2
    drawn = store.stats.rr_sets_generated
    assert drawn > 0
    second = imm(graph, 2, model="ic", rng=99, theta_cap=400, rr_pool=pool)
    # Same pooled sample -> same seeds, zero fresh RR sets, reuse counted.
    assert second.seeds.tolist() == first.seeds.tolist()
    assert store.stats.rr_sets_generated == drawn
    assert store.stats.rr_sets_reused > 0
    with pytest.raises(ValueError):
        imm(graph, 2, model="lt", rr_pool=pool)
    other_graph = make_problem(11, n=12, r=2).state.graph(0)
    with pytest.raises(ValueError, match="different graph"):
        imm(other_graph, 2, model="ic", rr_pool=pool)


def test_dead_generation_worker_fails_loudly_and_pool_recovers():
    """A killed worker must fail the request (no silently mispaired stale
    replies), tear the pool down, and let the next call restart it with
    byte-identical blocks."""
    import os
    import signal
    import time

    problem = make_problem(12, n=10, r=2)
    reference = WalkStore(problem.state, problem.horizon, seed=5)
    expected = reference.per_node_view(0, 6)
    with WalkStore(
        problem.state, problem.horizon, seed=5, shards=2, workers=2
    ) as store:
        handles = store._worker_handles()
        os.kill(handles[1].process.pid, signal.SIGKILL)
        time.sleep(0.2)
        with pytest.raises(RuntimeError, match="walk-store worker"):
            store.per_node_view(0, 6)
        assert store._handles is None  # torn down, not half-alive
        view = store.per_node_view(0, 6)  # pool restarts lazily
        np.testing.assert_array_equal(view.walks, expected.walks)
        np.testing.assert_array_equal(view.values, expected.values)


def test_parallel_generation_matches_inline():
    """Worker-pool block generation must be byte-identical to inline."""
    problem = make_problem(11, n=10, r=2)
    inline = WalkStore(problem.state, problem.horizon, seed=6, shards=4)
    a = inline.per_node_view(0, 8)
    with WalkStore(
        problem.state, problem.horizon, seed=6, shards=4, workers=2
    ) as parallel:
        b = parallel.per_node_view(0, 8)
        np.testing.assert_array_equal(a.walks, b.walks)
        np.testing.assert_array_equal(a.lengths, b.lengths)
        np.testing.assert_array_equal(a.values, b.values)


# ----------------------------------------------------------------------
# Adaptive sampling and (ε, δ) accounting
# ----------------------------------------------------------------------
def test_prepare_budget_records_achieved_epsilon_and_warns():
    """Fixed sample counts must surface the precision they actually buy
    (the old estimators had no (ε,δ) accounting at all)."""
    problem = make_problem(12, n=12, r=2)
    engine = make_engine(
        "rw", problem, rng=1, walks_per_node=4, epsilon=0.05
    )
    with pytest.warns(EstimatorPrecisionWarning, match="certifies"):
        engine.prepare_budget(2)
    assert engine.stats.requested_epsilon == 0.05
    assert engine.stats.achieved_epsilon > 0.05
    assert engine.stats.precision_unmet == 1
    # Re-preparing the same budget is idempotent: no duplicate warning.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        engine.prepare_budget(2)
    assert engine.stats.precision_unmet == 1


def test_adaptive_escalation_meets_requested_precision():
    problem = make_problem(13, n=10, r=2)
    engine = make_engine(
        "rw-store", problem, rng=2, walks_per_node=2, epsilon=0.25
    )
    # The per-node target is closed-form, so the escalated sample is bound
    # once, at construction — no throwaway small view is ever indexed.
    assert engine.walks_per_node > 2
    assert engine.store.stats.index_builds == 1
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # escalation must satisfy the bound
        engine.prepare_budget(2)
    assert 0 < engine.stats.achieved_epsilon <= 0.25
    assert engine.stats.precision_unmet == 0
    # A second engine on the same store reuses the pool outright.
    generated = engine.store.stats.blocks_generated
    again = make_engine(
        "rw-store", problem, store=engine.store, walks_per_node=2, epsilon=0.25
    )
    assert again.store.stats.blocks_generated == generated
    assert again.store.stats.blocks_reused > 0


def test_adaptive_cumulative_theta_ladder_warns_at_cap():
    problem = make_problem(14, CumulativeScore(), n=12, r=2)
    engine = make_engine(
        "rw-store:2",
        problem,
        rng=3,
        grouping="walk",
        theta=32,
        theta_cap=256,
        epsilon=0.1,
    )
    with pytest.warns(EstimatorPrecisionWarning):
        engine.prepare_budget(2)
    assert engine.theta == 256  # escalated to the cap
    assert engine.stats.achieved_epsilon > 0.1
    assert engine._opt_lb is not None and engine._opt_lb >= 2


def test_rank_scores_without_guarantee_warn_when_epsilon_requested():
    problem = make_problem(15, n=12, r=3)
    engine = make_engine(
        "rw-store",
        problem,
        rng=4,
        grouping="walk",
        theta=64,
        theta_cap=128,
        epsilon=0.2,
    )
    with pytest.warns(EstimatorPrecisionWarning, match="no closed-form"):
        engine.prepare_budget(2)
    assert engine.stats.achieved_epsilon == 0.0  # not computable
    assert engine.stats.precision_unmet == 1


def test_greedy_rebases_presnapshotted_session_after_escalation():
    """A caller-opened session predating an adaptive escalation must be
    rebased: the committed value and the gains have to come from the same
    (escalated) sample, so value == sum(base, gains) exactly.  Only the
    θ ladder escalates mid-call — it needs the budget — so that is the
    path driven here."""
    problem = make_problem(16, CumulativeScore(), n=12, r=2)
    engine = make_engine(
        "rw-store",
        problem,
        rng=7,
        grouping="walk",
        theta=32,
        theta_cap=256,
        epsilon=0.1,
    )
    session = engine.open_session()  # snapshots the θ=32 base
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", EstimatorPrecisionWarning)
        result = greedy_engine(engine, 2, session=session)
    assert engine.theta > 32  # escalation happened mid-call
    # Base implied by the result must match the *escalated* sample's
    # empty-set estimate — the pre-escalation snapshot was rebased away.
    rebased_base = result.objective - float(np.sum(result.gains))
    assert rebased_base == pytest.approx(engine.evaluate_one(()), abs=1e-12)
    assert session.value == result.objective
    # rebase() itself refuses sessions with commits.
    with pytest.raises(ValueError):
        session.rebase()


# ----------------------------------------------------------------------
# Spec parsing and validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "bad",
    ["rw-store:", "rw-store:0", "rw-store:-3", "rw-store:two", "rw-store:1:1"],
)
def test_malformed_rw_store_specs_rejected(bad):
    """Malformed rw-store:<shards> forms fail with the registry's single
    ValueError, naming every spec and both parameterized forms."""
    with pytest.raises(ValueError) as excinfo:
        parse_engine_spec(bad)
    message = str(excinfo.value)
    assert "rw-store:<shards>" in message
    assert "dm-mp:<workers>" in message
    assert not spec_is_exact_dm(bad)


def test_rw_store_spec_is_not_exact():
    for spec in ("rw-store", "rw-store:2"):
        assert not spec_is_exact_dm(spec)


def test_mismatched_store_rejected_everywhere():
    """A store built for another state/horizon must be refused, never
    silently served: pools are keyed only by (candidate, kind)."""
    from repro.core.random_walk import random_walk_select
    from repro.eval.harness import select_seeds

    problem = make_problem(3, n=10, r=2, horizon=3)
    other_horizon = store_for_problem(make_problem(3, n=10, r=2, horizon=5))
    other_state = store_for_problem(make_problem(4, n=10, r=2, horizon=3))
    for store in (other_horizon, other_state):
        with pytest.raises(ValueError, match="different campaign state"):
            make_engine("rw-store", problem, store=store)
        with pytest.raises(ValueError, match="different campaign state"):
            random_walk_select(problem, 2, store=store)
        with pytest.raises(ValueError, match="different campaign state"):
            sketch_select(problem, 2, theta=50, store=store)
        with pytest.raises(ValueError, match="different campaign state"):
            select_seeds("rw", problem, 2, rng=0, store=store)
    matching = store_for_problem(problem)
    matching.require_problem(problem)  # no raise


def test_store_validation():
    problem = make_problem(0, n=8, r=2)
    with pytest.raises(ValueError):
        WalkStore(problem.state, problem.horizon, shards=0)
    with pytest.raises(ValueError):
        WalkStore(problem.state, problem.horizon, block_walks=0)
    with pytest.raises(ValueError):
        WalkStore(problem.state, problem.horizon, workers=0)
    store = store_for_problem(problem)
    with pytest.raises(ValueError):
        store.pool(0, "sideways")
    with pytest.raises(ValueError):
        store.pool(99, KIND_UNIFORM)
    with pytest.raises(ValueError):
        store.rr_pool(0, "sir")
    with pytest.raises(ValueError):
        make_engine("rw-store", problem, store=store, shards=4)


# ----------------------------------------------------------------------
# Memory-mapped persistence (store_dir / rw-store:<S>:mmap=<DIR>)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_mmap_store_selections_match_in_ram(tmp_path, shards):
    """mmap-backed stores must serve byte-identical walks — and therefore
    byte-identical selections — to the in-RAM store at shards 1/2/4."""
    problem = make_problem(20, n=12, r=2)
    ram_engine = make_engine(
        f"rw-store:{shards}",
        problem,
        rng=31,
        walks_per_node=6,
        adaptive=False,
        epsilon=None,
    )
    reference = greedy_engine(ram_engine, 3)
    engine = make_engine(
        f"rw-store:{shards}:mmap={tmp_path / 'pool'}",
        problem,
        rng=31,
        walks_per_node=6,
        adaptive=False,
        epsilon=None,
    )
    assert engine.store.store_dir == tmp_path / "pool"
    result = greedy_engine(engine, 3)
    assert result.seeds.tolist() == reference.seeds.tolist()
    np.testing.assert_array_equal(result.gains, reference.gains)
    np.testing.assert_array_equal(engine.walks.walks, ram_engine.walks.walks)
    np.testing.assert_array_equal(
        engine.walks.lengths, ram_engine.walks.lengths
    )


def test_warm_reopen_regenerates_zero_blocks(tmp_path):
    """A second store over the same directory (a restart, or another
    process) must serve byte-identical walks while generating nothing."""
    problem = make_problem(21, n=12, r=2)
    cold = WalkStore(problem.state, problem.horizon, seed=5, store_dir=tmp_path)
    view = cold.per_node_view(0, 4)
    assert cold.stats.blocks_generated > 0
    assert cold.stats.blocks_written == cold.stats.blocks_generated
    warm = WalkStore(problem.state, problem.horizon, seed=5, store_dir=tmp_path)
    reopened = warm.per_node_view(0, 4)
    assert warm.stats.blocks_generated == 0
    assert warm.stats.blocks_written == 0
    assert warm.stats.blocks_loaded > 0
    np.testing.assert_array_equal(reopened.walks, view.walks)
    np.testing.assert_array_equal(reopened.lengths, view.lengths)
    np.testing.assert_array_equal(reopened.values, view.values)
    # Warm selections equal cold selections byte for byte.
    cold_eng = make_engine(
        "rw-store", problem, store=cold, adaptive=False, epsilon=None,
        walks_per_node=4,
    )
    warm_eng = make_engine(
        "rw-store", problem, store=warm, adaptive=False, epsilon=None,
        walks_per_node=4,
    )
    a = greedy_engine(cold_eng, 2)
    b = greedy_engine(warm_eng, 2)
    assert a.seeds.tolist() == b.seeds.tolist()
    np.testing.assert_array_equal(a.gains, b.gains)
    assert warm.stats.blocks_generated == 0


def test_mmap_manifest_mismatch_rejected(tmp_path):
    """Re-opening with a different identity must fail loudly, never serve
    walks drawn from different dynamics."""
    problem = make_problem(22, n=10, r=2)
    WalkStore(problem.state, problem.horizon, seed=1, store_dir=tmp_path)
    with pytest.raises(ValueError, match="different identity"):
        WalkStore(problem.state, problem.horizon, seed=2, store_dir=tmp_path)
    with pytest.raises(ValueError, match="different identity"):
        WalkStore(
            problem.state, problem.horizon + 1, seed=1, store_dir=tmp_path
        )
    with pytest.raises(ValueError, match="different identity"):
        WalkStore(
            problem.state,
            problem.horizon,
            seed=1,
            store_dir=tmp_path,
            block_walks=7,
        )
    # The matching identity still opens fine.
    WalkStore(problem.state, problem.horizon, seed=1, store_dir=tmp_path)


def test_mmap_lru_bounds_resident_blocks(tmp_path):
    """Pools must scale past the resident cap: evicted blocks re-open on
    demand and every view stays byte-identical to the unbounded store."""
    problem = make_problem(23, n=10, r=2)
    unbounded = WalkStore(
        problem.state, problem.horizon, seed=4, block_walks=8
    )
    reference = unbounded.uniform_view(0, 64)
    store = WalkStore(
        problem.state,
        problem.horizon,
        seed=4,
        block_walks=8,
        store_dir=tmp_path,
        resident_blocks=2,
    )
    view = store.uniform_view(0, 64)  # 8 blocks through a 2-slot LRU
    pool = store.pool(0, KIND_UNIFORM)
    assert sum(block is not None for block in pool.blocks) <= 2
    assert store.stats.blocks_loaded > 0
    np.testing.assert_array_equal(view.walks, reference.walks)
    np.testing.assert_array_equal(view.values, reference.values)
    with pytest.raises(ValueError):
        WalkStore(
            problem.state, problem.horizon, store_dir=tmp_path, resident_blocks=0
        )


def test_mmap_spec_and_store_dir_conflicts():
    problem = make_problem(24, n=10, r=2)
    shared = store_for_problem(problem, seed=0)
    with pytest.raises(ValueError, match="store_dir conflicts"):
        make_engine("rw-store", problem, store=shared, store_dir="/tmp/x")
    for bad in ("rw-store:mmap=", "rw-store:2:mmap=", "rw-store:mmap"):
        with pytest.raises(ValueError):
            parse_engine_spec(bad)
    name, kwargs = parse_engine_spec("rw-store:2:mmap=/data/walks:v1")
    assert name == "rw-store"
    assert kwargs == {"shards": 2, "store_dir": "/data/walks:v1"}


def test_engine_close_only_closes_private_store():
    problem = make_problem(1, n=8, r=2)
    shared = store_for_problem(problem, seed=0, workers=1)
    engine = make_engine(
        "rw-store", problem, store=shared, adaptive=False, epsilon=None
    )
    shared._worker_handles()  # spin the pool up
    engine.close()
    assert shared._handles is not None  # shared store left running
    shared.close()
    assert shared._handles is None
