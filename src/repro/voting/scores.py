"""The five voting-based scoring functions of paper §II-B.

All scores share the :class:`VotingScore` interface: ``evaluate(opinions, q)``
maps a full opinion matrix ``B(t) ∈ [0,1]^{r×n}`` and a candidate index to a
scalar score.  The four rank-based scores additionally expose per-user
contributions given *fixed* competitor opinions (:class:`SeparableScore`),
which the greedy optimizers exploit: seeding the target only changes the
target's own row, so competitor opinions can be computed once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.voting.rank import rank_against, rank_against_batch


class VotingScore(ABC):
    """A scoring function ``F(B(t), c_q)`` over the opinion matrix."""

    #: short identifier used in reports ("cumulative", "plurality", ...)
    name: str = "abstract"

    @abstractmethod
    def evaluate(self, opinions: np.ndarray, q: int) -> float:
        """Score of candidate ``q`` under the full opinion matrix ``(r, n)``."""

    def evaluate_all(self, opinions: np.ndarray) -> np.ndarray:
        """Score of every candidate (used for winner determination)."""
        r = np.asarray(opinions).shape[0]
        return np.array([self.evaluate(opinions, q) for q in range(r)])

    def score_targets(
        self, values: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        """Target score for ``C`` hypothetical target-opinion rows at once.

        Parameters
        ----------
        values:
            ``(C, n)`` target opinions — one row per hypothesis (e.g. per
            candidate seed set in a batched greedy round).
        others_by_user:
            ``(n, r-1)`` fixed competitor opinions shared by all rows.

        The base implementation reassembles a full opinion matrix per row
        and calls :meth:`evaluate`; subclasses override with vectorized
        paths (this is the batch seam used by
        :class:`repro.core.engine.BatchedDMEngine`).
        """
        values = np.asarray(values, dtype=np.float64)
        others = np.asarray(others_by_user, dtype=np.float64).T  # (r-1, n)
        out = np.empty(values.shape[0], dtype=np.float64)
        for i, row in enumerate(values):
            opinions = np.vstack([row[None, :], others])
            out[i] = self.evaluate(opinions, 0)
        return out

    def score_targets_T(
        self, values_T: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        """Transposed :meth:`score_targets`: values come as ``(n, C)``.

        The users-by-sets orientation is the batched DM engine's native
        memory layout; overriding this avoids a strided transpose on the
        hot path.  The base implementation falls back to the row layout.
        """
        return self.score_targets(
            np.ascontiguousarray(np.asarray(values_T).T), others_by_user
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SeparableScore(VotingScore):
    """Scores of the form ``F = Σ_v contribution(b_qv; competitors of v)``."""

    @abstractmethod
    def contributions(
        self, values: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        """Per-user contribution of target values against fixed competitors.

        Parameters
        ----------
        values:
            ``(m,)`` target-candidate opinions of ``m`` users.
        others_by_user:
            ``(m, r-1)`` competitor opinions of the same users.
        """

    def contributions_batch(
        self, values: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        """Per-user contributions for ``C`` target rows at once: ``(C, m)``.

        The base implementation loops :meth:`contributions` per row;
        subclasses provide vectorized overrides.  The dtype may be boolean
        for indicator-style scores (p-approval); consumers must treat the
        result numerically (sums / dot products promote correctly).
        """
        values = np.asarray(values, dtype=np.float64)
        return (
            np.stack([self.contributions(row, others_by_user) for row in values])
            if values.shape[0]
            else np.empty((0, values.shape[1]), dtype=np.float64)
        )

    def evaluate(self, opinions: np.ndarray, q: int) -> float:
        opinions = np.asarray(opinions, dtype=np.float64)
        others = np.delete(opinions, q, axis=0).T  # (n, r-1)
        return float(self.contributions(opinions[q], others).sum())

    def contributions_batch_T(
        self, values_T: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        """Transposed :meth:`contributions_batch`: ``(m, C)`` in and out."""
        return np.ascontiguousarray(
            self.contributions_batch(
                np.ascontiguousarray(np.asarray(values_T).T), others_by_user
            ).T
        )

    def score_targets(
        self, values: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        return self.contributions_batch(values, others_by_user).sum(axis=1)

    def score_targets_T(
        self, values_T: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        return self.contributions_batch_T(values_T, others_by_user).sum(
            axis=0, dtype=np.float64
        )


class CumulativeScore(SeparableScore):
    """Sum of all users' opinions on the target (Eq. 3).

    The only submodular score (Theorem 3); competitor opinions are ignored.
    """

    name = "cumulative"

    def contributions(
        self, values: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)

    def contributions_batch(
        self, values: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)

    def contributions_batch_T(
        self, values_T: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        return np.asarray(values_T, dtype=np.float64)


class PositionalPApprovalScore(SeparableScore):
    """Positional-p-approval (Eq. 6): ``Σ_v ω[β(b_qv)] · 1[β(b_qv) ≤ p]``.

    Parameters
    ----------
    p:
        Approval cutoff, ``1 ≤ p ≤ r``.
    weights:
        Position weights ``(ω[1], ..., ω[r])`` with ``ω[i] ∈ [0, 1]`` and
        non-increasing (§II-B).  Positions beyond ``p`` never contribute.
    """

    name = "positional-p-approval"

    def __init__(self, p: int, weights: np.ndarray) -> None:
        self.p = int(p)
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        if self.weights.ndim != 1 or self.weights.size < self.p:
            raise ValueError("need at least p position weights")
        if self.weights.min() < 0 or self.weights.max() > 1:
            raise ValueError("position weights must lie in [0, 1]")
        if np.any(np.diff(self.weights) > 1e-12):
            raise ValueError("position weights must be non-increasing")

    def weight_at(self, position: int) -> float:
        """ω at a 1-based position (0 beyond the stored weights)."""
        if 1 <= position <= self.weights.size:
            return float(self.weights[position - 1])
        return 0.0

    def contributions(
        self, values: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        beta = rank_against(values, others_by_user)
        return self._weights_of_ranks(beta)

    def contributions_batch(
        self, values: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        beta = rank_against_batch(values, others_by_user)
        return self._weights_of_ranks(beta)

    def contributions_batch_T(
        self, values_T: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        values_T = np.asarray(values_T, dtype=np.float64)
        others = np.asarray(others_by_user, dtype=np.float64)
        beta = 1 + np.sum(
            others[:, None, :] >= values_T[:, :, None], axis=2, dtype=np.int64
        )
        return self._weights_of_ranks(beta)

    def _weights_of_ranks(self, beta: np.ndarray) -> np.ndarray:
        padded = np.concatenate([self.weights, np.zeros(1)])
        idx = np.minimum(beta - 1, padded.size - 1)
        return np.where(beta <= self.p, padded[idx], 0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PositionalPApprovalScore(p={self.p}, weights={self.weights.tolist()})"


class PApprovalScore(PositionalPApprovalScore):
    """p-approval (Eq. 5): number of users ranking the target in the top p."""

    name = "p-approval"

    def __init__(self, p: int, r: int | None = None) -> None:
        size = max(int(p), 1) if r is None else int(r)
        super().__init__(p, np.ones(size))

    def contributions_batch(
        self, values: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        # Uniform top-p weights: the contribution is the plain indicator
        # ``rank <= p``, i.e. at most p-1 competitors at or above the value
        # — no rank materialization or weight gather needed.  Competitor
        # counts accumulate per-competitor in uint8 (r <= 256 always holds
        # in practice) to avoid a (C, n, r-1) 3-D temporary.
        values = np.asarray(values, dtype=np.float64)
        others = np.asarray(others_by_user, dtype=np.float64)
        n_comp = others.shape[1]
        if n_comp <= self.p - 1:
            # Fewer competitors than approval slots: everyone approves.
            return np.ones(values.shape, dtype=np.float64)
        if n_comp == 1:
            # Head-to-head (r = 2, p = 1): approval iff strictly ahead.
            return values > others[:, 0][None, :]
        if n_comp >= 255:
            beta = rank_against_batch(values, others)
            return beta <= self.p
        count_ge = np.zeros(values.shape, dtype=np.uint8)
        for x in range(n_comp):
            count_ge += others[:, x][None, :] >= values
        return count_ge < self.p

    def contributions_batch_T(
        self, values_T: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        # Same fast paths as contributions_batch, in (m, C) orientation.
        values_T = np.asarray(values_T, dtype=np.float64)
        others = np.asarray(others_by_user, dtype=np.float64)
        n_comp = others.shape[1]
        if n_comp <= self.p - 1:
            return np.ones(values_T.shape, dtype=np.float64)
        if n_comp == 1:
            return values_T > others[:, 0][:, None]
        if n_comp >= 255:
            return super().contributions_batch_T(values_T, others)
        count_ge = np.zeros(values_T.shape, dtype=np.uint8)
        for x in range(n_comp):
            count_ge += others[:, x][:, None] >= values_T
        return count_ge < self.p

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PApprovalScore(p={self.p})"


class PluralityScore(PApprovalScore):
    """Plurality (Eq. 4): number of users strictly preferring the target."""

    name = "plurality"

    def __init__(self) -> None:
        super().__init__(1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "PluralityScore()"


class CopelandScore(VotingScore):
    """Copeland (Eq. 7): one-on-one competitions won by the target.

    ``c_q ≻_M c_x`` when strictly more users hold a higher opinion of ``q``
    than of ``x`` than the other way around.  Not separable per user: a
    single user's change can flip a whole pairwise competition.
    """

    name = "copeland"

    def evaluate(self, opinions: np.ndarray, q: int) -> float:
        opinions = np.asarray(opinions, dtype=np.float64)
        r = opinions.shape[0]
        if not 0 <= q < r:
            raise ValueError(f"candidate index {q} out of range for r={r}")
        b_q = opinions[q]
        score = 0
        for x in range(r):
            if x == q:
                continue
            wins = int(np.sum(b_q > opinions[x]))
            losses = int(np.sum(b_q < opinions[x]))
            if wins > losses:
                score += 1
        return float(score)

    def score_targets(
        self, values: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        """Copeland score of ``C`` target rows against fixed competitors.

        Competitions among the competitors themselves never involve the
        target's opinions, so only the ``r-1`` target-vs-x duels matter —
        one ``(C, n)`` comparison pair per competitor.
        """
        values = np.asarray(values, dtype=np.float64)
        others = np.asarray(others_by_user, dtype=np.float64)
        score = np.zeros(values.shape[0], dtype=np.float64)
        for x in range(others.shape[1]):
            col = others[:, x][None, :]
            wins = np.sum(values > col, axis=1)
            losses = np.sum(values < col, axis=1)
            score += wins > losses
        return score

    def score_targets_T(
        self, values_T: np.ndarray, others_by_user: np.ndarray
    ) -> np.ndarray:
        values_T = np.asarray(values_T, dtype=np.float64)
        others = np.asarray(others_by_user, dtype=np.float64)
        score = np.zeros(values_T.shape[1], dtype=np.float64)
        for x in range(others.shape[1]):
            col = others[:, x][:, None]
            wins = np.sum(values_T > col, axis=0)
            losses = np.sum(values_T < col, axis=0)
            score += wins > losses
        return score


_SIMPLE_SCORES = {
    "cumulative": CumulativeScore,
    "plurality": PluralityScore,
    "copeland": CopelandScore,
}


def make_score(
    name: str, *, p: int | None = None, weights: np.ndarray | None = None
) -> VotingScore:
    """Factory from a score name.

    ``"cumulative" | "plurality" | "copeland"`` take no parameters;
    ``"p-approval"`` needs ``p``; ``"positional-p-approval"`` needs ``p`` and
    ``weights``.
    """
    key = name.lower().replace("_", "-")
    if key in _SIMPLE_SCORES:
        return _SIMPLE_SCORES[key]()
    if key == "p-approval":
        if p is None:
            raise ValueError("p-approval requires p")
        return PApprovalScore(p)
    if key == "positional-p-approval":
        if p is None or weights is None:
            raise ValueError("positional-p-approval requires p and weights")
        return PositionalPApprovalScore(p, weights)
    raise ValueError(f"unknown score {name!r}")
