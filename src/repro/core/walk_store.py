"""Persistent sharded walk store behind every walk/sketch consumer (§V/§VI).

One :class:`WalkStore` owns all reverse-walk material for a campaign state:
walks are generated once per *block* (a fixed-width generation unit with its
own deterministic seed), memoized per ``(candidate, kind, horizon)`` pool,
and served to selection sessions as lightweight copy-on-write views that
re-truncate incrementally on seed commits instead of regenerating.  The
store is what lets the adaptive (IMM-style) sample-size escalation double θ
while reusing every walk already drawn — the martingale-sampling trick of
the RIS lineage the paper benchmarks against.

Sharding
--------
A *block* is the canonical generation unit: ``block_walks`` uniform-start
walks, or one walk per node for per-node pools.  Each block is seeded by
``SeedSequence([root, candidate, kind, block_index])``, so the walks a pool
produces are a pure function of the store seed and the walk count — *never*
of the shard count.  ``shards`` only groups blocks into generation batches
(the unit fanned out to worker processes when ``workers`` is set), which is
what makes ``rw-store:1/2/4`` selections byte-identical and lets a future
multi-host deployment split the same pools without re-deriving seeds.

Serving
-------
``per_node_view`` / ``uniform_view`` return :meth:`TruncatedWalks.share`
clones of a cached pristine master: the padded walk matrices and the
first-occurrence index are shared read-only, the truncation state is
copy-on-write.  A greedy session truncates its clone seed by seed
(Post-Generation Truncation, Theorem 9) while the master — and every other
live view — stays byte-identical to the freshly generated state.

Persistence (``store_dir``)
---------------------------
Passing ``store_dir`` makes the store *out-of-core*: every generated block
is persisted as a pair of plain ``.npy`` files named by the deterministic
``(store seed, candidate, kind, horizon, block index)`` identity, next to
a versioned ``manifest.json`` that pins the identity parameters.  Blocks
are re-opened lazily as read-only memory maps, and an LRU bounds how many
stay resident, so pools scale past RAM.  Because block content is a pure
function of its identity, a second process — or a restart — that opens
the same directory with the same seed serves **byte-identical** walks
while regenerating *zero* blocks (``StoreStats.blocks_loaded`` counts the
mmap re-opens; ``blocks_generated`` stays 0 on a warm open).  Writes are
atomic (tmp + rename) and idempotent across concurrent writers: any two
stores can only ever write the same bytes for the same identity.  The
manifest also records a crc32 per block part; blocks are verified before
every mmap re-open, and a damaged block is quarantined and regenerated in
place from its identity (``blocks_quarantined`` / ``blocks_repaired``).

The store also pools the RR sets of the classic-IM baselines
(:func:`repro.baselines.imm.imm` accepts an ``rr_pool``), so an IC/LT sweep
over budgets draws from one extending sample instead of private walk sets.
RR-set pools are in-memory only — persistence covers the walk blocks.
"""

from __future__ import annotations

import io
import json
import multiprocessing as mp
import os
import zlib
from dataclasses import dataclass, fields
from pathlib import Path

import numpy as np

from repro.core import faults
from repro.core.random_walk import (
    TruncatedWalks,
    generate_reverse_walks_streamed,
)
from repro.graph.alias import AliasSampler
from repro.graph.digraph import InfluenceGraph
from repro.opinion.state import CampaignState
from repro.utils.rng import ensure_rng
from repro.utils.workers import stop_worker_pool

#: Pool kinds: ``per-node`` blocks hold one walk per node (Algorithm 4,
#: grouping="start"); ``uniform`` blocks hold ``block_walks`` uniform-start
#: sketch walks (Algorithm 5, grouping="walk").
KIND_PER_NODE = "per-node"
KIND_UNIFORM = "uniform"

#: Stable integer codes mixed into per-block seeds; RR-set pools use the
#: diffusion-model codes.  Never renumber — block seeds are part of the
#: reproducibility contract.
_KIND_CODES = {KIND_PER_NODE: 1, KIND_UNIFORM: 2, "ic": 11, "lt": 12}

#: Default walks per uniform block.
DEFAULT_BLOCK_WALKS = 1024

#: Default RR sets per pool block.
DEFAULT_RR_BLOCK = 256

#: Materialized masters kept per pool (FIFO): an adaptive doubling ladder
#: touches O(log θ) counts, each a concatenated copy of the block rows.
_MASTER_CACHE_CAP = 8

#: On-disk shard format version (bumped on any layout/naming change).
#: Format 2 switched block generation to one deterministic rng stream per
#: walk (``generate_reverse_walks_streamed``), which is what lets a graph
#: delta regenerate individual walks instead of whole blocks.  Format 3
#: records a crc32 per block part in the manifest; block bytes and names
#: are unchanged, so format-2 directories open read-compatibly and are
#: upgraded in place on first open.
STORE_FORMAT = 3

#: On-disk formats this build can open.  Format 2 lacks checksums; its
#: blocks are checksummed once at open and the manifest upgraded.
_COMPAT_FORMATS = (2, 3)

#: Default cap on memory-mapped blocks kept resident per store.
DEFAULT_RESIDENT_BLOCKS = 64


@dataclass
class StoreStats:
    """Deterministic walk-generation work counters (``store.stats``).

    ``walk_steps_generated`` is the walk-store analogue of the engines'
    evolution counters: one unit per reverse-walk step actually sampled,
    immune to timer noise, identical across shard and worker counts.  The
    ``*_reused`` counters make memoization visible: a second view over the
    same pool serves cached blocks and costs zero generation work.
    """

    blocks_generated: int = 0
    blocks_reused: int = 0
    #: Out-of-core traffic (``store_dir`` stores): blocks persisted to and
    #: memory-mapped back from disk.  A warm re-open serves every block
    #: through ``blocks_loaded`` with ``blocks_generated == 0``.
    blocks_written: int = 0
    blocks_loaded: int = 0
    #: Delta traffic (:meth:`WalkStore.apply_delta`): blocks containing at
    #: least one walk that crossed a changed column, and the individual
    #: walks regenerated inside them.  A delta path leaves
    #: ``blocks_generated`` untouched — no block is regenerated whole.
    blocks_invalidated: int = 0
    walks_patched: int = 0
    #: Integrity traffic (``store_dir`` stores): persisted blocks whose
    #: bytes failed their manifest crc32 on load (the damaged files are
    #: renamed to ``*.quarantined``) and the blocks regenerated in place
    #: from their deterministic identity.  Repair is real generation
    #: work, so a warm open that only repaired damage reports
    #: ``blocks_generated == blocks_repaired``.
    blocks_quarantined: int = 0
    blocks_repaired: int = 0
    walks_generated: int = 0
    walk_steps_generated: int = 0
    index_builds: int = 0
    views_served: int = 0
    rr_sets_generated: int = 0
    rr_sets_reused: int = 0

    def reset(self) -> None:
        for field in fields(self):
            setattr(self, field.name, 0)

    def generation_work(self) -> int:
        """Total sampling work: walk steps plus RR-set draws."""
        return self.walk_steps_generated + self.rr_sets_generated


def _block_entropy(root: int, candidate: int, kind: str, index: int) -> list[int]:
    """Entropy list for one block's ``SeedSequence`` (shard-invariant)."""
    return [int(root), int(candidate), _KIND_CODES[kind], int(index)]


def _generate_block(
    graph: InfluenceGraph,
    stubbornness: np.ndarray,
    horizon: int,
    kind: str,
    block_walks: int,
    entropy: list[int],
    sampler: AliasSampler | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate one canonical block of reverse walks from its entropy.

    Start nodes come from the block-level stream (uniform pools) or are
    simply ``arange(n)`` (per-node pools); the walks themselves use one
    sub-stream per walk (``SeedSequence(entropy, spawn_key=(i,))``), so
    :meth:`WalkStore.apply_delta` can regenerate walk ``i`` alone and land
    on exactly the bytes a from-scratch block generation would produce.
    """
    starts = _block_starts(graph.n, kind, block_walks, entropy)
    return generate_reverse_walks_streamed(
        graph, stubbornness, horizon, starts, entropy, sampler=sampler
    )


def _block_starts(
    n: int, kind: str, block_walks: int, entropy: list[int]
) -> np.ndarray:
    """Deterministic start nodes of one block (independent of the graph)."""
    if kind == KIND_PER_NODE:
        return np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(np.random.SeedSequence(entropy))
    return rng.integers(0, n, size=block_walks)


def _store_worker_main(conn, state: CampaignState, horizon: int) -> None:
    """Worker loop: generate requested blocks, reply with the raw arrays.

    The campaign state ships once at pool start (fork-inherited where
    available, pickled otherwise — the same contract as the dm-mp pool);
    per-request messages carry only block entropies.
    """
    samplers: dict[int, AliasSampler] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        op = message[0]
        if op == "stop":
            break
        try:
            if op != "gen":
                raise ValueError(f"unknown walk-store worker op {op!r}")
            _, candidate, kind, block_walks, entropies = message
            graph = state.graph(candidate)
            sampler = samplers.get(candidate)
            if sampler is None:
                sampler = samplers[candidate] = AliasSampler(graph.csc)
            blocks = [
                _generate_block(
                    graph,
                    state.stubbornness[candidate],
                    horizon,
                    kind,
                    block_walks,
                    entropy,
                    sampler,
                )
                for entropy in entropies
            ]
            conn.send(("ok", blocks))
        except Exception as exc:  # pragma: no cover - worker-side failures
            import traceback

            conn.send(("err", f"{exc}\n{traceback.format_exc()}"))


class RRSetPool:
    """An extending pool of RR sets for one ``(candidate, model)`` pair.

    Blocks of :data:`DEFAULT_RR_BLOCK` RR sets are generated with
    deterministic per-block seeds, so any two consumers asking for ``m``
    sets see the same prefix of the same sample — IMM's lower-bound rounds
    and its final θ draw extend one martingale sample instead of redrawing.
    """

    def __init__(
        self,
        graph: InfluenceGraph,
        model: str,
        root: int,
        candidate: int,
        stats: StoreStats,
        *,
        block_size: int = DEFAULT_RR_BLOCK,
    ) -> None:
        if model not in ("ic", "lt"):
            raise ValueError(f"model must be 'ic' or 'lt', got {model!r}")
        self.graph = graph
        self.model = model
        self.block_size = int(block_size)
        self._root = int(root)
        self._candidate = int(candidate)
        self._stats = stats
        self._sets: list[np.ndarray] = []

    def ensure(self, count: int) -> list[np.ndarray]:
        """At least ``count`` RR sets; returns the (shared) prefix list."""
        count = int(count)
        from repro.baselines.rrset import rr_set_ic, rr_set_lt

        make_rr = rr_set_ic if self.model == "ic" else rr_set_lt
        self._stats.rr_sets_reused += min(len(self._sets), count)
        while len(self._sets) < count:
            block_index = len(self._sets) // self.block_size
            entropy = _block_entropy(
                self._root, self._candidate, self.model, block_index
            )
            rng = np.random.default_rng(np.random.SeedSequence(entropy))
            for _ in range(self.block_size):
                root_node = int(rng.integers(0, self.graph.n))
                self._sets.append(make_rr(self.graph, root_node, rng))
                self._stats.rr_sets_generated += 1
        return self._sets[:count]


class _WalkPool:
    """All blocks of one ``(candidate, kind)`` pool plus cached masters.

    ``blocks[i]`` is the resident ``(walks, lengths)`` pair of block ``i``
    or ``None`` for a block that lives on disk only (``store_dir``
    stores): a ``None`` entry still counts as *covered* — it never
    regenerates — and is re-opened lazily as a read-only memory map by
    :meth:`block`, with the store-wide LRU bounding residency.
    """

    def __init__(self, store: "WalkStore", candidate: int, kind: str) -> None:
        self.store = store
        self.candidate = int(candidate)
        self.kind = kind
        n = store.state.n
        self.block_walks = n if kind == KIND_PER_NODE else store.block_walks
        self.blocks: list[tuple[np.ndarray, np.ndarray] | None] = []
        self._sampler: AliasSampler | None = None
        self._masters: dict[int, TruncatedWalks] = {}
        if store.store_dir is not None:
            # Adopt the contiguous prefix of blocks a previous open (or
            # another process) already persisted: they are covered, not
            # regenerated, and load lazily on first use.
            self.blocks = [None] * store._disk_prefix(self.candidate, kind)

    # ------------------------------------------------------------------
    def sampler(self) -> AliasSampler:
        if self._sampler is None:
            graph = self.store.state.graph(self.candidate)
            self._sampler = AliasSampler(graph.csc)
        return self._sampler

    def _generate_inline(self, indices: list[int]) -> list[tuple]:
        state = self.store.state
        graph = state.graph(self.candidate)
        return [
            _generate_block(
                graph,
                state.stubbornness[self.candidate],
                self.store.horizon,
                self.kind,
                self.block_walks,
                _block_entropy(self.store.root, self.candidate, self.kind, i),
                self.sampler(),
            )
            for i in indices
        ]

    def ensure_walks(self, num_walks: int) -> None:
        """Generate the blocks still missing to cover ``num_walks`` walks.

        Missing blocks are split into (at most) ``store.shards`` contiguous
        shard batches; batches run on the store's worker pool when one is
        configured, inline otherwise.  Either way the walks are identical:
        every block is a pure function of its own seed.
        """
        stats = self.store.stats
        have = len(self.blocks)
        need = -(-int(num_walks) // self.block_walks)  # ceil division
        if need <= have:
            stats.blocks_reused += need
            return
        stats.blocks_reused += have
        missing = list(range(have, need))
        batches = [
            batch.tolist()
            for batch in np.array_split(
                np.asarray(missing), min(self.store.shards, len(missing))
            )
            if batch.size
        ]
        generated: list[tuple] = []
        workers = self.store._worker_handles()
        if workers:
            # The dm-mp pool contract: send everything, then drain every
            # live reply even after a failure — an undrained pipe would
            # pair a *stale* reply with a later request and silently
            # append walks generated for a different (pool, block).  Any
            # failure tears the pool down (it restarts lazily).
            live: list[int] = []
            try:
                for i, batch in enumerate(batches):
                    entropies = [
                        _block_entropy(
                            self.store.root, self.candidate, self.kind, index
                        )
                        for index in batch
                    ]
                    workers[i % len(workers)].conn.send(
                        (
                            "gen",
                            self.candidate,
                            self.kind,
                            self.block_walks,
                            entropies,
                        )
                    )
                    live.append(i)
            except (BrokenPipeError, OSError) as exc:
                self.store.close()
                raise RuntimeError(
                    f"walk-store worker unreachable: {exc!r}"
                ) from exc
            failure: str | None = None
            for i in live:
                try:
                    status, payload = workers[i % len(workers)].conn.recv()
                except (EOFError, OSError) as exc:
                    failure = f"walk-store worker died: {exc!r}"
                    continue
                if status != "ok":
                    failure = f"walk-store worker failed:\n{payload}"
                    continue
                generated.extend(payload)
            if failure is not None:
                self.store.close()
                raise RuntimeError(failure)
        else:
            for batch in batches:
                generated.extend(self._generate_inline(batch))
        for index, (walks, lengths) in zip(missing, generated):
            self.blocks.append((walks, lengths))
            stats.blocks_generated += 1
            stats.walks_generated += walks.shape[0]
            stats.walk_steps_generated += int(lengths.sum())
            if self.store.store_dir is not None:
                self.store._write_block(
                    self.candidate, self.kind, index, walks, lengths
                )
                self.store._touch_resident(self, index)

    def block(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Block ``index``, memory-mapping it back from disk if evicted."""
        entry = self.blocks[index]
        if entry is None:
            entry = self.store._load_block(self.candidate, self.kind, index)
            self.blocks[index] = entry
        if self.store.store_dir is not None:
            self.store._touch_resident(self, index)
        return entry

    def master(self, num_walks: int) -> TruncatedWalks:
        """Pristine memoized :class:`TruncatedWalks` over ``num_walks`` walks."""
        num_walks = int(num_walks)
        cached = self._masters.get(num_walks)
        if cached is not None:
            self.store.stats.blocks_reused += -(-num_walks // self.block_walks)
            return cached
        self.ensure_walks(num_walks)
        # Only the covering prefix of blocks is materialized: a small view
        # over a pool a larger consumer already escalated must not copy
        # the whole pool.
        need = -(-num_walks // self.block_walks)
        parts = [self.block(i) for i in range(need)]
        walks = np.concatenate([b[0] for b in parts])[:num_walks]
        lengths = np.concatenate([b[1] for b in parts])[:num_walks]
        state = self.store.state
        master = TruncatedWalks(
            walks,
            lengths,
            state.initial_opinions[self.candidate],
            state.n,
        )
        self.store.stats.index_builds += 1
        while len(self._masters) >= _MASTER_CACHE_CAP:
            self._masters.pop(next(iter(self._masters)))
        self._masters[num_walks] = master
        return master


class _StoreWorkerHandle:
    """One generation worker: the process and the parent pipe end."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class WalkStore:
    """Persistent, sharded, memoizing store of reverse walks and RR sets.

    Parameters
    ----------
    state:
        The multi-campaign instance; pools are keyed per candidate, so one
        store can serve every target of a sweep.
    horizon:
        Walk length ``t`` — part of every pool's identity.
    seed:
        Root entropy (int, Generator, or ``None``).  A Generator is
        consumed for one draw, which is how engine specs built from the
        same ``rng`` land on the same pools.
    block_walks:
        Uniform-pool generation unit (per-node pools use ``n``).
    shards:
        Generation batches per ``ensure`` call — grouping only, never part
        of a block seed, so walks are byte-identical for every value.
    workers:
        Optional worker-process count for parallel block generation (the
        dm-mp pool contract: state ships once, messages carry seeds).
    store_dir:
        Optional directory for memory-mapped persistence (the
        ``rw-store:<S>:mmap=<DIR>`` spec / CLI ``--store-dir``): generated
        blocks are written as versioned ``.npy`` shards and re-opened
        lazily as read-only memmaps, so the pools survive process
        restarts and scale past RAM.  The directory pins the store
        identity in ``manifest.json``; re-opening with a different seed,
        horizon or block size raises instead of silently serving walks
        drawn from different dynamics.
    resident_blocks:
        LRU cap on memory-mapped blocks kept resident at once (only
        meaningful with ``store_dir``); evicted blocks re-open on demand.
    """

    def __init__(
        self,
        state: CampaignState,
        horizon: int,
        *,
        seed: int | np.random.Generator | None = 0,
        block_walks: int = DEFAULT_BLOCK_WALKS,
        shards: int = 1,
        workers: int | None = None,
        start_method: str | None = None,
        store_dir: str | os.PathLike | None = None,
        resident_blocks: int = DEFAULT_RESIDENT_BLOCKS,
    ) -> None:
        if int(shards) < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if block_walks < 1:
            raise ValueError(f"block_walks must be >= 1, got {block_walks}")
        if int(resident_blocks) < 1:
            raise ValueError(f"resident_blocks must be >= 1, got {resident_blocks}")
        self.state = state
        self.horizon = int(horizon)
        self.root = int(ensure_rng(seed).integers(0, np.iinfo(np.int64).max))
        self.block_walks = int(block_walks)
        self.shards = int(shards)
        self.workers = None if workers is None else int(workers)
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = str(start_method)
        self.stats = StoreStats()
        self.store_dir = None if store_dir is None else Path(store_dir)
        self.resident_blocks = int(resident_blocks)
        #: Graph surgery counters the pooled walks were drawn under, one
        #: per candidate; :meth:`apply_delta` advances them, and mmap
        #: persistence pins them in the manifest.
        self._graph_versions = [int(g.version) for g in state.graphs]
        #: crc32 per persisted block part, keyed by block stem — the
        #: manifest's integrity ledger (see ``_write_block``).
        self._checksums: dict[str, dict[str, int]] = {}
        self._resident: dict[tuple[int, str, int], _WalkPool] = {}
        self._pools: dict[tuple[int, str], _WalkPool] = {}
        self._rr_pools: dict[tuple[int, str], RRSetPool] = {}
        self._handles: list[_StoreWorkerHandle] | None = None
        if self.store_dir is not None:
            self._open_store_dir()

    # ------------------------------------------------------------------
    # Memory-mapped persistence (``store_dir``)
    # ------------------------------------------------------------------
    def _manifest(self) -> dict:
        """The identity parameters every block file name/content derives from.

        ``graph_versions`` is the delta clock: blocks on disk were drawn
        under exactly these per-candidate surgery counters.  It is *not*
        part of the immutable identity — :meth:`apply_delta` patches the
        affected blocks and advances it atomically.  ``checksums`` is the
        integrity ledger (crc32 per block part, keyed by block stem) and
        is likewise excluded from the identity comparison: it grows with
        the store and is rewritten by every block write.
        """
        return {
            "format": STORE_FORMAT,
            "root": self.root,
            "horizon": self.horizon,
            "block_walks": self.block_walks,
            "n": self.state.n,
            "graph_versions": list(self._graph_versions),
            "checksums": {
                stem: dict(parts)
                for stem, parts in sorted(self._checksums.items())
            },
        }

    def _write_manifest(self) -> None:
        path = self.store_dir / "manifest.json"
        tmp = path.with_name(f"manifest.json.tmp{os.getpid()}")
        tmp.write_text(
            json.dumps(self._manifest(), indent=2, sort_keys=True) + "\n"
        )
        os.replace(tmp, path)

    def _open_store_dir(self) -> None:
        """Create or validate the on-disk store (atomic manifest write)."""
        self.store_dir.mkdir(parents=True, exist_ok=True)
        manifest = self._manifest()
        path = self.store_dir / "manifest.json"
        if path.exists():
            existing = json.loads(path.read_text())
            volatile = ("graph_versions", "checksums", "format")
            identity = {k: v for k, v in manifest.items() if k not in volatile}
            disk_identity = {
                k: v for k, v in existing.items() if k not in volatile
            }
            if disk_identity != identity:
                diffs = ", ".join(
                    f"{key}: disk={existing.get(key)!r} != ours={value!r}"
                    for key, value in identity.items()
                    if existing.get(key) != value
                )
                raise ValueError(
                    f"store at {self.store_dir} was created with a different "
                    f"identity ({diffs}); reuse the original seed/horizon/"
                    "block_walks or point at a fresh directory"
                )
            disk_format = existing.get("format")
            if disk_format not in _COMPAT_FORMATS:
                raise ValueError(
                    f"store at {self.store_dir} uses on-disk format "
                    f"{disk_format!r}; this build reads formats "
                    f"{list(_COMPAT_FORMATS)}"
                )
            if existing.get("graph_versions") != manifest["graph_versions"]:
                raise ValueError(
                    f"store at {self.store_dir} holds walks drawn at graph "
                    f"versions {existing.get('graph_versions')} but the "
                    f"current graphs are at {manifest['graph_versions']}; "
                    "open the store before mutating the graphs and forward "
                    "the delta through WalkStore.apply_delta, or point at a "
                    "fresh directory"
                )
            self._checksums = {
                str(stem): {part: int(crc) for part, crc in parts.items()}
                for stem, parts in existing.get("checksums", {}).items()
            }
            if disk_format != STORE_FORMAT:
                # Format-2 store: checksum the blocks it already holds
                # once, then upgrade the manifest in place.
                self._adopt_disk_checksums()
                self._write_manifest()
        else:
            self._write_manifest()

    def _adopt_disk_checksums(self) -> None:
        """Record crc32s for pre-checksum (format-2) blocks already on disk."""
        for path in sorted(self.store_dir.glob("*.npy")):
            pieces = path.name.split(".")
            if len(pieces) != 3 or pieces[1] not in ("walks", "lengths"):
                continue
            stem, part = pieces[0], pieces[1]
            self._checksums.setdefault(stem, {})[part] = zlib.crc32(
                path.read_bytes()
            )

    def _block_stem(self, candidate: int, kind: str, index: int) -> str:
        """Checksum-ledger key of one block: its identity, minus the part."""
        return (
            f"c{int(candidate)}-k{_KIND_CODES[kind]}-h{self.horizon}"
            f"-b{int(index):06d}"
        )

    def _block_path(self, candidate: int, kind: str, index: int, part: str) -> Path:
        """Deterministic shard file name: one identity, one path, forever."""
        return self.store_dir / (
            f"{self._block_stem(candidate, kind, index)}.{part}.npy"
        )

    def _disk_prefix(self, candidate: int, kind: str) -> int:
        """Number of contiguous complete blocks already on disk."""
        count = 0
        while all(
            self._block_path(candidate, kind, count, part).exists()
            for part in ("walks", "lengths")
        ):
            count += 1
        return count

    def _write_block(
        self,
        candidate: int,
        kind: str,
        index: int,
        walks: np.ndarray,
        lengths: np.ndarray,
    ) -> None:
        """Persist one block atomically (tmp + rename; idempotent bytes).

        The crc32 of every part's exact file bytes lands in the manifest
        ledger, so a later open can prove the mmap it serves holds the
        bytes this store wrote — and regenerate the block in place if
        not (see ``_repair_block``).
        """
        checksums: dict[str, int] = {}
        for part, array in (("walks", walks), ("lengths", lengths)):
            path = self._block_path(candidate, kind, index, part)
            buffer = io.BytesIO()
            np.save(buffer, array)
            data = buffer.getvalue()
            checksums[part] = zlib.crc32(data)
            tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
            tmp.write_bytes(data)
            os.replace(tmp, path)
        self._checksums[self._block_stem(candidate, kind, index)] = checksums
        self.stats.blocks_written += 1
        self._write_manifest()

    def _load_block(
        self, candidate: int, kind: str, index: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Re-open one persisted block as read-only memory maps.

        Every part is checksummed against the manifest ledger before it
        is mapped; a mismatch (bit rot, torn write, injected corruption)
        quarantines the damaged files and regenerates the block in place
        from its deterministic identity — see ``_repair_block``.
        """
        spec = faults.maybe_fail(
            "store-corrupt-block",
            candidate=int(candidate),
            kind=kind,
            block=int(index),
        )
        if spec is not None:
            plan = faults.active()
            faults.corrupt_file(
                self._block_path(candidate, kind, index, "walks"),
                plan.rng(int(candidate), _KIND_CODES[kind], int(index)),
            )
        stem = self._block_stem(candidate, kind, index)
        recorded = self._checksums.get(stem, {})
        damaged = False
        for part in ("walks", "lengths"):
            crc = zlib.crc32(
                self._block_path(candidate, kind, index, part).read_bytes()
            )
            if part not in recorded:
                # Block written by a concurrent pre-checksum writer
                # after this store's manifest snapshot: adopt it.
                self._checksums.setdefault(stem, {})[part] = crc
            elif recorded[part] != crc:
                damaged = True
        if damaged:
            self._repair_block(candidate, kind, index)
        walks = np.load(
            self._block_path(candidate, kind, index, "walks"), mmap_mode="r"
        )
        lengths = np.load(
            self._block_path(candidate, kind, index, "lengths"), mmap_mode="r"
        )
        self.stats.blocks_loaded += 1
        return walks, lengths

    def _repair_block(self, candidate: int, kind: str, index: int) -> None:
        """Quarantine a corrupt block and regenerate it from its identity.

        Block content is a pure function of the block identity, so the
        repaired bytes must reproduce the ledger checksums exactly —
        repair is verified, not assumed.  The damaged files stay next to
        the store as ``*.quarantined`` for post-mortems.
        """
        pool = self.pool(candidate, kind)
        stem = self._block_stem(candidate, kind, index)
        recorded = dict(self._checksums.get(stem, {}))
        for part in ("walks", "lengths"):
            path = self._block_path(candidate, kind, index, part)
            if path.exists():
                os.replace(path, path.with_name(f"{path.name}.quarantined"))
        self.stats.blocks_quarantined += 1
        walks, lengths = _generate_block(
            self.state.graph(candidate),
            self.state.stubbornness[candidate],
            self.horizon,
            kind,
            pool.block_walks,
            _block_entropy(self.root, candidate, kind, index),
            pool.sampler(),
        )
        self.stats.blocks_generated += 1
        self.stats.walks_generated += walks.shape[0]
        self.stats.walk_steps_generated += int(lengths.sum())
        self._write_block(candidate, kind, index, walks, lengths)
        self.stats.blocks_repaired += 1
        fresh = self._checksums.get(stem, {})
        if recorded and fresh != recorded:
            raise ValueError(
                f"repaired block {stem} does not reproduce its recorded "
                f"checksums (expected {recorded}, regenerated {fresh}); "
                "the walks this store was built with no longer match its "
                "identity — point at a fresh directory"
            )

    def _touch_resident(self, pool: _WalkPool, index: int) -> None:
        """LRU-track a resident block; evict the coldest past the cap.

        Eviction only drops the pool's reference (the entry goes back to
        ``None``); any master or caller still holding the arrays keeps
        them alive, so eviction is always safe mid-materialization.
        """
        key = (pool.candidate, pool.kind, int(index))
        self._resident.pop(key, None)
        self._resident[key] = pool
        while len(self._resident) > self.resident_blocks:
            (cand, kind, evicted), owner = next(iter(self._resident.items()))
            del self._resident[(cand, kind, evicted)]
            owner.blocks[evicted] = None

    # ------------------------------------------------------------------
    # Delta invalidation (FJVoteProblem.apply_delta reports)
    # ------------------------------------------------------------------
    def apply_delta(self, report) -> None:
        """Patch pooled walks after a graph/opinion delta (idempotent).

        Edge churn for candidate ``q`` invalidates exactly the walks that
        drew a transition *out of* a touched column (a reverse walk
        consults column ``v`` only when it steps out of ``v`` before
        terminating); every block containing at least one such walk is
        patched in place by regenerating those walks from their per-walk
        rng streams — and, for mmap stores, rewritten on disk — so a
        patched pool is byte-identical to one generated from scratch
        under the post-delta graph.  Opinion-only deltas leave every
        block byte intact and merely drop the cached masters (their
        per-walk values embed ``B⁰``).

        Idempotent per candidate graph version, so engines sharing this
        store can each forward the same :class:`DeltaReport`; distinct
        reports must be forwarded in the order the deltas were applied.
        """
        state = self.state
        todo: dict[int, np.ndarray] = {}
        for cand, touched in report.touched_by_candidate.items():
            cand = int(cand)
            if self._graph_versions[cand] == int(state.graph(cand).version):
                continue  # this delta already patched these pools
            touched = np.asarray(touched, dtype=np.int64)
            if touched.size:
                todo[cand] = touched
        dirty_b0 = {int(cand) for cand in report.opinions_by_candidate}
        for cand in sorted(dirty_b0 | set(todo)):
            for kind in (KIND_PER_NODE, KIND_UNIFORM):
                pool = self._pools.get((cand, kind))
                if pool is not None:
                    pool._masters.clear()
        if not todo:
            return
        # Generation workers hold a pre-delta copy of the state; stop
        # them so the lazily restarted pool samples the patched graphs.
        self.close()
        for cand, touched in sorted(todo.items()):
            graph = state.graph(cand)
            sampler = AliasSampler(graph.csc)
            lookup = np.zeros(state.n, dtype=bool)
            lookup[touched] = True
            for kind in (KIND_PER_NODE, KIND_UNIFORM):
                pool = self._pools.get((cand, kind))
                if pool is None:
                    if self.store_dir is None or not self._disk_prefix(
                        cand, kind
                    ):
                        continue
                    pool = self.pool(cand, kind)
                pool._sampler = sampler
                pool._masters.clear()
                for index in range(len(pool.blocks)):
                    self._patch_block(pool, index, lookup, sampler)
            # RR-set pools sample the graph directly; regenerate lazily.
            self._rr_pools.pop((cand, "ic"), None)
            self._rr_pools.pop((cand, "lt"), None)
            self._graph_versions[cand] = int(graph.version)
        if self.store_dir is not None:
            self._write_manifest()

    def _patch_block(
        self,
        pool: _WalkPool,
        index: int,
        touched_lookup: np.ndarray,
        sampler: AliasSampler,
    ) -> None:
        """Regenerate the walks of one block that crossed a touched column."""
        entry = pool.blocks[index]
        from_disk = entry is None
        if from_disk:
            entry = self._load_block(pool.candidate, pool.kind, index)
        walks, lengths = entry
        width = walks.shape[1]
        # A walk consulted column v only where it stepped out of v:
        # padded tail positions and the end node drew no transition.
        trans = np.arange(width)[None, :] < np.asarray(lengths)[:, None]
        hit = trans & touched_lookup[np.where(trans, walks, 0)]
        invalid = np.where(hit.any(axis=1))[0]
        if invalid.size == 0:
            if from_disk:
                pool.blocks[index] = None  # inspection only; LRU untouched
            return
        state = self.state
        entropy = _block_entropy(self.root, pool.candidate, pool.kind, index)
        new_walks, new_lengths = generate_reverse_walks_streamed(
            state.graph(pool.candidate),
            state.stubbornness[pool.candidate],
            self.horizon,
            walks[invalid, 0].astype(np.int64),
            entropy,
            stream_indices=invalid,
            sampler=sampler,
        )
        patched_walks = np.array(walks)
        patched_lengths = np.array(lengths, dtype=np.int64)
        patched_walks[invalid] = new_walks
        patched_lengths[invalid] = new_lengths
        pool.blocks[index] = (patched_walks, patched_lengths)
        self.stats.blocks_invalidated += 1
        self.stats.walks_patched += int(invalid.size)
        self.stats.walk_steps_generated += int(new_lengths.sum())
        if self.store_dir is not None:
            self._write_block(
                pool.candidate, pool.kind, index, patched_walks, patched_lengths
            )
            self._touch_resident(pool, index)

    # ------------------------------------------------------------------
    # Worker-pool lifecycle (optional, dm-mp-style)
    # ------------------------------------------------------------------
    def _worker_handles(self) -> list[_StoreWorkerHandle] | None:
        if self.workers is None:
            return None
        if self._handles is None:
            ctx = mp.get_context(self.start_method)
            handles = []
            for _ in range(self.workers):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_store_worker_main,
                    args=(child_conn, self.state, self.horizon),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                handles.append(_StoreWorkerHandle(process, parent_conn))
            self._handles = handles
        return self._handles

    def close(self) -> None:
        """Stop the generation workers (idempotent; pools stay cached).

        Robust to workers that died mid-request: sends are guarded and
        the teardown escalates ``join -> terminate -> kill`` with bounded
        timeouts, so a dead or wedged pipe can never hang the caller.
        """
        handles, self._handles = self._handles, None
        if not handles:
            return
        stop_worker_pool(handles, lambda conn: conn.send(("stop",)))

    def __enter__(self) -> "WalkStore":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Pools and views
    # ------------------------------------------------------------------
    def require_problem(self, problem) -> None:
        """Raise unless ``problem`` is the instance this store samples.

        Pools are keyed only by ``(candidate, kind)`` — the graph,
        stubbornness and horizon are fixed at construction — so serving a
        problem with different state would silently return walks drawn
        from the wrong dynamics.  Every consumer that accepts an external
        store calls this first.
        """
        if problem.state is not self.state or int(problem.horizon) != self.horizon:
            raise ValueError(
                "walk store is bound to a different campaign state or "
                "horizon; build one with store_for_problem(problem)"
            )

    def pool(self, candidate: int, kind: str) -> _WalkPool:
        """The walk pool for ``(candidate, kind)``, created on first use."""
        if kind not in (KIND_PER_NODE, KIND_UNIFORM):
            raise ValueError(
                f"kind must be {KIND_PER_NODE!r} or {KIND_UNIFORM!r}, got {kind!r}"
            )
        candidate = int(candidate)
        if not 0 <= candidate < self.state.r:
            raise ValueError(f"unknown candidate index {candidate}")
        key = (candidate, kind)
        found = self._pools.get(key)
        if found is None:
            found = self._pools[key] = _WalkPool(self, candidate, kind)
        return found

    def _view(self, pool: _WalkPool, num_walks: int) -> TruncatedWalks:
        master = pool.master(num_walks)
        self.stats.views_served += 1
        return master.share()

    def per_node_view(self, candidate: int, walks_per_node: int) -> TruncatedWalks:
        """A ``walks_per_node``-per-node view (Algorithm 4 grouping).

        The view is a copy-on-write clone of the cached master: truncating
        it (seed commits) never touches the stored blocks, so the next
        session starts pristine without regenerating or re-indexing.
        """
        walks_per_node = max(int(walks_per_node), 1)
        pool = self.pool(candidate, KIND_PER_NODE)
        return self._view(pool, walks_per_node * self.state.n)

    def uniform_view(self, candidate: int, theta: int) -> TruncatedWalks:
        """A θ-walk uniform-start sketch view (Algorithm 5 grouping)."""
        theta = max(int(theta), 1)
        pool = self.pool(candidate, KIND_UNIFORM)
        return self._view(pool, theta)

    def rr_pool(self, candidate: int, model: str) -> RRSetPool:
        """The RR-set pool for ``(candidate, model)`` (IC/LT baselines)."""
        candidate = int(candidate)
        if not 0 <= candidate < self.state.r:
            raise ValueError(f"unknown candidate index {candidate}")
        key = (candidate, model)
        found = self._rr_pools.get(key)
        if found is None:
            found = self._rr_pools[key] = RRSetPool(
                self.state.graph(candidate),
                model,
                self.root,
                candidate,
                self.stats,
            )
        return found

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WalkStore(pools={len(self._pools)}, shards={self.shards}, "
            f"blocks={sum(len(p.blocks) for p in self._pools.values())})"
        )


def store_for_problem(
    problem,
    *,
    seed: int | np.random.Generator | None = 0,
    **kwargs: object,
) -> WalkStore:
    """Build a store bound to ``problem``'s state and horizon."""
    return WalkStore(problem.state, problem.horizon, seed=seed, **kwargs)


__all__ = [
    "DEFAULT_BLOCK_WALKS",
    "KIND_PER_NODE",
    "KIND_UNIFORM",
    "RRSetPool",
    "StoreStats",
    "WalkStore",
    "store_for_problem",
]
