"""reprolint framework: findings, suppressions, the file walker, checkers.

The analyzer is a thin orchestration layer over ``ast``: a
:class:`Project` parses every Python file under the scanned roots once,
each :class:`Checker` walks those trees for one project invariant, and
:func:`run_checkers` merges the findings, applies per-line suppression
comments and returns a deterministically sorted list.  Nothing here
imports the modules it analyzes — analysis is purely syntactic, so it is
safe to run on code whose imports (worker pools, shared memory) have
side effects.

Suppressions
------------
A finding is suppressed by a comment on its line or on the line above::

    value = np.random.default_rng()  # reprolint: disable=determinism -- why
    # reprolint: disable-next=determinism -- why
    value = np.random.default_rng()

The ``-- why`` justification is mandatory: a suppression without one is
itself reported (checker id ``suppression``), so every accepted
violation carries its reason in the source.  ``disable=all`` silences
every checker for the line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Checker",
    "Finding",
    "Module",
    "Project",
    "Suppression",
    "run_checkers",
]

_SUPPRESS_RE = re.compile(
    r"reprolint:\s*(?P<kind>disable|disable-next)="
    r"(?P<checkers>[a-z0-9_,\- ]+?)"
    r"(?:\s*--\s*(?P<why>\S.*))?\s*$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at one source location.

    Ordering is the report order: path, then position, then checker and
    message — byte-stable for identical trees, which the JSON reporter
    and the baseline mechanism rely on.
    """

    path: str
    line: int
    col: int
    checker: str
    message: str

    @property
    def key(self) -> str:
        """Line-independent identity used by ``--baseline`` files.

        Deliberately omits ``line``/``col`` so unrelated edits that shift
        a pre-existing accepted finding do not un-baseline it.
        """
        return f"{self.checker}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.checker}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "checker": self.checker,
            "col": self.col,
            "key": self.key,
            "line": self.line,
            "message": self.message,
            "path": self.path,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``reprolint: disable[-next]=...`` comment."""

    line: int
    checkers: frozenset[str]
    justified: bool

    def covers(self, checker: str) -> bool:
        return "all" in self.checkers or checker in self.checkers


class Module:
    """One parsed source file: path, source text, AST, suppressions."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        #: Effective suppressions keyed by the line they silence.
        self.suppressions: dict[int, Suppression] = {}
        for supp in _parse_suppressions(source):
            self.suppressions[supp.line] = supp

    def suppressed(self, checker: str, line: int) -> bool:
        supp = self.suppressions.get(line)
        return supp is not None and supp.covers(checker)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Module({self.path!r})"


def _parse_suppressions(source: str) -> Iterator[Suppression]:
    """Yield suppressions from comment tokens (never from string literals)."""
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - defensive
        return
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        names = frozenset(
            name.strip() for name in match.group("checkers").split(",") if name.strip()
        )
        if not names:
            continue
        line = token.start[0]
        if match.group("kind") == "disable-next":
            line += 1
        yield Suppression(line, names, match.group("why") is not None)


class Project:
    """Every parsed module the checkers see, plus unparseable-file errors."""

    def __init__(
        self, modules: Iterable[Module], errors: Iterable[Finding] = ()
    ) -> None:
        self.modules = sorted(modules, key=lambda m: m.path)
        self.errors = list(errors)

    @classmethod
    def from_paths(cls, paths: Iterable[str | Path]) -> "Project":
        """Parse ``*.py`` under each path (files taken verbatim, dirs walked)."""
        files: list[Path] = []
        for root in paths:
            root = Path(root)
            if root.is_dir():
                files.extend(
                    p
                    for p in sorted(root.rglob("*.py"))
                    if "__pycache__" not in p.parts
                )
            else:
                files.append(root)
        modules, errors = [], []
        for path in files:
            text = path.read_text(encoding="utf-8")
            try:
                modules.append(Module(path.as_posix(), text))
            except SyntaxError as exc:
                errors.append(
                    Finding(
                        path.as_posix(),
                        int(exc.lineno or 1),
                        int(exc.offset or 0),
                        "parse",
                        f"syntax error: {exc.msg}",
                    )
                )
        return cls(modules, errors)

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Project":
        """In-memory project for tests: ``{path: source}``."""
        return cls(Module(path, text) for path, text in sources.items())


class Checker:
    """One project invariant.

    Subclasses set ``name`` (the suppression/baseline id) and
    ``description`` (rendered by ``repro lint --list``) and implement
    :meth:`run` over the whole project — cross-module invariants (the
    engine-protocol surface) need more than one file at a time, so the
    per-module loop lives in each checker, not the framework.
    """

    name: str = ""
    description: str = ""

    def run(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: Module, node: ast.AST | None, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(module.path, int(line), int(col), self.name, message)


def run_checkers(
    project: Project, checkers: Iterable[Checker]
) -> list[Finding]:
    """Run every checker, apply suppressions, return the sorted findings.

    Unjustified suppression comments surface as ``suppression`` findings
    (they still silence their target checker: the complaint is about the
    missing rationale, not the suppression itself).
    """
    findings = list(project.errors)
    for checker in checkers:
        for finding in checker.run(project):
            module = next(
                (m for m in project.modules if m.path == finding.path), None
            )
            if module is not None and module.suppressed(
                finding.checker, finding.line
            ):
                continue
            findings.append(finding)
    for module in project.modules:
        for supp in module.suppressions.values():
            if not supp.justified:
                findings.append(
                    Finding(
                        module.path,
                        supp.line,
                        0,
                        "suppression",
                        "suppression without a '-- <why>' justification",
                    )
                )
    return sorted(findings)
