"""Fig. 15: RS cumulative score and time vs ε (Twitter US Election in the paper).

Expected shape: θ (and hence runtime) falls steeply as ε grows; the score
degrades noticeably beyond ε ≈ 0.1-0.2, which is why the paper defaults to
ε = 0.1.
"""


from benchmarks.conftest import run_once
from repro.eval.experiments import epsilon_experiment
from repro.eval.reporting import format_series

EPSILONS = [0.05, 0.1, 0.2, 0.3]
K = 10


def test_fig15_epsilon(benchmark, election_ds, save_result):
    out = run_once(
        benchmark,
        lambda: epsilon_experiment(
            election_ds, EPSILONS, K, theta_cap=300_000, rng=43
        ),
    )
    save_result(
        "fig15_epsilon",
        format_series(
            "epsilon",
            EPSILONS,
            {"score": out["score"], "time": out["time"], "theta": out["theta"]},
        ),
    )
    # θ strictly decreases as ε grows (Theorem 13 is ~ 1/ε²).
    assert all(a >= b for a, b in zip(out["theta"], out["theta"][1:]))
    # The tightest ε should not score worse than the loosest.
    assert out["score"][0] >= out["score"][-1] - 1e-9
