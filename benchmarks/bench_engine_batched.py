"""Engine benchmark: per-set vs batched DM evaluation of a greedy round.

One exhaustive greedy round (all ``n`` single-seed candidate extensions of
the empty set, plurality score) evaluated through :class:`DMEngine` (the
legacy per-set path: one full FJ evolution per candidate) and through
:class:`BatchedDMEngine` (one chunked delta evolution for the whole round)
on the Fig.-17 synthetic graphs.  Emits per-size wall times and speedups,
and asserts the engine's contract: identical gains to 1e-10 and >= 5x
speedup at n >= 2000.

The perf-trajectory record (``BENCH_engine_batched[.tiny].json``) is
counter-based, not timed: a per-set round costs exactly ``n * horizon``
dense column-steps (one full evolution per candidate), so the batched
engine's deterministic ``EngineStats.evolution_work`` yields a timer-free
work-reduction ratio that ``scripts/check_bench_regression.py`` gates
against the committed baseline.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_engine_batched.py``.
Set ``REPRO_BENCH_TINY=1`` for the CI smoke variant: one tiny size, parity
assertion only (speedup floors need realistic sizes and quiet machines).
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, BENCH_TINY, run_once
from repro.core.engine import BatchedDMEngine, DMEngine
from repro.datasets.twitter import twitter_social_distancing
from repro.eval.reporting import format_series
from repro.utils.timing import Timer
from repro.voting.scores import PluralityScore

TINY = BENCH_TINY
SIZES = [200] if TINY else [500, 2000, 8000]
#: The CLI's default horizon; longer horizons amortize the per-candidate
#: fixed costs of the per-set path, so the ratio grows with t.
HORIZON = 20
#: Acceptance floor at the sizes where batching must pay off; measured
#: headroom is ~19x (n=500), ~7x (n=2000) and ~5.7x (n=8000) on one core.
MIN_SPEEDUP_AT_SCALE = 5.0


def _best_of(fn, reps: int = 2) -> tuple[float, np.ndarray]:
    """Best-of-``reps`` wall time (shields the ratio from scheduler noise
    and first-touch page faults)."""
    best, out = np.inf, None
    for _ in range(reps):
        with Timer() as timer:
            out = fn()
        best = min(best, timer.elapsed)
    return best, out


def _one_round(n: int) -> dict[str, float]:
    dataset = twitter_social_distancing(n=n, rng=BENCH_SEED, horizon=HORIZON)
    problem = dataset.problem(PluralityScore())
    problem.others_by_user()  # shared input, warmed outside the timers
    problem.target_trajectory()
    candidates = np.arange(n)
    per_engine = DMEngine(problem)
    batch_engine = BatchedDMEngine(problem)
    per_set_time, per_set = _best_of(
        lambda: per_engine.marginal_gains((), candidates)
    )
    # An extra rep for the short batched runs: transient scheduler noise
    # costs them relatively more than the ~20s per-set runs.
    batched_reps = 3
    batch_engine.stats.reset()
    batched_time, batched = _best_of(
        lambda: batch_engine.marginal_gains((), candidates), reps=batched_reps
    )
    np.testing.assert_allclose(batched, per_set, atol=1e-10, rtol=0)
    # Deterministic work model: the per-set path evolves every candidate
    # through the full horizon — n+1 sets (n extensions + the base), one
    # dense column each — while the batched engine's counters report what
    # it actually spent (accumulated over the timing reps).
    per_set_work = float((n + 1) * HORIZON)
    batched_work = batch_engine.stats.evolution_work(n) / batched_reps
    return {
        "per_set": per_set_time,
        "batched": batched_time,
        "speedup": per_set_time / batched_time,
        "batched_work": batched_work,
        "work_reduction": per_set_work / max(batched_work, 1e-12),
    }


def test_engine_batched_speedup(benchmark, save_result, save_bench_json):
    rounds = run_once(benchmark, lambda: [_one_round(n) for n in SIZES])
    series = {
        "per-set (s)": [r["per_set"] for r in rounds],
        "batched (s)": [r["batched"] for r in rounds],
        "speedup (x)": [r["speedup"] for r in rounds],
        "work reduction (x)": [r["work_reduction"] for r in rounds],
    }
    # Perf-trajectory record: deterministic counters of the first size
    # (the only one the CI smoke runs).
    first = rounds[0]
    save_bench_json(
        "engine_batched",
        {
            "evolution_work_reduction_x": {
                "value": first["work_reduction"],
                "higher_is_better": True,
            },
            "batched_evolution_work": {
                "value": first["batched_work"],
                "higher_is_better": False,
            },
        },
    )
    if not TINY:
        save_result(
            "engine_batched",
            "exhaustive greedy round, plurality, t=%d:\n%s"
            % (HORIZON, format_series("n", SIZES, series)),
        )
    for n, r in zip(SIZES, rounds):
        if TINY:
            continue  # the parity assert in _one_round already ran
        assert r["batched"] < r["per_set"], f"no speedup at n={n}"
        if n >= 2000:
            assert r["speedup"] >= MIN_SPEEDUP_AT_SCALE, (
                f"batched engine only {r['speedup']:.1f}x at n={n}"
            )
