"""Fig. 2 (§IV-D): the empirical sandwich approximation factor F(S_U)/UB(S_U).

The paper runs 100 trials (one per k in 100..1000) on Twitter Social
Distancing (plurality) and Yelp (Copeland) and reports the ratio reaching
0.7 in 90% of trials and 0.8 in about half.  We sweep the scaled k range on
the corresponding synthetic datasets and report the same statistics; the
expected shape is a consistently high ratio (>> the worst case 0.46).
Also checks the §IV-D runtime claim: S_U and S_L are far cheaper than S_F.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.sandwich import lower_bound_greedy, favorable_users, sandwich_select
from repro.eval.experiments import sandwich_ratio_trials
from repro.eval.reporting import format_series
from repro.utils.timing import Timer
from repro.voting.scores import CopelandScore, PluralityScore

KS = [5, 10, 15, 20, 30, 40, 50, 60, 80, 100]


def test_fig2_plurality_distancing(benchmark, sparse_distancing_ds, save_result):
    out = run_once(
        benchmark,
        lambda: sandwich_ratio_trials(
            sparse_distancing_ds, PluralityScore(), KS, rng=1, lambda_cap=16
        ),
    )
    ratios = np.array(out["ratio"])
    save_result(
        "fig2_sandwich_plurality",
        format_series("k", KS, {"F(SU)/UB(SU)": out["ratio"], "factor": out["factor"]})
        + f"\nshare >= 0.7: {np.mean(ratios >= 0.7):.0%}, "
        f">= 0.8: {np.mean(ratios >= 0.8):.0%}, min: {ratios.min():.2f}",
    )
    assert np.all(ratios >= 0.0) and np.all(ratios <= 1.0 + 1e-9)
    # Paper shape: ratios are consistently well above the degenerate 0.
    assert ratios.mean() > 0.3


def test_fig2_copeland_yelp(benchmark, yelp_ds, save_result):
    ks = [5, 10, 20, 30, 40]
    out = run_once(
        benchmark,
        lambda: sandwich_ratio_trials(
            yelp_ds, CopelandScore(), ks, rng=2, lambda_cap=16
        ),
    )
    ratios = np.array(out["ratio"])
    save_result(
        "fig2_sandwich_copeland",
        format_series("k", ks, {"F(SU)/UB(SU)": out["ratio"]})
        + f"\nshare >= 0.7: {np.mean(ratios >= 0.7):.0%}, min: {ratios.min():.2f}",
    )
    assert np.all(ratios <= 1.0 + 1e-9)


def test_fig2_bound_runtime_share(benchmark, distancing_ds, save_result):
    """§IV-D: computing S_U / S_L costs a small fraction of computing S_F.

    The paper's claim is relative to the *per-set* DM greedy (its S_F
    path), so that is what we time here via ``engine="dm"``.  The batched
    engine inverts these economics — its S_F round costs less than the
    coverage index — which the result text reports for contrast.
    """
    problem = distancing_ds.problem(PluralityScore())
    problem.others_by_user()
    k = 20

    def run():
        with Timer() as t_all:
            result = sandwich_select(problem, k, method="dm", engine="dm")
        with Timer() as t_batched:
            sandwich_select(problem, k, method="dm", engine="dm-batched")
        # Time the bound solutions in isolation.
        from repro.core.reachability import ReachabilityIndex, coverage_greedy

        with Timer() as t_ub:
            index = ReachabilityIndex(
                problem.state.graph(problem.target), problem.horizon
            )
            coverage_greedy(index, favorable_users(problem), k)
        with Timer() as t_lb:
            lower_bound_greedy(problem, k, favorable_users(problem))
        return result, t_all.elapsed, t_batched.elapsed, t_ub.elapsed, t_lb.elapsed

    result, total, total_batched, t_ub, t_lb = run_once(benchmark, run)
    save_result(
        "fig2_bound_runtime",
        f"sandwich total {total:.2f}s (per-set S_F); S_U {t_ub:.2f}s "
        f"({100 * t_ub / total:.1f}%), S_L {t_lb:.2f}s ({100 * t_lb / total:.1f}%)"
        f"; chosen={result.chosen}, ratio={result.sandwich_ratio:.2f}"
        f"; batched-engine total {total_batched:.2f}s",
    )
    # The bounds must be much cheaper than the full sandwich run (paper: ~2%/~5%).
    assert t_ub < 0.5 * total
    assert t_lb < 0.5 * total
