#!/usr/bin/env python3
"""A multi-candidate campaign on the Yelp-like dataset (10 cuisines).

Shows the plurality-variant scores in action: a restaurant category runs a
campaign to become users' top choice (plurality), or merely to enter their
top-p shortlist (p-approval / positional-p-approval — the "membership
tiers" motivation of §II-B).  Compares the seed sets and attained scores.

Run:  python examples/restaurant_campaign.py [--users 1500] [--seeds 30]
"""

import argparse

import numpy as np

from repro.datasets import yelp_like
from repro.eval.harness import select_seeds
from repro.eval.metrics import seed_overlap
from repro.eval.reporting import format_table
from repro.voting.rank import ranks
from repro.voting.scores import PApprovalScore, PluralityScore, PositionalPApprovalScore


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=1500)
    parser.add_argument("--seeds", type=int, default=30)
    parser.add_argument("--horizon", type=int, default=10)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    dataset = yelp_like(n=args.users, horizon=args.horizon, rng=args.seed)
    r = dataset.r
    target_name = dataset.state.candidates[dataset.target]
    print(
        f"Yelp-like campaign for {target_name!r}: n={dataset.n}, r={r}, "
        f"k={args.seeds}, t={args.horizon}\n"
    )
    scores = {
        "plurality": PluralityScore(),
        "2-approval": PApprovalScore(2, r),
        "positional-2 (w=[1,.5])": PositionalPApprovalScore(
            2, np.array([1.0, 0.5] + [0.0] * (r - 2))
        ),
    }
    seed_sets = {}
    rows = []
    for name, score in scores.items():
        problem = dataset.problem(score)
        seeds = select_seeds("rw", problem, args.seeds, rng=args.seed, lambda_cap=32)
        seed_sets[name] = seeds
        rows.append([name, problem.objective(()), problem.objective(seeds)])
    print(format_table(["objective", "before", "after"], rows))

    print("\nSeed-set overlap between the variants (cf. Fig. 9):")
    names = list(seed_sets)
    overlap_rows = [
        [a, b, f"{100 * seed_overlap(seed_sets[a], seed_sets[b]):.0f}%"]
        for i, a in enumerate(names)
        for b in names[i + 1 :]
    ]
    print(format_table(["variant A", "variant B", "overlap"], overlap_rows))

    problem = dataset.problem(PluralityScore())
    beta = ranks(problem.full_opinions(seed_sets["plurality"]), problem.target)
    counts = np.bincount(beta, minlength=r + 1)[1:]
    print(f"\nRank distribution of {target_name!r} after plurality seeding (cf. Fig. 10):")
    print(format_table(["position", "#users"], [[i + 1, int(c)] for i, c in enumerate(counts)]))


if __name__ == "__main__":
    main()
