#!/usr/bin/env python
"""Perf-trajectory gate: fail when a deterministic work counter regresses.

Compares every ``benchmarks/baselines/BENCH_*.json`` against the matching
file in ``benchmarks/results/`` (produced by the benchmark smoke steps; the
``.tiny`` variants are what CI runs).  All metrics are deterministic work
counters or ratios derived from them — the same commit always produces the
same numbers on every host — so any drift is a real code change, not noise.

A metric fails when it moves more than ``--tolerance`` (default 10%) in
its bad direction: down for ``higher_is_better`` metrics (speedups,
reduction factors), up otherwise (work counters).  Improvements are
reported and tallied so baselines can be re-pinned; a missing result file
or metric is an error (the gate must never silently stop measuring).

``--update-baselines`` re-pins: after reporting the drift it copies every
``benchmarks/results/BENCH_*.json`` over the matching baseline (creating
baselines for brand-new benchmarks) and exits 0.  Use it when a counter
moved on purpose — an optimisation landed, or a new benchmark needs its
first pin — then commit the rewritten baseline files.

Usage::

    python scripts/check_bench_regression.py [--tolerance 0.10]
    python scripts/check_bench_regression.py --update-baselines
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINES = REPO / "benchmarks" / "baselines"
RESULTS = REPO / "benchmarks" / "results"


def compare(baseline_path: Path, tolerance: float) -> tuple[list[str], list[str]]:
    """Return (failures, improvements) for one baseline file."""
    result_path = RESULTS / baseline_path.name
    if not result_path.exists():
        return [
            f"{baseline_path.name}: no result produced at {result_path} "
            "(did the benchmark smoke step run?)"
        ], []
    baseline = json.loads(baseline_path.read_text())["metrics"]
    result = json.loads(result_path.read_text())["metrics"]
    failures: list[str] = []
    improvements: list[str] = []
    for metric in sorted(set(result) - set(baseline)):
        # A brand-new metric is not gated yet; surface it so the baseline
        # gets re-pinned instead of silently never measuring it.
        value = float(result[metric]["value"])
        improvements.append(
            f"{baseline_path.name}: new metric {metric} = {value:g} "
            "(not in baseline)"
        )
    for metric, spec in sorted(baseline.items()):
        if metric not in result:
            failures.append(f"{baseline_path.name}: metric {metric!r} vanished")
            continue
        base = float(spec["value"])
        new = float(result[metric]["value"])
        higher_better = bool(spec.get("higher_is_better", False))
        if base == new:
            # Identical numbers (including a legitimate 0 == 0) are never
            # a regression, whatever the direction.
            print(f"  ok: {baseline_path.name}: {metric} {base:g} -> {new:g}")
            continue
        if base == 0:
            ratio = float("inf")
        else:
            ratio = new / base
        if higher_better:
            regressed = ratio < 1.0 - tolerance
            improved = ratio > 1.0 + tolerance
        else:
            regressed = ratio > 1.0 + tolerance
            improved = ratio < 1.0 - tolerance
        arrow = f"{base:g} -> {new:g}"
        if regressed:
            failures.append(
                f"{baseline_path.name}: {metric} regressed {arrow} "
                f"({'-' if higher_better else '+'}{abs(ratio - 1):.1%}, "
                f"tolerance {tolerance:.0%})"
            )
        elif improved:
            improvements.append(f"{baseline_path.name}: {metric} {arrow}")
            print(
                f"  improvement: {baseline_path.name}: {metric} {arrow} "
                "— consider re-pinning the baseline"
            )
        else:
            print(f"  ok: {baseline_path.name}: {metric} {arrow}")
    return failures, improvements


def update_baselines() -> int:
    """Copy every result file over its baseline (pinning new ones too)."""
    results = sorted(RESULTS.glob("BENCH_*.json"))
    if not results:
        print(f"error: no results under {RESULTS}", file=sys.stderr)
        return 2
    for result_path in results:
        target = BASELINES / result_path.name
        verb = "re-pinned" if target.exists() else "pinned (new)"
        target.write_text(result_path.read_text())
        print(f"  {verb}: {target.relative_to(REPO)}")
    print(f"\n{len(results)} baselines written — commit benchmarks/baselines/")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="copy benchmarks/results/BENCH_*.json over the baselines "
        "(creating baselines for new benchmarks) instead of gating",
    )
    args = parser.parse_args(argv)
    if args.update_baselines:
        return update_baselines()
    baselines = sorted(BASELINES.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no baselines under {BASELINES}", file=sys.stderr)
        return 2
    failures: list[str] = []
    improvements: list[str] = []
    for path in baselines:
        new_failures, new_improvements = compare(path, args.tolerance)
        failures.extend(new_failures)
        improvements.extend(new_improvements)
    if improvements:
        print(f"\n{len(improvements)} improvement(s) beyond tolerance:")
        for improvement in improvements:
            print(f"  better: {improvement}")
        print("  re-pin with: python scripts/check_bench_regression.py "
              "--update-baselines")
    if failures:
        print("\nperf-trajectory regressions:", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baselines)} benchmark baselines within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
