"""Dataset construction.

The paper evaluates on five real datasets (Table III).  Those graphs and
their raw records (reviews, tweets, papers) are not redistributable, so this
package builds synthetic stand-ins that follow the *same construction
recipe* — graph family, activity-based edge weights ``1 - exp(-a/μ)``,
rating/sentiment-derived initial opinions, variance-derived stubbornness —
at configurable laptop scale.  See DESIGN.md for the substitution rationale.
"""

from repro.datasets.dblp import dblp_like
from repro.datasets.example import running_example, running_example_table
from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.synth import Dataset, activity_edge_weights
from repro.datasets.twitter import twitter_mask, twitter_social_distancing, twitter_us_election
from repro.datasets.yelp import yelp_like

__all__ = [
    "Dataset",
    "activity_edge_weights",
    "dblp_like",
    "load_dataset",
    "running_example",
    "running_example_table",
    "save_dataset",
    "twitter_mask",
    "twitter_social_distancing",
    "twitter_us_election",
    "yelp_like",
]
