"""Tests for shared utilities."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_opinions,
    check_probability,
    check_seed_budget,
    check_stubbornness,
    check_time_horizon,
)


def test_ensure_rng_accepts_all_forms():
    g = np.random.default_rng(0)
    assert ensure_rng(g) is g
    assert isinstance(ensure_rng(7), np.random.Generator)
    assert isinstance(ensure_rng(None), np.random.Generator)
    with pytest.raises(TypeError):
        ensure_rng("seed")


def test_ensure_rng_reproducible():
    a = ensure_rng(5).random(3)
    b = ensure_rng(5).random(3)
    np.testing.assert_array_equal(a, b)


def test_spawn_rngs_independent_and_reproducible():
    children = spawn_rngs(3, 4)
    assert len(children) == 4
    again = spawn_rngs(3, 4)
    for c1, c2 in zip(children, again):
        np.testing.assert_array_equal(c1.random(2), c2.random(2))
    draws = [c.random() for c in children]
    assert len(set(draws)) == 4
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_check_probability():
    assert check_probability(0.5, "p") == 0.5
    assert check_probability(0.0, "p") == 0.0
    with pytest.raises(ValueError):
        check_probability(-0.1, "p")
    with pytest.raises(ValueError):
        check_probability(1.1, "p")
    with pytest.raises(ValueError):
        check_probability(0.0, "p", inclusive_low=False)


def test_check_opinions_clips_float_noise():
    out = check_opinions(np.array([0.0, 1.0 + 1e-14]))
    assert out.max() <= 1.0
    with pytest.raises(ValueError):
        check_opinions(np.array([1.5]))
    with pytest.raises(ValueError):
        check_opinions(np.array([np.nan]))


def test_check_stubbornness_shape():
    with pytest.raises(ValueError):
        check_stubbornness(np.zeros(3), 4)


def test_check_seed_budget():
    assert check_seed_budget(3, 10) == 3
    with pytest.raises(ValueError):
        check_seed_budget(-1, 10)
    with pytest.raises(ValueError):
        check_seed_budget(11, 10)


def test_check_time_horizon():
    assert check_time_horizon(5) == 5
    with pytest.raises(ValueError):
        check_time_horizon(-1)


def test_timer_measures():
    with Timer() as t:
        sum(range(10_000))
    assert t.elapsed >= 0.0


# ----------------------------------------------------------------------
# Deterministic retry/backoff (repro.utils.retry)
# ----------------------------------------------------------------------
def test_backoff_schedule_exponential_and_capped():
    from repro.utils.retry import backoff_schedule

    assert backoff_schedule(4, base_delay=0.1, max_delay=0.5) == [
        0.1,
        0.2,
        0.4,
        0.5,
    ]
    assert backoff_schedule(0) == []
    assert backoff_schedule(-3) == []


def test_backoff_schedule_jitter_seeded_and_bounded():
    from repro.utils.retry import backoff_schedule

    plain = backoff_schedule(6, base_delay=0.05, max_delay=2.0)
    a = backoff_schedule(6, base_delay=0.05, max_delay=2.0, jitter_seed=7)
    b = backoff_schedule(6, base_delay=0.05, max_delay=2.0, jitter_seed=7)
    c = backoff_schedule(6, base_delay=0.05, max_delay=2.0, jitter_seed=8)
    assert a == b  # same seed, same instants
    assert a != c  # different seed, different jitter
    # Decorrelated-down: jitter never lengthens the deterministic ladder.
    assert all(0.5 * p <= d < p for d, p in zip(a, plain))


def test_with_backoff_retries_then_succeeds():
    from repro.utils.retry import with_backoff

    slept: list[float] = []
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError("transient")
        return "ok"

    result = with_backoff(
        flaky,
        retries=5,
        base_delay=0.1,
        max_delay=1.0,
        sleep=slept.append,
    )
    assert result == "ok"
    assert calls["n"] == 3
    assert slept == [0.1, 0.2]  # one sleep per failed attempt


def test_with_backoff_exhausts_and_reraises():
    from repro.utils.retry import with_backoff

    slept: list[float] = []

    def always_down():
        raise ConnectionRefusedError("down")

    with pytest.raises(ConnectionRefusedError):
        with_backoff(
            always_down,
            retries=3,
            base_delay=0.05,
            sleep=slept.append,
        )
    assert slept == [0.05, 0.1, 0.2]  # ran once plus once per delay


def test_with_backoff_unlisted_exception_propagates_immediately():
    from repro.utils.retry import with_backoff

    slept: list[float] = []

    def broken():
        raise ValueError("not transient")

    with pytest.raises(ValueError):
        with_backoff(broken, retries=5, sleep=slept.append)
    assert slept == []  # no retry for exceptions outside the allow-list


def test_with_backoff_explicit_schedule():
    from repro.utils.retry import with_backoff

    slept: list[float] = []

    def always_down():
        raise OSError("down")

    with pytest.raises(OSError):
        with_backoff(
            always_down, schedule=[0.3, 0.7], sleep=slept.append
        )
    assert slept == [0.3, 0.7]


# ----------------------------------------------------------------------
# stop_worker_pool idempotency (repro.utils.workers)
# ----------------------------------------------------------------------
def _sleepy_worker(conn):
    try:
        conn.recv()
    except (EOFError, KeyboardInterrupt):
        pass


def test_stop_worker_pool_idempotent_after_kill_and_double_close():
    """A SIGKILLed worker plus a second close must both be no-ops.

    Regression test: supervised pools can race their own respawn
    teardown against the engine's outer close(), so the ladder has to
    tolerate dead processes, already-joined processes, close()d Process
    objects, and already-closed pipes without raising.
    """
    import multiprocessing as mp

    from repro.utils.workers import stop_worker_pool

    class Handle:
        def __init__(self, process, conn):
            self.process = process
            self.conn = conn

    ctx = mp.get_context()
    handles = []
    for _ in range(2):
        parent, child = ctx.Pipe()
        process = ctx.Process(target=_sleepy_worker, args=(child,), daemon=True)
        process.start()
        child.close()
        handles.append(Handle(process, parent))

    # Worker 0 dies hard mid-round, as the fault plan would kill it.
    handles[0].process.kill()
    handles[0].process.join(timeout=5.0)

    stop_worker_pool(handles, lambda conn: conn.send(("stop",)))
    assert all(not h.process.is_alive() for h in handles)

    # Second close on the same handles: pipes closed, processes reaped.
    stop_worker_pool(handles, lambda conn: conn.send(("stop",)))

    # Even fully released Process objects must not raise.
    for handle in handles:
        handle.process.close()
    stop_worker_pool(handles, lambda conn: conn.send(("stop",)))
