"""Batched objective-evaluation engines (the pluggable evaluation seam).

Every seed-selection algorithm in this library ultimately asks the same
question — "what is ``F(B(t)[S], c_q)`` for these seed sets?" — and the
:class:`ObjectiveEngine` interface makes the answer pluggable.  An engine
wraps an :class:`~repro.core.problem.FJVoteProblem` and exposes

* ``evaluate(seed_sets)``   — objectives of many seed sets at once,
* ``marginal_gains(base, candidates)`` — one greedy round in one call,
* capability flags ``supports_batch`` / ``is_estimate``.

Backends
--------
:class:`DMEngine`
    Thin wrapper over the per-set ``FJVoteProblem.objective`` (the paper's
    direct-matrix-multiplication evaluation, one FJ evolution per set).
    The parity reference for everything else.
:class:`BatchedDMEngine`
    Evaluates all ``C`` seed sets *simultaneously*.  FJ dynamics are linear,
    so the opinions of a seeded system can be written as ``base + delta``
    where ``base`` is the unseeded trajectory (computed once and cached on
    the problem) and each seed set's ``delta`` obeys the homogeneous
    recurrence ``delta(s+1) = (delta(s) @ W) * (1 - d)`` with the seeded
    coordinates pinned to ``1 - base(s)``.  All ``C`` deltas evolve
    together in two phases: one shared sparse ``(n, C)`` evolution while
    influence has spread to few nodes, then cache-sized dense column
    blocks that finish the horizon and are scored in place with the batch
    paths of :mod:`repro.voting.scores`.  Results match the per-set
    engine to machine precision; exhaustive greedy rounds run 5-20x
    faster (``benchmarks/bench_engine_batched.py``).
:class:`WalkEngine`
    Routes the §V/§VI walk estimators (random-walk and sketch) through the
    same interface via :class:`~repro.core.random_walk.WalkGreedyOptimizer`.
    Estimates, not exact values: ``is_estimate`` is true.

Adding a backend
----------------
Subclass :class:`ObjectiveEngine`, implement ``evaluate`` (and override
``marginal_gains`` when the backend can do a whole round cheaper than
``C + 1`` independent evaluations), set the capability flags, and register
a constructor in :func:`make_engine`.  Process-parallel, sharded-RR-set or
GPU backends drop in the same way — greedy, sandwich and win-min only ever
talk to the interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.core.problem import FJVoteProblem
from repro.voting.scores import CumulativeScore, SeparableScore

#: Engine spec names accepted by :func:`make_engine` (and ``--engine``).
ENGINE_NAMES = ("dm", "dm-batched", "rw", "sketch")

SeedSet = Sequence[int] | np.ndarray | tuple


class ObjectiveEngine(ABC):
    """Evaluates the FJ-Vote objective for (batches of) seed sets.

    Attributes
    ----------
    supports_batch:
        True when ``evaluate`` is genuinely vectorized over seed sets
        (rather than an internal per-set loop).
    is_estimate:
        True when returned values are statistical estimates of ``F`` (the
        walk/sketch backends) rather than exact DM computations.
    """

    supports_batch: bool = False
    is_estimate: bool = False

    def __init__(self, problem: FJVoteProblem) -> None:
        self.problem = problem
        self._base_key: tuple[int, ...] | None = None
        self._base_value: float = 0.0

    # ------------------------------------------------------------------
    @abstractmethod
    def evaluate(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        """Objective value of each seed set, as a ``(C,)`` float array."""

    def evaluate_one(self, seeds: SeedSet = ()) -> float:
        """Objective of a single seed set."""
        return float(self.evaluate([seeds])[0])

    def marginal_gains(
        self,
        base: SeedSet,
        candidates: SeedSet,
        *,
        base_objective: float | None = None,
    ) -> np.ndarray:
        """Gain of extending ``base`` by each candidate (one greedy round).

        Default: one (possibly batched) ``evaluate`` over the ``C``
        extensions, minus the base objective.  Callers that already track
        the base value (the greedy loops accumulate it as they pick) pass
        it via ``base_objective`` to skip a redundant evaluation; otherwise
        it is computed and memoized.
        """
        base_t = tuple(int(v) for v in base)
        candidates = np.asarray(candidates, dtype=np.int64)
        values = self.evaluate([base_t + (int(c),) for c in candidates])
        if base_objective is None:
            base_objective = self.base_value(base_t)
        return values - base_objective

    def base_value(self, base: SeedSet) -> float:
        """Objective of ``base``, memoized for the duration of a round."""
        key = tuple(int(v) for v in base)
        if self._base_key != key:
            self._base_key = key
            self._base_value = self.evaluate_one(key)
        return self._base_value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.problem!r})"


class DMEngine(ObjectiveEngine):
    """Per-set exact evaluation: one full FJ evolution per seed set.

    Wraps today's :meth:`FJVoteProblem.objective` unchanged — the parity
    oracle for :class:`BatchedDMEngine` and the ``--engine dm`` legacy path.
    """

    supports_batch = False
    is_estimate = False

    def evaluate(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        return np.array(
            [
                self.problem.objective(np.asarray(s, dtype=np.int64))
                for s in seed_sets
            ],
            dtype=np.float64,
        )


class BatchedDMEngine(ObjectiveEngine):
    """Exact DM evaluation of many seed sets in one batched FJ evolution.

    Parameters
    ----------
    problem:
        The FJ-Vote instance.
    user_weights:
        Optional ``(n,)`` per-user weights applied to the separable score's
        contributions (used by the sandwich lower bound, which restricts
        the cumulative score to the favorable users set).  Requires a
        :class:`~repro.voting.scores.SeparableScore`.
    batch_rows:
        Width of the dense column blocks that finish the evolution after
        the shared sparse phase (cache knob: ``n * batch_rows * 8`` bytes
        per block).  Default: auto-sized to stay within
        ``max_batch_bytes``, capped at 64 columns — small enough to keep a
        block LLC-resident through the bandwidth-bound dense products,
        measured fastest across 500 <= n <= 8000.
    densify_threshold:
        Delta matrices start sparse (a fresh seed only perturbs its t-step
        out-neighborhood) and switch to dense blocks once their fill
        fraction approaches this threshold (see ``_evolve_blocks``).
    """

    supports_batch = True
    is_estimate = False

    def __init__(
        self,
        problem: FJVoteProblem,
        *,
        user_weights: np.ndarray | None = None,
        batch_rows: int | None = None,
        max_batch_bytes: int = 64_000_000,
        densify_threshold: float = 0.1,
    ) -> None:
        super().__init__(problem)
        self.user_weights: np.ndarray | None = None
        if user_weights is not None:
            if not isinstance(problem.score, SeparableScore):
                raise TypeError(
                    "user_weights requires a separable score, got "
                    f"{type(problem.score).__name__}"
                )
            self.user_weights = np.asarray(user_weights, dtype=np.float64)
            if self.user_weights.shape != (problem.n,):
                raise ValueError(
                    f"user_weights must have shape ({problem.n},), "
                    f"got {self.user_weights.shape}"
                )
        self.max_batch_bytes = int(max_batch_bytes)
        if batch_rows is None:
            batch_rows = max(1, min(64, int(max_batch_bytes // (8 * problem.n))))
        self.batch_rows = int(batch_rows)
        if self.batch_rows < 1:
            raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
        self.densify_threshold = float(densify_threshold)
        state = problem.state
        q = problem.target
        d = state.stubbornness[q]
        # W^T with rows pre-scaled by (1 - d): one sparse product per FJ
        # step, ``delta(s+1) = WT_scaled @ delta(s)`` in (n, C) layout.
        self._wt_scaled = (
            sparse.diags(1.0 - d) @ state.graph(q).csc.T
        ).tocsr()
        # Fully-stubborn users leave explicit zero rows behind; prune them
        # so they cost nothing in every subsequent product.
        self._wt_scaled.eliminate_zeros()
        self._b0 = state.initial_opinions[q]

    # ------------------------------------------------------------------
    def _normalize_sets(self, seed_sets: Iterable[SeedSet]) -> list[np.ndarray]:
        n = self.problem.n
        out = []
        for s in seed_sets:
            arr = np.asarray(s, dtype=np.int64)
            if arr.size > 1:
                arr = np.unique(arr)
            if arr.size and (arr[0] < 0 or arr[-1] >= n):
                raise ValueError("seed indices out of range")
            out.append(arr)
        return out

    def target_opinion_rows(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        """``(C, n)`` horizon opinions about the target, one row per seed set.

        The workhorse: stacks every seed set's delta into an ``(n, C)``
        matrix, evolves all columns through the horizon together, and adds
        back the shared unseeded base trajectory.
        """
        sets = self._normalize_sets(seed_sets)
        rows = np.empty((len(sets), self.problem.n), dtype=np.float64)
        for lo, hi, cols in self._evolve_blocks(sets):
            rows[lo:hi] = cols.T
        return rows

    def _chunked_scores(self, sets: list[np.ndarray]) -> np.ndarray:
        """Evolve and score block by block, never materializing all rows.

        Peak dense memory is one ``(n, batch_rows)`` block regardless of
        how many seed sets are evaluated, and scoring runs in the
        evolution's native users-by-sets orientation (no transposed
        traffic).
        """
        out = np.empty(len(sets), dtype=np.float64)
        for lo, hi, cols in self._evolve_blocks(sets):
            out[lo:hi] = self._score_cols(cols)
        return out

    def _evolve_blocks(self, sets: list[np.ndarray]):
        """Evolve all deltas; yields ``(lo, hi, (n, hi-lo) horizon values)``.

        Two phases.  While influence has spread to few nodes, *all* seed
        sets evolve together as one sparse ``(n, C)`` matrix — the sparse
        phase's fixed per-product cost is paid once, not once per block.
        Once the delta fill approaches the densify threshold, columns are
        sliced into dense ``(n, batch_rows)`` blocks (sized to stay
        cache-resident) that finish the remaining steps independently.
        """
        n = self.problem.n
        c = len(sets)
        if c == 0:
            return
        traj = self.problem.target_trajectory()
        horizon = self.problem.horizon
        sizes = np.array([s.size for s in sets], dtype=np.int64)
        pin_rows = np.concatenate(sets) if c else np.empty(0, dtype=np.int64)
        pin_cols = np.repeat(np.arange(c, dtype=np.int64), sizes)
        # delta(0): seeded coordinates jump to 1, everything else unchanged.
        delta = sparse.csr_matrix(
            (1.0 - self._b0[pin_rows], (pin_rows, pin_cols)), shape=(n, c)
        )
        # Pinned-coordinate membership for the re-pin surgery: a flat bool
        # lookup when affordable, sorted-key search otherwise.
        flat_keys = pin_rows * np.int64(c) + pin_cols
        use_lookup = n * c <= 1 << 26
        if use_lookup:
            pinned = np.zeros(n * c, dtype=bool)
            pinned[flat_keys] = True
        else:
            pinned_sorted = np.sort(flat_keys)
        # The sparse phase stops once the *next* product is predicted to
        # cost more than its dense counterpart: a sparse-sparse product is
        # ~3x denser-per-nonzero than dense, and the fill cap also bounds
        # sparse-phase memory.  Growth starts at the mean out-degree (the
        # expansion rate of a fresh delta) and tracks observed growth.
        nnz_cap = min(
            self.densify_threshold * n * c, self.max_batch_bytes / 16
        )
        growth = max(1.0, self._wt_scaled.nnz / max(n, 1))
        next_step = horizon + 1
        for s in range(1, horizon + 1):
            if delta.nnz > nnz_cap or delta.nnz * growth > 3 * nnz_cap:
                next_step = s  # dense blocks take over from step s
                break
            prev_nnz = delta.nnz
            delta = self._wt_scaled @ delta
            if prev_nnz:
                growth = delta.nnz / prev_nnz
            # Re-pin in sparse form: zero whatever propagated into the
            # seeded coordinates, then splice the pinned values back in
            # via one duplicate-summing COO -> CSR rebuild.
            pin_values = 1.0 - traj[s][pin_rows]
            entry_rows = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(delta.indptr)
            )
            entry_cols = delta.indices.astype(np.int64)
            entry_keys = entry_rows * np.int64(c) + entry_cols
            if use_lookup:
                hit = pinned[entry_keys]
            else:
                pos = np.searchsorted(pinned_sorted, entry_keys)
                pos[pos == pinned_sorted.size] = 0
                hit = pinned_sorted[pos] == entry_keys
            if hit.any():
                delta.data[hit] = 0.0
            delta = sparse.csr_matrix(
                (
                    np.concatenate([delta.data, pin_values]),
                    (
                        np.concatenate([entry_rows, pin_rows]),
                        np.concatenate([entry_cols, pin_cols]),
                    ),
                ),
                shape=(n, c),
            )
        delta = delta.tocsc()
        base = traj[horizon][:, None]
        for lo in range(0, c, self.batch_rows):
            hi = min(lo + self.batch_rows, c)
            block = delta[:, lo:hi].toarray()
            in_block = (pin_cols >= lo) & (pin_cols < hi)
            rows_b = pin_rows[in_block]
            cols_b = pin_cols[in_block] - lo
            for s in range(next_step, horizon + 1):
                block = self._wt_scaled @ block
                block[rows_b, cols_b] = 1.0 - traj[s][rows_b]
            block += base
            yield lo, hi, block

    # ------------------------------------------------------------------
    def score_rows(self, rows: np.ndarray) -> np.ndarray:
        """Score each ``(C, n)`` target-opinion row under the problem's score."""
        score = self.problem.score
        if self.user_weights is not None:
            contrib = score.contributions_batch(rows, self.problem.others_by_user())
            return contrib @ self.user_weights
        if isinstance(score, SeparableScore):
            contrib = score.contributions_batch(rows, self.problem.others_by_user())
            return contrib.sum(axis=1)
        return score.score_targets(rows, self.problem.others_by_user())

    def _score_cols(self, cols: np.ndarray) -> np.ndarray:
        """Score ``(n, C)`` users-by-sets opinions via the transposed paths."""
        score = self.problem.score
        if self.user_weights is not None:
            contrib = score.contributions_batch_T(cols, self.problem.others_by_user())
            return self.user_weights @ contrib
        if isinstance(score, SeparableScore):
            contrib = score.contributions_batch_T(cols, self.problem.others_by_user())
            return contrib.sum(axis=0, dtype=np.float64)
        return score.score_targets_T(cols, self.problem.others_by_user())

    def evaluate(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        sets = self._normalize_sets(seed_sets)
        if not sets:
            return np.empty(0, dtype=np.float64)
        return self._chunked_scores(sets)


class WalkEngine(ObjectiveEngine):
    """Walk/sketch estimators behind the engine interface (§V / §VI).

    Wraps a :class:`~repro.core.random_walk.TruncatedWalks` collection and
    a :class:`~repro.core.random_walk.WalkGreedyOptimizer`; seed sets are
    applied by post-generation truncation, and a pristine snapshot of the
    truncation state lets arbitrary (non-incremental) seed sets be
    evaluated by reset-and-replay.  ``marginal_gains`` reuses the
    optimizer's single vectorized all-candidates scan, so a greedy round is
    one pass regardless of the candidate count.

    Parameters
    ----------
    grouping:
        ``"start"`` — Algorithm 4 (RW): ``walks_per_node`` walks from every
        node, per-user averaged estimates.  ``"walk"`` — Algorithm 5 (RS):
        ``theta`` uniform-start sketch walks, rescaled by ``n / theta``.
    """

    supports_batch = True
    is_estimate = True

    def __init__(
        self,
        problem: FJVoteProblem,
        *,
        grouping: str = "start",
        walks_per_node: int = 32,
        theta: int = 4000,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(problem)
        from repro.core.random_walk import TruncatedWalks, WalkGreedyOptimizer
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(rng)
        state = problem.state
        q = problem.target
        n = problem.n
        if grouping == "start":
            starts = np.repeat(np.arange(n, dtype=np.int64), max(int(walks_per_node), 1))
        elif grouping == "walk":
            starts = rng.integers(0, n, size=max(int(theta), 1))
        else:
            raise ValueError(f"grouping must be 'start' or 'walk', got {grouping!r}")
        self.walks = TruncatedWalks.generate(
            state.graph(q),
            state.stubbornness[q],
            state.initial_opinions[q],
            problem.horizon,
            starts,
            rng,
        )
        self.optimizer = WalkGreedyOptimizer(
            self.walks,
            problem.score,
            None
            if isinstance(problem.score, CumulativeScore)
            else problem.others_by_user(),
            grouping=grouping,
        )
        # Pristine truncation state for reset-and-replay evaluation.
        self._snapshot = (
            self.walks.end_pos.copy(),
            self.walks.values.copy(),
            self.walks._b0.copy(),
        )

    # ------------------------------------------------------------------
    def _reset(self) -> None:
        end_pos, values, b0 = self._snapshot
        self.walks.end_pos = end_pos.copy()
        self.walks.values = values.copy()
        self.walks._b0 = b0.copy()
        self.walks.seeds = []

    def _sync(self, seeds: SeedSet) -> None:
        """Make the truncation state reflect exactly ``seeds``."""
        want = [int(v) for v in seeds]
        have = self.walks.seeds
        if have == want[: len(have)]:
            new = want[len(have) :]
        else:
            self._reset()
            new = want
        for v in new:
            self.walks.add_seed(v)

    def evaluate(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        out = []
        for s in seed_sets:
            self._sync(s)
            out.append(self.optimizer.estimated_score())
        return np.array(out, dtype=np.float64)

    def marginal_gains(
        self,
        base: SeedSet,
        candidates: SeedSet,
        *,
        base_objective: float | None = None,
    ) -> np.ndarray:
        candidates = np.asarray(candidates, dtype=np.int64)
        # The optimizer's vectorized pass scores every node at once; for a
        # handful of candidates (CELF stale-entry refreshes) per-candidate
        # evaluation is cheaper than the all-nodes scan.
        if candidates.size < 8:
            return super().marginal_gains(
                base, candidates, base_objective=base_objective
            )
        self._sync(base)
        return self.optimizer.marginal_gains()[candidates]


def make_engine(
    spec: str | ObjectiveEngine | None,
    problem: FJVoteProblem,
    *,
    rng: int | np.random.Generator | None = None,
    **kwargs: object,
) -> ObjectiveEngine:
    """Build an engine from a spec name (see :data:`ENGINE_NAMES`).

    Passing an :class:`ObjectiveEngine` instance returns it unchanged (its
    ``kwargs`` are ignored); ``None`` means the default ``"dm-batched"``.
    ``rng`` seeds the stochastic (walk/sketch) backends so selections stay
    reproducible; the exact DM backends ignore it.
    """
    if isinstance(spec, ObjectiveEngine):
        if spec.problem is not problem:
            raise ValueError(
                "engine instance is bound to a different problem; build one "
                "for this problem (engines cache problem-specific state)"
            )
        return spec
    if spec is None:
        spec = "dm-batched"
    if spec == "dm":
        return DMEngine(problem)
    if spec == "dm-batched":
        return BatchedDMEngine(problem, **kwargs)
    if spec == "rw":
        return WalkEngine(problem, grouping="start", rng=rng, **kwargs)
    if spec == "sketch":
        return WalkEngine(problem, grouping="walk", rng=rng, **kwargs)
    raise ValueError(f"unknown engine {spec!r}; expected one of {ENGINE_NAMES}")
