#!/usr/bin/env python3
"""Problem 2 (FJ-Vote-Win): the minimum budget for the target to win.

Runs the binary search of Algorithm 2 on a Twitter-like "wear a mask"
campaign under the plurality score, for all three of the paper's methods
(DM, RW, RS) — reproducing the shape of Table VI, where more approximate
methods need slightly more seeds.

Run:  python examples/min_seeds_to_win.py [--users 1000]
"""

import argparse

from repro.core.winmin import min_seeds_to_win
from repro.datasets import twitter_mask
from repro.eval.harness import select_seeds
from repro.eval.reporting import format_table
from repro.voting.scores import PluralityScore


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=1000)
    parser.add_argument("--horizon", type=int, default=10)
    parser.add_argument("--kmax", type=int, default=200)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    dataset = twitter_mask(n=args.users, horizon=args.horizon, rng=args.seed)
    problem = dataset.problem(PluralityScore())
    base = problem.all_scores(())
    print(
        f"{dataset.name}: n={dataset.n}, t={args.horizon}.  Scores without "
        f"seeds: " + ", ".join(
            f"{name}={val:.0f}"
            for name, val in zip(dataset.state.candidates, base)
        )
    )

    rows = []
    for method in ("dm", "rw", "rs"):
        kwargs = {"rw": {"lambda_cap": 32}, "rs": {"theta": 2000}}.get(method, {})
        if method == "dm":
            result = min_seeds_to_win(problem, k_max=args.kmax)
        else:
            result = min_seeds_to_win(
                problem,
                k_max=args.kmax,
                selector=lambda k, m=method, kw=kwargs: select_seeds(
                    m, problem, k, rng=args.seed, **kw
                ),
            )
        rows.append([method.upper(), result.k if result.found else "not found", result.probes])
    print("\nMinimum seeds for the target to win (plurality, cf. Table VI):")
    print(format_table(["method", "k*", "budget probes"], rows))


if __name__ == "__main__":
    main()
