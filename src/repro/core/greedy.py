"""Greedy seed selection (paper Algorithm 1) with optional CELF laziness.

``greedy_select`` is a generic engine over a black-box set objective;
``greedy_dm`` instantiates it with exact opinion computation via direct
matrix multiplication (the DM method of §VIII-A).  CELF lazy evaluation
[Leskovec et al. 2007] is valid when the objective is submodular — in this
library: the cumulative score, the sandwich bound functions, and coverage —
and is applied automatically for those.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.problem import FJVoteProblem
from repro.utils.validation import check_seed_budget
from repro.voting.scores import CumulativeScore


@dataclass
class GreedyResult:
    """Outcome of a greedy run.

    Attributes
    ----------
    seeds:
        Selected nodes in pick order.
    objective:
        Objective value of the full seed set.
    gains:
        Marginal gain recorded at each pick.
    evaluations:
        Number of objective evaluations performed (CELF effectiveness metric).
    """

    seeds: np.ndarray
    objective: float
    gains: np.ndarray
    evaluations: int


def greedy_select(
    value_fn: Callable[[tuple[int, ...]], float],
    n: int,
    k: int,
    *,
    lazy: bool = False,
    candidates: Sequence[int] | None = None,
) -> GreedyResult:
    """Select ``k`` elements greedily maximizing ``value_fn``.

    Parameters
    ----------
    value_fn:
        Maps a tuple of selected node ids to the objective value.  Must be
        non-decreasing for the result to be meaningful.
    n:
        Ground-set size (nodes are ``0..n-1``).
    k:
        Number of elements to pick.
    lazy:
        Use CELF lazy evaluation.  Only sound for submodular objectives.
    candidates:
        Optional restriction of the ground set.
    """
    k = check_seed_budget(k, n)
    pool = np.arange(n) if candidates is None else np.asarray(sorted(set(candidates)))
    if k > pool.size:
        raise ValueError(f"budget k={k} exceeds candidate pool size {pool.size}")
    selected: list[int] = []
    gains: list[float] = []
    evaluations = 0
    current = value_fn(())
    if lazy:
        # CELF: heap entries are (-cached_gain, node, stamp) where stamp is
        # the size of the selected set when the gain was computed.  A cached
        # gain is exact iff stamp == len(selected); by submodularity stale
        # gains only over-estimate, so popping a fresh maximum is safe.
        heap: list[tuple[float, int, int]] = []
        for v in pool:
            gain = value_fn((int(v),)) - current
            evaluations += 1
            heap.append((-gain, int(v), 0))
        heapq.heapify(heap)
        for _ in range(k):
            while True:
                neg_gain, v, stamp = heapq.heappop(heap)
                if stamp == len(selected):
                    best, best_gain = v, -neg_gain
                    break
                gain = value_fn(tuple(selected) + (v,)) - current
                evaluations += 1
                heapq.heappush(heap, (-gain, v, len(selected)))
            selected.append(best)
            gains.append(best_gain)
            current += best_gain
    else:
        remaining = set(int(v) for v in pool)
        for _ in range(k):
            best, best_gain = -1, -np.inf
            base = tuple(selected)
            for v in remaining:
                gain = value_fn(base + (v,)) - current
                evaluations += 1
                if gain > best_gain:
                    best, best_gain = v, gain
            selected.append(best)
            gains.append(best_gain)
            current += best_gain
            remaining.discard(best)
    return GreedyResult(
        seeds=np.array(selected, dtype=np.int64),
        objective=current,
        gains=np.array(gains, dtype=np.float64),
        evaluations=evaluations,
    )


def greedy_dm(
    problem: FJVoteProblem,
    k: int,
    *,
    lazy: bool | str = "auto",
    candidates: Sequence[int] | None = None,
) -> GreedyResult:
    """Algorithm 1 with exact (direct matrix multiplication) opinions.

    ``lazy="auto"`` enables CELF exactly when the score is cumulative (the
    submodular case, Theorem 3); other scores use exhaustive re-evaluation
    each round as in the paper.
    """
    if lazy == "auto":
        lazy = isinstance(problem.score, CumulativeScore)
    return greedy_select(
        lambda seeds: problem.objective(np.array(seeds, dtype=np.int64)),
        problem.n,
        k,
        lazy=bool(lazy),
        candidates=candidates,
    )
