"""Shared fixtures: the paper's running example and small random instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import FJVoteProblem
from repro.datasets.example import running_example
from repro.graph.build import graph_from_edges
from repro.opinion.state import CampaignState
from repro.voting.scores import VotingScore


@pytest.fixture
def example_dataset():
    """The Fig. 1 running example (4 users, 2 candidates, t=1)."""
    return running_example()


@pytest.fixture
def example_problem_factory(example_dataset):
    """Factory: a running-example problem for any score."""

    def make(score: VotingScore) -> FJVoteProblem:
        return example_dataset.problem(score)

    return make


def random_instance(
    n: int = 12,
    r: int = 3,
    *,
    density: float = 0.25,
    seed: int = 0,
    shared_graph: bool = True,
) -> CampaignState:
    """A small random campaign state for property-style tests."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    src, dst = np.where(mask)
    weights = rng.uniform(0.1, 1.0, size=src.size)
    graph = graph_from_edges(n, src, dst, weights)
    if shared_graph:
        graphs = (graph,) * r
    else:
        graphs = tuple(
            graph_from_edges(
                n, src, dst, rng.uniform(0.1, 1.0, size=src.size)
            )
            for _ in range(r)
        )
    return CampaignState(
        graphs=graphs,
        initial_opinions=rng.uniform(0, 1, size=(r, n)),
        stubbornness=rng.uniform(0, 1, size=(r, n)),
    )


@pytest.fixture
def random_state() -> CampaignState:
    """One deterministic small random instance."""
    return random_instance(seed=42)


@pytest.fixture
def random_state_factory():
    """Factory for seeded random instances."""
    return random_instance
