"""Exact (exponential-time) reference solvers and submodularity probes.

Used by the test suite to certify the (1 - 1/e) guarantee for the cumulative
score on small instances (Theorem 3 + [Nemhauser et al.]), and by the
Table II reproduction to exhibit the non-submodularity of the plurality and
Copeland scores (Example 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.problem import FJVoteProblem
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_seed_budget


def brute_force_optimum(problem: FJVoteProblem, k: int) -> tuple[np.ndarray, float]:
    """Enumerate all size-``k`` seed sets and return ``(best_set, best_value)``.

    Exponential in ``k``; intended for instances with at most a few dozen
    nodes (tests and counterexample search).
    """
    k = check_seed_budget(k, problem.n)
    best_set: tuple[int, ...] = ()
    best_val = -np.inf
    for combo in combinations(range(problem.n), k):
        val = problem.objective(np.array(combo, dtype=np.int64))
        if val > best_val:
            best_val = val
            best_set = combo
    return np.array(best_set, dtype=np.int64), float(best_val)


@dataclass
class SubmodularityViolation:
    """A witnessed violation ``F(X+s) - F(X) < F(Y+s) - F(Y)`` with ``X ⊆ Y``."""

    x: tuple[int, ...]
    y: tuple[int, ...]
    element: int
    gain_x: float
    gain_y: float


def submodularity_violations(
    problem: FJVoteProblem,
    *,
    trials: int = 200,
    max_set_size: int = 3,
    rng: int | np.random.Generator | None = None,
) -> list[SubmodularityViolation]:
    """Randomly probe for submodularity violations of the problem objective.

    Samples nested pairs ``X ⊂ Y`` and an element ``s ∉ Y`` and checks the
    diminishing-returns inequality.  An empty result does *not* prove
    submodularity; a non-empty result disproves it (used to reproduce the
    "No" cells of Table II).
    """
    rng = ensure_rng(rng)
    n = problem.n
    violations: list[SubmodularityViolation] = []
    for _ in range(trials):
        size_y = int(rng.integers(1, max_set_size + 1))
        if size_y + 1 > n:
            continue
        y = rng.choice(n, size=size_y, replace=False)
        size_x = int(rng.integers(0, size_y))
        x = (
            rng.choice(y, size=size_x, replace=False)
            if size_x
            else np.empty(0, np.int64)
        )
        outside = np.setdiff1d(np.arange(n), y)
        if outside.size == 0:
            continue
        s = int(rng.choice(outside))
        fx = problem.objective(x)
        fy = problem.objective(y)
        fxs = problem.objective(np.append(x, s))
        fys = problem.objective(np.append(y, s))
        if (fxs - fx) - (fys - fy) < -1e-9:
            violations.append(
                SubmodularityViolation(
                    x=tuple(int(v) for v in sorted(x)),
                    y=tuple(int(v) for v in sorted(y)),
                    element=s,
                    gain_x=fxs - fx,
                    gain_y=fys - fy,
                )
            )
    return violations


def monotonicity_violations(
    problem: FJVoteProblem,
    *,
    trials: int = 200,
    max_set_size: int = 4,
    rng: int | np.random.Generator | None = None,
) -> list[tuple[tuple[int, ...], int, float]]:
    """Randomly probe for monotonicity violations ``F(S + s) < F(S)``.

    All five scores are non-decreasing in the seed set (§III-B), so this
    should always return an empty list; kept as a test oracle.
    """
    rng = ensure_rng(rng)
    n = problem.n
    bad: list[tuple[tuple[int, ...], int, float]] = []
    for _ in range(trials):
        size = int(rng.integers(0, min(max_set_size, n - 1) + 1))
        s_set = rng.choice(n, size=size, replace=False)
        outside = np.setdiff1d(np.arange(n), s_set)
        v = int(rng.choice(outside))
        before = problem.objective(s_set)
        after = problem.objective(np.append(s_set, v))
        if after < before - 1e-9:
            bad.append((tuple(int(u) for u in sorted(s_set)), v, after - before))
    return bad
