"""Voting-based scores and winner-determination rules (paper §II-B)."""

from repro.voting.extensions import BordaScore, DowdallScore
from repro.voting.rank import rank_against, ranks
from repro.voting.rules import (
    condorcet_winner,
    copeland_margin,
    gamma_values,
    pairwise_tally,
    score_all_candidates,
    winner,
)
from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    PApprovalScore,
    PluralityScore,
    PositionalPApprovalScore,
    SeparableScore,
    VotingScore,
    make_score,
)

__all__ = [
    "BordaScore",
    "CopelandScore",
    "DowdallScore",
    "CumulativeScore",
    "PApprovalScore",
    "PluralityScore",
    "PositionalPApprovalScore",
    "SeparableScore",
    "VotingScore",
    "condorcet_winner",
    "copeland_margin",
    "gamma_values",
    "make_score",
    "pairwise_tally",
    "rank_against",
    "ranks",
    "score_all_candidates",
    "winner",
]
