"""The ACM-election case study (§VIII-B, Table IV, Fig. 4).

On the DBLP-like dataset: pick 100 seeds for the target candidate with the
plurality objective at t = 20, then report, per research domain, the number
of users voting for the target before and after seeding, the top seeds with
the domains they influence most, and how "neutral" the switched users were —
reproducing the paper's three observations: (1) seeds concentrate in the
common DM domain and the large initially-hostile domains, (2) per-domain
vote shares jump dramatically, (3) most switched users were near-neutral.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reachability import ReachabilityIndex
from repro.datasets.synth import Dataset
from repro.eval.harness import select_seeds
from repro.utils.rng import ensure_rng
from repro.voting.rank import ranks
from repro.voting.scores import PluralityScore


@dataclass
class DomainRow:
    """One row of Table IV."""

    domain: str
    total_users: int
    votes_without_seeds: int
    votes_with_seeds: int
    top_seed_names: list[int]

    @property
    def pct_without(self) -> float:
        """Vote share before seeding (percent)."""
        return 100.0 * self.votes_without_seeds / max(self.total_users, 1)

    @property
    def pct_with(self) -> float:
        """Vote share after seeding (percent)."""
        return 100.0 * self.votes_with_seeds / max(self.total_users, 1)


@dataclass
class CaseStudyResult:
    """Everything §VIII-B reports."""

    seeds: np.ndarray
    votes_before: int
    votes_after: int
    n: int
    rows: list[DomainRow]
    neutral_fraction_of_switchers: float

    @property
    def share_before(self) -> float:
        """Overall vote share before seeding (percent)."""
        return 100.0 * self.votes_before / self.n

    @property
    def share_after(self) -> float:
        """Overall vote share after seeding (percent)."""
        return 100.0 * self.votes_after / self.n


def acm_election_case_study(
    dataset: Dataset,
    *,
    k: int = 100,
    method: str = "rw",
    top_seeds: int = 10,
    neutral_margin: float = 0.1,
    rng: int | np.random.Generator | None = None,
    engine: str | None = None,
    **method_kwargs: object,
) -> CaseStudyResult:
    """Run the case study on a DBLP-like dataset (needs domain metadata).

    ``neutral_margin`` classifies a user as neutral when her initial
    opinions on the two candidates differ by less than this margin
    (standing in for the paper's "equidistant from both candidates" hop
    analysis, which needs author-candidate distances we do not model).
    ``engine`` selects the objective-evaluation backend for the
    greedy-based methods; ``method_kwargs`` are forwarded to the selector.
    """
    member = dataset.meta.get("membership")
    domains = dataset.meta.get("domains")
    if member is None or domains is None:
        raise ValueError("dataset must carry 'membership' and 'domains' metadata")
    rng = ensure_rng(rng)
    problem = dataset.problem(PluralityScore())
    seeds = select_seeds(method, problem, k, rng, engine=engine, **method_kwargs)
    beta_before = ranks(problem.full_opinions(()), problem.target)
    beta_after = ranks(problem.full_opinions(seeds), problem.target)
    votes_before_mask = beta_before == 1
    votes_after_mask = beta_after == 1
    # Attribute each top seed to the domains where it reaches the most users.
    index = ReachabilityIndex(problem.state.graph(problem.target), problem.horizon)
    head = seeds[: min(top_seeds, seeds.size)]
    seed_domains: dict[int, np.ndarray] = {}
    for s in head:
        reach = index.reach(int(s))
        counts = member[:, reach].sum(axis=1)
        seed_domains[int(s)] = np.argsort(-counts)[:3]
    rows: list[DomainRow] = []
    for d, name in enumerate(domains):
        in_domain = member[d]
        rows.append(
            DomainRow(
                domain=name,
                total_users=int(in_domain.sum()),
                votes_without_seeds=int((votes_before_mask & in_domain).sum()),
                votes_with_seeds=int((votes_after_mask & in_domain).sum()),
                top_seed_names=[int(s) for s in head if d in seed_domains[int(s)]],
            )
        )
    switchers = votes_after_mask & ~votes_before_mask
    b0 = dataset.state.initial_opinions
    neutral = np.abs(b0[0] - b0[1]) < neutral_margin
    neutral_frac = (
        float((switchers & neutral).sum() / switchers.sum()) if switchers.any() else 0.0
    )
    return CaseStudyResult(
        seeds=seeds,
        votes_before=int(votes_before_mask.sum()),
        votes_after=int(votes_after_mask.sum()),
        n=problem.n,
        rows=rows,
        neutral_fraction_of_switchers=neutral_frac,
    )
