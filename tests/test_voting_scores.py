"""Tests for the five voting scores, pinned to the paper's Table I."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    PApprovalScore,
    PluralityScore,
    PositionalPApprovalScore,
    make_score,
)

# Opinions at t=1 in the running example (no seeds): c1 row from Table I,
# c2 row from the caption.
_EXAMPLE_OPINIONS = np.array(
    [
        [0.40, 0.80, 0.60, 0.75],
        [0.35, 0.75, 0.78, 0.90],
    ]
)


def test_cumulative_matches_table1():
    assert CumulativeScore().evaluate(_EXAMPLE_OPINIONS, 0) == pytest.approx(2.55)


def test_plurality_matches_table1():
    assert PluralityScore().evaluate(_EXAMPLE_OPINIONS, 0) == 2
    assert PluralityScore().evaluate(_EXAMPLE_OPINIONS, 1) == 2


def test_copeland_matches_table1():
    assert CopelandScore().evaluate(_EXAMPLE_OPINIONS, 0) == 0
    assert CopelandScore().evaluate(_EXAMPLE_OPINIONS, 1) == 0


def test_copeland_with_clear_winner():
    opinions = np.array([[0.9, 0.9, 0.2], [0.1, 0.5, 0.1], [0.2, 0.1, 0.9]])
    assert CopelandScore().evaluate(opinions, 0) == 2
    assert CopelandScore().evaluate(opinions, 1) == 0


def test_p_approval_counts_top_p():
    # 3 candidates; with p=2 candidate 0 is in the top 2 for users 0 and 1
    # (ranks 2, 2, 3 respectively).
    opinions = np.array([[0.5, 0.6, 0.1], [0.9, 0.7, 0.5], [0.1, 0.45, 0.5]])
    assert PApprovalScore(2, 3).evaluate(opinions, 0) == 2
    assert PApprovalScore(3, 3).evaluate(opinions, 0) == 3


def test_plurality_equals_one_approval():
    rng = np.random.default_rng(0)
    opinions = rng.random((4, 25))
    for q in range(4):
        assert PluralityScore().evaluate(opinions, q) == PApprovalScore(1, 4).evaluate(
            opinions, q
        )


def test_positional_weights_applied():
    opinions = np.array([[0.9, 0.4], [0.5, 0.8]])
    score = PositionalPApprovalScore(2, np.array([1.0, 0.25]))
    # User 0 ranks target first (weight 1), user 1 ranks it second (0.25).
    assert score.evaluate(opinions, 0) == pytest.approx(1.25)


def test_positional_reduces_to_p_approval_at_weight_one():
    rng = np.random.default_rng(2)
    opinions = rng.random((5, 40))
    positional = PositionalPApprovalScore(3, np.ones(5))
    approval = PApprovalScore(3, 5)
    for q in range(5):
        assert positional.evaluate(opinions, q) == pytest.approx(
            approval.evaluate(opinions, q)
        )


def test_positional_weight_validation():
    with pytest.raises(ValueError, match="non-increasing"):
        PositionalPApprovalScore(2, np.array([0.5, 1.0]))
    with pytest.raises(ValueError, match="\\[0, 1\\]"):
        PositionalPApprovalScore(2, np.array([1.0, 2.0]))
    with pytest.raises(ValueError, match="at least p"):
        PositionalPApprovalScore(3, np.array([1.0]))
    with pytest.raises(ValueError, match=">= 1"):
        PositionalPApprovalScore(0, np.array([1.0]))


def test_weight_at():
    score = PositionalPApprovalScore(2, np.array([1.0, 0.5]))
    assert score.weight_at(1) == 1.0
    assert score.weight_at(2) == 0.5
    assert score.weight_at(3) == 0.0


def test_evaluate_all_shape():
    values = CumulativeScore().evaluate_all(_EXAMPLE_OPINIONS)
    np.testing.assert_allclose(values, [2.55, 2.78])


def test_make_score_factory():
    assert isinstance(make_score("cumulative"), CumulativeScore)
    assert isinstance(make_score("plurality"), PluralityScore)
    assert isinstance(make_score("copeland"), CopelandScore)
    assert make_score("p-approval", p=2).p == 2
    assert make_score("positional-p-approval", p=2, weights=np.array([1, 0.5])).p == 2
    with pytest.raises(ValueError):
        make_score("borda")
    with pytest.raises(ValueError):
        make_score("p-approval")
    with pytest.raises(ValueError):
        make_score("positional-p-approval", p=2)


def test_copeland_validates_candidate():
    with pytest.raises(ValueError):
        CopelandScore().evaluate(_EXAMPLE_OPINIONS, 7)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), r=st.integers(2, 5), n=st.integers(1, 30))
def test_property_score_bounds(seed, r, n):
    """Cumulative <= n; plurality/p-approval <= n; Copeland <= r-1."""
    rng = np.random.default_rng(seed)
    opinions = rng.random((r, n))
    for q in range(r):
        assert 0 <= CumulativeScore().evaluate(opinions, q) <= n
        assert 0 <= PluralityScore().evaluate(opinions, q) <= n
        assert 0 <= CopelandScore().evaluate(opinions, q) <= r - 1


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_plurality_sums_at_most_n(seed):
    """At most one candidate can be a user's strict favorite."""
    rng = np.random.default_rng(seed)
    opinions = rng.random((4, 20))
    total = sum(PluralityScore().evaluate(opinions, q) for q in range(4))
    assert total <= 20
