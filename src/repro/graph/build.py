"""Constructing :class:`InfluenceGraph` objects from raw edges.

The paper normalizes raw edge weights "such that the incoming weights of each
node add up to 1" (§VIII-A).  Nodes without any in-edge keep their initial
opinion under DeGroot/FJ; we realize that by giving such nodes a self-loop of
weight 1 during normalization, which makes the matrix exactly
column-stochastic while preserving the model semantics.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.graph.digraph import InfluenceGraph


def column_stochastic(matrix: sparse.spmatrix, *, self_loop_isolated: bool = True) -> sparse.csr_matrix:
    """Normalize columns of ``matrix`` to sum to 1.

    Parameters
    ----------
    matrix:
        Square sparse matrix of non-negative raw weights; entry ``(i, j)`` is
        the raw influence of ``i`` on ``j``.
    self_loop_isolated:
        Give nodes whose column sums to 0 (no in-edges) a self-loop of
        weight 1 so the result is a valid stochastic matrix.  When false,
        such columns raise ``ValueError``.
    """
    csc = sparse.csc_matrix(matrix, dtype=np.float64)
    if csc.shape[0] != csc.shape[1]:
        raise ValueError(f"matrix must be square, got {csc.shape}")
    if csc.nnz and csc.data.min() < 0:
        raise ValueError("raw weights must be non-negative")
    col_sums = np.asarray(csc.sum(axis=0)).ravel()
    empty = col_sums <= 0
    if empty.any() and not self_loop_isolated:
        raise ValueError(
            f"{int(empty.sum())} columns have zero in-weight and "
            "self_loop_isolated=False"
        )
    # Scale every stored entry by the inverse of its column sum.
    scale = np.ones_like(col_sums)
    nonzero = ~empty
    scale[nonzero] = 1.0 / col_sums[nonzero]
    csc = csc.copy()
    csc.data *= np.repeat(scale, np.diff(csc.indptr))
    if empty.any():
        idx = np.where(empty)[0]
        loops = sparse.csc_matrix(
            (np.ones(idx.size), (idx, idx)), shape=csc.shape, dtype=np.float64
        )
        csc = csc + loops
    return csc.tocsr()


def graph_from_edges(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray | None = None,
    *,
    normalize: bool = True,
) -> InfluenceGraph:
    """Build an :class:`InfluenceGraph` from edge arrays.

    Duplicate ``(src, dst)`` pairs have their weights summed.  With
    ``normalize=True`` (default) the raw weights are column-normalized and
    isolated nodes receive a self-loop.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    if src.size and (src.min() < 0 or src.max() >= n or dst.min() < 0 or dst.max() >= n):
        raise ValueError(f"edge endpoints must lie in [0, {n})")
    if weight is None:
        weight = np.ones(src.size, dtype=np.float64)
    else:
        weight = np.asarray(weight, dtype=np.float64)
        if weight.shape != src.shape:
            raise ValueError("weight must match src/dst shape")
    mat = sparse.coo_matrix((weight, (src, dst)), shape=(n, n)).tocsr()
    mat.sum_duplicates()
    if normalize:
        mat = column_stochastic(mat)
    return InfluenceGraph(mat)


def induced_subgraph(
    graph: InfluenceGraph, nodes: np.ndarray, *, renormalize: bool = True
) -> tuple[InfluenceGraph, np.ndarray]:
    """Return the subgraph induced by ``nodes`` plus the node mapping.

    Used by the scalability experiment (Fig. 17), which subsamples node sets
    of increasing size.  Returns ``(subgraph, nodes)`` where row ``i`` of the
    subgraph corresponds to ``nodes[i]`` in the original graph.
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size and (nodes.min() < 0 or nodes.max() >= graph.n):
        raise ValueError("nodes out of range")
    sub = graph.csr[nodes][:, nodes]
    if renormalize:
        sub = column_stochastic(sub)
        return InfluenceGraph(sub), nodes
    return InfluenceGraph(sub, validate=False), nodes
