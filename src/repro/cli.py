"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``select``      choose k seeds on a built-in dataset with any method/score
``winmin``      minimum seed set for the target to win (Problem 2)
``case-study``  the §VIII-B ACM-election case study
``serve``       run the request-coalescing query server over warm engines
``serve-load``  drive concurrent load against a running server
``net-worker``  serve dm-mp candidate chunks to remote TCP coordinators
``datasets``    list built-in dataset recipes
``methods``     list seed-selection methods

Engine selection (``--engine``)
-------------------------------
The greedy-based methods evaluate the objective through a pluggable
backend (:mod:`repro.core.engine`); specs parse into a structured
:class:`~repro.core.engine.EngineSpec`:

===========================  =====  ================================================
spec                         exact  backend
===========================  =====  ================================================
``dm``                       yes    legacy per-set DM, one FJ evolution per seed set
``dm-batched``               yes    vectorized DM, all candidates at once (default)
``dm-mp[:W][:shm]``          yes    ``dm-batched`` over ``W`` worker processes;
                                    ``:shm`` = zero-copy shared-memory transport
``dm-mp:tcp=H:P,...``        yes    ``dm-batched`` sharded across remote
                                    ``repro net-worker`` hosts over TCP
``rw``                       no     random-walk estimator (Algorithm 4)
``sketch``                   no     sketch estimator (Algorithm 5)
``rw-store[:S][:mmap=DIR]``  no     shared sharded walk store, adaptive sampling;
                                    ``:mmap=DIR`` = persistent on-disk shards
===========================  =====  ================================================

All exact specs produce byte-identical selections; ``dm-mp`` pays off on
multi-core hosts where candidate chunks evolve in parallel memory domains.
``rw-store`` persists walks in an ``S``-shard store and escalates the
sample IMM-style until the requested (ε, δ) bound holds, reusing every
walk across greedy rounds, budgets and win-min probes.

Data-plane suffixes: ``dm-mp:<W>:shm`` maps problem matrices, score rows
and commit broadcasts through shared memory so only array descriptors
cross the worker pipes, ``dm-mp:tcp=<host:port,...>`` shards candidate
chunks across ``repro net-worker`` hosts (one chunk per host, selections
byte-identical at every host count, lost hosts' chunks re-sharded to the
survivors — see the README's Multi-host section), and
``rw-store:<S>:mmap=<DIR>`` spills walk blocks to memory-mapped shards
under ``DIR``.  ``--store-dir DIR`` is the
convenience form of the latter: it rewrites an ``rw-store`` engine spec
to ``...:mmap=DIR`` and hands the sampling methods one shared store
rooted at ``DIR``, so a second invocation with the same ``--seed``
re-opens the pools and regenerates **zero** walk blocks (the ``store:``
line printed after selection shows the cold/warm counters).  Persistence
covers *walk* pools (rw/rs); the ic/lt RR-set pools share the store
within one invocation but are in-memory only.

Incremental re-solve (``--apply-delta``)
----------------------------------------
``--apply-delta FILE`` replays graph/opinion churn against the freshly
built problem *before* seeds are selected.  ``FILE`` holds one JSON delta
step or a list of them::

    [{"edges_added":   [[src, dst, weight], ...],
      "edges_removed": [[src, dst], ...],
      "opinions_changed": [[candidate, node, value], ...],
      "candidate": 0}]

Each step is forwarded through :meth:`FJVoteProblem.apply_delta`
(``candidate`` picks whose graph the edge churn hits; default the
target's) and its :class:`~repro.core.problem.DeltaReport` flows into the
``--store-dir`` walk store, which re-draws **only the walks that crossed
a touched node** instead of regenerating blocks — a warm store replayed
against a delta keeps ``blocks generated=0`` and reports the surgical
work in the ``invalidated=``/``walks patched=`` counters of the
``store:`` line.  One ``delta:`` line per invocation prints the
aggregated report (edges added/removed, opinion rewrites, touched nodes,
whether sparsity structure changed).

The file is a *journal*: the store's manifest remembers the graph
versions its walks were drawn at, so re-running with the same file is a
no-op for the store (every step's patches are already on disk), and
*appending* steps to the file patches only the new churn.  Running a
delta-patched store **without** its journal fails with the manifest
version-mismatch error — the walks on disk answer for the mutated
graphs, not the pristine ones.

Which caches survive which delta kind:

====================  ==========================  =========================
layer                 edge churn                  opinion churn
====================  ==========================  =========================
problem caches        touched competitor rows     touched competitor rows
                      recomputed, target          recomputed, target
                      trajectories lazily         trajectories lazily
                      rebuilt                     rebuilt
warm engine sessions  trajectory patched (small   trajectory patched /
                      deltas) or replayed         replayed, same rule
walk-store blocks     walks crossing a touched    **all blocks survive**
                      node re-drawn in place      (walks never read B⁰);
                                                  only masters drop
dm-mp worker pools    touched columns patched     opinion rows patched in
                      in place / re-shared        shared memory
====================  ==========================  =========================

Serving (``serve`` / ``serve-load``)
------------------------------------
``serve`` builds the problem once, keeps ``--engine`` (plus any
``--extra-engine``) hot — worker pools forked and pinged, walk-store
shards memory-mapped, per-prefix sessions cached — and answers queries
over the newline-delimited JSON protocol of :mod:`repro.serve.protocol`
on a TCP socket.  Concurrent requests that target the same (graph
version, committed prefix) state coalesce into one engine round with
byte-identical responses; deltas are serialized through the same queue
and every response carries its ``graph_version``/``opinion_version``.
The server prints one ``serving on HOST:PORT`` line when ready (port 0
picks a free port), then the warm-store ``store:`` counters, and shuts
down cleanly on SIGTERM/SIGINT — worker pools stop through
``stop_worker_pool`` and shm segments are unlinked.  ``serve-load``
fires a deterministic concurrent workload at a running server and
reports p50/p99 latency, QPS and the server's coalescing counters.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.core.engine import ENGINE_HELP, ENGINE_NAMES, EngineSpec
from repro.core.winmin import min_seeds_to_win
from repro.datasets.dblp import dblp_like
from repro.datasets.synth import Dataset
from repro.datasets.twitter import (
    twitter_mask,
    twitter_social_distancing,
    twitter_us_election,
)
from repro.datasets.yelp import yelp_like
from repro.eval.case_study import acm_election_case_study
from repro.eval.harness import METHOD_NAMES, select_seeds
from repro.eval.reporting import format_table
from repro.utils.timing import Timer
from repro.voting.scores import make_score

DATASETS: dict[str, Callable[..., Dataset]] = {
    "dblp": dblp_like,
    "yelp": yelp_like,
    "twitter-election": twitter_us_election,
    "twitter-distancing": twitter_social_distancing,
    "twitter-mask": twitter_mask,
}

_FAST_KWARGS = {
    "rw": {"lambda_cap": 32},
    "rs": {"theta": 4000},
    "ic": {"theta_cap": 30000},
    "lt": {"theta_cap": 30000},
}


def _build_dataset(args: argparse.Namespace) -> Dataset:
    maker = DATASETS[args.dataset]
    return maker(n=args.users, rng=args.seed, horizon=args.horizon)


class _SpecSafeFormatter(argparse.HelpFormatter):
    """Help formatter that never splits an engine spec across lines.

    The default formatter wraps on hyphens, which would render
    ``dm-mp:<workers>[:shm]`` as ``dm- mp:...`` depending on where the
    registry-derived help happens to wrap.
    """

    def _split_lines(self, text: str, width: int) -> list[str]:
        import textwrap

        return textwrap.wrap(
            text, width, break_on_hyphens=False, break_long_words=False
        )


def _engine_spec(value: str) -> str:
    # Validation *and* the error message come from the engine registry
    # (EngineSpec.parse's single ValueError), so malformed specs like
    # ``dm-mp:`` or ``dm-mp:0`` fail with the same message everywhere.
    try:
        EngineSpec.parse(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _add_engine_option(parser: argparse.ArgumentParser) -> None:
    # Accepted names *and* help render from the engine registry, so a
    # newly registered backend shows up here without touching the CLI.
    parser.add_argument(
        "--engine",
        type=_engine_spec,
        metavar="|".join(ENGINE_NAMES),
        default="dm-batched",
        help="objective-evaluation backend for the greedy-based methods ("
        + "; ".join(
            f"{name}: {ENGINE_HELP.get(name, 'no description')}"
            for name in ENGINE_NAMES
        )
        + ")",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=sorted(DATASETS), default="yelp")
    parser.add_argument("--users", type=int, default=1000, help="network size n")
    parser.add_argument("--horizon", type=int, default=20, help="time horizon t")
    parser.add_argument(
        "--score",
        default="plurality",
        choices=["cumulative", "plurality", "copeland", "p-approval"],
    )
    parser.add_argument("--p", type=int, default=2, help="p for p-approval")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    _add_engine_option(parser)
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="persist walk pools as memory-mapped shards under DIR "
        "(rw-store engines gain :mmap=DIR; rw/rs re-open them, so "
        "rerunning with the same --seed regenerates zero walk blocks; "
        "ic/lt RR-set pools stay in-memory)",
    )
    parser.add_argument(
        "--apply-delta",
        default=None,
        metavar="FILE",
        help="replay a JSON delta file (graph/opinion churn) against the "
        "problem before selecting; with --store-dir, a warm walk store "
        "re-draws only the walks the delta invalidated (see the module "
        "docstring for the file format)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="arm a deterministic fault-injection plan (JSON, see "
        "repro.core.faults: kill workers, corrupt store blocks, shed "
        "requests) before running; the same plan replays the same "
        "failures, so chaos runs are comparable bit for bit",
    )


def _make_score(args: argparse.Namespace):
    if args.score == "p-approval":
        return make_score("p-approval", p=args.p)
    return make_score(args.score)


#: Methods drawing samples from the shared :class:`WalkStore` of
#: ``--store-dir`` (walk pools for rw/rs, RR-set pools for ic/lt).
_STORE_METHODS = ("rw", "rs", "ic", "lt")


def _wire_store_dir(args: argparse.Namespace, problem) -> "WalkStore | None":
    """Apply ``--store-dir``: spec rewrite plus a shared persistent store.

    Engine specs naming ``rw-store`` gain the ``:mmap=DIR`` suffix (their
    private store persists); the sampling methods get one shared
    :class:`~repro.core.walk_store.WalkStore` rooted at ``DIR`` and seeded
    by ``--seed``, so repeat invocations re-open the same pools.
    """
    if not getattr(args, "store_dir", None):
        return None
    spec = EngineSpec.parse(args.engine)
    if spec.name == "rw-store":
        try:
            spec = spec.with_store_dir(args.store_dir)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        args.engine = str(spec)
    # The dm method with an rw-store engine draws from the shared store
    # too (mirroring run_methods): the store must exist *before* any
    # --apply-delta replay so the delta can be forwarded through it.
    dm_with_store = args.method == "dm" and spec.name == "rw-store"
    if args.method not in _STORE_METHODS and not dm_with_store:
        return None
    from repro.core.walk_store import store_for_problem

    shards = int(spec.shards) if dm_with_store and spec.shards else 1
    return store_for_problem(
        problem, seed=args.seed, store_dir=args.store_dir, shards=shards
    )


def _print_store_stats(store: "WalkStore | None") -> None:
    """One deterministic counters line (the warm-store smoke greps it).

    New counters go at the *end*: CI and user scripts grep stable prefixes
    like ``"store: blocks generated=0 "``.
    """
    if store is None:
        return
    stats = store.stats
    print(
        f"store: blocks generated={stats.blocks_generated} "
        f"written={stats.blocks_written} loaded={stats.blocks_loaded} "
        f"reused={stats.blocks_reused} rr-sets generated="
        f"{stats.rr_sets_generated} invalidated={stats.blocks_invalidated} "
        f"walks patched={stats.walks_patched} "
        f"quarantined={stats.blocks_quarantined} "
        f"repaired={stats.blocks_repaired}"
    )


def _wire_store_and_delta(args: argparse.Namespace, problem) -> "WalkStore | None":
    """Open the ``--store-dir`` store and replay the ``--apply-delta`` journal.

    The delta file is a *journal*: a persistent store dir may already hold
    the patches of any prefix of it (its manifest records the graph
    versions it was written at), while a freshly built problem always
    starts pristine.  The store is therefore opened at whichever point of
    the journal matches its manifest — steps before that point only
    advance the problem (the store already holds their patches), steps
    after it are forwarded through :meth:`WalkStore.apply_delta` so only
    the walks they invalidated are re-drawn.  A store that matches *no*
    point of the journal raises the manifest version-mismatch error.

    Prints one grep-able ``delta:`` line aggregating every step's
    :class:`~repro.core.problem.DeltaReport`, mirroring the ``store:``
    line's role for the warm-store smoke tests.
    """
    steps: list[dict] = []
    if getattr(args, "apply_delta", None):
        import json

        with open(args.apply_delta) as handle:
            loaded = json.load(handle)
        steps = [loaded] if isinstance(loaded, dict) else list(loaded)
    store = None
    open_error: ValueError | None = None
    try:
        store = _wire_store_dir(args, problem)
    except ValueError as exc:
        if not steps:
            raise
        open_error = exc
    added = removed = opinions = 0
    touched: set[int] = set()
    structural = False
    refreshed = 0
    for step in steps:
        report = problem.apply_delta(
            edges_added=[tuple(e) for e in step.get("edges_added", ())],
            edges_removed=[tuple(e) for e in step.get("edges_removed", ())],
            opinions_changed=[
                tuple(o) for o in step.get("opinions_changed", ())
            ],
            candidate=step.get("candidate"),
        )
        if store is not None:
            store.apply_delta(report)
        elif open_error is not None:
            # Store manifest is ahead of the pristine problem; retry now
            # that this journal step has been replayed onto the problem.
            try:
                store = _wire_store_dir(args, problem)
                open_error = None
            except ValueError as exc:
                open_error = exc
        added += report.edges_added
        removed += report.edges_removed
        opinions += sum(
            len(nodes) for nodes in report.opinions_by_candidate.values()
        )
        for nodes in report.touched_by_candidate.values():
            touched.update(int(v) for v in nodes)
        structural = structural or report.structural
        refreshed += report.competitor_rows_refreshed
    if open_error is not None:
        raise open_error
    if steps:
        print(
            f"delta: steps={len(steps)} edges added={added} "
            f"removed={removed} opinions changed={opinions} "
            f"touched nodes={len(touched)} "
            f"structural={'yes' if structural else 'no'} "
            f"competitor rows refreshed={refreshed}"
        )
    return store


def cmd_select(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    problem = dataset.problem(_make_score(args))
    problem.others_by_user()
    kwargs = _FAST_KWARGS.get(args.method, {})
    store = _wire_store_and_delta(args, problem)
    engine: "str | ObjectiveEngine" = args.engine
    if store is not None and args.method == "dm":
        if EngineSpec.parse(args.engine).name == "rw-store":
            # Build the engine around the shared (possibly delta-patched)
            # store instead of letting it open a private one.
            from repro.core.engine import make_engine

            engine = make_engine(args.engine, problem, rng=args.seed, store=store)
    try:
        with Timer() as timer:
            seeds = select_seeds(
                args.method,
                problem,
                args.k,
                rng=args.seed,
                engine=engine,
                store=store,
                **kwargs,
            )
    finally:
        if not isinstance(engine, str):
            engine.close()
    before = problem.objective(())
    after = problem.objective(seeds)
    print(
        f"{dataset.name}: n={dataset.n}, target="
        f"{dataset.state.candidates[dataset.target]!r}, t={problem.horizon}"
    )
    print(f"method={args.method} k={args.k}: score {before:.2f} -> {after:.2f} "
          f"({timer.elapsed:.2f}s)")
    print("seeds:", " ".join(str(int(s)) for s in seeds))
    _print_store_stats(store)
    return 0


def cmd_winmin(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    problem = dataset.problem(_make_score(args))
    kwargs = _FAST_KWARGS.get(args.method, {})
    store = _wire_store_and_delta(args, problem)
    if args.method == "dm":
        result = min_seeds_to_win(
            problem, k_max=args.kmax, engine=args.engine, rng=args.seed
        )
    else:
        result = min_seeds_to_win(
            problem,
            k_max=args.kmax,
            selector=lambda k: select_seeds(
                args.method, problem, k, rng=args.seed, store=store, **kwargs
            ),
        )
    _print_store_stats(store)
    if result.found:
        print(f"target wins with k* = {result.k} seeds ({result.probes} probes)")
    else:
        print(f"target cannot win within k <= {args.kmax}")
    return 0 if result.found else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the coalescing query server until SIGTERM/SIGINT."""
    from repro.serve.batcher import EngineHub
    from repro.serve.server import run_server

    dataset = _build_dataset(args)
    problem = dataset.problem(_make_score(args))
    specs = [args.engine, *(args.extra_engine or [])]
    # The shared-store/delta wiring keys off ``args.engine``; point it at
    # the first rw-store spec so --store-dir opens one store for it (the
    # spec may gain its :mmap=DIR suffix in the process).
    store_index = next(
        (
            i
            for i, spec in enumerate(specs)
            if EngineSpec.parse(spec).name == "rw-store"
        ),
        0,
    )
    args.engine = specs[store_index]
    args.method = "dm"  # reuse select's store-wiring rules
    store = _wire_store_and_delta(args, problem)
    specs[store_index] = args.engine
    if args.store_dir:
        for i, spec in enumerate(specs):
            parsed = EngineSpec.parse(spec)
            if parsed.name == "rw-store" and parsed.store_dir is None:
                specs[i] = str(parsed.with_store_dir(args.store_dir))
    hub = EngineHub(problem, specs, rng=args.seed, store=store)
    print(
        f"{dataset.name}: n={dataset.n}, target="
        f"{dataset.state.candidates[dataset.target]!r}, t={problem.horizon}"
    )
    print("engines:", " ".join(hub.specs))

    def on_ready(host: str, port: int) -> None:
        # Parseable readiness line first (tests/scripts block on it),
        # then the warm-store counters: a warm start shows generated=0.
        print(f"serving on {host}:{port}", flush=True)
        _print_store_stats(store)
        sys.stdout.flush()

    stats = run_server(
        hub,
        host=args.host,
        port=args.port,
        batch_window=args.batch_window,
        queue_cap=args.queue_cap,
        request_timeout_ms=args.request_timeout_ms,
        on_ready=on_ready,
    )
    print(
        "serve: "
        + " ".join(f"{k}={v}" for k, v in sorted(stats.snapshot().items()))
    )
    return 0


def cmd_serve_load(args: argparse.Namespace) -> int:
    """Deterministic concurrent workload against a running server."""
    import numpy as np

    from repro.serve.client import request_once, run_load

    probe = request_once(args.host, args.port, "stats")
    if not probe.get("ok"):
        raise SystemExit(f"stats probe failed: {probe.get('error')}")
    n = int(probe["result"]["problem"]["n"])
    rng = np.random.default_rng(args.seed)
    prefix = [int(v) for v in rng.choice(n, size=2, replace=False)]
    payloads: list[dict] = []
    for i in range(args.requests):
        if i % 4 == 3:
            seeds = [int(v) for v in rng.choice(n, size=2, replace=False)]
            payloads.append({"op": "prefix_win_probability", "seeds": seeds})
        else:
            payloads.append(
                {
                    "op": "marginal_gain",
                    "seeds": prefix,
                    "candidates": [int(rng.integers(n))],
                }
            )
    report = run_load(
        args.host, args.port, payloads, connections=args.connections
    )

    def _code(response: dict) -> str | None:
        error = response.get("error")
        return error.get("code") if isinstance(error, dict) else None

    # Structured overload answers are the server *working as configured*
    # (shedding past --queue-cap, expiring stale deadlines), not faults;
    # only other errors fail the run.
    shed = sum(1 for r in report.responses if _code(r) == "overloaded")
    expired = sum(
        1 for r in report.responses if _code(r) == "deadline-exceeded"
    )
    failures = (
        sum(1 for r in report.responses if not r.get("ok")) - shed - expired
    )
    print(
        f"load: requests={len(report.responses)} failures={failures} "
        f"connections={args.connections} qps={report.qps:.1f} "
        f"p50_ms={report.latency_percentile(50) * 1e3:.2f} "
        f"p99_ms={report.latency_percentile(99) * 1e3:.2f} "
        f"shed={shed} expired={expired}"
    )
    counters = request_once(args.host, args.port, "stats")["result"]["serve"]
    print(
        "serve: " + " ".join(f"{k}={v}" for k, v in sorted(counters.items()))
    )
    return 1 if failures else 0


def cmd_net_worker(args: argparse.Namespace) -> int:
    """Serve ``dm-mp:tcp=...`` coordinators until interrupted.

    One host of a multi-host fleet: accepts one coordinator at a time,
    answers its candidate-chunk fan-outs with a host-local engine (a
    ``dm-mp`` pool when ``--workers`` > 1), and returns to ``accept``
    when the coordinator stops — so a long-lived host outlives many
    selection runs.  With ``--store-dir`` the host opens the shared walk
    store against each coordinator's problem first; the store manifest's
    identity check rejects coordinators solving a different problem.
    """
    from repro.core.engine_net import run_net_worker

    def on_ready(host: str, port: int) -> None:
        # Parseable readiness line (scripts block on it; port 0 binds a
        # free port that only this line reveals).
        print(f"net-worker listening on {host}:{port}", flush=True)

    try:
        served = run_net_worker(
            args.host,
            args.port,
            workers=args.workers,
            store_dir=args.store_dir,
            store_seed=args.seed,
            connections=args.connections,
            on_ready=on_ready,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0
    print(f"net-worker: coordinators served={served}")
    return 0


def cmd_case_study(args: argparse.Namespace) -> int:
    dataset = dblp_like(n=args.users, rng=args.seed, horizon=args.horizon)
    result = acm_election_case_study(
        dataset, k=args.k, method=args.method, rng=args.seed + 1,
        engine=args.engine,
        **_FAST_KWARGS.get(args.method, {}),
    )
    print(
        f"votes for target: {result.votes_before} ({result.share_before:.1f}%)"
        f" -> {result.votes_after} ({result.share_after:.1f}%)"
    )
    rows = [
        [row.domain, row.total_users, row.votes_without_seeds, row.votes_with_seeds]
        for row in result.rows
    ]
    print(format_table(["domain", "#users", "before", "after"], rows))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: run the reprolint project-invariant checkers.

    Exit status 0 = clean (or every finding baselined), 1 = findings.
    The default scan root is the installed ``repro`` package itself, so
    the command works from any directory.
    """
    from pathlib import Path

    import repro
    from repro.analysis import (
        Project,
        apply_baseline,
        default_checkers,
        format_json,
        format_text,
        load_baseline,
        run_checkers,
        write_baseline,
    )

    checkers = default_checkers()
    if args.list_checkers:
        for checker in checkers:
            print(f"{checker.name}: {checker.description}")
        return 0
    paths = args.paths or [Path(repro.__file__).parent]
    project = Project.from_paths(paths)
    findings = run_checkers(project, checkers)
    if args.write_baseline:
        count = write_baseline(findings, args.write_baseline)
        print(f"reprolint: wrote {count} finding key(s) to {args.write_baseline}")
        return 0
    baselined = 0
    if args.baseline:
        try:
            keys = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2
        findings, baselined = apply_baseline(findings, keys)
    if args.format == "json":
        print(format_json(findings, checkers, baselined=baselined))
    else:
        print(format_text(findings, baselined=baselined))
    return 1 if findings else 0


def cmd_datasets(_: argparse.Namespace) -> int:
    for name in sorted(DATASETS):
        print(name)
    return 0


def cmd_methods(_: argparse.Namespace) -> int:
    for name in METHOD_NAMES:
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Voting-based opinion maximization (ICDE 2023)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_select = sub.add_parser(
        "select", help="select k seeds", formatter_class=_SpecSafeFormatter
    )
    _add_common(p_select)
    p_select.add_argument("--method", choices=METHOD_NAMES, default="rs")
    p_select.add_argument("-k", type=int, default=20, help="seed budget")
    p_select.set_defaults(func=cmd_select)

    p_win = sub.add_parser(
        "winmin",
        help="minimum seeds to win (Problem 2)",
        formatter_class=_SpecSafeFormatter,
    )
    _add_common(p_win)
    p_win.add_argument("--method", choices=("dm", "rw", "rs"), default="dm")
    p_win.add_argument("--kmax", type=int, default=300)
    p_win.set_defaults(func=cmd_winmin)

    p_case = sub.add_parser(
        "case-study",
        help="ACM election case study",
        formatter_class=_SpecSafeFormatter,
    )
    p_case.add_argument("--users", type=int, default=2000)
    p_case.add_argument("--horizon", type=int, default=20)
    p_case.add_argument("--seed", type=int, default=0)
    p_case.add_argument("-k", type=int, default=100)
    p_case.add_argument("--method", choices=METHOD_NAMES, default="rw")
    _add_engine_option(p_case)
    p_case.set_defaults(func=cmd_case_study)

    p_serve = sub.add_parser(
        "serve",
        help="run the request-coalescing query server",
        formatter_class=_SpecSafeFormatter,
    )
    _add_common(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="0 picks a free port (printed on the 'serving on' line)",
    )
    p_serve.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="extra time the dispatcher waits for co-batchable requests; "
        "0 still coalesces everything queued while a round is in flight",
    )
    p_serve.add_argument(
        "--extra-engine",
        action="append",
        type=_engine_spec,
        default=None,
        metavar="SPEC",
        help="additional engine spec to keep hot (repeatable; requests "
        "pick one with their 'engine' parameter)",
    )
    p_serve.add_argument(
        "--queue-cap",
        type=int,
        default=None,
        metavar="N",
        help="bound the dispatch queue at N requests; admissions past it "
        "answer a structured 'overloaded' error immediately instead of "
        "buffering without bound (default: unbounded)",
    )
    p_serve.add_argument(
        "--request-timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help="default per-request deadline; a request still queued when "
        "it expires answers 'deadline-exceeded' without costing an "
        "engine round (a request's own deadline_ms overrides it; "
        "default: no deadline)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "serve-load", help="drive concurrent load against a running server"
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, required=True)
    p_load.add_argument("--requests", type=int, default=64)
    p_load.add_argument("--connections", type=int, default=8)
    p_load.add_argument("--seed", type=int, default=0)
    p_load.set_defaults(func=cmd_serve_load)

    p_net = sub.add_parser(
        "net-worker",
        help="serve dm-mp:tcp candidate chunks to remote coordinators",
        formatter_class=_SpecSafeFormatter,
    )
    p_net.add_argument("--host", default="127.0.0.1")
    p_net.add_argument(
        "--port",
        type=int,
        default=0,
        help="0 picks a free port (printed on the readiness line)",
    )
    p_net.add_argument(
        "--workers",
        type=int,
        default=1,
        help="host-side dm-mp pool size; 1 serves chunks from a single "
        "in-process engine (results are byte-identical either way)",
    )
    p_net.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="open the shared walk store under DIR against each "
        "coordinator's problem; the store manifest's identity check "
        "rejects coordinators whose problem does not match the walks",
    )
    p_net.add_argument(
        "--seed",
        type=int,
        default=0,
        help="store seed for the --store-dir identity check",
    )
    p_net.add_argument(
        "--connections",
        type=int,
        default=None,
        metavar="N",
        help="serve N coordinators, then exit (default: serve forever)",
    )
    p_net.set_defaults(func=cmd_net_worker)

    p_lint = sub.add_parser(
        "lint",
        help="run the reprolint project-invariant checkers",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to scan (default: the repro package)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="json output is deterministic: sorted findings, stable bytes",
    )
    p_lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract findings recorded in FILE; only new ones fail",
    )
    p_lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the accepted baseline and exit 0",
    )
    p_lint.add_argument(
        "--list",
        dest="list_checkers",
        action="store_true",
        help="list the active checkers and exit",
    )
    p_lint.set_defaults(func=cmd_lint)

    sub.add_parser("datasets", help="list datasets").set_defaults(func=cmd_datasets)
    sub.add_parser("methods", help="list methods").set_defaults(func=cmd_methods)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "fault_plan", None):
        from repro.core import faults

        faults.install(faults.FaultPlan.from_file(args.fault_plan))
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
