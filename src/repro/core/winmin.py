"""Problem 2 (FJ-Vote-Win): minimum seed set for the target to win (Alg. 2).

Binary search over the budget ``k``: scores are non-decreasing in the seed
set, and with a deterministic greedy selector the size-``k`` solutions are
nested prefixes of one ranking, so the winning indicator is monotone in
``k``.  The default path runs Algorithm 1 *once* through a
:class:`~repro.core.engine.SelectionSession` and then serves every
binary-search probe as a session prefix probe: the committed trajectory
answers the full-budget check for free, and each midpoint extends the
nearest cached prefix instead of replaying the ranking from scratch (the
winning criterion itself stays exact — estimate engines only influence the
ranking).  As the paper remarks, the returned size can exceed the true
optimum because the inner seed selection is itself approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.engine import ObjectiveEngine, make_engine
from repro.core.greedy import greedy_engine
from repro.core.problem import FJVoteProblem
from repro.voting.scores import CumulativeScore


@dataclass
class WinMinResult:
    """Outcome of the minimum-winning-seed-set search.

    ``found`` is false when the target cannot win even with the maximum
    budget probed, in which case ``seeds``/``k`` describe that largest
    attempt.  ``probes`` counts winning-criterion checks (the CELF-style
    effectiveness metric for Algorithm 2).
    """

    seeds: np.ndarray
    k: int
    found: bool
    probes: int


def min_seeds_to_win(
    problem: FJVoteProblem,
    *,
    k_max: int | None = None,
    selector: Callable[[int], np.ndarray] | None = None,
    engine: ObjectiveEngine | str | None = None,
    rng: int | np.random.Generator | None = None,
) -> WinMinResult:
    """Find the smallest budget whose selected seed set makes the target win.

    Parameters
    ----------
    k_max:
        Upper end of the binary search (default: n).  Use a smaller cap to
        bound runtime on large instances.
    selector:
        Maps a budget to a seed set (e.g. a closure over
        :func:`repro.core.random_walk.random_walk_select`).  Defaults to the
        exact greedy ranking, evaluated as nested session prefixes so
        Algorithm 1 runs only once and probes reuse its committed state.
    engine:
        Evaluation backend for the default greedy ranking (see
        :func:`repro.core.engine.make_engine`); ignored when ``selector``
        is given.  The winning criterion itself is always checked exactly —
        via the session's warm-started prefix rows on the exact backends,
        via :meth:`FJVoteProblem.target_wins` otherwise.
    rng:
        Seeds the stochastic (walk/sketch) engine specs so the default
        ranking stays reproducible; exact engines ignore it.
    """
    n = problem.n
    upper = n if k_max is None else int(k_max)
    if not 0 < upper <= n:
        raise ValueError(f"k_max must be in (0, {n}], got {k_max}")
    probes = 1
    if problem.target_wins(()):
        return WinMinResult(
            seeds=np.empty(0, dtype=np.int64), k=0, found=True, probes=probes
        )
    created: ObjectiveEngine | None = None
    try:
        if selector is None:
            engine_obj = make_engine(engine, problem, rng=rng)
            if engine_obj is not engine:
                # Built from a spec: scoped to this search (closes dm-mp
                # pools; a no-op for the in-process backends).
                created = engine_obj
            # Estimator backends escalate their sample for the full search
            # budget *before* the session snapshots its base value.
            engine_obj.prepare_budget(upper)
            session = engine_obj.open_session()
            # Mirrors greedy_dm's lazy="auto": CELF exactly for the
            # submodular cumulative score (Theorem 3).
            ranking = greedy_engine(
                engine_obj,
                upper,
                lazy=isinstance(problem.score, CumulativeScore),
                session=session,
            ).seeds

            def probe(k: int) -> tuple[np.ndarray, bool]:
                return ranking[:k], session.prefix_wins(k)

        else:

            def probe(k: int) -> tuple[np.ndarray, bool]:
                seeds = np.asarray(selector(k), dtype=np.int64)
                return seeds, problem.target_wins(seeds)

        best, won = probe(upper)
        probes += 1
        if not won:
            return WinMinResult(seeds=best, k=upper, found=False, probes=probes)
        lo, hi = 0, upper
        while hi - lo > 1:
            mid = (lo + hi) // 2
            candidate, won = probe(mid)
            probes += 1
            if won:
                hi, best = mid, candidate
            else:
                lo = mid
        return WinMinResult(seeds=best, k=hi, found=True, probes=probes)
    finally:
        if created is not None:
            created.close()
