"""Shared-memory arena: the zero-copy transport of the dm-mp data plane.

``multiprocessing`` pipes pickle every message, so a fan-out engine that
ships dense score rows (or whole ``target_opinion_rows`` blocks) per round
pays a serialization tax proportional to the payload.  The classes here
let :class:`~repro.core.engine_mp.MultiprocessDMEngine` map the payloads
once instead: the parent owns an :class:`ShmArena` of named
``multiprocessing.shared_memory`` segments, workers attach by name through
an :class:`ShmAttachments` cache, and per-round messages carry only
``(segment, dtype, shape, offset)`` tuples — see
:data:`ArrayRef` — while the arrays themselves live in the mapped slabs.

Lifecycle is the hard part of POSIX shared memory: a segment leaks until
someone calls ``unlink``.  The arena therefore guarantees cleanup three
ways — an explicit :meth:`ShmArena.close`, a ``weakref.finalize`` that
fires on garbage collection *and* at interpreter exit, and idempotent
bookkeeping so any combination of the above (including after a worker
crash tore the pool down mid-round) unlinks every segment exactly once.
Workers must never be the ones tracking segments: attaching registers the
segment with the attaching process's ``resource_tracker``, whose exit-time
cleanup would unlink arenas the parent still uses (the long-standing
CPython pitfall), so :func:`attach_segment` immediately unregisters (or
passes ``track=False`` on Python 3.13+).
"""

from __future__ import annotations

import weakref
from multiprocessing import shared_memory

import numpy as np

#: How a message refers to an array living in a mapped segment:
#: ``(segment name, dtype string, shape, byte offset)``.
ArrayRef = tuple[str, str, tuple[int, ...], int]


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting cleanup responsibility.

    The creator's resource tracker is the single cleanup authority.  An
    attaching process must not register the segment at all: a spawned
    worker's own tracker would unlink arenas the parent still maps when
    the worker exits, and a forked worker shares the parent's tracker, so
    unregister-after-attach would strip the parent's leak protection.
    Python 3.13 exposes ``track=False`` for exactly this; earlier
    versions need the register call suppressed around the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 fallback below
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _destroy_segments(segments: dict[str, shared_memory.SharedMemory]) -> None:
    """Close and unlink every segment (the arena's finalizer body).

    Module-level (not a bound method) so the ``weakref.finalize`` guard
    holds no reference to the arena itself; idempotent because it drains
    the shared dict in place.
    """
    while segments:
        _, segment = segments.popitem()
        for release in (segment.close, segment.unlink):
            try:
                release()
            except (FileNotFoundError, OSError):  # pragma: no cover - raced
                pass


class ShmArena:
    """Owner of a set of shared-memory segments with guaranteed unlink.

    Every segment created through the arena is unlinked when the arena is
    closed, garbage collected, or the interpreter exits — whichever comes
    first (``weakref.finalize`` covers the latter two).  ``close`` is
    idempotent and safe to call from ``finally`` blocks after a worker
    crash.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._finalizer = weakref.finalize(self, _destroy_segments, self._segments)

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """Allocate a fresh tracked segment of at least ``nbytes`` bytes."""
        segment = shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1))
        self._segments[segment.name] = segment
        return segment

    def share_array(self, array: np.ndarray) -> ArrayRef:
        """Copy ``array`` into its own segment; returns the attach ref."""
        array = np.ascontiguousarray(array)
        segment = self.create(array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        return (segment.name, array.dtype.str, tuple(array.shape), 0)

    def view(self, ref: ArrayRef) -> np.ndarray:
        """A live ndarray over a ref of one of this arena's segments.

        The owner-side twin of :meth:`ShmAttachments.array` — the delta
        broadcast uses it to patch shared problem arrays in place so
        attached workers observe the new bytes without any re-mapping.
        """
        name, dtype, shape, offset = ref
        segment = self._segments.get(name)
        if segment is None:
            raise ValueError(f"ref {ref!r} does not name a live arena segment")
        return np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset
        )

    def release(self, name: str) -> None:
        """Unlink one segment early (e.g. a slab outgrown by reallocation)."""
        segment = self._segments.pop(name, None)
        if segment is not None:
            _destroy_segments({name: segment})

    def close(self) -> None:
        """Unlink every segment now (idempotent; detaches the finalizer)."""
        self._finalizer.detach()
        _destroy_segments(self._segments)

    @property
    def names(self) -> tuple[str, ...]:
        """Names of the live segments (test/diagnostic hook)."""
        return tuple(self._segments)


class ShmSlab:
    """A grow-on-demand scratch region inside an arena.

    One slab backs one message direction of one worker: the writer calls
    :meth:`begin` per message, bump-allocates arrays with :meth:`write`
    (returning the refs the message carries), and :meth:`ensure` replaces
    the segment with a larger one when a round outgrows it — the old
    segment is unlinked immediately; readers that mapped it stay valid
    until they drop their attachment, and every message names its segment
    explicitly so no reader ever looks at a stale slab.
    """

    def __init__(self, arena: ShmArena, nbytes: int = 0) -> None:
        self.arena = arena
        self._segment: shared_memory.SharedMemory | None = None
        self._cursor = 0
        if nbytes:
            self.ensure(nbytes)

    def ensure(self, nbytes: int) -> None:
        """Guarantee capacity for ``nbytes`` (reallocates when exceeded).

        Reallocation at least doubles the segment: a workload whose
        payloads grow a little every round would otherwise reallocate per
        round, and since readers cache attachments by name, each stale
        segment stays mapped in every worker — doubling bounds the stale
        mappings at O(log max payload) instead of one per round.
        """
        nbytes = int(nbytes)
        if self._segment is not None and self._segment.size >= nbytes:
            return
        if self._segment is not None:
            nbytes = max(nbytes, 2 * self._segment.size)
            self.arena.release(self._segment.name)
        self._segment = self.arena.create(nbytes)

    @property
    def name(self) -> str:
        if self._segment is None:
            raise RuntimeError("slab has no segment; call ensure() first")
        return self._segment.name

    def begin(self) -> None:
        """Reset the bump cursor (one message's writes per begin)."""
        self._cursor = 0

    def _grow_for(self, end: int) -> None:
        """Capacity for a cursor reaching ``end`` — before the first write.

        A reallocation swaps segment *names*, which would orphan any ref
        already handed out for the current message, so growth is only
        legal while the cursor sits at the start: callers that pack
        several arrays per message pre-``ensure`` the total size.
        """
        if self._segment is not None and self._segment.size >= end:
            return
        if self._cursor:
            raise RuntimeError(
                "slab outgrown mid-message; ensure() the full message "
                "size before begin()"
            )
        self.ensure(end)

    def write(self, array: np.ndarray) -> ArrayRef:
        """Copy ``array`` at the cursor; returns its ref, 8-byte aligned."""
        array = np.ascontiguousarray(array)
        offset = self._cursor
        end = offset + array.nbytes
        self._grow_for(end)
        segment = self._segment
        assert segment is not None
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset
        )
        view[...] = array
        self._cursor = -(-end // 8) * 8
        return (segment.name, array.dtype.str, tuple(array.shape), offset)

    def reserve(self, dtype: np.dtype | str, shape: tuple[int, ...]) -> ArrayRef:
        """Reserve space for a reader-written array; returns its ref.

        Used for reply payloads: the parent sizes and names the region, the
        worker fills it, and the parent reads it back with :meth:`view`.
        """
        dtype = np.dtype(dtype)
        nbytes = int(dtype.itemsize * int(np.prod(shape, dtype=np.int64)))
        offset = self._cursor
        self._grow_for(offset + nbytes)
        self._cursor = -(-(offset + nbytes) // 8) * 8
        segment = self._segment
        assert segment is not None
        return (segment.name, dtype.str, tuple(int(s) for s in shape), offset)

    def view(self, ref: ArrayRef) -> np.ndarray:
        """A live ndarray over ``ref`` (which must be in this slab)."""
        name, dtype, shape, offset = ref
        segment = self._segment
        if segment is None or segment.name != name:
            raise ValueError(f"ref {ref!r} does not belong to this slab")
        return np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset
        )


class ShmAttachments:
    """Reader-side cache of attached segments (one per worker process).

    Attachments are cached by name — a slab that grew mid-session simply
    shows up under a new name — and are closed (never unlinked: the arena
    owns that) by :meth:`close` or garbage collection.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def segment(self, name: str) -> shared_memory.SharedMemory:
        found = self._segments.get(name)
        if found is None:
            found = self._segments[name] = attach_segment(name)
        return found

    def array(self, ref: ArrayRef) -> np.ndarray:
        """A zero-copy ndarray view of the referenced region."""
        name, dtype, shape, offset = ref
        return np.ndarray(
            shape,
            dtype=np.dtype(dtype),
            buffer=self.segment(name).buf,
            offset=offset,
        )

    def close(self) -> None:
        """Detach every cached segment (idempotent)."""
        while self._segments:
            _, segment = self._segments.popitem()
            try:
                segment.close()
            except OSError:  # pragma: no cover - already gone
                pass


__all__ = [
    "ArrayRef",
    "ShmArena",
    "ShmAttachments",
    "ShmSlab",
    "attach_segment",
]
