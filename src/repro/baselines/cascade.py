"""Independent Cascade and Linear Threshold diffusion [Kempe et al. 2003].

The paper's IC/LT baselines interpret the influence weights as activation
probabilities (IC) or as threshold weights (LT; incoming weights sum to 1
after normalization, satisfying the LT constraint).  A user has a single
binary choice frozen upon activation — exactly the classic-IM assumption the
paper argues against, which is why these baselines trail the voting-based
methods.  ``expected_spread`` also implements the EIS metric of Fig. 11.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.utils.rng import ensure_rng


def simulate_ic(
    graph: InfluenceGraph,
    seeds: np.ndarray,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """One Independent Cascade run; returns the boolean activation vector.

    Each newly activated node gets a single chance to activate each
    out-neighbor ``v`` with probability ``w[u, v]``.
    """
    rng = ensure_rng(rng)
    active = np.zeros(graph.n, dtype=bool)
    seeds = np.asarray(seeds, dtype=np.int64)
    active[seeds] = True
    frontier = list(int(s) for s in seeds)
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            targets, weights = graph.out_neighbors(u)
            hits = rng.random(targets.size) < weights
            for v in targets[hits]:
                v = int(v)
                if not active[v]:
                    active[v] = True
                    next_frontier.append(v)
        frontier = next_frontier
    return active


def simulate_lt(
    graph: InfluenceGraph,
    seeds: np.ndarray,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """One Linear Threshold run; returns the boolean activation vector.

    Node thresholds are uniform in [0, 1]; a node activates once the total
    weight of its active in-neighbors reaches its threshold.  Self-loops
    (normalization artifacts) are excluded from the incoming mass, matching
    the social semantics of LT.
    """
    rng = ensure_rng(rng)
    thresholds = rng.random(graph.n)
    active = np.zeros(graph.n, dtype=bool)
    seeds = np.asarray(seeds, dtype=np.int64)
    active[seeds] = True
    incoming = np.zeros(graph.n, dtype=np.float64)
    frontier = list(int(s) for s in seeds)
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            targets, weights = graph.out_neighbors(u)
            for v, w in zip(targets, weights):
                v = int(v)
                if v == u or active[v]:
                    continue
                incoming[v] += w
                if incoming[v] >= thresholds[v]:
                    active[v] = True
                    next_frontier.append(v)
        frontier = next_frontier
    return active


def expected_spread(
    graph: InfluenceGraph,
    seeds: np.ndarray,
    *,
    model: str = "ic",
    mc_runs: int = 200,
    rng: int | np.random.Generator | None = None,
) -> float:
    """Monte-Carlo expected influence spread (the EIS metric of Fig. 11)."""
    rng = ensure_rng(rng)
    if model == "ic":
        simulate = simulate_ic
    elif model == "lt":
        simulate = simulate_lt
    else:
        raise ValueError(f"model must be 'ic' or 'lt', got {model!r}")
    if mc_runs < 1:
        raise ValueError("mc_runs must be >= 1")
    total = 0
    for _ in range(mc_runs):
        total += int(simulate(graph, seeds, rng).sum())
    return total / mc_runs
