"""Tests for IC/LT simulation and expected spread."""

import numpy as np
import pytest

from repro.baselines.cascade import expected_spread, simulate_ic, simulate_lt
from repro.graph.build import graph_from_edges


def _path_graph(n=5):
    return graph_from_edges(n, list(range(n - 1)), list(range(1, n)))


def test_ic_deterministic_chain():
    # All edge probabilities are 1 (single in-neighbor): full activation.
    g = _path_graph()
    active = simulate_ic(g, np.array([0]), rng=0)
    assert active.all()


def test_ic_seeds_always_active():
    g = _path_graph()
    active = simulate_ic(g, np.array([4]), rng=0)
    assert active[4]
    assert active.sum() == 1  # no outgoing edges from the chain's end


def test_ic_empty_seed_set():
    g = _path_graph()
    assert simulate_ic(g, np.array([], dtype=np.int64), rng=0).sum() == 0


def test_ic_probabilistic_branching():
    # 0 -> {1, 2} with probability 1/2 each (two in-edges? no: per-column).
    # Here node 1 has in-edges from 0 and 3 -> each weight 1/2.
    g = graph_from_edges(4, [0, 3, 0], [1, 1, 2])
    counts = 0
    runs = 2000
    rng = np.random.default_rng(1)
    for _ in range(runs):
        counts += simulate_ic(g, np.array([0]), rng)[1]
    assert counts / runs == pytest.approx(0.5, abs=0.05)


def test_lt_deterministic_chain():
    # Single in-neighbor with weight 1 >= any threshold in [0,1): cascades.
    g = _path_graph()
    active = simulate_lt(g, np.array([0]), rng=2)
    assert active.sum() >= 4  # threshold exactly ... extremely unlikely edge


def test_lt_self_loops_do_not_activate():
    # Isolated node 1 has only a self-loop; node 0 has no edge to it.
    g = graph_from_edges(2, [1], [0])
    active = simulate_lt(g, np.array([1]), rng=3)
    assert active[1]
    assert active[0]  # weight 1 in-edge from seed fires


def test_expected_spread_bounds():
    g = _path_graph()
    eis = expected_spread(g, np.array([0]), model="ic", mc_runs=20, rng=4)
    assert eis == pytest.approx(5.0)
    eis_lt = expected_spread(g, np.array([0]), model="lt", mc_runs=50, rng=5)
    assert 4.0 <= eis_lt <= 5.0


def test_expected_spread_validation():
    g = _path_graph()
    with pytest.raises(ValueError):
        expected_spread(g, np.array([0]), model="sir")
    with pytest.raises(ValueError):
        expected_spread(g, np.array([0]), mc_runs=0)


def test_ic_monotone_in_seeds():
    rng = np.random.default_rng(6)
    g = graph_from_edges(
        12, rng.integers(0, 12, 40), rng.integers(0, 12, 40)
    )
    small = expected_spread(g, np.array([0]), mc_runs=300, rng=7)
    large = expected_spread(g, np.array([0, 1, 2]), mc_runs=300, rng=7)
    assert large >= small - 0.5
