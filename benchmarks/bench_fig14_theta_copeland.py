"""Fig. 14: Copeland score vs the sketch count θ (Yelp in the paper).

Expected shape: as Fig. 13 — the score converges at a θ well below n and
the converged value is stable across k and t.
"""


from benchmarks.conftest import run_once
from repro.eval.experiments import theta_experiment
from repro.eval.reporting import format_series
from repro.voting.scores import CopelandScore

THETAS = [64, 128, 256, 512, 1024, 2048]


def test_fig14_theta_copeland(benchmark, yelp_ds, save_result):
    out = run_once(
        benchmark,
        lambda: theta_experiment(
            yelp_ds, CopelandScore(), THETAS, ks=[5, 20], ts=[5, 20], rng=41
        ),
    )
    series = {key: vals for key, vals in out.items() if key != "theta"}
    save_result("fig14_theta_copeland", format_series("theta", THETAS, series))
    max_score = yelp_ds.r - 1
    for key, vals in series.items():
        assert all(0 <= v <= max_score for v in vals), key
        # Copeland is integer valued and small; converged means the last two
        # θ values agree.
        assert abs(vals[-1] - vals[-2]) <= 1.0, key
