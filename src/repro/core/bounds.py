"""Sample-complexity formulas from the paper's accuracy analysis (§V-C, §VI-B).

All bounds are returned as integer counts (ceil of the analytic expression).
``log_comb`` computes ``ln C(n, k)`` stably via log-gamma.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.utils.validation import check_probability


def log_comb(n: int, k: int) -> float:
    """Natural log of the binomial coefficient C(n, k)."""
    if k < 0 or k > n:
        return float("-inf")
    return float(gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1))


def lambda_cumulative(delta: float, rho: float) -> int:
    """Walks per node for the cumulative score (Theorem 10).

    ``λ_v ≥ ln(2 / (1 - ρ)) / (2 δ²)`` gives ``|b̂ - b| < δ`` with
    probability at least ρ.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    rho = check_probability(rho, "rho")
    if rho >= 1.0:
        raise ValueError("rho must be < 1")
    return int(np.ceil(np.log(2.0 / (1.0 - rho)) / (2.0 * delta * delta)))


def lambda_rank(gamma: float | np.ndarray, rho: float) -> int | np.ndarray:
    """Walks per node for plurality-variant scores (Theorem 11).

    ``λ_v ≥ ln(2 / (1 - ρ)) / (2 γ_v²)`` ranks the target correctly for a
    user with margin ``γ_v`` with probability at least ρ.  Accepts an array
    of per-user margins.
    """
    rho = check_probability(rho, "rho")
    if rho >= 1.0:
        raise ValueError("rho must be < 1")
    gamma_arr = np.asarray(gamma, dtype=np.float64)
    if np.any(gamma_arr <= 0):
        raise ValueError("gamma must be positive (Theorem 11 assumes γ ≠ 0)")
    out = np.ceil(np.log(2.0 / (1.0 - rho)) / (2.0 * gamma_arr**2)).astype(np.int64)
    return int(out) if np.isscalar(gamma) or out.ndim == 0 else out


def lambda_copeland(gamma: float | np.ndarray, rho: float) -> int | np.ndarray:
    """Walks per node for the Copeland score (Theorem 12).

    One-sided version of :func:`lambda_rank`:
    ``λ_v ≥ ln(1 / (1 - ρ)) / (2 γ_v²)``.
    """
    rho = check_probability(rho, "rho")
    if rho >= 1.0:
        raise ValueError("rho must be < 1")
    gamma_arr = np.asarray(gamma, dtype=np.float64)
    if np.any(gamma_arr <= 0):
        raise ValueError("gamma must be positive (Theorem 12 assumes γ ≠ 0)")
    out = np.ceil(np.log(1.0 / (1.0 - rho)) / (2.0 * gamma_arr**2)).astype(np.int64)
    return int(out) if np.isscalar(gamma) or out.ndim == 0 else out


def _theta_cumulative_numerator(n: int, k: int, ell: float) -> float:
    """The ε- and OPT-free numerator ``A`` of Theorem 13: ``θ = A / (OPT ε²)``.

    Callers divide by their OPT lower bound themselves.  Shared by
    :func:`theta_cumulative` and its inverse
    :func:`epsilon_achieved_cumulative` so the pair cannot drift apart.
    """
    one_minus_inv_e = 1.0 - 1.0 / np.e
    log_2nl = ell * np.log(n) + np.log(2.0)
    inner = (
        one_minus_inv_e * np.sqrt(log_2nl)
        + np.sqrt(one_minus_inv_e * (log_2nl + log_comb(n, k)))
    ) ** 2
    return float(2.0 * n * inner)


def delta_achieved(lam: int, rho: float) -> float:
    """Opinion-error δ achieved by ``lam`` walks per node (Theorem 10 inverse).

    The smallest δ for which ``lam`` satisfies :func:`lambda_cumulative`:
    ``δ = sqrt(ln(2 / (1 - ρ)) / (2 λ))``.  Surfaces the accuracy a fixed
    walk budget actually buys, so estimators can report the (ε, δ) they
    met rather than silently undershooting a caller's request.
    """
    lam = int(lam)
    if lam < 1:
        raise ValueError("lam must be >= 1")
    rho = check_probability(rho, "rho")
    if rho >= 1.0:
        raise ValueError("rho must be < 1")
    return float(np.sqrt(np.log(2.0 / (1.0 - rho)) / (2.0 * lam)))


def epsilon_achieved_cumulative(
    n: int, k: int, opt_lower_bound: float, theta: int, ell: float
) -> float:
    """Approximation ε achieved by ``theta`` sketches (Theorem 13 inverse).

    :func:`theta_cumulative` is ``θ = A / ε²`` with ``A`` independent of ε,
    so the ε a fixed sketch budget attains is ``sqrt(A / θ)``.  Any lower
    bound on OPT is sound (a tighter one reports a smaller ε).
    """
    if opt_lower_bound <= 0:
        raise ValueError("opt_lower_bound must be positive")
    if int(theta) < 1:
        raise ValueError("theta must be >= 1")
    if n < 1 or not 0 <= k <= n:
        raise ValueError("need n >= 1 and 0 <= k <= n")
    numerator = _theta_cumulative_numerator(n, k, ell)
    return float(np.sqrt(numerator / (opt_lower_bound * int(theta))))


def theta_cumulative(
    n: int, k: int, opt_lower_bound: float, epsilon: float, ell: float
) -> int:
    """Sketch count for the cumulative score (Theorem 13, Eq. 40).

    ``θ ≥ (2n / (OPT ε²)) [ (1-1/e) √(ln 2nˡ) +
    √((1-1/e)(ln 2nˡ + ln C(n,k))) ]²`` makes Algorithm 5 a
    ``(1 - 1/e - ε)``-approximation with probability ``1 - n^{-ℓ}``.
    ``opt_lower_bound`` stands in for the unknown OPT (any lower bound is
    sound; a tighter one means fewer sketches).
    """
    if opt_lower_bound <= 0:
        raise ValueError("opt_lower_bound must be positive")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if n < 1 or not 0 <= k <= n:
        raise ValueError("need n >= 1 and 0 <= k <= n")
    numerator = _theta_cumulative_numerator(n, k, ell)
    return int(np.ceil(numerator / (opt_lower_bound * epsilon * epsilon)))


def theta_estimate_round(
    n: int, k: int, x: float, epsilon_prime: float, ell: float
) -> int:
    """Sketches for one round of the OPT lower-bound test (IMM Alg. 2 style).

    For a guess ``OPT ≥ x``, sampling this many sketches lets the test
    accept/reject the guess with failure probability ``n^{-ℓ} / log₂ n``.
    """
    if x <= 0 or epsilon_prime <= 0:
        raise ValueError("x and epsilon_prime must be positive")
    log_term = (
        log_comb(n, k)
        + ell * np.log(max(n, 2))
        + np.log(max(np.log2(max(n, 2)), 1.0))
    )
    return int(
        np.ceil(
            (2.0 + 2.0 * epsilon_prime / 3.0)
            * log_term
            * n
            / (epsilon_prime**2 * x)
        )
    )


def _scan_theta(log_lhs, log_rhs: float, theta_max: int) -> int | None:
    """Smallest θ ≤ theta_max with ``log_lhs(θ) >= log_rhs`` (Fig. 3 method).

    The LHS of Eqs. 44/48 rises and then decays in θ (ρ^θ eventually
    dominates), so a linear-in-log scan over θ suffices: evaluate on a
    geometric grid, refine around the first crossing.  Returns ``None`` when
    no admissible θ exists — exactly the regime where §VI-E's heuristic
    takes over.
    """
    grid = np.unique(
        np.concatenate(
            [
                np.arange(1, min(1024, theta_max) + 1),
                np.geomspace(1, max(theta_max, 2), num=512).astype(np.int64),
            ]
        )
    )
    grid = grid[grid <= theta_max]
    values = log_lhs(grid.astype(np.float64))
    ok = np.where(values >= log_rhs)[0]
    if ok.size == 0:
        return None
    first = int(grid[ok[0]])
    # Refine: the grid is exact for θ <= 1024; otherwise walk back linearly.
    lo = int(grid[ok[0] - 1]) + 1 if ok[0] > 0 else 1
    for theta in range(lo, first + 1):
        if log_lhs(np.array([float(theta)]))[0] >= log_rhs:
            return theta
    return first


def theta_positional_scan(
    n: int,
    k: int,
    opt_lower_bound: float,
    epsilon: float,
    ell: float,
    rho: float,
    *,
    theta_max: int = 10_000_000,
) -> int | None:
    """Smallest θ satisfying the positional-p-approval condition (Eq. 44).

    ``ρ^θ [1 - 2 exp(-ε² OPT θ / ((8+2ε) n))] ≥ 1 - C(n,k)^{-1} n^{-ℓ}``.
    Evaluated in log space (the RHS is astronomically close to 1 for
    realistic n, k).  Usually returns ``None`` — the paper's own motivation
    for the §VI-E heuristic ("difficult to compute a closed form... we use a
    heuristic method").
    """
    if opt_lower_bound <= 0 or epsilon <= 0:
        raise ValueError("opt_lower_bound and epsilon must be positive")
    rho = check_probability(rho, "rho", inclusive_low=False)
    if rho >= 1.0:
        raise ValueError("rho must be < 1")
    c = epsilon**2 * opt_lower_bound / ((8.0 + 2.0 * epsilon) * n)
    log_rho = np.log(rho)
    # log(RHS) = log(1 - tiny) = log1p(-exp(log_tiny)).
    log_tiny = -(log_comb(n, k) + ell * np.log(max(n, 2)))
    log_rhs = float(np.log1p(-np.exp(log_tiny))) if log_tiny > -700 else -0.0

    def log_lhs(theta: np.ndarray) -> np.ndarray:
        inner = 1.0 - 2.0 * np.exp(-c * theta)
        out = np.full_like(theta, -np.inf)
        pos = inner > 0
        out[pos] = theta[pos] * log_rho + np.log(inner[pos])
        return out

    return _scan_theta(log_lhs, log_rhs, theta_max)


def theta_copeland_scan(
    n: int,
    k: int,
    r: int,
    mu: float,
    ell: float,
    rho: float,
    *,
    theta_max: int = 10_000_000,
) -> int | None:
    """Smallest θ satisfying the Copeland condition (Eq. 48).

    ``ρ^θ [1 - (1-μ²)^{θ/2}] ≥ 1 - C(n,k)^{-1} n^{-ℓ} (r-1)^{-1}`` with
    ``μ`` the minimum pairwise margin (§VI-D).  As with Eq. 44, typically
    ``None`` for realistic parameters.
    """
    if not 0 < mu <= 1:
        raise ValueError("mu must be in (0, 1]")
    if r < 2:
        raise ValueError("need at least two candidates")
    rho = check_probability(rho, "rho", inclusive_low=False)
    if rho >= 1.0:
        raise ValueError("rho must be < 1")
    log_rho = np.log(rho)
    log_one_minus_mu2 = np.log1p(-mu * mu) if mu < 1 else -np.inf
    log_tiny = -(log_comb(n, k) + ell * np.log(max(n, 2)) + np.log(r - 1))
    log_rhs = float(np.log1p(-np.exp(log_tiny))) if log_tiny > -700 else -0.0

    def log_lhs(theta: np.ndarray) -> np.ndarray:
        fail = np.exp(0.5 * theta * log_one_minus_mu2) if np.isfinite(
            log_one_minus_mu2
        ) else np.zeros_like(theta)
        inner = 1.0 - fail
        out = np.full_like(theta, -np.inf)
        pos = inner > 0
        out[pos] = theta[pos] * log_rho + np.log(inner[pos])
        return out

    return _scan_theta(log_lhs, log_rhs, theta_max)
