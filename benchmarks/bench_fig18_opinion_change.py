"""Fig. 18 + Appendix B: opinion drift over time and seed stability across t.

Expected shape (paper, Yelp): a significant fraction of users keep changing
opinion well into t ≈ 20-30 for small tolerances Δ, and the optimal seed
sets at t = 5/10/20 overlap only partially with the t = 30 set (42%-61% in
the paper) — finite horizons genuinely matter.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.experiments import horizon_seed_overlap, opinion_change_experiment
from repro.eval.reporting import format_series

DELTAS = [0.1, 1.0, 5.0, 10.0]
HORIZON = 30


def test_fig18_opinion_change(benchmark, yelp_ds, save_result):
    out = run_once(
        benchmark, lambda: opinion_change_experiment(yelp_ds, DELTAS, HORIZON)
    )
    series = {k: v for k, v in out.items() if k != "t"}
    save_result(
        "fig18_opinion_change",
        format_series("t", [int(t) for t in out["t"]], series),
    )
    # Stricter tolerance counts at least as many changes at every t.
    for a, b in zip(DELTAS, DELTAS[1:]):
        assert all(
            x >= y - 1e-12
            for x, y in zip(out[f"delta={a}%"], out[f"delta={b}%"])
        )
    # Early steps see substantial change; by t=30 it has decayed.
    assert out["delta=0.1%"][0] > out["delta=0.1%"][-1]


def test_appendixB_seed_overlap_across_horizons(benchmark, distancing_ds, save_result):
    # The heavy-tailed Twitter-like graph shows the paper's effect most
    # clearly: short horizons favor locally influential seeds, so the
    # overlap with the t=30 seed set is partial and grows with t.
    ts = [1, 2, 5, 10, 30]
    out = run_once(
        benchmark,
        lambda: horizon_seed_overlap(distancing_ds, ts, 30, 20, method="dm", rng=59),
    )
    save_result(
        "appendixB_horizon_overlap",
        format_series("t", ts, {"overlap with t=30 seeds": out["overlap"]}),
    )
    # Identity at the reference horizon; partial overlap earlier.
    assert out["overlap"][-1] == pytest.approx(1.0)
    assert out["overlap"][0] < 1.0
    # Overlap grows (weakly) with the horizon.
    assert out["overlap"][0] <= out["overlap"][-2] + 1e-9
