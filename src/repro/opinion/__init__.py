"""Opinion formation and diffusion models (DeGroot, Friedkin-Johnsen)."""

from repro.opinion.convergence import (
    fraction_changing,
    oblivious_nodes,
    time_to_convergence,
)
from repro.opinion.degroot import degroot_evolve
from repro.opinion.fj import (
    apply_seeds,
    fj_equilibrium,
    fj_evolve,
    fj_step,
    fj_trajectory,
)
from repro.opinion.state import CampaignState

__all__ = [
    "CampaignState",
    "apply_seeds",
    "degroot_evolve",
    "fj_equilibrium",
    "fj_evolve",
    "fj_step",
    "fj_trajectory",
    "fraction_changing",
    "oblivious_nodes",
    "time_to_convergence",
]
