"""Fig. 13: plurality score vs the sketch count θ (Twitter Mask in the paper).

Expected shape: the score climbs with θ and converges well before θ = n;
the converged θ is insensitive to k and t (the paper reuses one estimate
across both), justifying the §VI-E heuristic.
"""


from benchmarks.conftest import run_once
from repro.eval.experiments import theta_experiment
from repro.eval.reporting import format_series
from repro.voting.scores import PluralityScore

THETAS = [64, 128, 256, 512, 1024, 2048, 4096]


def test_fig13_theta_plurality(benchmark, mask_ds, save_result):
    out = run_once(
        benchmark,
        lambda: theta_experiment(
            mask_ds, PluralityScore(), THETAS, ks=[5, 20], ts=[5, 20], rng=37
        ),
    )
    series = {key: vals for key, vals in out.items() if key != "theta"}
    save_result("fig13_theta_plurality", format_series("theta", THETAS, series))
    for key, vals in series.items():
        # Converged: the last doubling changes the score by < 10%.
        assert abs(vals[-1] - vals[-2]) <= 0.1 * max(abs(vals[-2]), 1.0), key
        # Large θ beats the smallest θ (allow small stochastic slack).
        assert vals[-1] >= vals[0] - 0.05 * max(abs(vals[0]), 1.0), key
