"""Tests for reverse random walks, truncation, and the walk-greedy optimizer.

The key correctness properties from the paper:
* Theorem 8/9 — walk estimates are unbiased for the FJ opinion at t,
  with and without post-generation truncation (checked statistically).
* The vectorized marginal-gain scan must equal brute-force re-estimation
  (checked exactly for every score and both groupings).
"""

import numpy as np
import pytest

from repro.core.problem import FJVoteProblem
from repro.core.random_walk import (
    TruncatedWalks,
    WalkGreedyOptimizer,
    estimate_gamma_star,
    generate_reverse_walks,
    random_walk_select,
)
from repro.graph.build import graph_from_edges
from repro.opinion.fj import apply_seeds, fj_evolve
from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    PluralityScore,
)
from tests.conftest import random_instance


def _example():
    g = graph_from_edges(4, [0, 1, 2], [2, 2, 3])
    b0 = np.array([0.4, 0.8, 0.6, 0.9])
    d = np.full(4, 0.5)
    return g, b0, d


# ----------------------------------------------------------------------
# Walk generation
# ----------------------------------------------------------------------
def test_walk_shapes_and_starts():
    g, b0, d = _example()
    starts = np.array([0, 1, 2, 3, 3])
    walks, lengths = generate_reverse_walks(g, d, 3, starts, rng=0)
    assert walks.shape == (5, 4)
    np.testing.assert_array_equal(walks[:, 0], starts)
    assert np.all(lengths >= 0) and np.all(lengths <= 3)


def test_walk_steps_follow_reverse_edges():
    g, b0, d = _example()
    walks, lengths = generate_reverse_walks(g, np.zeros(4), 5, np.full(50, 3), rng=1)
    for row, ln in zip(walks, lengths):
        for pos in range(int(ln)):
            cur, nxt = row[pos], row[pos + 1]
            sources, _ = g.in_neighbors(int(cur))
            assert int(nxt) in sources.tolist()


def test_fully_stubborn_walks_never_move():
    g, b0, _ = _example()
    walks, lengths = generate_reverse_walks(g, np.ones(4), 5, np.arange(4), rng=2)
    assert np.all(lengths == 0)


def test_walk_start_validation():
    g, b0, d = _example()
    with pytest.raises(ValueError):
        generate_reverse_walks(g, d, 2, np.array([9]), rng=0)
    with pytest.raises(ValueError):
        generate_reverse_walks(g, np.zeros(3), 2, np.array([0]), rng=0)


# ----------------------------------------------------------------------
# Theorems 8/9: unbiasedness, with and without truncation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seeds", [(), (2,), (0, 3)])
def test_estimates_unbiased_with_truncation(seeds):
    g, b0, d = _example()
    t = 3
    seeds = np.array(seeds, dtype=np.int64)
    walks = TruncatedWalks.generate(
        g, d, b0, t, np.repeat(np.arange(4), 40_000), rng=3
    )
    for s in seeds:
        walks.add_seed(int(s))
    b0_seeded, d_seeded = apply_seeds(b0, d, seeds)
    exact = fj_evolve(b0_seeded, d_seeded, g, t)
    estimated = walks.estimated_opinions()
    np.testing.assert_allclose(estimated, exact, atol=0.01)


def test_estimates_unbiased_on_random_instance():
    state = random_instance(n=8, r=1, seed=5)
    g = state.graph(0)
    b0, d = state.initial_opinions[0], state.stubbornness[0]
    t = 4
    walks = TruncatedWalks.generate(g, d, b0, t, np.repeat(np.arange(8), 30_000), rng=6)
    walks.add_seed(2)
    b0_s, d_s = apply_seeds(b0, d, np.array([2]))
    exact = fj_evolve(b0_s, d_s, g, t)
    np.testing.assert_allclose(walks.estimated_opinions(), exact, atol=0.015)


# ----------------------------------------------------------------------
# Truncation mechanics on a deterministic path
# ----------------------------------------------------------------------
def _deterministic_path_walks(t=3):
    # 0 -> 1 -> 2 -> 3, deterministic reverse walk from 3: 3,2,1,0.
    g = graph_from_edges(4, [0, 1, 2], [1, 2, 3])
    b0 = np.array([0.1, 0.2, 0.3, 0.4])
    d = np.zeros(4)
    walks = TruncatedWalks.generate(g, d, b0, t, np.array([3]), rng=0)
    return g, b0, walks


def test_truncation_on_deterministic_path():
    _, b0, walks = _deterministic_path_walks()
    assert walks.walks[0].tolist() == [3, 2, 1, 0]
    assert walks.values[0] == pytest.approx(0.1)  # end node 0
    walks.add_seed(1)
    assert walks.end_pos[0] == 2
    assert walks.values[0] == 1.0
    # A later seed beyond the truncation point changes nothing.
    walks.add_seed(0)
    assert walks.end_pos[0] == 2
    assert walks.values[0] == 1.0
    # An earlier seed moves the cut forward.
    walks.add_seed(2)
    assert walks.end_pos[0] == 1
    assert walks.values[0] == 1.0


def test_add_seed_idempotent():
    _, _, walks = _deterministic_path_walks()
    walks.add_seed(2)
    end = walks.end_pos.copy()
    walks.add_seed(2)
    np.testing.assert_array_equal(walks.end_pos, end)


def test_live_entries_shrink_after_seeding():
    _, _, walks = _deterministic_path_walks()
    nodes_before, _ = walks.live_entries()
    walks.add_seed(2)
    nodes_after, _ = walks.live_entries()
    assert nodes_after.size < nodes_before.size
    assert 1 not in nodes_after.tolist()  # node 1 got cut off
    assert 0 not in nodes_after.tolist()


def test_memory_bytes_positive():
    _, _, walks = _deterministic_path_walks()
    assert walks.memory_bytes() > 0


# ----------------------------------------------------------------------
# Optimizer: vectorized gains must equal brute-force re-estimation
# ----------------------------------------------------------------------
def _brute_force_gains(optimizer: WalkGreedyOptimizer) -> np.ndarray:
    """Recompute each candidate's gain by copying the walk state."""
    import copy

    walks = optimizer.walks
    n = walks.n
    base = optimizer.estimated_score()
    gains = np.zeros(n)
    for v in range(n):
        clone_walks = copy.deepcopy(walks)
        clone_opt = WalkGreedyOptimizer(
            clone_walks,
            optimizer.score,
            optimizer.others if optimizer.others.size else None,
            grouping=optimizer.grouping,
        )
        clone_walks.add_seed(v)
        gains[v] = clone_opt.estimated_score() - base
    return gains


@pytest.mark.parametrize("grouping", ["start", "walk"])
@pytest.mark.parametrize(
    "score", [CumulativeScore(), PluralityScore(), CopelandScore()]
)
def test_marginal_gains_match_brute_force(grouping, score):
    state = random_instance(n=7, r=3, seed=8)
    problem = FJVoteProblem(state, 0, 3, score)
    g = state.graph(0)
    if grouping == "start":
        starts = np.repeat(np.arange(7), 5)
    else:
        starts = np.random.default_rng(3).integers(0, 7, size=40)
    walks = TruncatedWalks.generate(
        g, state.stubbornness[0], state.initial_opinions[0], 3, starts, rng=9
    )
    optimizer = WalkGreedyOptimizer(
        walks,
        score,
        None if isinstance(score, CumulativeScore) else problem.others_by_user(),
        grouping=grouping,
    )
    fast = optimizer.marginal_gains()
    slow = _brute_force_gains(optimizer)
    np.testing.assert_allclose(fast, slow, atol=1e-9)
    # And again after one seed is chosen (live-entry filtering path).
    optimizer.walks.add_seed(int(np.argmax(fast)))
    fast2 = optimizer.marginal_gains()
    slow2 = _brute_force_gains(optimizer)
    np.testing.assert_allclose(fast2, slow2, atol=1e-9)


def test_optimizer_rejects_bad_grouping():
    _, _, walks = _deterministic_path_walks()
    with pytest.raises(ValueError):
        WalkGreedyOptimizer(walks, CumulativeScore(), None, grouping="x")


def test_optimizer_requires_competitors_for_rank_scores():
    _, _, walks = _deterministic_path_walks()
    with pytest.raises(ValueError):
        WalkGreedyOptimizer(walks, PluralityScore(), None)


def test_select_returns_distinct_seeds():
    state = random_instance(n=10, r=2, seed=12)
    problem = FJVoteProblem(state, 0, 3, PluralityScore())
    walks = TruncatedWalks.generate(
        state.graph(0),
        state.stubbornness[0],
        state.initial_opinions[0],
        3,
        np.repeat(np.arange(10), 8),
        rng=13,
    )
    optimizer = WalkGreedyOptimizer(walks, PluralityScore(), problem.others_by_user())
    result = optimizer.select(4)
    assert len(set(result.seeds.tolist())) == 4


# ----------------------------------------------------------------------
# End-to-end RW selection + γ* heuristic
# ----------------------------------------------------------------------
def test_random_walk_select_improves_score():
    state = random_instance(n=12, r=2, seed=14)
    problem = FJVoteProblem(state, 0, 4, CumulativeScore())
    result = random_walk_select(problem, 3, rng=15, walks_per_node=32)
    assert result.exact_objective >= problem.objective(()) - 1e-9
    assert result.seeds.size == 3
    assert result.total_walks == 12 * 32


def test_random_walk_select_rank_score_uses_gamma():
    state = random_instance(n=10, r=3, seed=16)
    problem = FJVoteProblem(state, 0, 3, PluralityScore())
    result = random_walk_select(problem, 2, rng=17, lambda_cap=16)
    assert result.walks_per_node.max() <= 16
    assert result.seeds.size == 2


def test_estimate_gamma_star():
    estimated = np.array([0.8, 0.3, 0.6])
    others = np.array([[0.2, 0.3], [0.5, 0.6], [0.1, 0.59]])
    gamma = estimate_gamma_star(estimated, others, floor=0.05)
    # User 0 sits 0.5 above every competitor; users 1 and 2 are contested.
    np.testing.assert_allclose(gamma, [0.5, 0.05, 0.05])


def test_estimate_gamma_star_no_competitors():
    gamma = estimate_gamma_star(np.array([0.5]), np.empty((1, 0)))
    assert np.isinf(gamma[0])


# ----------------------------------------------------------------------
# Truncation-state snapshots: copy-on-write and set-backed seed adds
# ----------------------------------------------------------------------
def _walks_instance(seed=5):
    state = random_instance(n=14, r=2, seed=seed)
    graph = state.graph(0)
    return TruncatedWalks.generate(
        graph,
        state.stubbornness[0],
        state.initial_opinions[0],
        4,
        np.repeat(np.arange(graph.n, dtype=np.int64), 6),
        rng=seed,
    )


def test_add_seed_duplicate_is_noop():
    """Membership is set-backed; re-adding a seed must change nothing —
    not the seed list, not the truncation arrays, not even array identity
    (no copy-on-write trigger)."""
    walks = _walks_instance()
    walks.add_seed(3)
    end_pos, values, b0 = walks.end_pos, walks.values, walks._b0
    before = (end_pos.copy(), values.copy(), b0.copy())
    walks.add_seed(3)
    assert walks.seeds == [3]
    assert walks.end_pos is end_pos and walks.values is values
    assert walks._b0 is b0
    np.testing.assert_array_equal(walks.end_pos, before[0])
    np.testing.assert_array_equal(walks.values, before[1])
    np.testing.assert_array_equal(walks._b0, before[2])


def test_seeds_setter_keeps_membership_in_sync():
    walks = _walks_instance()
    walks.add_seed(2)
    walks.seeds = []
    walks.add_seed(2)  # must not be treated as a duplicate after reset
    assert walks.seeds == [2]


def test_snapshot_restore_is_copy_on_write():
    """Regression: snapshot/restore used to copy every array twice (once
    at snapshot, once per restore).  Restore now aliases the snapshot and
    the first mutating add_seed copies — so the snapshot must survive
    mutations, and a mutation-free restore must not allocate."""
    walks = _walks_instance()
    snap = walks.snapshot_state()
    pristine = tuple(a.copy() for a in snap)
    walks.add_seed(4)  # copy-on-write: snapshot arrays must stay pristine
    assert not np.shares_memory(walks.values, snap[1])
    np.testing.assert_array_equal(snap[0], pristine[0])
    np.testing.assert_array_equal(snap[1], pristine[1])
    np.testing.assert_array_equal(snap[2], pristine[2])
    walks.restore_state(snap)
    # restore is an O(1) pointer swap: same arrays, no copies...
    assert walks.end_pos is snap[0] and walks.values is snap[1]
    assert walks.seeds == []
    # ...and the next mutation detaches again without touching the snapshot.
    walks.add_seed(7)
    assert not np.shares_memory(walks.end_pos, snap[0])
    np.testing.assert_array_equal(snap[0], pristine[0])
    np.testing.assert_array_equal(snap[1], pristine[1])


def test_walk_engine_reset_does_not_leak_mutations_into_snapshot():
    """End-to-end aliasing regression over WalkEngine: evaluating seeded
    sets between empty-set evaluations must keep the pristine snapshot
    byte-identical, so the empty-set estimate never drifts."""
    from repro.core.engine import make_engine

    state = random_instance(n=14, r=2, seed=9)
    problem = FJVoteProblem(state, 0, 4, CumulativeScore())
    engine = make_engine("rw", problem, rng=11, walks_per_node=6)
    baseline = engine.evaluate_one(())
    snap_values = engine._snapshot[1].copy()
    for seeds in ((3,), (1, 5), (), (9, 3)):
        engine.evaluate_one(seeds)
    np.testing.assert_array_equal(engine._snapshot[1], snap_values)
    assert engine.evaluate_one(()) == baseline
