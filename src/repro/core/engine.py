"""Batched objective-evaluation engines (the pluggable evaluation seam).

Every seed-selection algorithm in this library ultimately asks the same
question — "what is ``F(B(t)[S], c_q)`` for these seed sets?" — and the
:class:`ObjectiveEngine` interface makes the answer pluggable.  An engine
wraps an :class:`~repro.core.problem.FJVoteProblem` and exposes

* ``evaluate(seed_sets)``   — objectives of many seed sets at once,
* ``marginal_gains(base, candidates)`` — one greedy round in one call,
* ``open_session()``        — a stateful :class:`SelectionSession` that
  carries warm-start state across greedy rounds and prefix probes,
* capability flags ``supports_batch`` / ``is_estimate``.

Selection sessions
------------------
Greedy (Algorithm 1) and the FJ-Vote-Win binary search (Algorithm 2) only
ever evaluate *one-element extensions* of a committed set or *nested
prefixes* of one greedy ranking.  A :class:`SelectionSession` exploits that
shape instead of restarting every FJ evolution from the empty-seed base:

* ``commit(seed)`` folds the chosen seed's already-evolved delta into a
  cached *committed trajectory* (extending the
  :meth:`~repro.core.problem.FJVoteProblem.target_trajectory` caching to
  seeded bases), so the next round evolves candidate deltas against the
  committed state — one pinned coordinate per column — rather than
  recomputing all ``|S|`` pinned coordinates from scratch;
* ``marginal_gains(candidates)`` is one warm-started round;
* ``prefix_values(sizes)`` / ``prefix_wins(k)`` serve win-min's
  binary-search probes from the greedy ranking, reusing the closest cached
  prefix trajectory when probing a nearby size.

Backends
--------
:class:`DMEngine`
    Thin wrapper over the per-set ``FJVoteProblem.objective`` (the paper's
    direct-matrix-multiplication evaluation, one FJ evolution per set).
    The parity reference for everything else.
:class:`BatchedDMEngine`
    Evaluates all ``C`` seed sets *simultaneously*.  FJ dynamics are linear,
    so the opinions of a seeded system can be written as ``base + delta``
    where ``base`` is a cached trajectory (unseeded, or the session's
    committed one) and each seed set's ``delta`` obeys the homogeneous
    recurrence ``delta(s+1) = (delta(s) @ W) * (1 - d)`` with the seeded
    coordinates pinned to ``1 - base(s)``.  All ``C`` deltas evolve
    together in two phases: one shared sparse ``(n, C)`` evolution while
    influence has spread to few nodes, then cache-sized dense column
    blocks that finish the horizon and are scored in place with the batch
    paths of :mod:`repro.voting.scores`.  Results match the per-set
    engine to machine precision; exhaustive greedy rounds run 5-20x
    faster (``benchmarks/bench_engine_batched.py``), and warm-started
    sessions cut the evolution work of later rounds further
    (``benchmarks/bench_session_warmstart.py``).
:class:`~repro.core.engine_mp.MultiprocessDMEngine`
    ``dm-mp``: the batched evaluation sharded across a persistent pool of
    worker processes — candidate chunks evolve concurrently, session
    commits are broadcast so workers fold the committed trajectory
    locally, and selections stay byte-identical to the single-process
    engine for every worker count.  The ``dm-mp:<W>:shm`` suffix swaps the
    pickle-per-message pipe transport for a shared-memory data plane
    (:mod:`repro.core.shm`): problem matrices, score rows and commit
    broadcasts are mapped once and only array descriptors cross the pipe
    (``EngineStats.ipc_bytes`` measures the difference).
:class:`WalkEngine`
    Routes the §V/§VI walk estimators (random-walk and sketch) through the
    same interface via :class:`~repro.core.random_walk.WalkGreedyOptimizer`.
    Estimates, not exact values: ``is_estimate`` is true.  Its sessions
    apply post-generation truncation incrementally as seeds are committed.
    Walks come from a :class:`~repro.core.walk_store.WalkStore` — private
    for the ``rw``/``sketch`` specs, shared and sharded for ``rw-store``,
    which also turns on IMM-style adaptive sample-size escalation (see
    :meth:`WalkEngine.prepare_budget`).  The ``rw-store:<S>:mmap=<DIR>``
    suffix (CLI ``--store-dir``) makes the store out-of-core: blocks
    persist as memory-mapped ``.npy`` shards under ``DIR``, a warm
    re-open (second process, restart) regenerates zero blocks, and an LRU
    bounds the resident shards so pools scale past RAM.

Data plane
----------
Both parallel backends separate *control* (tiny pipe messages) from
*data* (bulk arrays).  ``dm-mp``'s shm arena pays one mapping at pool
start and wins on every subsequent round — worth it whenever more than a
handful of rounds run, and essential under ``forkserver``/``spawn`` where
the problem would otherwise be pickled per worker.  ``rw-store``'s mmap
shards pay one ``np.save`` per generated block and win on every re-open —
worth it for sweeps, win-min searches and any workflow that restarts.
Lifecycle caveats: shm segments are unlinked by ``close()`` (guarded by
``weakref.finalize``, so garbage collection and interpreter exit also
clean up after crashes); mmap stores are plain directories — delete them
to reclaim disk, and keep the store seed fixed so a re-open finds the
same deterministic block identities.

Adding a backend
----------------
Subclass :class:`ObjectiveEngine`, implement ``evaluate``, set the
capability flags, and register a constructor in ``_ENGINE_FACTORIES`` (the
single source of :data:`ENGINE_NAMES`, the CLI ``--engine`` choices and the
``make_engine`` error message).  Override ``marginal_gains`` when the
backend can do a whole stateless round cheaper than ``C + 1`` independent
evaluations.  The session protocol is optional but where the leverage is:
the default ``open_session`` returns a :class:`SelectionSession` that
simply replays the committed set through ``marginal_gains``, which is
always correct — a backend that can carry state across rounds (a committed
trajectory, an updated sketch store, a GPU-resident delta block) should
return its own :class:`SelectionSession` subclass overriding ``commit``,
``marginal_gains`` and, if it can serve nested-prefix probes cheaply,
``prefix_wins``.  Greedy, sandwich and win-min only ever talk to sessions,
so process-parallel, sharded-RR-set or GPU backends drop in the same way.
Every backend inherits a :class:`EngineStats` counter (``engine.stats``)
whose deterministic work counters back the benchmark assertions.
"""

from __future__ import annotations

import warnings
import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass, fields, replace
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.core.problem import DeltaReport, FJVoteProblem
from repro.voting.scores import CumulativeScore, SeparableScore

SeedSet = Sequence[int] | np.ndarray | tuple


class EstimatorPrecisionWarning(UserWarning):
    """An estimator could not certify a caller's requested (ε, δ) precision.

    Raised (as a warning, not an error — the selection still runs) when a
    walk/sketch backend was asked for ``epsilon`` but its sample budget
    only certifies a larger error, or when no closed-form guarantee exists
    for the score at all (the rank-based scores, §VI-E).  The achieved
    value is surfaced in :attr:`EngineStats.achieved_epsilon`.
    """


@dataclass
class EngineStats:
    """Deterministic work counters, one instance per engine (``engine.stats``).

    The evolution counters make warm-start savings measurable without
    timing noise: on one core the same selection always produces the same
    counts.  ``evolution_work`` normalizes everything to *dense
    column-steps* (one column pushed through one FJ step costs ``nnz(W)``
    multiply-adds): a sparse-phase product costs ``nnz(delta)/n`` of that,
    and a trajectory-extension step is exactly one column-step.
    """

    evaluate_calls: int = 0
    sets_evaluated: int = 0
    sparse_steps: int = 0
    sparse_nnz: int = 0
    dense_column_steps: int = 0
    trajectory_steps: int = 0
    #: Sparse-phase re-pin surgery: steps handled by data-only in-place
    #: writes, entries spliced in by the sorted merge (structure misses),
    #: and full COO->CSR rebuilds (the legacy ``repin="rebuild"`` path).
    repin_steps: int = 0
    repin_inserted: int = 0
    repin_rebuilds: int = 0
    #: Committed session trajectories refreshed in place by a delta
    #: correction (``apply_delta``'s fast path) instead of a full rebuild.
    #: The correction work itself lands in ``sparse_steps``/``sparse_nnz``.
    trajectories_patched: int = 0
    #: Exact serialized bytes moved through worker pipes, both directions
    #: (the multiprocess backends frame their own messages, so this is a
    #: measurement, not an estimate).  The zero-copy shm transport
    #: (``dm-mp:<W>:shm``) shrinks it to descriptor tuples —
    #: ``benchmarks/bench_data_plane.py`` gates the reduction.
    ipc_bytes: int = 0
    #: Multi-host (``dm-mp:tcp=...``) degradation accounting: hosts the
    #: coordinator dropped from its pool after a connection failure, and
    #: candidate chunks re-dispatched to surviving hosts because their
    #: original host was lost mid-round.
    hosts_lost: int = 0
    chunks_resharded: int = 0
    #: Pool supervision (``dm-mp`` local pools and the tcp coordinator):
    #: workers detected dead mid-round, workers the supervisor respawned
    #: with replayed journal state, and previously-lost tcp hosts that
    #: reconnected through the backoff rejoin path.
    workers_lost: int = 0
    workers_respawned: int = 0
    hosts_rejoined: int = 0
    #: Estimator (ε, δ) accounting, filled by ``prepare_budget`` on the
    #: walk backends: the precision the caller asked for, the precision
    #: the sample budget actually certifies (0.0 = not computable — no
    #: closed form for the score), and how many budget preparations could
    #: not certify the request (each also raises
    #: :class:`EstimatorPrecisionWarning`).
    requested_epsilon: float = 0.0
    achieved_epsilon: float = 0.0
    precision_unmet: int = 0

    def reset(self) -> None:
        for field in fields(self):
            setattr(self, field.name, 0)

    def evolution_work(self, n: int) -> float:
        """Total FJ evolution work in dense column-step equivalents."""
        return (
            self.dense_column_steps
            + self.trajectory_steps
            + self.sparse_nnz / max(int(n), 1)
        )


class SelectionSession:
    """Stateful warm-start evaluation across greedy rounds and prefix probes.

    A session is scoped to one selection run: it owns the committed seed
    sequence, the accumulated objective, and whatever backend state makes
    the next round cheaper.  This replaces the engines' old single-slot
    ``base_value`` memoization, which silently thrashed when two algorithms
    interleaved rounds on one engine (e.g. sandwich's upper/lower greedies)
    — sessions are independent, so interleaving them costs nothing.

    The base implementation is backend-agnostic and always correct: gains
    are delegated to the engine's stateless ``marginal_gains`` with the
    session's cached base objective, and prefix probes fall back to exact
    per-set checks.  Backends override the hot paths (see
    :class:`BatchedDMSession`).
    """

    def __init__(self, engine: "ObjectiveEngine", base: SeedSet = ()) -> None:
        self.engine = engine
        engine._register_session(self)
        self._seeds: list[int] = [int(v) for v in base]
        self._value = float(engine.evaluate_one(tuple(self._seeds)))
        self._base_size = len(self._seeds)
        # value of every committed prefix, aligned to sizes
        # base_size .. len(seeds); greedy commits append to it.
        self._prefix_values: list[float] = [self._value]

    # ------------------------------------------------------------------
    @property
    def seeds(self) -> tuple[int, ...]:
        """Committed seeds, in commit order."""
        return tuple(self._seeds)

    @property
    def value(self) -> float:
        """Objective of the committed seed set."""
        return self._value

    def marginal_gains(self, candidates: SeedSet) -> np.ndarray:
        """Gain of extending the committed set by each candidate."""
        return self.engine.marginal_gains(
            self.seeds, candidates, base_objective=self._value
        )

    def coalesced_gains(self, candidates: SeedSet) -> np.ndarray:
        """Batch-stable marginal gains (the serving coalescer's contract).

        Bitwise identical however the candidates are grouped into calls,
        so a coalescing batcher may merge concurrent requests into one
        round and still answer each byte-for-byte as if it ran alone.
        Per-set backends evaluate candidates independently, so the plain
        ``marginal_gains`` already satisfies the contract;
        :class:`BatchedDMSession` overrides this to evolve one shared
        (n, C) block and score each extension row through the canonical
        single-row path (see :meth:`ObjectiveEngine.query_sets`).
        """
        return self.marginal_gains(candidates)

    def rebase(self) -> None:
        """Re-evaluate the base objective against the engine's current state.

        Only valid before any commit: the greedy driver calls this when a
        caller-supplied session predates a ``prepare_budget`` escalation
        that replaced the backend's sample, so the cached base value would
        otherwise come from a different sample than the round gains.
        """
        if len(self._seeds) != self._base_size:
            raise ValueError("cannot rebase a session with commits")
        self._value = float(self.engine.evaluate_one(tuple(self._seeds)))
        self._prefix_values = [self._value]

    def commit(self, seed: int, *, gain: float | None = None) -> float:
        """Fold ``seed`` into the committed state; returns the new value.

        Greedy loops pass the winning ``gain`` they just computed so the
        committed value accumulates exactly as the round trace does;
        without it the extension is evaluated once.
        """
        seed = int(seed)
        if gain is None:
            gain = (
                float(self.engine.evaluate_one(self.seeds + (seed,)))
                - self._value
            )
        self._apply_commit(seed)
        self._seeds.append(seed)
        self._value += float(gain)
        self._prefix_values.append(self._value)
        return self._value

    def _apply_commit(self, seed: int) -> None:
        """Backend hook: update warm state before the seed is recorded."""

    def _on_delta(self, report: DeltaReport, mode: str = "auto") -> None:
        """Refresh session state after the problem absorbed ``report``.

        The backend-agnostic fallback re-evaluates every committed prefix
        against the engine's (already delta-patched) state — always
        correct, no warm state to keep.  Backends with warm trajectories
        override this (see :class:`BatchedDMSession`).
        """
        del mode
        if report.empty:
            return
        values = [
            float(self.engine.evaluate_one(tuple(self._seeds[:i])))
            for i in range(self._base_size, len(self._seeds) + 1)
        ]
        self._prefix_values = values
        self._value = values[-1]

    # ------------------------------------------------------------------
    # Nested-prefix probes (the win-min binary search)
    # ------------------------------------------------------------------
    def _check_prefix(self, k: int) -> int:
        k = int(k)
        if not self._base_size <= k <= len(self._seeds):
            raise ValueError(
                f"prefix size {k} outside committed range "
                f"[{self._base_size}, {len(self._seeds)}]"
            )
        return k

    def prefix_seeds(self, k: int) -> np.ndarray:
        """First ``k`` committed seeds."""
        return np.asarray(self._seeds[: self._check_prefix(k)], dtype=np.int64)

    def prefix_values(self, sizes: Iterable[int]) -> np.ndarray:
        """Objective of each committed prefix size — free, recorded at commit."""
        return np.array(
            [
                self._prefix_values[self._check_prefix(k) - self._base_size]
                for k in sizes
            ],
            dtype=np.float64,
        )

    def prefix_wins(self, k: int) -> bool:
        """Exact Problem-2 winning check for the size-``k`` committed prefix."""
        return self.engine.problem.target_wins(self.prefix_seeds(k))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(|seeds|={len(self._seeds)}, "
            f"value={self._value:.6g})"
        )


class ObjectiveEngine(ABC):
    """Evaluates the FJ-Vote objective for (batches of) seed sets.

    Attributes
    ----------
    supports_batch:
        True when ``evaluate`` is genuinely vectorized over seed sets
        (rather than an internal per-set loop).
    is_estimate:
        True when returned values are statistical estimates of ``F`` (the
        walk/sketch backends) rather than exact DM computations.
    stats:
        :class:`EngineStats` work counters, cumulative over the engine's
        lifetime (call ``stats.reset()`` to start a measurement window).
    """

    supports_batch: bool = False
    is_estimate: bool = False

    def __init__(self, problem: FJVoteProblem) -> None:
        self.problem = problem
        self.stats = EngineStats()
        #: Live sessions, refreshed by :meth:`apply_delta`.  Weak so a
        #: discarded session costs nothing.
        self._sessions: "weakref.WeakSet[SelectionSession]" = weakref.WeakSet()

    def _register_session(self, session: "SelectionSession") -> None:
        self._sessions.add(session)

    # ------------------------------------------------------------------
    @abstractmethod
    def evaluate(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        """Objective value of each seed set, as a ``(C,)`` float array."""

    def evaluate_one(self, seeds: SeedSet = ()) -> float:
        """Objective of a single seed set."""
        return float(self.evaluate([seeds])[0])

    def open_session(self, base: SeedSet = ()) -> SelectionSession:
        """Start a stateful selection session rooted at ``base``.

        Backends with warm-startable state return their own session
        subclass; the default replays the committed set statelessly.
        """
        return SelectionSession(self, base)

    def prepare_budget(self, k: int) -> bool:
        """Adapt backend state to an upcoming selection budget ``k``.

        Called by the greedy driver (and win-min) before rounds start.
        No-op for the exact engines; estimator backends use it for
        IMM-style adaptive sample-size escalation and for (ε, δ)
        accounting (see :class:`WalkEngine` and
        :attr:`EngineStats.achieved_epsilon`).  Returns True when the
        backend's evaluation state changed (e.g. a larger sample was
        bound), so the driver can rebase sessions opened beforehand.
        """
        return False

    def apply_delta(self, report: DeltaReport, *, sessions: str = "auto") -> None:
        """Absorb a :class:`~repro.core.problem.DeltaReport` into warm state.

        Call after ``problem.apply_delta`` so engine caches derived from
        the (now surgically updated) problem stay consistent.  The base
        implementation refreshes every live session; backends with
        problem-derived caches (the pre-scaled ``W^T`` of
        :class:`BatchedDMEngine`, a :class:`~repro.core.walk_store.WalkStore`,
        worker-pool replicas) extend it.

        ``sessions`` selects how committed session trajectories are
        refreshed: ``"patch"`` evolves only the delta correction seeded at
        touched nodes, ``"rebuild"`` marks them for a lazy bitwise-exact
        replay, ``"auto"`` patches when the touched set is small.
        """
        if sessions not in ("auto", "patch", "rebuild"):
            raise ValueError(
                f"sessions must be 'auto', 'patch' or 'rebuild', got {sessions!r}"
            )
        for session in list(self._sessions):
            session._on_delta(report, sessions)

    def close(self) -> None:
        """Release backend resources (worker pools, device memory).

        No-op for the in-process engines; engines built from a spec by the
        selection entry points are closed when the selection returns.
        Engines support ``with`` blocks for explicit scoping.
        """

    def __enter__(self) -> "ObjectiveEngine":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def marginal_gains(
        self,
        base: SeedSet,
        candidates: SeedSet,
        *,
        base_objective: float | None = None,
    ) -> np.ndarray:
        """Gain of extending ``base`` by each candidate (one stateless round).

        Default: one (possibly batched) ``evaluate`` over the ``C``
        extensions, minus the base objective.  Callers that already track
        the base value pass it via ``base_objective`` — a
        :class:`SelectionSession` does this automatically; otherwise the
        base is (re-)evaluated here.
        """
        base_t = tuple(int(v) for v in base)
        candidates = np.asarray(candidates, dtype=np.int64)
        values = self.evaluate([base_t + (int(c),) for c in candidates])
        if base_objective is None:
            base_objective = self.evaluate_one(base_t)
        return values - base_objective

    def query_sets(
        self, seed_sets: Iterable[SeedSet], *, wins: bool = False
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Values (and optionally Problem-2 wins) of many sets in one call.

        The serving batcher's batch-of-querysets entry: one call answers
        every request coalesced into a round.  The contract is
        *batch-stability* — results are bitwise identical no matter how
        the sets are grouped into calls — so coalesced and serial
        execution agree byte for byte.  The base implementation loops per
        set (per-set backends are trivially batch-stable);
        :class:`BatchedDMEngine` overrides it with one shared (n, C)
        evolution whose horizon rows are then scored one at a time
        through the canonical ``score_target_row`` path, because the
        batched scoring *reduction* is the one place numpy's pairwise
        summation depends on the batch width.
        """
        sets = [tuple(int(v) for v in s) for s in seed_sets]
        values = self.evaluate(sets)
        win_flags: np.ndarray | None = None
        if wins:
            win_flags = np.array(
                [
                    self.problem.target_wins(np.asarray(s, dtype=np.int64))
                    for s in sets
                ],
                dtype=bool,
            )
        return values, win_flags

    def pool_stats(self) -> dict[str, object]:
        """Worker-pool accounting for the serving layer's ``stats`` op.

        In-process engines report an empty, never-started pool; the
        multiprocess backend overrides this with live round / busy-time
        accounting and the shm segment names it currently owns (see
        :meth:`~repro.core.engine_mp.MultiprocessDMEngine.pool_stats`).
        """
        return {
            "backend": type(self).__name__,
            "workers": 0,
            "transport": None,
            "started": False,
            "rounds": 0,
            "busy_s": 0.0,
            "idle_s": 0.0,
            "shm_segments": [],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.problem!r})"


class DMEngine(ObjectiveEngine):
    """Per-set exact evaluation: one full FJ evolution per seed set.

    Wraps today's :meth:`FJVoteProblem.objective` unchanged — the parity
    oracle for :class:`BatchedDMEngine` and the ``--engine dm`` legacy path.
    """

    supports_batch = False
    is_estimate = False

    def evaluate(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        sets = list(seed_sets)
        self.stats.evaluate_calls += 1
        self.stats.sets_evaluated += len(sets)
        return np.array(
            [
                self.problem.objective(np.asarray(s, dtype=np.int64))
                for s in sets
            ],
            dtype=np.float64,
        )


class BatchedDMSession(SelectionSession):
    """Warm-started session over :class:`BatchedDMEngine`.

    State is the *committed trajectory* — the full ``(horizon+1, n)``
    seeded evolution of the committed set.  ``commit`` extends it by one
    dense delta evolution (one column-step per FJ step); each round's
    ``marginal_gains`` then evolves candidate deltas against it with a
    single pinned coordinate per column, so the sparse phase stays sparse
    for as long as a *fresh* seed's influence stays local, no matter how
    many seeds are already committed.  ``prefix_wins`` keeps a bounded
    cache of probe trajectories so win-min's binary search extends the
    nearest smaller prefix instead of replaying from the empty set.
    """

    #: Probe trajectories kept alive; a binary search over k needs at most
    #: ``log2(k_max)`` of them, each a dense ``(horizon+1, n)`` array.
    PROBE_CACHE_CAP = 32

    def __init__(self, engine: "BatchedDMEngine", base: SeedSet = ()) -> None:
        # Deliberately skips SelectionSession.__init__: the base value is
        # read off the committed trajectory instead of a fresh evaluation.
        self.engine = engine
        engine._register_session(self)
        self._seeds = [int(v) for v in base]
        self._traj = engine.problem.target_trajectory(tuple(self._seeds))
        self._value = float(engine.score_target_row(self._traj[-1]))
        self._base_size = len(self._seeds)
        self._prefix_values = [self._value]
        self._probe_cache: dict[int, np.ndarray] = {}
        self._needs_rebuild = False
        self._prefix_dirty = False

    @property
    def value(self) -> float:
        self._ensure_fresh()
        return self._value

    def marginal_gains(self, candidates: SeedSet) -> np.ndarray:
        self._ensure_fresh()
        committed = np.asarray(self._seeds, dtype=np.int64)
        values = self.engine.extension_values(self._traj, committed, candidates)
        return values - self._value

    def coalesced_gains(self, candidates: SeedSet) -> np.ndarray:
        """Batch-stable gains: shared (n, C) evolution, per-row scoring.

        The evolved extension rows are bitwise independent of how the
        candidates are batched (sparse and dense products accumulate per
        column), and every row is scored through ``score_target_row`` —
        always a width-1 reduction — so the gains are too.  The session's
        own base value already comes from ``score_target_row``, keeping
        the subtraction on the same canonical footing.
        """
        self._ensure_fresh()
        committed = np.asarray(self._seeds, dtype=np.int64)
        rows = self.engine.extension_rows(self._traj, committed, candidates)
        values = np.array(
            [self.engine.score_target_row(row) for row in rows],
            dtype=np.float64,
        )
        return values - self._value

    def commit(self, seed: int, *, gain: float | None = None) -> float:
        self._ensure_fresh()
        seed = int(seed)
        self._traj = self.engine.extend_trajectory(
            self._traj,
            np.asarray(self._seeds, dtype=np.int64),
            np.array([seed], dtype=np.int64),
        )
        if gain is None:
            gain = float(self.engine.score_target_row(self._traj[-1])) - self._value
        self._seeds.append(seed)
        self._value += float(gain)
        self._prefix_values.append(self._value)
        return self._value

    # ------------------------------------------------------------------
    # Delta refresh (engine.apply_delta)
    # ------------------------------------------------------------------
    def _on_delta(self, report: DeltaReport, mode: str = "auto") -> None:
        """Patch or lazily rebuild the committed trajectory after a delta.

        Graph/opinion churn that touches the *target* invalidates the
        committed trajectory: the fast path evolves only the correction
        term seeded at the touched nodes and adds it on
        (:meth:`_patch_trajectory`), the fallback marks the session for a
        lazy full replay of its commits — bitwise identical to a session
        built from scratch on the patched problem.  Churn that touches
        only competitors leaves the trajectory valid; just the scores are
        refreshed.  Prefix-probe caches never survive a delta.
        """
        problem = self.engine.problem
        dirty = set(report.touched_by_candidate) | set(report.opinions_by_candidate)
        if not dirty:
            return
        self._probe_cache.clear()
        target = problem.target
        target_dirty = target in dirty
        if not target_dirty:
            # Competitor-only churn: trajectory (target dynamics) intact,
            # but every stored score was computed against stale rivals.
            self._value = float(self.engine.score_target_row(self._traj[-1]))
            self._prefix_values[-1] = self._value
            self._prefix_dirty = len(self._seeds) > self._base_size
            return
        touched = report.target_touched(target)
        opinion_nodes = report.opinions_by_candidate.get(
            target, np.empty(0, dtype=np.int64)
        )
        n = problem.n
        if mode == "patch" or (
            mode == "auto"
            and touched.size + opinion_nodes.size <= max(8, n // 8)
        ):
            self._patch_trajectory(report)
        else:
            self._needs_rebuild = True

    def _ensure_fresh(self) -> None:
        if self._needs_rebuild:
            self._rebuild()

    def _rebuild(self) -> None:
        """Full replay of the committed seeds — the bitwise-exact fallback.

        Reproduces exactly what a fresh session would hold after the same
        commit sequence: the base-seed trajectory plus one
        :meth:`BatchedDMEngine.extend_trajectory` per committed seed, with
        each prefix value read off its horizon row.
        """
        self._needs_rebuild = False
        engine = self.engine
        traj = engine.problem.target_trajectory(tuple(self._seeds[: self._base_size]))
        values = [float(engine.score_target_row(traj[-1]))]
        for i in range(self._base_size, len(self._seeds)):
            traj = engine.extend_trajectory(
                traj,
                np.asarray(self._seeds[:i], dtype=np.int64),
                np.array([self._seeds[i]], dtype=np.int64),
            )
            values.append(float(engine.score_target_row(traj[-1])))
        self._traj = traj
        self._value = values[-1]
        self._prefix_values = values
        self._prefix_dirty = False

    def _patch_trajectory(self, report: DeltaReport) -> None:
        """Evolve the delta correction and add it onto the trajectory.

        Write the committed trajectory as ``b_old`` and the post-delta one
        as ``b_old + e``.  The correction obeys

        ``e(s+1) = (1-d)·(Wₙᵀ e(s)) + (1-d)·(ΔWᵀ b_old(s)) + d·Δb⁰``

        with ``e`` zeroed at pinned (committed/base) seeds.  ``ΔWᵀ`` has
        nonzero rows exactly at the touched nodes, so the forcing term is
        evaluated only there — ``(1-d)·(W_oldᵀ b_old(s))`` is recovered
        from the stored trajectory itself (``b_old(s+1) - d·b⁰_old`` off
        the pins), no copy of the pre-delta matrix needed.  ``e`` is
        carried sparsely; its footprint (and ``stats.sparse_nnz``) scales
        with how far the touched set's influence has spread, not with
        ``n``.  Values match the rebuild to machine precision (the
        bitwise-exact path is :meth:`_rebuild`).
        """
        engine = self.engine
        problem = engine.problem
        n = problem.n
        target = problem.target
        horizon = self._traj.shape[0] - 1
        d = problem.state.stubbornness[target]
        touched = report.target_touched(target)
        nodes, shift = report.opinion_deltas.get(
            target, (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        )
        pins = np.unique(np.asarray(self._seeds, dtype=np.int64))
        pin_mask = np.zeros(n, dtype=bool)
        pin_mask[pins] = True
        # d·Δb⁰ forcing (constant across steps), zero at pins.
        op_force = sparse.csr_matrix((n, 1), dtype=np.float64)
        if nodes.size:
            keep = ~pin_mask[nodes]
            op_force = sparse.csr_matrix(
                (
                    d[nodes[keep]] * shift[keep],
                    (nodes[keep], np.zeros(keep.sum(), dtype=np.int64)),
                ),
                shape=(n, 1),
            )
        wt = engine._wt_scaled
        old = self._traj
        new = old.copy()
        # e(0) = Δb⁰ off the pins.
        e = sparse.csr_matrix((n, 1), dtype=np.float64)
        if nodes.size:
            keep = ~pin_mask[nodes]
            e = sparse.csr_matrix(
                (shift[keep], (nodes[keep], np.zeros(keep.sum(), dtype=np.int64))),
                shape=(n, 1),
            )
            dense0 = np.zeros(n)
            dense0[nodes[keep]] = shift[keep]
            new[0] = old[0] + dense0
        b0_old = problem.state.initial_opinions[target].astype(np.float64).copy()
        if nodes.size:
            b0_old[nodes] -= shift
        free_touched = touched[~pin_mask[touched]] if touched.size else touched
        for s in range(horizon):
            engine.stats.sparse_steps += 1
            engine.stats.sparse_nnz += e.nnz
            e = wt @ e
            # Forcing at touched rows: (1-d)(Wₙᵀ b_old(s)) − (1-d)(W_oldᵀ b_old(s)).
            if free_touched.size:
                new_rows = np.asarray(
                    wt[free_touched] @ old[s], dtype=np.float64
                ).ravel()
                old_rows = (
                    old[s + 1][free_touched] - d[free_touched] * b0_old[free_touched]
                )
                force = sparse.csr_matrix(
                    (
                        new_rows - old_rows,
                        (free_touched, np.zeros(free_touched.size, dtype=np.int64)),
                    ),
                    shape=(n, 1),
                )
                e = e + force
            if op_force.nnz:
                e = e + op_force
            if pins.size:
                e = e.tolil()
                e[pins, 0] = 0.0
                e = e.tocsr()
                e.eliminate_zeros()
            new[s + 1] = old[s + 1] + e.toarray().ravel()
        engine.stats.trajectories_patched += 1
        self._traj = new
        self._value = float(engine.score_target_row(new[-1]))
        self._prefix_values[-1] = self._value
        self._prefix_dirty = len(self._seeds) > self._base_size
        self._needs_rebuild = False

    def _refresh_prefix_values(self) -> None:
        """Recompute committed-prefix values from warm probe rows."""
        values = [
            float(self.engine.score_target_row(self._prefix_horizon_row(k)))
            for k in range(self._base_size, len(self._seeds) + 1)
        ]
        self._prefix_values = values
        self._value = values[-1]
        self._prefix_dirty = False

    def prefix_values(self, sizes: Iterable[int]) -> np.ndarray:
        self._ensure_fresh()
        if self._prefix_dirty:
            self._refresh_prefix_values()
        return super().prefix_values(sizes)

    # ------------------------------------------------------------------
    def _prefix_horizon_row(self, k: int) -> np.ndarray:
        """Horizon target opinions of the size-``k`` prefix, warm-started."""
        k = self._check_prefix(k)
        if k == len(self._seeds):
            return self._traj[-1]
        if k == self._base_size:
            return self.engine.problem.target_trajectory(
                tuple(self._seeds[: self._base_size])
            )[-1]
        cached = self._probe_cache.get(k)
        if cached is not None:
            return cached[-1]
        closest = [j for j in self._probe_cache if j < k]
        if closest:
            j = max(closest)
            base_traj = self._probe_cache[j]
        else:
            j = self._base_size
            base_traj = self.engine.problem.target_trajectory(
                tuple(self._seeds[:j])
            )
        ranking = np.asarray(self._seeds, dtype=np.int64)
        traj = self.engine.extend_trajectory(base_traj, ranking[:j], ranking[j:k])
        while len(self._probe_cache) >= self.PROBE_CACHE_CAP:
            self._probe_cache.pop(next(iter(self._probe_cache)))
        self._probe_cache[k] = traj
        return traj[-1]

    def prefix_wins(self, k: int) -> bool:
        self._ensure_fresh()
        return self.engine.problem.target_wins_from_row(
            self._prefix_horizon_row(k)
        )


class BatchedDMEngine(ObjectiveEngine):
    """Exact DM evaluation of many seed sets in one batched FJ evolution.

    Parameters
    ----------
    problem:
        The FJ-Vote instance.
    user_weights:
        Optional ``(n,)`` per-user weights applied to the separable score's
        contributions (used by the sandwich lower bound, which restricts
        the cumulative score to the favorable users set).  Requires a
        :class:`~repro.voting.scores.SeparableScore`.
    batch_rows:
        Width of the dense column blocks that finish the evolution after
        the shared sparse phase (cache knob: ``n * batch_rows * 8`` bytes
        per block).  Default: auto-sized to stay within
        ``max_batch_bytes``, capped at 64 columns — small enough to keep a
        block LLC-resident through the bandwidth-bound dense products,
        measured fastest across 500 <= n <= 8000.
    densify_threshold:
        Delta matrices start sparse (a fresh seed only perturbs its t-step
        out-neighborhood) and switch to dense blocks once their fill
        fraction approaches this threshold (see ``_evolve_blocks``).
    repin:
        How the sparse phase splices pinned seed values back in after each
        product.  ``"inplace"`` (default) reuses the product's CSR
        structure: pinned coordinates already present get data-only
        writes, missing ones are spliced in by a sorted merge — no global
        sort, no rebuild.  ``"rebuild"`` is the legacy duplicate-summing
        COO->CSR rebuild, kept as the parity/benchmark reference
        (``benchmarks/bench_engine_mp.py``).
    """

    supports_batch = True
    is_estimate = False

    def __init__(
        self,
        problem: FJVoteProblem,
        *,
        user_weights: np.ndarray | None = None,
        batch_rows: int | None = None,
        max_batch_bytes: int = 64_000_000,
        densify_threshold: float = 0.1,
        repin: str = "inplace",
    ) -> None:
        super().__init__(problem)
        if repin not in ("inplace", "rebuild"):
            raise ValueError(
                f"repin must be 'inplace' or 'rebuild', got {repin!r}"
            )
        self.repin = repin
        self.user_weights: np.ndarray | None = None
        if user_weights is not None:
            if not isinstance(problem.score, SeparableScore):
                raise TypeError(
                    "user_weights requires a separable score, got "
                    f"{type(problem.score).__name__}"
                )
            self.user_weights = np.asarray(user_weights, dtype=np.float64)
            if self.user_weights.shape != (problem.n,):
                raise ValueError(
                    f"user_weights must have shape ({problem.n},), "
                    f"got {self.user_weights.shape}"
                )
        self.max_batch_bytes = int(max_batch_bytes)
        if batch_rows is None:
            batch_rows = max(1, min(64, int(max_batch_bytes // (8 * problem.n))))
        self.batch_rows = int(batch_rows)
        if self.batch_rows < 1:
            raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
        self.densify_threshold = float(densify_threshold)
        self._build_wt_scaled()

    def _build_wt_scaled(self) -> None:
        state = self.problem.state
        q = self.problem.target
        d = state.stubbornness[q]
        # W^T with rows pre-scaled by (1 - d): one sparse product per FJ
        # step, ``delta(s+1) = WT_scaled @ delta(s)`` in (n, C) layout.
        self._wt_scaled = (
            sparse.diags(1.0 - d) @ state.graph(q).csc.T
        ).tocsr()
        # Fully-stubborn users leave explicit zero rows behind; prune them
        # so they cost nothing in every subsequent product.
        self._wt_scaled.eliminate_zeros()

    def apply_delta(self, report, *, sessions: str = "auto") -> None:
        """Refresh the pre-scaled operator, then patch live sessions.

        ``_wt_scaled`` derives from the target graph, so it is rebuilt
        (O(nnz), no FJ work) whenever the target's graph was touched;
        session trajectories are then corrected per the ``sessions`` mode
        (see :meth:`ObjectiveEngine.apply_delta`).
        """
        if report.target_touched(self.problem.target).size:
            self._build_wt_scaled()
        super().apply_delta(report, sessions=sessions)

    # ------------------------------------------------------------------
    def open_session(self, base: SeedSet = ()) -> BatchedDMSession:
        return BatchedDMSession(self, base)

    def _normalize_sets(self, seed_sets: Iterable[SeedSet]) -> list[np.ndarray]:
        n = self.problem.n
        out = []
        for s in seed_sets:
            arr = np.asarray(s, dtype=np.int64)
            if arr.size > 1:
                arr = np.unique(arr)
            if arr.size and (arr[0] < 0 or arr[-1] >= n):
                raise ValueError("seed indices out of range")
            out.append(arr)
        return out

    def target_opinion_rows(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        """``(C, n)`` horizon opinions about the target, one row per seed set.

        The workhorse: stacks every seed set's delta into an ``(n, C)``
        matrix, evolves all columns through the horizon together, and adds
        back the shared unseeded base trajectory.
        """
        sets = self._normalize_sets(seed_sets)
        rows = np.empty((len(sets), self.problem.n), dtype=np.float64)
        for lo, hi, cols in self._evolve_blocks(sets):
            rows[lo:hi] = cols.T
        return rows

    def _chunked_scores(
        self,
        sets: list[np.ndarray],
        *,
        traj: np.ndarray | None = None,
        zero_rows: np.ndarray | None = None,
    ) -> np.ndarray:
        """Evolve and score block by block, never materializing all rows.

        Peak dense memory is one ``(n, batch_rows)`` block regardless of
        how many seed sets are evaluated, and scoring runs in the
        evolution's native users-by-sets orientation (no transposed
        traffic).
        """
        out = np.empty(len(sets), dtype=np.float64)
        for lo, hi, cols in self._evolve_blocks(
            sets, traj=traj, zero_rows=zero_rows
        ):
            out[lo:hi] = self._score_cols(cols)
        return out

    def _evolve_blocks(
        self,
        sets: list[np.ndarray],
        *,
        traj: np.ndarray | None = None,
        zero_rows: np.ndarray | None = None,
    ):
        """Evolve all deltas; yields ``(lo, hi, (n, hi-lo) horizon values)``.

        Two phases.  While influence has spread to few nodes, *all* seed
        sets evolve together as one sparse ``(n, C)`` matrix — the sparse
        phase's fixed per-product cost is paid once, not once per block.
        Once the delta fill approaches the densify threshold, columns are
        sliced into dense ``(n, batch_rows)`` blocks (sized to stay
        cache-resident) that finish the remaining steps independently.

        ``traj`` is the base trajectory the deltas perturb (default: the
        cached unseeded one).  ``zero_rows`` lists coordinates already
        pinned *in the base* (a session's committed seeds): anything the
        product propagates into them is zeroed, since base + delta must
        stay 1 there.  That is the warm-start contract — committed seeds
        live in ``traj``, each column pins only its own fresh seeds.
        """
        n = self.problem.n
        c = len(sets)
        if c == 0:
            return
        if traj is None:
            traj = self.problem.target_trajectory()
        zero = None
        zero_mask = None
        if zero_rows is not None:
            zero = np.asarray(zero_rows, dtype=np.int64)
            if zero.size:
                zero_mask = np.zeros(n, dtype=bool)
                zero_mask[zero] = True
            else:
                zero = None
        horizon = self.problem.horizon
        sizes = np.array([s.size for s in sets], dtype=np.int64)
        pin_rows = np.concatenate(sets) if c else np.empty(0, dtype=np.int64)
        pin_cols = np.repeat(np.arange(c, dtype=np.int64), sizes)
        # delta(0): seeded coordinates jump to 1, everything else unchanged.
        delta = sparse.csr_matrix(
            (1.0 - traj[0][pin_rows], (pin_rows, pin_cols)), shape=(n, c)
        )
        # Pinned coordinates sorted by flattened (row, col) key — the order
        # entries take in a canonical CSR — precomputed once so each step's
        # re-pin surgery is one searchsorted against the product's keys.
        flat_keys = pin_rows * np.int64(c) + pin_cols
        key_order = np.argsort(flat_keys, kind="stable")
        pin_keys = flat_keys[key_order]
        pin_rows_s = pin_rows[key_order]
        pin_cols_s = pin_cols[key_order]
        inplace = self.repin == "inplace"
        if not inplace:
            # Legacy rebuild path: membership via a flat bool lookup when
            # affordable, sorted-key search otherwise.
            use_lookup = n * c <= 1 << 26
            if use_lookup:
                pinned = np.zeros(n * c, dtype=bool)
                pinned[flat_keys] = True
        # The sparse phase stops once the *next* product is predicted to
        # cost more than its dense counterpart: a sparse-sparse product is
        # ~3x denser-per-nonzero than dense, and the fill cap also bounds
        # sparse-phase memory.  Growth starts at the mean out-degree (the
        # expansion rate of a fresh delta) and tracks observed growth.
        nnz_cap = min(
            self.densify_threshold * n * c, self.max_batch_bytes / 16
        )
        growth = max(1.0, self._wt_scaled.nnz / max(n, 1))
        next_step = horizon + 1
        for s in range(1, horizon + 1):
            if delta.nnz > nnz_cap or delta.nnz * growth > 3 * nnz_cap:
                next_step = s  # dense blocks take over from step s
                break
            prev_nnz = delta.nnz
            self.stats.sparse_steps += 1
            self.stats.sparse_nnz += delta.nnz
            delta = self._wt_scaled @ delta
            if prev_nnz:
                growth = delta.nnz / prev_nnz
            # Re-pin in sparse form: zero whatever propagated into the
            # seeded coordinates (including the base's committed ones),
            # then splice the pinned values back in.
            pin_values = 1.0 - traj[s][pin_rows_s]
            if inplace:
                delta = self._repin_inplace(
                    delta, pin_keys, pin_rows_s, pin_cols_s, pin_values, zero
                )
                continue
            # Legacy duplicate-summing COO -> CSR rebuild (global sort).
            self.stats.repin_rebuilds += 1
            entry_rows = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(delta.indptr)
            )
            entry_cols = delta.indices.astype(np.int64)
            entry_keys = entry_rows * np.int64(c) + entry_cols
            if use_lookup:
                hit = pinned[entry_keys]
            else:
                pos = np.searchsorted(pin_keys, entry_keys)
                pos[pos == pin_keys.size] = 0
                hit = pin_keys[pos] == entry_keys
            if zero_mask is not None:
                hit = hit | zero_mask[entry_rows]
            if hit.any():
                delta.data[hit] = 0.0
            delta = sparse.csr_matrix(
                (
                    np.concatenate([delta.data, pin_values]),
                    (
                        np.concatenate([entry_rows, pin_rows_s]),
                        np.concatenate([entry_cols, pin_cols_s]),
                    ),
                ),
                shape=(n, c),
            )
        delta = delta.tocsc()
        base = traj[horizon][:, None]
        for lo in range(0, c, self.batch_rows):
            hi = min(lo + self.batch_rows, c)
            block = delta[:, lo:hi].toarray()
            in_block = (pin_cols >= lo) & (pin_cols < hi)
            rows_b = pin_rows[in_block]
            cols_b = pin_cols[in_block] - lo
            for s in range(next_step, horizon + 1):
                self.stats.dense_column_steps += hi - lo
                block = self._wt_scaled @ block
                if zero is not None:
                    block[zero, :] = 0.0
                block[rows_b, cols_b] = 1.0 - traj[s][rows_b]
            block += base
            yield lo, hi, block

    def _repin_inplace(
        self,
        delta: sparse.csr_matrix,
        pin_keys: np.ndarray,
        pin_rows: np.ndarray,
        pin_cols: np.ndarray,
        pin_values: np.ndarray,
        zero: np.ndarray | None,
    ) -> sparse.csr_matrix:
        """Structure-reusing re-pin: data-only writes, sorted merge on miss.

        ``pin_*`` must be sorted by flattened ``row * c + col`` key.  The
        product's CSR structure is kept: pinned coordinates it already
        stores are overwritten in ``delta.data`` directly, and only the
        (typically few) pins the product did not propagate into are
        spliced in by an O(nnz) sorted merge — the global
        lexsort/COO-rebuild of the legacy path never runs.
        """
        delta.sort_indices()
        self.stats.repin_steps += 1
        n, c = delta.shape
        if zero is not None:
            indptr = delta.indptr
            for r in zero:
                delta.data[indptr[r] : indptr[r + 1]] = 0.0
        if pin_keys.size == 0:
            return delta
        # Canonical CSR => flattened keys are strictly ascending, so one
        # searchsorted locates every pinned coordinate at once.
        entry_rows = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(delta.indptr)
        )
        entry_keys = entry_rows * np.int64(c) + delta.indices
        pos = np.searchsorted(entry_keys, pin_keys)
        found = np.zeros(pin_keys.size, dtype=bool)
        in_range = pos < entry_keys.size
        found[in_range] = entry_keys[pos[in_range]] == pin_keys[in_range]
        delta.data[pos[found]] = pin_values[found]
        missing = ~found
        if missing.any():
            m_pos = pos[missing]
            data = np.insert(delta.data, m_pos, pin_values[missing])
            indices = np.insert(
                delta.indices, m_pos, pin_cols[missing].astype(delta.indices.dtype)
            )
            counts = np.bincount(pin_rows[missing], minlength=n)
            indptr = delta.indptr + np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
            self.stats.repin_inserted += int(missing.sum())
            delta = sparse.csr_matrix((data, indices, indptr), shape=(n, c))
            delta.has_canonical_format = True  # merged in key order, no dups
        return delta

    # ------------------------------------------------------------------
    # Warm-start primitives (the session's backend)
    # ------------------------------------------------------------------
    def extension_values(
        self,
        traj: np.ndarray,
        committed: np.ndarray,
        candidates: SeedSet,
    ) -> np.ndarray:
        """Objective of ``committed ∪ {c}`` per candidate, against ``traj``.

        ``traj`` must be the committed set's trajectory, so every column
        carries exactly one pinned coordinate — its fresh candidate — and
        the committed coordinates are zeroed by the base contract.
        """
        sets = self._normalize_sets([(int(c),) for c in np.asarray(candidates)])
        if not sets:
            return np.empty(0, dtype=np.float64)
        return self._chunked_scores(sets, traj=traj, zero_rows=committed)

    def extension_rows(
        self,
        traj: np.ndarray,
        committed: np.ndarray,
        candidates: SeedSet,
    ) -> np.ndarray:
        """``(C, n)`` horizon rows of ``committed ∪ {c}`` per candidate.

        Same warm-start contract as :meth:`extension_values`, but the
        evolved rows come back unscored.  They are batch-stable (bitwise
        identical for any candidate grouping), which lets callers score
        each row through the canonical width-1 ``score_target_row`` path
        — the basis of :meth:`SelectionSession.coalesced_gains` and the
        serving batcher.
        """
        sets = self._normalize_sets([(int(c),) for c in np.asarray(candidates)])
        rows = np.empty((len(sets), self.problem.n), dtype=np.float64)
        for lo, hi, cols in self._evolve_blocks(
            sets, traj=traj, zero_rows=committed
        ):
            rows[lo:hi] = cols.T
        return rows

    def extend_trajectory(
        self,
        traj: np.ndarray,
        committed: np.ndarray,
        new_seeds: np.ndarray,
    ) -> np.ndarray:
        """Trajectory of ``committed ∪ new_seeds``, warm-started from ``traj``.

        One dense ``(n,)`` delta pushed through the horizon — the commit /
        prefix-probe path.  Each step costs one column-step
        (``stats.trajectory_steps``).
        """
        new = np.unique(np.asarray(new_seeds, dtype=np.int64))
        if new.size and (new[0] < 0 or new[-1] >= self.problem.n):
            raise ValueError("seed indices out of range")
        committed = np.asarray(committed, dtype=np.int64)
        horizon = traj.shape[0] - 1
        out = np.empty_like(traj)
        delta = np.zeros(self.problem.n, dtype=np.float64)
        delta[new] = 1.0 - traj[0][new]
        out[0] = traj[0] + delta
        for s in range(1, horizon + 1):
            delta = self._wt_scaled @ delta
            if committed.size:
                delta[committed] = 0.0
            delta[new] = 1.0 - traj[s][new]
            out[s] = traj[s] + delta
        self.stats.trajectory_steps += horizon
        return out

    # ------------------------------------------------------------------
    def score_rows(self, rows: np.ndarray) -> np.ndarray:
        """Score each ``(C, n)`` target-opinion row under the problem's score."""
        score = self.problem.score
        if self.user_weights is not None:
            contrib = score.contributions_batch(rows, self.problem.others_by_user())
            return contrib @ self.user_weights
        if isinstance(score, SeparableScore):
            contrib = score.contributions_batch(rows, self.problem.others_by_user())
            return contrib.sum(axis=1)
        return score.score_targets(rows, self.problem.others_by_user())

    def _score_cols(self, cols: np.ndarray) -> np.ndarray:
        """Score ``(n, C)`` users-by-sets opinions via the transposed paths."""
        score = self.problem.score
        if self.user_weights is not None:
            contrib = score.contributions_batch_T(cols, self.problem.others_by_user())
            return self.user_weights @ contrib
        if isinstance(score, SeparableScore):
            contrib = score.contributions_batch_T(cols, self.problem.others_by_user())
            return contrib.sum(axis=0, dtype=np.float64)
        return score.score_targets_T(cols, self.problem.others_by_user())

    def score_target_row(self, row: np.ndarray) -> float:
        """Objective from one ``(n,)`` target horizon row (session base value)."""
        return float(self._score_cols(np.ascontiguousarray(row)[:, None])[0])

    def evaluate(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        sets = self._normalize_sets(seed_sets)
        self.stats.evaluate_calls += 1
        self.stats.sets_evaluated += len(sets)
        if not sets:
            return np.empty(0, dtype=np.float64)
        return self._chunked_scores(sets)

    def query_sets(
        self, seed_sets: Iterable[SeedSet], *, wins: bool = False
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """One shared (n, C) evolution, canonically scored row by row.

        The evolution (``target_opinion_rows``' machinery) is batch-stable;
        scoring and win checks run per row so they are width-1 reductions
        regardless of ``C`` — coalesced and serial calls agree bitwise.
        """
        sets = self._normalize_sets(seed_sets)
        self.stats.evaluate_calls += 1
        self.stats.sets_evaluated += len(sets)
        values = np.empty(len(sets), dtype=np.float64)
        win_flags = np.empty(len(sets), dtype=bool) if wins else None
        for lo, hi, cols in self._evolve_blocks(sets):
            for j in range(lo, hi):
                row = np.ascontiguousarray(cols[:, j - lo])
                values[j] = self.score_target_row(row)
                if win_flags is not None:
                    win_flags[j] = self.problem.target_wins_from_row(row)
        return values, win_flags


class WalkSession(SelectionSession):
    """Session over the walk estimators.

    Commits apply post-generation truncation immediately, so the next
    round's sync against the committed prefix is a no-op extension rather
    than a reset-and-replay of the whole seed sequence.
    """

    def commit(self, seed: int, *, gain: float | None = None) -> float:
        value = super().commit(seed, gain=gain)
        self.engine._sync(self._seeds)
        return value


class WalkEngine(ObjectiveEngine):
    """Walk/sketch estimators behind the engine interface (§V / §VI).

    Serves a :class:`~repro.core.random_walk.TruncatedWalks` view drawn
    from a :class:`~repro.core.walk_store.WalkStore` (a private one unless
    a shared store is supplied — the ``rw-store`` spec) through a
    :class:`~repro.core.random_walk.WalkGreedyOptimizer`; seed sets are
    applied by post-generation truncation, and a pristine snapshot of the
    truncation state lets arbitrary (non-incremental) seed sets be
    evaluated by reset-and-replay.  ``marginal_gains`` reuses the
    optimizer's single vectorized all-candidates scan, so a greedy round is
    one pass regardless of the candidate count; sessions keep the
    truncation state synced to the committed prefix, which makes each
    incremental sync one ``add_seed`` instead of a replay.

    Walks are generated in deterministic seed-per-block units by the
    store, so two engines built from the same ``rng`` — or the same shared
    store at any shard count — see byte-identical walks and make
    byte-identical selections.

    Parameters
    ----------
    grouping:
        ``"start"`` — Algorithm 4 (RW): ``walks_per_node`` walks from every
        node, per-user averaged estimates.  ``"walk"`` — Algorithm 5 (RS):
        ``theta`` uniform-start sketch walks, rescaled by ``n / theta``.
    store, shards:
        A shared :class:`~repro.core.walk_store.WalkStore` to draw from,
        or (when building a private store) its generation-shard count.
    store_dir:
        Directory for a private *memory-mapped* store (the
        ``rw-store:<S>:mmap=<DIR>`` spec / CLI ``--store-dir``): blocks
        persist as ``.npy`` shards and a re-opened store regenerates
        nothing.  Mutually exclusive with ``store`` — a supplied store
        already decided where its blocks live.
    adaptive:
        Enable IMM-style adaptive sample-size escalation in
        :meth:`prepare_budget`: the sample grows in reuse-friendly
        doublings until the (ε, δ) bound for the requested ``epsilon``
        holds (Hoeffding per-node counts for ``"start"``, the §VI
        martingale θ ladder for ``"walk"``), replacing the fixed walk
        counts.  Escalation never regenerates: every doubling extends the
        store's pools.
    epsilon, rho, ell:
        Requested precision and confidence.  Whether or not ``adaptive``
        is set, :meth:`prepare_budget` records the *achieved* ε in
        ``stats.achieved_epsilon`` and warns
        (:class:`EstimatorPrecisionWarning`) when a requested ``epsilon``
        cannot be certified.  What ε *means* depends on the grouping: for
        ``"start"`` it is the per-user Hoeffding quantity
        ``sqrt(ln(2/(1-ρ)) / 2λ)`` — the opinion error δ of Theorem 10
        for the cumulative score, and equivalently the smallest certified
        rank margin γ of Theorem 11 for the rank scores (Theorem 12's
        one-sided Copeland bound needs strictly fewer walks, so this is
        conservative for it).  For ``"walk"`` it is Theorem 13's
        score-level approximation ε, which exists only for the cumulative
        score — rank scores have no closed form (§VI-E) and always warn
        when an ``epsilon`` is requested.
    theta_cap, lambda_cap:
        Hard sample caps for the adaptive ladders (escalation past them
        triggers the precision warning instead of unbounded growth).
    """

    supports_batch = True
    is_estimate = True

    def __init__(
        self,
        problem: FJVoteProblem,
        *,
        grouping: str = "start",
        walks_per_node: int = 32,
        theta: int = 4000,
        rng: int | np.random.Generator | None = None,
        store=None,
        shards: int | None = None,
        store_dir=None,
        adaptive: bool = False,
        epsilon: float | None = None,
        rho: float = 0.9,
        ell: float = 1.0,
        theta_cap: int | None = None,
        lambda_cap: int | None = 1024,
    ) -> None:
        super().__init__(problem)
        from repro.core.walk_store import WalkStore
        from repro.utils.rng import ensure_rng

        if grouping not in ("start", "walk"):
            raise ValueError(f"grouping must be 'start' or 'walk', got {grouping!r}")
        rng = ensure_rng(rng)
        if store is None:
            store = WalkStore(
                problem.state,
                problem.horizon,
                seed=rng,
                shards=1 if shards is None else int(shards),
                store_dir=store_dir,
            )
            self._owns_store = True
        else:
            store.require_problem(problem)
            if shards is not None and int(shards) != store.shards:
                raise ValueError(
                    f"shards={shards} conflicts with the supplied store "
                    f"(shards={store.shards})"
                )
            if store_dir is not None:
                from pathlib import Path

                if store.store_dir is None or Path(store_dir) != store.store_dir:
                    raise ValueError(
                        "store_dir conflicts with the supplied store; "
                        "persist by building the shared store with "
                        "store_dir instead"
                    )
            self._owns_store = False
        self.store = store
        self.grouping = grouping
        self.walks_per_node = max(int(walks_per_node), 1)
        self.theta = max(int(theta), 1)
        self.adaptive = bool(adaptive)
        self.epsilon = None if epsilon is None else float(epsilon)
        self.rho = float(rho)
        self.ell = float(ell)
        self.theta_cap = None if theta_cap is None else int(theta_cap)
        self.lambda_cap = None if lambda_cap is None else int(lambda_cap)
        self._rng = rng
        self._prepared_k: int | None = None
        self._opt_lb: float | None = None
        self._bind_count = 0
        if grouping == "start":
            if self.adaptive:
                # The per-node escalation target is closed-form and
                # budget-independent, so bind the escalated sample once
                # here instead of building (and indexing) a throwaway
                # fixed-count view that prepare_budget would replace.
                self.walks_per_node = max(
                    self.walks_per_node, self._per_node_target()
                )
            self._bind_walks(store.per_node_view(problem.target, self.walks_per_node))
        elif self.adaptive:
            # θ escalation needs the budget, so the first bind is
            # deferred to prepare_budget (or the first evaluation) — the
            # default-θ view is never materialized just to be replaced.
            self.walks = None
            self.optimizer = None
        else:
            self._bind_walks(store.uniform_view(problem.target, self.theta))

    def _ensure_bound(self) -> None:
        """Bind the deferred initial walk view (adaptive sketch engines)."""
        if self.walks is None:
            self._bind_walks(
                self.store.uniform_view(self.problem.target, self.theta)
            )

    def _bind_walks(self, walks) -> None:
        """Adopt a walk view: rebuild the optimizer and pristine snapshot.

        The snapshot shares the arrays (copy-on-write in ``add_seed``): a
        reset is an O(1) pointer swap and only the first truncation after
        it pays a copy, instead of every array being copied twice — once
        here and once per restore.
        """
        from repro.core.random_walk import WalkGreedyOptimizer

        problem = self.problem
        self._bind_count += 1
        self.walks = walks
        self.optimizer = WalkGreedyOptimizer(
            walks,
            problem.score,
            None
            if isinstance(problem.score, CumulativeScore)
            else problem.others_by_user(),
            grouping=self.grouping,
        )
        self._snapshot = self.walks.snapshot_state()

    # ------------------------------------------------------------------
    # Adaptive sampling and (ε, δ) accounting
    # ------------------------------------------------------------------
    def prepare_budget(self, k: int) -> bool:
        """Escalate the sample for budget ``k`` and account the precision.

        Idempotent per budget: re-preparing a smaller-or-equal ``k`` is
        free, a larger one re-runs the ladder (reusing every walk drawn).
        Returns True when escalation replaced the bound walk view.
        """
        k = int(k)
        if self._prepared_k is not None and k <= self._prepared_k:
            return False
        before = self._bind_count
        if self.adaptive:
            self._escalate(k)
        self._ensure_bound()
        self._account_precision(k)
        # Recorded only after escalation/accounting succeed: a failed
        # escalation (worker death, allocation failure) must not mark the
        # budget prepared, or a retry would silently run on the small
        # sample with no precision accounting.
        self._prepared_k = k
        return self._bind_count != before

    def _per_node_target(self) -> int:
        """Escalated per-node walk count: the (capped) Hoeffding bound.

        Theorem 10's count for ``|b̂ - b| < ε`` with probability ρ —
        closed-form and budget-independent, so adaptive ``"start"``
        engines bind it directly (no observation is made between
        doublings that could change the target).
        """
        from repro.core.bounds import lambda_cumulative

        eps = 0.1 if self.epsilon is None else self.epsilon
        target = lambda_cumulative(eps, self.rho)
        if self.lambda_cap is not None:
            target = min(target, self.lambda_cap)
        return int(target)

    def _escalate(self, k: int) -> None:
        from repro.core.bounds import theta_cumulative

        eps = 0.1 if self.epsilon is None else self.epsilon
        q = self.problem.target
        if self.grouping == "start":
            target = self._per_node_target()
            if self.walks_per_node < target:
                self.walks_per_node = target
                self._bind_walks(self.store.per_node_view(q, self.walks_per_node))
            return
        from repro.core import sketch

        if isinstance(self.problem.score, CumulativeScore):
            # IMM-style martingale ladder (§VI-B): the OPT lower-bound
            # rounds and the final θ all extend one store pool.
            self._opt_lb = sketch.estimate_opt_cumulative(
                self.problem,
                k,
                epsilon=eps,
                ell=self.ell,
                theta_cap=self.theta_cap,
                rng=self._rng,
                store=self.store,
            )
            theta = theta_cumulative(self.problem.n, k, self._opt_lb, eps, self.ell)
        else:
            # §VI-E heuristic for the rank scores: double θ to convergence.
            theta = sketch.converge_theta(
                self.problem,
                k,
                theta_start=self.theta,
                theta_max=self.theta_cap,
                rng=self._rng,
                store=self.store,
            )
        if self.theta_cap is not None:
            theta = min(int(theta), self.theta_cap)
        if int(theta) > self.theta:
            self.theta = int(theta)
            # Invalidate any currently bound view; the _ensure_bound that
            # follows escalation binds once at the final θ.
            self.walks = None
            self.optimizer = None

    def _account_precision(self, k: int) -> None:
        from repro.core.bounds import delta_achieved, epsilon_achieved_cumulative

        requested = self.epsilon
        achieved: float | None
        if self.grouping == "start":
            # Certified per-user quantity: opinion error δ (Theorem 10)
            # and rank margin γ (Theorem 11) share this formula; it is
            # conservative for Copeland's one-sided Theorem 12.  The
            # score-level guarantee for rank scores lives at the "walk"
            # grouping, where it has no closed form and warns instead.
            achieved = delta_achieved(self.walks_per_node, self.rho)
        elif isinstance(self.problem.score, CumulativeScore):
            lb = self._opt_lb if self._opt_lb is not None else float(max(k, 1))
            achieved = epsilon_achieved_cumulative(
                self.problem.n, k, lb, self.walks.num_walks, self.ell
            )
        else:
            achieved = None  # no closed form for the rank scores (§VI-E)
        self.stats.requested_epsilon = 0.0 if requested is None else requested
        self.stats.achieved_epsilon = 0.0 if achieved is None else achieved
        if requested is not None and (
            achieved is None or achieved > requested + 1e-12
        ):
            self.stats.precision_unmet += 1
            if achieved is None:
                detail = (
                    "no closed-form (ε,δ) guarantee exists for this score; "
                    "the sample followed the §VI-E convergence heuristic"
                )
            else:
                detail = f"the sample budget only certifies ε≈{achieved:.4g}"
            warnings.warn(
                EstimatorPrecisionWarning(
                    f"requested ε={requested:g} for budget k={k}, but {detail} "
                    f"({self.walks.num_walks} walks); raise the sample caps "
                    "or use an exact DM engine"
                ),
                stacklevel=3,
            )

    def close(self) -> None:
        """Release the private store's generation workers, if any."""
        if self._owns_store:
            self.store.close()

    def apply_delta(self, report, *, sessions: str = "auto") -> None:
        """Patch the walk store, rebind the walk view, refresh sessions.

        Store patching is idempotent per graph version, so engines
        sharing one store can each forward the same report.  Opinion-only
        deltas leave every stored walk byte intact — the rebound view just
        reads its estimates from the new ``B⁰``.
        """
        if report.empty:
            return
        self.store.apply_delta(report)
        if self.walks is not None:
            if self.grouping == "start":
                self._bind_walks(
                    self.store.per_node_view(self.problem.target, self.walks_per_node)
                )
            else:
                self._bind_walks(
                    self.store.uniform_view(self.problem.target, self.theta)
                )
        super().apply_delta(report, sessions=sessions)

    # ------------------------------------------------------------------
    def open_session(self, base: SeedSet = ()) -> WalkSession:
        return WalkSession(self, base)

    def _reset(self) -> None:
        self.walks.restore_state(self._snapshot)

    def _sync(self, seeds: SeedSet) -> None:
        """Make the truncation state reflect exactly ``seeds``."""
        want = [int(v) for v in seeds]
        have = self.walks.seeds
        if have == want[: len(have)]:
            new = want[len(have) :]
        else:
            self._reset()
            new = want
        for v in new:
            self.walks.add_seed(v)

    def evaluate(self, seed_sets: Iterable[SeedSet]) -> np.ndarray:
        self._ensure_bound()
        sets = list(seed_sets)
        self.stats.evaluate_calls += 1
        self.stats.sets_evaluated += len(sets)
        out = []
        for s in sets:
            self._sync(s)
            out.append(self.optimizer.estimated_score())
        return np.array(out, dtype=np.float64)

    def marginal_gains(
        self,
        base: SeedSet,
        candidates: SeedSet,
        *,
        base_objective: float | None = None,
    ) -> np.ndarray:
        self._ensure_bound()
        candidates = np.asarray(candidates, dtype=np.int64)
        # The optimizer's vectorized pass scores every node at once; for a
        # handful of candidates (CELF stale-entry refreshes) per-candidate
        # evaluation is cheaper than the all-nodes scan.
        if candidates.size < 8:
            return super().marginal_gains(
                base, candidates, base_objective=base_objective
            )
        self._sync(base)
        return self.optimizer.marginal_gains()[candidates]


def _make_dm(problem, rng, **kwargs):
    return DMEngine(problem)


def _make_dm_batched(problem, rng, **kwargs):
    return BatchedDMEngine(problem, **kwargs)


def _make_dm_mp(problem, rng, **kwargs):
    if kwargs.get("transport") == "tcp":
        from repro.core.engine_net import HostPool

        kwargs = {k: v for k, v in kwargs.items() if k != "transport"}
        return HostPool(problem, **kwargs)
    from repro.core.engine_mp import MultiprocessDMEngine

    return MultiprocessDMEngine(problem, **kwargs)


def _make_rw(problem, rng, **kwargs):
    return WalkEngine(problem, grouping="start", rng=rng, **kwargs)


def _make_sketch(problem, rng, **kwargs):
    return WalkEngine(problem, grouping="walk", rng=rng, **kwargs)


def _make_rw_store(problem, rng, **kwargs):
    # The shared-walk-store estimator: rw semantics (per-node grouping) on
    # a sharded store, with IMM-style adaptive sample escalation on by
    # default.  ``adaptive=False`` with matching fixed counts reproduces
    # the plain ``rw`` engine byte for byte at every shard count.
    kwargs.setdefault("grouping", "start")
    kwargs.setdefault("adaptive", True)
    kwargs.setdefault("epsilon", 0.1)
    return WalkEngine(problem, rng=rng, **kwargs)


#: Registry behind :func:`make_engine`; the single source of truth for
#: :data:`ENGINE_NAMES`, the CLI ``--engine`` choices/help text, and the
#: unknown-spec error message.
_ENGINE_FACTORIES = {
    "dm": _make_dm,
    "dm-batched": _make_dm_batched,
    "dm-mp": _make_dm_mp,
    "rw": _make_rw,
    "sketch": _make_sketch,
    "rw-store": _make_rw_store,
}

#: Engine spec names accepted by :func:`make_engine` (and ``--engine``).
ENGINE_NAMES = tuple(_ENGINE_FACTORIES)

#: Exact DM backends: deterministic, parity-checked against each other.
EXACT_DM_NAMES = ("dm", "dm-batched", "dm-mp")

#: Parameterized spec forms: ``<name>:<positive int>`` maps to a kwarg.
_SPEC_PARAMS = {"dm-mp": "workers", "rw-store": "shards"}

#: One-line description per engine spec, rendered into the CLI help.
ENGINE_HELP = {
    "dm": "legacy per-set exact DM",
    "dm-batched": "vectorized exact DM, the default",
    "dm-mp": (
        "exact DM fanned out over worker processes or remote hosts "
        "(dm-mp:<workers>[:pipe|:shm] — shm = zero-copy shared-memory "
        "transport; dm-mp:tcp=<host:port,...> — one chunk shard per "
        "'repro net-worker' host)"
    ),
    "rw": "random-walk estimator",
    "sketch": "sketch estimator",
    "rw-store": (
        "shared-walk-store estimator, adaptive sampling "
        "(rw-store:<shards>[:mmap=<DIR>] — mmap = persistent on-disk shards)"
    ),
}

#: ``dm-mp`` transport suffixes spelled as bare segments (``tcp`` needs
#: its host list, so it only appears in the ``tcp=`` form).
_SPEC_TRANSPORTS = ("pipe", "shm")


def _spec_error(spec: object) -> ValueError:
    """The registry's single unknown/malformed-spec error.

    Every parse failure — unknown names, non-strings, bad counts,
    suffixes on the wrong engine — raises this one message; the CLI
    ``--engine`` option and the serving layer surface it verbatim.
    """
    return ValueError(
        f"unknown engine {spec!r}; expected one of {ENGINE_NAMES} "
        "(parameterized forms: 'dm-mp:<workers>', 'rw-store:<shards>', "
        "both >= 1, plus the data-plane suffixes 'dm-mp[:W]:pipe', "
        "'dm-mp[:W]:shm', 'dm-mp:tcp=<host:port,...>' and "
        "'rw-store[:S]:mmap=<DIR>')"
    )


@dataclass(frozen=True)
class EngineSpec:
    """Structured engine spec: the typed form of the ``--engine`` grammar.

    The string grammar (:meth:`parse`) stays the user-facing front-end;
    code should hold the parsed spec and use :meth:`canonical` (the
    normalized string — equivalent spellings like ``dm-mp:2`` and
    ``dm-mp:2:pipe`` canonicalize identically, which is what the serving
    hub keys warm engines by), :meth:`build` (construct the engine via
    the registry) and :meth:`with_store_dir` (the ``--store-dir``
    rewrite).  Instances are frozen and hashable, so they work as cache
    keys directly.

    Fields only apply to the engines that understand them: ``workers``
    and ``transport`` to ``dm-mp`` (``transport`` is ``None`` for the
    default pipe data plane, ``"shm"`` for shared memory, ``"tcp"`` for
    the multi-host coordinator — then ``hosts`` carries the
    ``host:port`` targets and ``workers`` is derived, one shard per
    host), ``shards`` and ``store_dir`` to ``rw-store``.  Violations
    raise ``ValueError`` at construction.
    """

    name: str
    workers: int | None = None
    shards: int | None = None
    transport: str | None = None
    store_dir: str | None = None
    hosts: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.name not in _ENGINE_FACTORIES:
            raise _spec_error(self.name)
        if self.transport == "pipe":
            # The explicit default: normalize away so equality/hash/
            # canonical() treat ``dm-mp:2:pipe`` as ``dm-mp:2``.
            object.__setattr__(self, "transport", None)
        if self.transport is not None and self.name != "dm-mp":
            raise ValueError(
                f"transport {self.transport!r} only applies to dm-mp, "
                f"not {self.name!r}"
            )
        if self.transport not in (None, "shm", "tcp"):
            raise ValueError(
                f"transport must be one of ('pipe', 'shm', 'tcp'), "
                f"got {self.transport!r}"
            )
        if self.workers is not None:
            if self.name != "dm-mp":
                raise ValueError(
                    f"'workers' only applies to dm-mp, not {self.name!r}"
                )
            object.__setattr__(self, "workers", int(self.workers))
            if self.workers < 1:
                raise ValueError(
                    f"dm-mp needs at least one worker, got {self.workers}"
                )
        if self.shards is not None:
            if self.name != "rw-store":
                raise ValueError(
                    f"'shards' only applies to rw-store, not {self.name!r}"
                )
            object.__setattr__(self, "shards", int(self.shards))
            if self.shards < 1:
                raise ValueError(
                    f"rw-store needs at least one shard, got {self.shards}"
                )
        if self.store_dir is not None:
            if self.name != "rw-store":
                raise ValueError(
                    f"'store_dir' only applies to rw-store, not {self.name!r}"
                )
            object.__setattr__(self, "store_dir", str(self.store_dir))
            if not self.store_dir:
                raise ValueError("rw-store mmap directory must be non-empty")
        object.__setattr__(self, "hosts", tuple(str(h) for h in self.hosts))
        if self.transport == "tcp":
            if not self.hosts:
                raise ValueError("dm-mp:tcp needs at least one host:port")
            if self.workers is not None:
                raise ValueError(
                    "dm-mp:tcp derives its worker count from the host "
                    "list; 'workers' must not be set"
                )
            for entry in self.hosts:
                host, sep, port = entry.rpartition(":")
                if (
                    not sep
                    or not host
                    or "," in entry
                    or not port.isdigit()
                    or not 0 < int(port) < 65536
                ):
                    raise ValueError(
                        f"malformed dm-mp:tcp host {entry!r}; expected "
                        "host:port with a port in [1, 65535]"
                    )
        elif self.hosts:
            raise ValueError("'hosts' requires transport='tcp'")

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: "str | EngineSpec") -> "EngineSpec":
        """Parse the ``--engine`` grammar (idempotent on EngineSpec).

        Accepts every bare name in :data:`ENGINE_NAMES` plus the
        parameterized forms: a positive count first (``dm-mp:<workers>``
        / ``rw-store:<shards>``), then an optional data-plane suffix —
        ``dm-mp[:W]:pipe`` / ``dm-mp[:W]:shm`` pick the worker-pool
        transport, ``dm-mp:tcp=<host:port,...>`` the multi-host TCP
        coordinator (the host list runs to the end of the spec, so ports
        keep their colons), and ``rw-store[:S]:mmap=<DIR>`` the
        memory-mapped on-disk store (the directory is taken verbatim to
        the end of the spec, so paths may contain colons).  Anything
        else — unknown names, non-strings, malformed or non-positive
        counts like ``"dm-mp:"`` / ``"rw-store:0"`` / ``"dm-mp:-2"``,
        suffixes on the wrong engine, out-of-order or repeated segments
        — raises the registry's single ``ValueError``.
        """
        if isinstance(spec, EngineSpec):
            return spec
        if isinstance(spec, str):
            name, sep, rest = spec.partition(":")
            if name in _ENGINE_FACTORIES:
                if not sep:
                    return cls(name)
                if rest:
                    try:
                        return cls._parse_params(name, rest)
                    except ValueError:
                        pass
        raise _spec_error(spec)

    @classmethod
    def _parse_params(cls, name: str, rest: str) -> "EngineSpec":
        """Parse the segments after ``<name>:`` (raises on any misfit)."""
        if name == "dm-mp" and rest.startswith("tcp="):
            hostlist = rest[len("tcp=") :]
            if not hostlist:
                raise ValueError("dm-mp:tcp needs at least one host:port")
            return cls(name, transport="tcp", hosts=tuple(hostlist.split(",")))
        count: int | None = None
        if _SPEC_PARAMS.get(name) is not None:
            first, sep, more = rest.partition(":")
            if first.isdigit():
                count = int(first)
                rest = more if sep else ""
        transport: str | None = None
        store_dir: str | None = None
        if rest:
            if name == "dm-mp" and rest in _SPEC_TRANSPORTS:
                transport = rest
            elif name == "rw-store" and rest.startswith("mmap="):
                store_dir = rest[len("mmap=") :]
            else:
                raise _spec_error(rest)
        return cls(
            name,
            workers=count if name == "dm-mp" else None,
            shards=count if name == "rw-store" else None,
            transport=transport,
            store_dir=store_dir,
        )

    # ------------------------------------------------------------------
    def canonical(self) -> str:
        """The normalized spec string: ``parse(canonical()) == self``.

        Defaults are omitted (no ``:pipe``, no counts that were never
        given), so every set of equivalent spellings maps to exactly one
        canonical string — the key the serving hub de-duplicates warm
        engines by.
        """
        parts = [self.name]
        if self.workers is not None:
            parts.append(str(self.workers))
        if self.shards is not None:
            parts.append(str(self.shards))
        if self.transport == "shm":
            parts.append("shm")
        elif self.transport == "tcp":
            parts.append("tcp=" + ",".join(self.hosts))
        if self.store_dir is not None:
            parts.append(f"mmap={self.store_dir}")
        return ":".join(parts)

    def kwargs(self) -> dict[str, object]:
        """The factory kwargs this spec pins (the legacy tuple's dict)."""
        out: dict[str, object] = {}
        if self.workers is not None:
            out["workers"] = self.workers
        if self.shards is not None:
            out["shards"] = self.shards
        if self.transport is not None:
            out["transport"] = self.transport
        if self.hosts:
            out["hosts"] = self.hosts
        if self.store_dir is not None:
            out["store_dir"] = self.store_dir
        return out

    def build(
        self,
        problem: FJVoteProblem,
        rng: "int | np.random.Generator | None" = None,
        **kwargs: object,
    ) -> "ObjectiveEngine":
        """Construct the engine through the registry factory.

        ``kwargs`` override/extend the spec's own (``store=`` for a
        shared walk store, ``batch_rows=`` tuning, ...), exactly like
        :func:`make_engine`'s extras.
        """
        factory = _ENGINE_FACTORIES[self.name]
        return factory(problem, rng, **{**self.kwargs(), **kwargs})

    def with_store_dir(self, store_dir: "str | None") -> "EngineSpec":
        """The ``--store-dir`` spec rewrite, shared by CLI and server.

        ``rw-store`` specs gain ``store_dir`` (the ``:mmap=<DIR>``
        suffix); other engines and a falsy ``store_dir`` pass through
        unchanged.  A spec already pinning a *different* directory
        raises ``ValueError`` — the callers surface it as the
        ``--store-dir`` conflict error.
        """
        if not store_dir or self.name != "rw-store":
            return self
        if self.store_dir is None:
            return replace(self, store_dir=str(store_dir))
        if self.store_dir != str(store_dir):
            raise ValueError(
                f"--store-dir {str(store_dir)!r} conflicts with the engine "
                f"spec's mmap directory {self.store_dir!r}"
            )
        return self

    def __str__(self) -> str:
        return self.canonical()


def parse_engine_spec(spec: object) -> tuple[str, dict[str, object]]:
    """Split an engine spec string into ``(registry name, spec kwargs)``.

    .. deprecated:: the ``(name, kwargs)`` tuple is the legacy surface;
       new code should hold the structured spec itself —
       ``EngineSpec.parse(spec)`` — and use its ``.canonical()`` /
       ``.kwargs()`` / ``.build()`` instead of unpacking tuples.  This
       thin front-end remains so existing callers keep working.

    The accepted grammar and the single ``ValueError`` for malformed
    specs are documented on :meth:`EngineSpec.parse`.
    """
    if isinstance(spec, EngineSpec):
        return spec.name, spec.kwargs()
    if not isinstance(spec, str):
        raise _spec_error(spec)
    parsed = EngineSpec.parse(spec)
    return parsed.name, parsed.kwargs()


def spec_is_exact_dm(spec: object) -> bool:
    """True when ``spec`` names an exact DM backend (``None`` = default).

    Covers the parameterized ``dm-mp`` forms (including the tcp
    transport — remote hosts run the same exact batched engine) and
    :class:`EngineSpec` instances; engine instances and estimator specs
    return False.
    """
    if spec is None:
        return True
    if isinstance(spec, EngineSpec):
        return spec.name in EXACT_DM_NAMES
    if not isinstance(spec, str):
        return False
    try:
        name, _ = parse_engine_spec(spec)
    except ValueError:
        return False
    return name in EXACT_DM_NAMES


def make_engine(
    spec: "str | EngineSpec | ObjectiveEngine | None",
    problem: FJVoteProblem,
    *,
    rng: int | np.random.Generator | None = None,
    **kwargs: object,
) -> ObjectiveEngine:
    """Build an engine from a spec (see :data:`ENGINE_NAMES`).

    Passing an :class:`ObjectiveEngine` instance returns it unchanged (its
    ``kwargs`` are ignored); ``None`` means the default ``"dm-batched"``.
    Spec strings may carry parameters (``"dm-mp:4"`` = four worker
    processes) and :class:`EngineSpec` instances are accepted directly.
    ``rng`` seeds the stochastic (walk/sketch) backends so selections
    stay reproducible; the exact DM backends ignore it.  Unknown or
    malformed specs raise ``ValueError`` listing every registered name
    (see :meth:`EngineSpec.parse`).
    """
    if isinstance(spec, ObjectiveEngine):
        if spec.problem is not problem:
            raise ValueError(
                "engine instance is bound to a different problem; build one "
                "for this problem (engines cache problem-specific state)"
            )
        return spec
    if spec is None:
        spec = "dm-batched"
    if not isinstance(spec, (str, EngineSpec)):
        raise _spec_error(spec)
    return EngineSpec.parse(spec).build(problem, rng, **kwargs)
