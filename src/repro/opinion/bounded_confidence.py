"""Bounded-confidence opinion dynamics (Hegselmann-Krause on a network).

The paper's conclusion (§IX) names "more opinion diffusion models" as future
work and its related-work section (§VII) singles out the bounded-confidence
(BC) and Hegselmann-Krause (HK) families as the continuous models suited to
voting-based winning criteria.  This module provides a graph-restricted HK
model as that extension:

    b_i(t+1) = (1 - d_i) * avg_w { b_j(t) : j in N_in(i) ∪ {i},
                                   |b_j(t) - b_i(t)| <= ε }  +  d_i * b_i(0)

i.e. users average only the in-neighbors whose current opinion lies within
their confidence bound ε (weighted by influence), retaining the FJ-style
stubbornness anchor.  With ε >= 1 every neighbor is heard and the model
coincides with FJ; with ε = 0 only the self-anchor remains.

The model is *not* linear, so the random-walk/sketch estimators do not apply;
seed selection uses the generic greedy engine via
:func:`bounded_confidence_objective`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.utils.validation import check_time_horizon


def hk_step(
    b: np.ndarray,
    b0: np.ndarray,
    d: np.ndarray,
    graph: InfluenceGraph,
    epsilon: float,
) -> np.ndarray:
    """One bounded-confidence update."""
    n = graph.n
    csc = graph.csc
    out = np.empty(n, dtype=np.float64)
    for i in range(n):
        lo, hi = csc.indptr[i], csc.indptr[i + 1]
        sources = csc.indices[lo:hi]
        weights = csc.data[lo:hi]
        heard = np.abs(b[sources] - b[i]) <= epsilon
        total = weights[heard].sum()
        if total <= 0:
            social = b[i]
        else:
            social = float(np.dot(weights[heard], b[sources[heard]]) / total)
        out[i] = (1.0 - d[i]) * social + d[i] * b0[i]
    return out


def hk_evolve(
    b0: np.ndarray,
    d: np.ndarray,
    graph: InfluenceGraph,
    t: int,
    *,
    epsilon: float = 0.3,
) -> np.ndarray:
    """Opinions at horizon ``t`` under the bounded-confidence model."""
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    t = check_time_horizon(t)
    b0 = np.asarray(b0, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    b = b0.copy()
    for _ in range(t):
        b = hk_step(b, b0, d, graph, epsilon)
    return b


def bounded_confidence_objective(
    graph: InfluenceGraph,
    b0: np.ndarray,
    d: np.ndarray,
    t: int,
    *,
    epsilon: float = 0.3,
):
    """A set objective ``seeds -> Σ_v b_v(t)`` for greedy seed selection.

    Returns a callable compatible with :func:`repro.core.greedy.greedy_select`
    (cumulative-score semantics under HK dynamics).  HK is non-linear, so no
    submodularity guarantee transfers — use eager greedy (``lazy=False``).
    """
    b0 = np.asarray(b0, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)

    def objective(seeds: tuple[int, ...]) -> float:
        b0_s = b0.copy()
        d_s = d.copy()
        idx = np.asarray(list(seeds), dtype=np.int64)
        if idx.size:
            b0_s[idx] = 1.0
            d_s[idx] = 1.0
        return float(hk_evolve(b0_s, d_s, graph, t, epsilon=epsilon).sum())

    return objective
