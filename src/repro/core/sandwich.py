"""Sandwich approximation for the non-submodular scores (paper §IV, Alg. 3).

For the positional-p-approval family (plurality and p-approval included):

* ``LB(S) = ω[p] · Σ_{v ∈ V_q^(t)} b_qv^(t)[S]`` — the seeded cumulative
  score restricted to the *favorable users set* (Definition 3); monotone
  submodular (Theorem 5), maximized greedily with CELF.
* ``UB(S) = ω[1] · |N_S^(t) ∪ V_q^(t)|`` — scaled coverage of the
  *reachable users set* (Definition 4); monotone submodular (Theorem 6),
  maximized with lazy greedy coverage.

For Copeland only an upper bound exists (Definition 6):
``UB(S) = (r-1)/(⌊n/2⌋+1) · |N_S^(t) ∪ U_q^(t)|`` with the *weakly
favorable users set* ``U_q^(t)`` (Definition 5, Theorem 7).

Algorithm 3 returns the best of {S_U, S_L, S_F} under the true score F and
reports the empirical approximation factor ``F(S_U)/UB(S_U)·(1-1/e)``
studied in §IV-D (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.engine import (
    BatchedDMEngine,
    ObjectiveEngine,
    make_engine,
    spec_is_exact_dm,
)
from repro.core.greedy import GreedyResult, greedy_engine
from repro.core.problem import FJVoteProblem
from repro.core.random_walk import random_walk_select
from repro.core.reachability import ReachabilityIndex, coverage_greedy
from repro.core.sketch import sketch_select
from repro.utils.validation import check_seed_budget
from repro.voting.rank import ranks
from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    PositionalPApprovalScore,
)


def favorable_users(problem: FJVoteProblem) -> np.ndarray:
    """The favorable users set ``V_q^(t)`` (Definition 1).

    Users who rank the target within the top p at the horizon *without any
    seeds*.  They keep doing so after seeding (opinions about the target
    only rise), which is what makes LB a valid lower bound.
    """
    score = problem.score
    if not isinstance(score, PositionalPApprovalScore):
        raise TypeError("favorable_users applies to positional-p-approval scores")
    beta = ranks(problem.full_opinions(()), problem.target)
    return np.where(beta <= score.p)[0]


def weakly_favorable_users(problem: FJVoteProblem) -> np.ndarray:
    """The weakly favorable users set ``U_q^(t)`` (Definition 5).

    Users preferring the target to *at least one* other candidate at the
    horizon without seeds — the only unseeded users able to contribute to a
    pairwise Copeland win.
    """
    opinions = problem.full_opinions(())
    others = np.delete(opinions, problem.target, axis=0)
    if others.shape[0] == 0:
        return np.arange(problem.n)
    return np.where(opinions[problem.target] > others.min(axis=0))[0]


def lower_bound_greedy(
    problem: FJVoteProblem, k: int, favorable: np.ndarray
) -> tuple[GreedyResult, float]:
    """Greedy (CELF) maximization of ``LB(S)`` (Definition 3).

    Returns the greedy result and the weight ``ω[p]`` so callers can report
    the bound value.  The objective is the sum of seeded horizon opinions
    over ``favorable`` — submodular by Theorem 3, hence CELF-safe.  The
    weighted restriction is expressed as a batched DM engine over the
    cumulative score with per-user weights ``ω[p]·1[v ∈ favorable]``, so
    the CELF initialization round is a single vectorized evolution and
    every later pick is folded into the LB session's committed trajectory.
    Running in its own session also means the LB greedy can interleave
    with the feasible greedy on a shared problem without either one
    invalidating the other's cached base state.
    """
    score = problem.score
    if not isinstance(score, PositionalPApprovalScore):
        raise TypeError("the LB function applies to positional-p-approval scores")
    weight = score.weight_at(score.p)
    fav = np.asarray(favorable, dtype=np.int64)
    weights = np.zeros(problem.n, dtype=np.float64)
    weights[fav] = weight
    lb_engine = BatchedDMEngine(
        problem.with_score(CumulativeScore()), user_weights=weights
    )
    result = greedy_engine(lb_engine, k, lazy=True)
    return result, weight


@dataclass
class SandwichResult:
    """Outcome of Algorithm 3 plus the §IV-D diagnostics."""

    seeds: np.ndarray
    objective: float
    chosen: str
    seeds_feasible: np.ndarray
    seeds_upper: np.ndarray
    seeds_lower: np.ndarray | None
    f_of_upper_seeds: float
    ub_of_upper_seeds: float

    @property
    def sandwich_ratio(self) -> float:
        """``F(S_U) / UB(S_U)`` — the data-dependent factor of Eq. 20."""
        if self.ub_of_upper_seeds <= 0:
            return 1.0
        return self.f_of_upper_seeds / self.ub_of_upper_seeds

    @property
    def approximation_factor(self) -> float:
        """Guaranteed factor ``(1 - 1/e) · F(S_U)/UB(S_U)`` (§IV-D)."""
        return (1.0 - 1.0 / np.e) * self.sandwich_ratio


def sandwich_select(
    problem: FJVoteProblem,
    k: int,
    *,
    method: str = "dm",
    feasible_selector: Callable[[int], np.ndarray] | None = None,
    rng: int | np.random.Generator | None = None,
    engine: ObjectiveEngine | str | None = None,
    **method_kwargs: object,
) -> SandwichResult:
    """Sandwich-approximation seed selection (Algorithm 3).

    Parameters
    ----------
    method:
        How the feasible solution ``S_F`` is computed: ``"dm"`` (exact
        greedy), ``"rw"`` (Algorithm 4) or ``"rs"`` (Algorithm 5).
    feasible_selector:
        Optional override returning ``S_F`` for a budget (ignores
        ``method``).
    engine:
        Evaluation backend for the ``"dm"`` feasible greedy (see
        :func:`repro.core.engine.make_engine`).  The feasible greedy runs
        in its own selection session; the engine instance built for it is
        reused for the final arg-max over {S_F, S_U, S_L}, which is always
        scored exactly — when the engine is an exact batch engine, all
        finalists are scored in one batched call.
    method_kwargs:
        Forwarded to the RW/RS selector.
    """
    k = check_seed_budget(k, problem.n)
    score = problem.score
    is_positional = isinstance(score, PositionalPApprovalScore)
    is_copeland = isinstance(score, CopelandScore)
    if not (is_positional or is_copeland):
        raise TypeError(
            "sandwich approximation targets the non-submodular scores; "
            "use greedy_dm directly for the cumulative score"
        )
    created: list[ObjectiveEngine] = []
    try:
        return _sandwich_select(
            problem,
            k,
            method,
            feasible_selector,
            rng,
            engine,
            method_kwargs,
            is_positional,
            created,
        )
    finally:
        # Engines built here from a spec (not caller-supplied instances)
        # are scoped to this selection; close() releases dm-mp pools and
        # is a no-op for the in-process backends.
        for built in created:
            built.close()


def _sandwich_select(
    problem: FJVoteProblem,
    k: int,
    method: str,
    feasible_selector: Callable[[int], np.ndarray] | None,
    rng: "int | np.random.Generator | None",
    engine: ObjectiveEngine | str | None,
    method_kwargs: dict,
    is_positional: bool,
    created: list[ObjectiveEngine],
) -> SandwichResult:
    score = problem.score
    # --- S_F: feasible greedy solution on F itself.
    engine_obj: ObjectiveEngine | None = None
    if feasible_selector is not None:
        seeds_f = np.asarray(feasible_selector(k), dtype=np.int64)
    elif method == "dm":
        # The sandwich scores are never cumulative (rejected above), so the
        # feasible greedy is exhaustive — matching greedy_dm's lazy="auto".
        engine_obj = make_engine(engine, problem, rng=rng)
        if engine_obj is not engine:
            created.append(engine_obj)
        seeds_f = greedy_engine(engine_obj, k, lazy=False).seeds
    elif method == "rw":
        seeds_f = random_walk_select(problem, k, rng=rng, **method_kwargs).seeds
    elif method == "rs":
        seeds_f = sketch_select(problem, k, rng=rng, **method_kwargs).seeds
    else:
        raise ValueError(f"unknown method {method!r}; expected dm, rw or rs")
    # --- S_U: greedy on the coverage upper bound.
    if is_positional:
        base = favorable_users(problem)
        ub_weight = score.weight_at(1)
    else:
        base = weakly_favorable_users(problem)
        ub_weight = (problem.r - 1) / (problem.n // 2 + 1)
    index = ReachabilityIndex(problem.state.graph(problem.target), problem.horizon)
    seeds_u, _ = coverage_greedy(index, base, k, weight=ub_weight)
    ub_of_su = ub_weight * float(
        np.union1d(index.reach_set(seeds_u), base).size
    )
    # --- S_L: greedy on the lower bound (positional scores only).
    seeds_l: np.ndarray | None = None
    if is_positional:
        lb_result, _ = lower_bound_greedy(problem, k, base)
        seeds_l = lb_result.seeds
    # --- Final: arg max of F over the candidates (Alg. 3 line 4), scored
    # exactly — reusing the feasible greedy's engine (and its problem-level
    # trajectory caches) when it is exact, otherwise via a fresh batched DM
    # engine (estimate engines must not decide the winner).
    candidates = {"F": seeds_f, "UB": seeds_u}
    if seeds_l is not None:
        candidates["LB"] = seeds_l
    if engine_obj is None and isinstance(engine, ObjectiveEngine):
        if engine.problem is problem:
            engine_obj = engine
    if (
        engine_obj is not None
        and not engine_obj.is_estimate
        and getattr(engine_obj, "user_weights", None) is None
    ):
        exact = engine_obj
    elif spec_is_exact_dm(engine):
        exact = make_engine(engine, problem)
        created.append(exact)
    else:
        exact = BatchedDMEngine(problem)
    finals = exact.evaluate(list(candidates.values()))
    values = dict(zip(candidates, (float(v) for v in finals)))
    chosen = max(values, key=lambda name: values[name])
    return SandwichResult(
        seeds=candidates[chosen],
        objective=values[chosen],
        chosen=chosen,
        seeds_feasible=seeds_f,
        seeds_upper=seeds_u,
        seeds_lower=seeds_l,
        f_of_upper_seeds=values["UB"],
        ub_of_upper_seeds=ub_of_su,
    )
