"""Zero-copy data plane benchmark: shm fan-out bytes + warm mmap stores.

Part 1 — dm-mp serialization tax.  One warm-started exhaustive greedy
round (all ``n`` candidate extensions through a selection session, one
commit) through :class:`~repro.core.engine_mp.MultiprocessDMEngine` at 2
workers, over the pickle-per-message pipe transport and over the
shared-memory transport (``dm-mp:2:shm``).  Gains must match to the 1e-10
parity contract with the same arg-max seed.  The metric is the exact
:attr:`~repro.core.engine.EngineStats.ipc_bytes` counter — the engine
frames its own messages, so the number is deterministic, not sampled —
and the shm transport must cut the per-round pipe traffic by >= 5x at
n=2000 (measured: the shm round's bytes no longer scale with ``n``, so
the observed reduction is far larger).  Wall times are recorded for
honesty; on this repo's single-core CI box IPC buys nothing either way.

Part 2 — warm walk-store re-open.  A ``k``-round rw-store greedy run cold
(fresh ``--store-dir``: every block generated and persisted) and then
again through a *re-opened* store over the same directory — the restart /
second-process case the mmap shards exist for.  The warm run must
regenerate **zero** blocks (``StoreStats.blocks_generated == 0``, every
block served by ``blocks_loaded`` memmaps) while selecting byte-identical
seeds.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_data_plane.py``.
Set ``REPRO_BENCH_TINY=1`` for the CI smoke variant: tiny sizes, same
assertions, counters land in ``BENCH_data_plane.tiny.json`` for the
perf-trajectory gate.
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, BENCH_TINY, run_once
from repro.core.engine import BatchedDMEngine, make_engine
from repro.core.engine_mp import MultiprocessDMEngine
from repro.core.greedy import greedy_engine
from repro.core.walk_store import WalkStore
from repro.datasets.twitter import twitter_social_distancing
from repro.eval.reporting import format_series
from repro.utils.timing import Timer
from repro.voting.scores import PluralityScore

TINY = BENCH_TINY
IPC_SIZE = 200 if TINY else 2000
WORKERS = 2
HORIZON = 20
STORE_SIZE = 150 if TINY else 600
STORE_K = 3 if TINY else 8
WALKS_PER_NODE = 8 if TINY else 16
#: Acceptance floor: the shm transport must cut per-round pipe bytes at
#: least this much (issue criterion; headroom is order-of-magnitude).
MIN_IPC_REDUCTION = 5.0


def _dense_problem(n: int):
    dataset = twitter_social_distancing(n=n, rng=BENCH_SEED, horizon=HORIZON)
    problem = dataset.problem(PluralityScore())
    problem.others_by_user()  # shared inputs, warmed outside the timers
    problem.target_trajectory()
    return problem


# ----------------------------------------------------------------------
# Part 1: per-round pipe traffic, pipe vs shm transport
# ----------------------------------------------------------------------
def _one_transport_round(problem, transport: str) -> dict[str, float]:
    """One session greedy round + commit; returns its exact pipe bytes."""
    n = problem.n
    candidates = np.arange(n)
    with MultiprocessDMEngine(
        problem, workers=WORKERS, min_fanout=1, transport=transport
    ) as engine:
        engine.ping()  # pool start + problem shipping, outside the round
        session = engine.open_session()
        before = engine.stats.ipc_bytes
        with Timer() as timer:
            gains = session.marginal_gains(candidates)
            session.commit(int(np.argmax(gains)))
        return {
            "gains": gains,
            "round_bytes": float(engine.stats.ipc_bytes - before),
            "round_s": timer.elapsed,
        }


def _ipc_rounds(n: int) -> dict[str, float]:
    problem = _dense_problem(n)
    reference = BatchedDMEngine(problem)
    ref_session = reference.open_session()
    expected = ref_session.marginal_gains(np.arange(n))
    pipe = _one_transport_round(problem, "pipe")
    shm = _one_transport_round(problem, "shm")
    for row in (pipe, shm):
        np.testing.assert_allclose(row["gains"], expected, atol=1e-10, rtol=0)
        assert int(np.argmax(row["gains"])) == int(np.argmax(expected))
    return {
        "pipe_bytes": pipe["round_bytes"],
        "shm_bytes": shm["round_bytes"],
        "ipc_reduction_x": pipe["round_bytes"] / max(shm["round_bytes"], 1.0),
        "pipe_s": pipe["round_s"],
        "shm_s": shm["round_s"],
    }


# ----------------------------------------------------------------------
# Part 2: cold vs warm memory-mapped walk store
# ----------------------------------------------------------------------
def _store_greedy(problem, store: WalkStore):
    engine = make_engine(
        "rw-store",
        problem,
        store=store,
        walks_per_node=WALKS_PER_NODE,
        adaptive=False,
        epsilon=None,
    )
    return greedy_engine(engine, STORE_K, lazy=False)


def _warm_store_rounds(n: int, store_dir) -> dict[str, float]:
    dataset = twitter_social_distancing(n=n, rng=BENCH_SEED, horizon=HORIZON)
    problem = dataset.problem(PluralityScore())
    problem.others_by_user()
    cold_store = WalkStore(
        problem.state, problem.horizon, seed=BENCH_SEED, store_dir=store_dir
    )
    with Timer() as cold_timer:
        cold = _store_greedy(problem, cold_store)
    assert cold_store.stats.blocks_generated > 0
    # A re-opened store over the same directory: the restart case.
    warm_store = WalkStore(
        problem.state, problem.horizon, seed=BENCH_SEED, store_dir=store_dir
    )
    with Timer() as warm_timer:
        warm = _store_greedy(problem, warm_store)
    assert warm.seeds.tolist() == cold.seeds.tolist(), "warm selection diverged"
    np.testing.assert_array_equal(warm.gains, cold.gains)
    return {
        "cold_blocks": float(cold_store.stats.blocks_generated),
        "cold_walk_steps": float(cold_store.stats.walk_steps_generated),
        "warm_blocks_regenerated": float(warm_store.stats.blocks_generated),
        "warm_blocks_loaded": float(warm_store.stats.blocks_loaded),
        "cold_s": cold_timer.elapsed,
        "warm_s": warm_timer.elapsed,
    }


def test_data_plane_ipc_and_warm_store(
    benchmark, tmp_path, save_result, save_bench_json
):
    rows = run_once(
        benchmark,
        lambda: {
            **_ipc_rounds(IPC_SIZE),
            **_warm_store_rounds(STORE_SIZE, tmp_path / "walk-store"),
        },
    )
    series = {
        "pipe bytes/round": [rows["pipe_bytes"]],
        "shm bytes/round": [rows["shm_bytes"]],
        "ipc reduction (x)": [rows["ipc_reduction_x"]],
        "pipe round (s)": [rows["pipe_s"]],
        "shm round (s)": [rows["shm_s"]],
        "cold blocks generated": [rows["cold_blocks"]],
        "warm blocks regenerated": [rows["warm_blocks_regenerated"]],
        "warm blocks mmap-loaded": [rows["warm_blocks_loaded"]],
        "cold greedy (s)": [rows["cold_s"]],
        "warm greedy (s)": [rows["warm_s"]],
    }
    if not TINY:
        save_result(
            "data_plane",
            "dm-mp round ipc (plurality, n=%d, t=%d, %d workers) and warm "
            "mmap store re-open (rw-store greedy, n=%d, k=%d, λ=%d/node):\n%s"
            % (
                IPC_SIZE,
                HORIZON,
                WORKERS,
                STORE_SIZE,
                STORE_K,
                WALKS_PER_NODE,
                format_series("part", ["ipc/warm"], series),
            ),
        )
    save_bench_json(
        "data_plane",
        {
            "ipc_reduction_x": {
                "value": rows["ipc_reduction_x"],
                "higher_is_better": True,
            },
            "shm_bytes_per_round": {
                "value": rows["shm_bytes"],
                "higher_is_better": False,
            },
            "warm_blocks_regenerated": {
                "value": rows["warm_blocks_regenerated"],
                "higher_is_better": False,
            },
            "cold_blocks_generated": {
                "value": rows["cold_blocks"],
                "higher_is_better": False,
            },
        },
    )
    assert rows["ipc_reduction_x"] >= MIN_IPC_REDUCTION, (
        f"shm transport only cut per-round ipc by "
        f"{rows['ipc_reduction_x']:.2f}x at n={IPC_SIZE} "
        f"(floor {MIN_IPC_REDUCTION}x)"
    )
    assert rows["warm_blocks_regenerated"] == 0, (
        f"warm store re-open regenerated "
        f"{rows['warm_blocks_regenerated']:.0f} blocks (must be 0)"
    )
    assert rows["warm_blocks_loaded"] >= rows["cold_blocks"]
