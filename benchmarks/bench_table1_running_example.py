"""Table I: scores of c1 for various seed sets at t=1 on the running example.

Regenerates every row of Table I exactly (the seed sets are enumerated, the
opinions computed by the FJ model) and benchmarks the greedy selector on the
example.  This is an exact reproduction: absolute values must match.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.greedy import greedy_dm
from repro.datasets.example import TABLE_I, running_example
from repro.eval.reporting import format_table
from repro.voting.scores import CopelandScore, CumulativeScore, PluralityScore


@pytest.fixture(scope="module")
def example():
    return running_example()


def test_table1_rows(benchmark, example, save_result):
    problems = {
        "cumulative": example.problem(CumulativeScore()),
        "plurality": example.problem(PluralityScore()),
        "copeland": example.problem(CopelandScore()),
    }

    def build_rows():
        rows = []
        for seed_set, expected in TABLE_I.items():
            seeds = np.array(seed_set, dtype=np.int64)
            opinions = problems["cumulative"].target_opinions(seeds)
            row = [
                "{" + ", ".join(str(s + 1) for s in seed_set) + "}",
                *[f"{v:.2f}" for v in opinions],
                problems["cumulative"].objective(seeds),
                int(problems["plurality"].objective(seeds)),
                int(problems["copeland"].objective(seeds)),
            ]
            rows.append((row, expected))
        return rows

    rows = run_once(benchmark, build_rows)
    for row, expected in rows:
        assert row[5] == pytest.approx(expected[0])  # cumulative
        assert row[6] == expected[1]  # plurality
        assert row[7] == expected[2]  # copeland
    save_result(
        "table1_running_example",
        format_table(
            ["Seed Set", "u1", "u2", "u3", "u4", "Cumu.", "Plu.", "Cope."],
            [r for r, _ in rows],
        ),
    )


def test_table1_greedy_selects_paper_optima(benchmark, example):
    """Greedy k=1 picks user 1 for cumulative and user 3 for plurality."""

    def run():
        cum = greedy_dm(example.problem(CumulativeScore()), 1).seeds
        plu = greedy_dm(example.problem(PluralityScore()), 1).seeds
        return cum, plu

    cum, plu = run_once(benchmark, run)
    assert cum.tolist() == [0]
    assert plu.tolist() == [2]
