"""t-hop forward reachability and greedy max-coverage.

The sandwich upper bounds (Definitions 4 and 6) are scaled coverage
functions of the *reachable users set* ``N_S^(t)``: nodes at most ``t``
outgoing hops from a seed (Definition 2).  Influence under FJ spreads one
hop per timestamp (Lemma 1), so ``N_S^(t)`` caps which users any seed set
can affect by the horizon.

:class:`ReachabilityIndex` lazily computes and caches per-node t-hop sets;
:func:`coverage_greedy` maximizes ``|N_S ∪ base|`` with CELF.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Sequence

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.utils.validation import check_seed_budget


class ReachabilityIndex:
    """Cached t-hop forward-reachable sets for one graph and horizon.

    Self-loops introduced by stochastic normalization are structural, not
    social, but they do not change reachability (a node always reaches
    itself at hop 0), so they require no special handling.
    """

    def __init__(self, graph: InfluenceGraph, t: int) -> None:
        if t < 0:
            raise ValueError("t must be non-negative")
        self.graph = graph
        self.t = int(t)
        self._cache: dict[int, np.ndarray] = {}

    def reach(self, node: int) -> np.ndarray:
        """Sorted array of nodes within ``t`` hops of ``node`` (inclusive)."""
        node = int(node)
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        visited = {node}
        frontier = deque([(node, 0)])
        while frontier:
            u, depth = frontier.popleft()
            if depth == self.t:
                continue
            targets, _ = self.graph.out_neighbors(u)
            for v in targets:
                v = int(v)
                if v not in visited:
                    visited.add(v)
                    frontier.append((v, depth + 1))
        result = np.fromiter(sorted(visited), dtype=np.int64, count=len(visited))
        self._cache[node] = result
        return result

    def reach_set(self, nodes: Sequence[int]) -> np.ndarray:
        """Union of t-hop sets of ``nodes`` (the set ``N_S^(t)``)."""
        if len(nodes) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([self.reach(v) for v in nodes]))


def coverage_greedy(
    index: ReachabilityIndex,
    base: np.ndarray,
    k: int,
    *,
    weight: float = 1.0,
    candidates: Sequence[int] | None = None,
) -> tuple[np.ndarray, float]:
    """Greedy maximization of ``weight * |N_S^(t) ∪ base|`` (CELF).

    Parameters
    ----------
    index:
        A :class:`ReachabilityIndex` for the target candidate's graph.
    base:
        Pre-covered node ids (``V_q^(t)`` or ``U_q^(t)``).
    k:
        Seed budget.
    weight:
        Scale factor (``ω[1]`` for positional variants, ``(r-1)/(⌊n/2⌋+1)``
        for Copeland).

    Returns ``(seeds, objective)``.  Coverage is monotone submodular, so
    greedy with lazy evaluation is a (1 - 1/e)-approximation.
    """
    n = index.graph.n
    k = check_seed_budget(k, n)
    covered = np.zeros(n, dtype=bool)
    covered[np.asarray(base, dtype=np.int64)] = True
    pool = range(n) if candidates is None else sorted(set(int(v) for v in candidates))
    heap: list[tuple[float, int, int]] = []
    for v in pool:
        gain = int(np.count_nonzero(~covered[index.reach(v)]))
        heap.append((-float(gain), v, 0))
    heapq.heapify(heap)
    seeds: list[int] = []
    total = int(covered.sum())
    for _ in range(min(k, len(heap))):
        while True:
            neg_gain, v, stamp = heapq.heappop(heap)
            if stamp == len(seeds):
                break
            gain = int(np.count_nonzero(~covered[index.reach(v)]))
            heapq.heappush(heap, (-float(gain), v, len(seeds)))
        seeds.append(v)
        reach = index.reach(v)
        total += int(np.count_nonzero(~covered[reach]))
        covered[reach] = True
    return np.array(seeds, dtype=np.int64), weight * float(total)
