"""Plain-text rendering of experiment outputs (paper-shaped rows/series)."""

from __future__ import annotations

from typing import Mapping, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table with a header rule."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(row[i]) for row in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(parts: Sequence[str]) -> str:
        return "  ".join(str(p).rjust(w) for p, w in zip(parts, widths))

    out = [line([str(h) for h in headers]), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
) -> str:
    """Render named series against a shared x-axis (one figure panel)."""
    headers = [x_name, *series.keys()]
    rows = [
        [x, *(vals[i] for vals in series.values())] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows)
