"""Resilience benchmark: one fixed chaos schedule, identical answers.

One deterministic :class:`~repro.core.faults.FaultPlan` per layer — a
worker SIGKILLed mid-selection (``dm-mp`` over pipe *and* shm), a tcp
host severed mid-round (re-shard + backoff rejoin), a walk-store block
corrupted on its first load (quarantine + in-place repair), and a burst
of serve admissions against a bounded queue with a planned drop — runs
the production recovery paths end to end.  The headline assertion is the
byte-identity contract: every faulted selection must match its
fault-free reference exactly (``dm`` for the exact engines, the same
store fault-free for ``rw-store:mmap``).

The gated metrics are the recovery counters themselves: the schedule is
fixed, so ``workers_lost``/``workers_respawned``, ``hosts_lost``/
``hosts_rejoined``/``chunks_resharded``, ``blocks_quarantined``/
``blocks_repaired`` and ``requests_shed`` are exact constants on every
host.  Drift in any of them is a real change to the recovery paths —
spurious losses, a respawn or repair that stopped happening, shedding
that over- or under-fires — not noise.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py``.
Set ``REPRO_BENCH_TINY=1`` for the CI chaos smoke variant (tiny sizes,
same assertions, counters gated via ``BENCH_resilience.tiny.json``).
"""

import asyncio
import threading

import numpy as np

from benchmarks.conftest import BENCH_SEED, BENCH_TINY, run_once
from repro.core import faults
from repro.core.engine import BatchedDMEngine, make_engine
from repro.core.engine_net import run_net_worker
from repro.core.faults import FaultPlan, FaultSpec
from repro.core.greedy import greedy_engine
from repro.datasets.yelp import yelp_like
from repro.eval.reporting import format_series
from repro.serve.batcher import EngineHub
from repro.serve.protocol import Request
from repro.serve.server import QueryServer
from repro.voting.scores import CumulativeScore

TINY = BENCH_TINY
N = 120 if TINY else 400
HORIZON = 6
K = 3
WORKERS = 2
#: The fixed chaos schedule: one planned failure per layer.
KILL = FaultSpec("mp-kill-worker", when={"worker": 1, "round": 2})
# Round 2 is the second marginal-gains fan-out (round 1 is the first
# commit broadcast), so the severed host dies holding a chunk and the
# re-shard path runs, not just the loss bookkeeping.
SEVER = FaultSpec("net-sever-host", when={"round": 2})
CORRUPT = FaultSpec("store-corrupt-block", when={"block": 0})
DROP = FaultSpec("serve-drop", when={"request": 0})
#: Serve burst: queue bound and admissions beyond it.
QUEUE_CAP = 2
BURST = 5


def _build_problem():
    dataset = yelp_like(n=N, r=3, rng=BENCH_SEED, horizon=HORIZON)
    return dataset.problem(CumulativeScore())


def _start_worker(connections):
    ready = threading.Event()
    address: list[str] = []

    def on_ready(host, port):
        address.append(f"{host}:{port}")
        ready.set()

    thread = threading.Thread(
        target=run_net_worker,
        kwargs=dict(port=0, connections=connections, on_ready=on_ready),
        daemon=True,
    )
    thread.start()
    assert ready.wait(30), "net worker never became ready"
    return address[0], thread


def _serve_burst() -> dict[str, int]:
    """Bounded-queue admission burst + one planned drop, then a drain.

    Everything is deterministic: the dispatcher is not running while the
    burst is admitted, so exactly ``BURST - QUEUE_CAP`` admissions
    overflow, the planned ``serve-drop`` sheds one more, and the drain
    answers precisely what was queued.
    """
    plan = FaultPlan(seed=BENCH_SEED, faults=[DROP])

    async def main():
        hub = EngineHub(_build_problem(), ["dm"], rng=7)
        server = QueryServer(hub, queue_cap=QUEUE_CAP)
        loop = asyncio.get_running_loop()
        futures = []
        for i in range(BURST):
            future = loop.create_future()
            server._admit(Request(id=i, op="ping", params={}), future)
            futures.append(future)
        server._dispatcher = asyncio.create_task(server._dispatch_loop())
        await server.aclose(drain=True)
        answers = [future.result() for future in futures]
        return {
            "requests_shed": int(server.stats.requests_shed),
            "answered": sum(1 for a in answers if a["ok"]),
        }

    with faults.injected(plan):
        counters = asyncio.run(main())
    assert plan.fired == [("serve-drop", {"request": 0})]
    return counters


def _chaos_round() -> dict[str, float]:
    problem = _build_problem()
    reference = greedy_engine(BatchedDMEngine(problem), K, lazy=False)
    expected = reference.seeds.tolist()
    counters: dict[str, float] = {"selection_mismatches": 0}

    # dm-mp pipe + shm: planned SIGKILL mid-selection, byte-identical.
    for transport in ("pipe", "shm"):
        plan = FaultPlan(seed=BENCH_SEED, faults=[KILL])
        with faults.injected(plan):
            with make_engine(
                f"dm-mp:{WORKERS}:{transport}" if transport != "pipe"
                else f"dm-mp:{WORKERS}",
                problem,
                min_fanout=1,
            ) as engine:
                result = greedy_engine(engine, K, lazy=False)
                counters[f"workers_lost_{transport}"] = int(
                    engine.stats.workers_lost
                )
                counters[f"workers_respawned_{transport}"] = int(
                    engine.stats.workers_respawned
                )
        assert plan.fired, f"{transport}: the planned kill never fired"
        if result.seeds.tolist() != expected:
            counters["selection_mismatches"] += 1

    # dm-mp tcp: planned sever, re-shard to the survivor, backoff rejoin.
    import time

    addr_a, thread_a = _start_worker(connections=2)
    addr_b, thread_b = _start_worker(connections=1)
    plan = FaultPlan(seed=BENCH_SEED, faults=[SEVER])
    engine = make_engine(f"dm-mp:tcp={addr_a},{addr_b}", problem, min_fanout=1)
    try:
        with faults.injected(plan):
            result = greedy_engine(engine, K, lazy=False)
        if result.seeds.tolist() != expected:
            counters["selection_mismatches"] += 1
        assert plan.fired, "the planned sever never fired"
        sets = [np.array([i]) for i in range(min(8, N))]
        check = BatchedDMEngine(problem).evaluate(sets)
        deadline = time.monotonic() + 30.0
        while engine.stats.hosts_rejoined == 0:
            assert time.monotonic() < deadline, "severed host never rejoined"
            time.sleep(0.1)
            assert np.array_equal(check, engine.evaluate(sets))
        counters["hosts_lost"] = int(engine.stats.hosts_lost)
        counters["hosts_rejoined"] = int(engine.stats.hosts_rejoined)
        counters["chunks_resharded"] = int(engine.stats.chunks_resharded)
    finally:
        engine.close()
    thread_a.join(30)
    thread_b.join(30)

    # rw-store:mmap: corrupt the first loaded block of a warm store; the
    # repair must reproduce the fault-free selection bit for bit.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        spec = f"rw-store:{WORKERS}:mmap={tmp}/store"
        with make_engine(spec, problem, rng=11) as engine:
            store_expected = greedy_engine(engine, K).seeds.tolist()
        plan = FaultPlan(seed=BENCH_SEED, faults=[CORRUPT])
        with faults.injected(plan):
            with make_engine(spec, problem, rng=11) as engine:
                store_result = greedy_engine(engine, K).seeds.tolist()
                counters["blocks_quarantined"] = int(
                    engine.store.stats.blocks_quarantined
                )
                counters["blocks_repaired"] = int(
                    engine.store.stats.blocks_repaired
                )
        assert plan.fired, "the planned corruption never fired"
        if store_result != store_expected:
            counters["selection_mismatches"] += 1

    counters.update(_serve_burst())
    return counters


def test_resilience_chaos_schedule(benchmark, save_result, save_bench_json):
    row = run_once(benchmark, _chaos_round)
    # The whole point: four faulted selections, zero divergence.
    assert row["selection_mismatches"] == 0
    assert row["workers_lost_pipe"] == 1 and row["workers_lost_shm"] == 1
    assert row["workers_respawned_pipe"] == 1
    assert row["workers_respawned_shm"] == 1
    assert row["hosts_lost"] == 1 and row["hosts_rejoined"] == 1
    assert row["chunks_resharded"] >= 1
    assert row["blocks_quarantined"] == 1 and row["blocks_repaired"] == 1
    # One planned drop + the overflow past the queue bound; the drop
    # frees the slot its request would have taken, so the shed total is
    # exactly the burst's excess and the drain answers a full queue.
    assert row["requests_shed"] == BURST - QUEUE_CAP
    assert row["answered"] == QUEUE_CAP

    series = {
        "workers lost (pipe+shm)": [
            row["workers_lost_pipe"] + row["workers_lost_shm"]
        ],
        "workers respawned": [
            row["workers_respawned_pipe"] + row["workers_respawned_shm"]
        ],
        "hosts lost / rejoined": [
            f"{row['hosts_lost']} / {row['hosts_rejoined']}"
        ],
        "chunks re-sharded": [row["chunks_resharded"]],
        "blocks quarantined / repaired": [
            f"{row['blocks_quarantined']} / {row['blocks_repaired']}"
        ],
        "serve requests shed": [row["requests_shed"]],
        "faulted selection mismatches": [row["selection_mismatches"]],
    }
    save_result("resilience", format_series("n", [N], series))
    save_bench_json(
        "resilience",
        {
            "selection_mismatches": {
                "value": float(row["selection_mismatches"]),
                "higher_is_better": False,
            },
            "workers_lost_total": {
                "value": float(
                    row["workers_lost_pipe"] + row["workers_lost_shm"]
                ),
                "higher_is_better": False,
            },
            "workers_respawned_total": {
                "value": float(
                    row["workers_respawned_pipe"]
                    + row["workers_respawned_shm"]
                ),
                "higher_is_better": True,
            },
            "hosts_rejoined": {
                "value": float(row["hosts_rejoined"]),
                "higher_is_better": True,
            },
            "chunks_resharded_after_sever": {
                "value": float(row["chunks_resharded"]),
                "higher_is_better": False,
            },
            "blocks_repaired": {
                "value": float(row["blocks_repaired"]),
                "higher_is_better": True,
            },
            "requests_shed_at_cap": {
                "value": float(row["requests_shed"]),
                "higher_is_better": False,
            },
        },
    )
