"""Fig. 17: seed-finding time and memory vs graph size (cumulative score).

Expected shape (paper, Twitter Social Distancing subsamples): RW and RS
scale near-linearly in n; DM grows polynomially and dominates at the larger
sizes; DM uses the least memory (no walks), RW stores far more walks than
RS.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.datasets.twitter import twitter_social_distancing
from repro.eval.experiments import scalability_experiment
from repro.eval.reporting import format_series

SIZES = [250, 500, 1000, 2000]
K = 10
KW = {"rw": {"lambda_cap": 32}, "rs": {"theta": 4000}}


@pytest.fixture(scope="module")
def big_distancing():
    return twitter_social_distancing(n=2000, rng=BENCH_SEED, horizon=10)


def test_fig17_scalability(benchmark, big_distancing, save_result):
    out = run_once(
        benchmark,
        lambda: scalability_experiment(
            big_distancing, SIZES, K, methods=("dm", "rw", "rs"),
            rng=53, method_kwargs=KW,
        ),
    )
    mem_mb = {
        m: [v / 1e6 for v in vals] for m, vals in out["memory"].items()
    }
    save_result(
        "fig17_scalability",
        "select time (s):\n"
        + format_series("n", SIZES, out["time"])
        + "\n\nmemory (MB):\n"
        + format_series("n", SIZES, mem_mb),
    )
    # RW stores more walk state than RS at the largest size.
    assert out["memory"]["rw"][-1] > out["memory"]["rs"][-1]
    # DM (no walks) uses the least memory.
    assert out["memory"]["dm"][-1] <= out["memory"]["rs"][-1]
    # Runtimes grow with n for every method.
    for m in ("dm", "rw", "rs"):
        assert out["time"][m][-1] >= out["time"][m][0]
