"""Tests for brute force and the Table II property probes."""

import numpy as np
import pytest

from repro.core.exact import (
    brute_force_optimum,
    monotonicity_violations,
    submodularity_violations,
)
from repro.core.problem import FJVoteProblem
from repro.voting.scores import (
    CopelandScore,
    CumulativeScore,
    PluralityScore,
)
from tests.conftest import random_instance


def test_brute_force_small(example_problem_factory):
    problem = example_problem_factory(CumulativeScore())
    seeds, value = brute_force_optimum(problem, 1)
    # Table I: best single seed for the cumulative score is user 1 (index 0).
    assert seeds.tolist() == [0]
    assert value == pytest.approx(3.30)


def test_brute_force_plurality(example_problem_factory):
    problem = example_problem_factory(PluralityScore())
    seeds, value = brute_force_optimum(problem, 1)
    assert seeds.tolist() == [2]  # user 3 in the paper's 1-indexing
    assert value == 4


def test_example3_submodularity_violation(example_problem_factory):
    """Example 3: inserting node 2 into {} vs {1} violates submodularity."""
    for score in (PluralityScore(), CopelandScore()):
        problem = example_problem_factory(score)
        f = problem.objective
        gain_empty = f(np.array([1])) - f(())
        gain_with_1 = f(np.array([0, 1])) - f(np.array([0]))
        assert gain_empty == 0
        assert gain_with_1 == 1  # strictly larger: not submodular


@pytest.mark.parametrize("score", [CumulativeScore(), PluralityScore(), CopelandScore()])
def test_all_scores_monotone(score):
    """Table II: every score is non-decreasing in the seed set."""
    state = random_instance(n=8, r=3, seed=7)
    problem = FJVoteProblem(state, 0, 3, score)
    assert monotonicity_violations(problem, trials=60, rng=1) == []


def test_cumulative_submodular_no_violations():
    """Table II: the cumulative score is submodular (Theorem 3)."""
    for seed in range(3):
        state = random_instance(n=8, r=2, seed=seed)
        problem = FJVoteProblem(state, 0, 3, CumulativeScore())
        assert submodularity_violations(problem, trials=80, rng=seed) == []


def test_plurality_violations_found_on_example(example_problem_factory):
    problem = example_problem_factory(PluralityScore())
    violations = submodularity_violations(problem, trials=400, rng=0)
    assert violations, "expected to rediscover the Example 3 violation"
    v = violations[0]
    assert v.gain_x < v.gain_y


def test_brute_force_budget_validation(example_problem_factory):
    problem = example_problem_factory(CumulativeScore())
    with pytest.raises(ValueError):
        brute_force_optimum(problem, 10)
