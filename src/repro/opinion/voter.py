"""The (discrete) voter model — a related-work diffusion substrate (§VII).

In the voter model every user holds exactly one candidate at a time; at
each timestamp a node adopts the current candidate of a random in-neighbor
(weighted by influence, matching the column-stochastic convention).  Opinion
maximization under this model is the setting of [Even-Dar & Shapira] and the
works the paper cites as [54]-[56]; the substrate here lets users compare
discrete-state diffusion with the paper's real-valued FJ dynamics on the
same graphs.

Seeding semantics mirror §II-C: a seed holds the target candidate forever
(the "zealot" of the voter-model literature).
"""

from __future__ import annotations

import numpy as np

from repro.graph.alias import AliasSampler
from repro.graph.digraph import InfluenceGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_time_horizon


def initial_states_from_opinions(opinions: np.ndarray) -> np.ndarray:
    """Discretize an opinion matrix: each user starts with her arg-max candidate.

    Ties break toward the lower candidate index (consistent with β's
    tie-counting in Eq. 4, where ties never favor the later candidate).
    """
    opinions = np.asarray(opinions, dtype=np.float64)
    if opinions.ndim != 2:
        raise ValueError("opinions must be a (r, n) matrix")
    return np.argmax(opinions, axis=0).astype(np.int64)


def simulate_voter(
    graph: InfluenceGraph,
    states: np.ndarray,
    horizon: int,
    *,
    zealots: np.ndarray | None = None,
    zealot_state: int = 0,
    rng: int | np.random.Generator | None = None,
    sampler: AliasSampler | None = None,
) -> np.ndarray:
    """One synchronous voter-model run; returns final states.

    At each of ``horizon`` steps every non-zealot node adopts the state of
    one in-neighbor sampled with the influence weights (self-loops keep the
    node's own state, preserving "no in-neighbors retain their opinion").
    """
    rng = ensure_rng(rng)
    horizon = check_time_horizon(horizon)
    states = np.array(states, dtype=np.int64)
    if states.shape != (graph.n,):
        raise ValueError(f"states must have shape ({graph.n},)")
    if sampler is None:
        sampler = AliasSampler(graph.csc)
    frozen = np.zeros(graph.n, dtype=bool)
    if zealots is not None:
        zealots = np.asarray(zealots, dtype=np.int64)
        states[zealots] = int(zealot_state)
        frozen[zealots] = True
    free = np.where(~frozen)[0]
    for _ in range(horizon):
        sources = sampler.sample(free, rng)
        states[free] = states[sources]
    return states


def voter_expected_shares(
    graph: InfluenceGraph,
    states: np.ndarray,
    horizon: int,
    r: int,
    *,
    zealots: np.ndarray | None = None,
    zealot_state: int = 0,
    mc_runs: int = 100,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Monte-Carlo expected fraction of users per candidate at the horizon."""
    if mc_runs < 1:
        raise ValueError("mc_runs must be >= 1")
    if r < 1:
        raise ValueError("r must be >= 1")
    rng = ensure_rng(rng)
    sampler = AliasSampler(graph.csc)
    counts = np.zeros(r, dtype=np.float64)
    for _ in range(mc_runs):
        final = simulate_voter(
            graph,
            states,
            horizon,
            zealots=zealots,
            zealot_state=zealot_state,
            rng=rng,
            sampler=sampler,
        )
        counts += np.bincount(final, minlength=r)[:r]
    return counts / (mc_runs * graph.n)
