"""Greedy seed selection (paper Algorithm 1) with optional CELF laziness.

``greedy_select`` is a generic engine over a black-box set objective;
``greedy_engine`` drives the same loop through an
:class:`~repro.core.engine.ObjectiveEngine`, collapsing each exhaustive
round into *one* batched evaluation; ``greedy_dm`` instantiates it with
exact opinion computation via direct matrix multiplication (the DM method
of §VIII-A, batched by default).  CELF lazy evaluation [Leskovec et al.
2007] is valid when the objective is submodular — in this library: the
cumulative score, the sandwich bound functions, and coverage — and is
applied automatically for those.

Tie-breaking contract
---------------------
Both loops are deterministic.  The exhaustive path scans candidates in
ascending node order and keeps the *first* maximum, so equal-gain ties
resolve to the smallest node id.  The CELF heap stores ``(-gain, node,
stamp)`` tuples, so equal ``-gain`` entries compare on ``node`` next:
ties again pop the smallest node id first.  Tests pin this contract.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.problem import FJVoteProblem
from repro.utils.validation import check_seed_budget
from repro.voting.scores import CumulativeScore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> greedy)
    from repro.core.engine import ObjectiveEngine


@dataclass
class GreedyResult:
    """Outcome of a greedy run.

    Attributes
    ----------
    seeds:
        Selected nodes in pick order.
    objective:
        Objective value of the full seed set.
    gains:
        Marginal gain recorded at each pick.
    evaluations:
        Number of candidate-objective evaluations performed (CELF
        effectiveness metric; a batched round of ``C`` candidates counts
        as ``C`` evaluations).
    """

    seeds: np.ndarray
    objective: float
    gains: np.ndarray
    evaluations: int


def greedy_select(
    value_fn: Callable[[tuple[int, ...]], float],
    n: int,
    k: int,
    *,
    lazy: bool = False,
    candidates: Sequence[int] | None = None,
) -> GreedyResult:
    """Select ``k`` elements greedily maximizing ``value_fn``.

    Parameters
    ----------
    value_fn:
        Maps a tuple of selected node ids to the objective value.  Must be
        non-decreasing for the result to be meaningful.
    n:
        Ground-set size (nodes are ``0..n-1``).
    k:
        Number of elements to pick.
    lazy:
        Use CELF lazy evaluation.  Only sound for submodular objectives.
    candidates:
        Optional restriction of the ground set.

    Equal-gain ties resolve to the smallest node id on both paths (see the
    module docstring), so results are reproducible across runs.
    """
    k = check_seed_budget(k, n)
    pool = np.arange(n) if candidates is None else np.asarray(sorted(set(candidates)))
    if k > pool.size:
        raise ValueError(f"budget k={k} exceeds candidate pool size {pool.size}")
    selected: list[int] = []
    gains: list[float] = []
    evaluations = 0
    current = value_fn(())
    if lazy:
        # CELF: heap entries are (-cached_gain, node, stamp) where stamp is
        # the size of the selected set when the gain was computed.  A cached
        # gain is exact iff stamp == len(selected); by submodularity stale
        # gains only over-estimate, so popping a fresh maximum is safe.
        # Tuple comparison breaks equal -gain ties by ascending node id.
        heap: list[tuple[float, int, int]] = []
        for v in pool:
            gain = value_fn((int(v),)) - current
            evaluations += 1
            heap.append((-gain, int(v), 0))
        heapq.heapify(heap)
        for _ in range(k):
            while True:
                neg_gain, v, stamp = heapq.heappop(heap)
                if stamp == len(selected):
                    best, best_gain = v, -neg_gain
                    break
                gain = value_fn(tuple(selected) + (v,)) - current
                evaluations += 1
                heapq.heappush(heap, (-gain, v, len(selected)))
            selected.append(best)
            gains.append(best_gain)
            current += best_gain
    else:
        # Scan in ascending node order with a strict ">" so the smallest
        # node id wins equal-gain ties (a Python set here would make the
        # pick depend on hash order).
        remaining = [int(v) for v in pool]
        for _ in range(k):
            best, best_gain = -1, -np.inf
            base = tuple(selected)
            for v in remaining:
                gain = value_fn(base + (v,)) - current
                evaluations += 1
                if gain > best_gain:
                    best, best_gain = v, gain
            selected.append(best)
            gains.append(best_gain)
            current += best_gain
            remaining.remove(best)
    return GreedyResult(
        seeds=np.array(selected, dtype=np.int64),
        objective=current,
        gains=np.array(gains, dtype=np.float64),
        evaluations=evaluations,
    )


def greedy_engine(
    engine: "ObjectiveEngine",
    k: int,
    *,
    lazy: bool = False,
    candidates: Sequence[int] | None = None,
) -> GreedyResult:
    """Greedy selection driven by an :class:`ObjectiveEngine`.

    The exhaustive path performs *one* ``engine.marginal_gains`` call per
    round — with a batched backend, a whole round of ``C`` candidate
    evaluations collapses into a single vectorized evolution.  The CELF
    path batches the first round (all initial gains at once) and then
    re-evaluates individual stale entries on demand.

    Tie-breaking matches :func:`greedy_select`: candidates are scanned in
    ascending node order and ``np.argmax`` keeps the first maximum, so
    equal-gain ties resolve to the smallest node id.
    """
    n = engine.problem.n
    k = check_seed_budget(k, n)
    pool = np.arange(n) if candidates is None else np.asarray(sorted(set(candidates)))
    if k > pool.size:
        raise ValueError(f"budget k={k} exceeds candidate pool size {pool.size}")
    selected: list[int] = []
    gains_trace: list[float] = []
    evaluations = 0
    # The accumulated objective doubles as the base value of every round's
    # gain computation, so the engine never re-evaluates the base set.
    current = engine.evaluate_one(())
    if lazy:
        initial = engine.marginal_gains((), pool, base_objective=current)
        evaluations += pool.size
        heap: list[tuple[float, int, int]] = [
            (-float(g), int(v), 0) for g, v in zip(initial, pool)
        ]
        heapq.heapify(heap)
        for _ in range(k):
            while True:
                neg_gain, v, stamp = heapq.heappop(heap)
                if stamp == len(selected):
                    best, best_gain = v, -neg_gain
                    break
                gain = float(
                    engine.marginal_gains(
                        tuple(selected), [v], base_objective=current
                    )[0]
                )
                evaluations += 1
                heapq.heappush(heap, (-gain, v, len(selected)))
            selected.append(best)
            gains_trace.append(best_gain)
            current += best_gain
    else:
        remaining = pool.copy()
        for _ in range(k):
            gains = engine.marginal_gains(
                tuple(selected), remaining, base_objective=current
            )
            evaluations += remaining.size
            idx = int(np.argmax(gains))
            best, best_gain = int(remaining[idx]), float(gains[idx])
            selected.append(best)
            gains_trace.append(best_gain)
            current += best_gain
            remaining = np.delete(remaining, idx)
    return GreedyResult(
        seeds=np.array(selected, dtype=np.int64),
        objective=current,
        gains=np.array(gains_trace, dtype=np.float64),
        evaluations=evaluations,
    )


def greedy_dm(
    problem: FJVoteProblem,
    k: int,
    *,
    lazy: bool | str = "auto",
    candidates: Sequence[int] | None = None,
    engine: "ObjectiveEngine | str | None" = None,
    rng: "int | np.random.Generator | None" = None,
) -> GreedyResult:
    """Algorithm 1 with exact (direct matrix multiplication) opinions.

    ``lazy="auto"`` enables CELF exactly when the score is cumulative (the
    submodular case, Theorem 3); other scores use exhaustive re-evaluation
    each round as in the paper.

    ``engine`` selects the evaluation backend: an
    :class:`~repro.core.engine.ObjectiveEngine` instance, a spec name from
    :data:`~repro.core.engine.ENGINE_NAMES`, or ``None`` for the default
    batched DM engine (exact, identical objectives, one vectorized
    evolution per round instead of ~n).  ``rng`` seeds the stochastic
    (walk/sketch) engine specs for reproducible selections; exact engines
    ignore it.
    """
    from repro.core.engine import make_engine

    if lazy == "auto":
        lazy = isinstance(problem.score, CumulativeScore)
    return greedy_engine(
        make_engine(engine, problem, rng=rng),
        k,
        lazy=bool(lazy),
        candidates=candidates,
    )
